#!/usr/bin/env python3
"""Tuning the framework's two knobs: ts and the migration penalty p.

The paper exposes two driver module parameters: the static access
counter threshold ``ts`` (seed of Equation 1) and the multiplicative
migration penalty ``p``.  This example sweeps both for one regular and
one irregular workload, reproducing the guidance of Sections VI-A and
VI-D: keep ``ts`` justifiably small, scale ``p`` to control pin
hardness, and don't set ``p`` absurdly high unless the workload is
zero-reuse random access.

Run::

    python examples/policy_tuning.py [--scale tiny|small]
"""

import argparse

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.tables import format_table
from repro.workloads import make_workload


def run(name, scale, policy=MigrationPolicy.ADAPTIVE, ts=8, p=8):
    cfg = SimulationConfig(seed=5).with_policy(
        policy, static_threshold=ts, migration_penalty=p)
    return Simulator(cfg).run(make_workload(name, scale),
                              oversubscription=1.25)


def sweep_ts(name: str, scale: str) -> None:
    base = run(name, scale, policy=MigrationPolicy.ALWAYS, ts=8)
    rows = []
    for ts in (8, 16, 32):
        r = run(name, scale, policy=MigrationPolicy.ALWAYS, ts=ts)
        rows.append([f"ts={ts}", f"{r.runtime_seconds * 1e3:.2f}",
                     f"{r.normalized_runtime(base) * 100:.1f}%",
                     r.events.n_remote])
    print(format_table(
        ["threshold", "runtime (ms)", "vs ts=8", "remote accesses"],
        rows, title=f"\n== {name}: static threshold sweep "
                    "(Always scheme, 125% oversub) =="))


def sweep_penalty(name: str, scale: str) -> None:
    base = run(name, scale, policy=MigrationPolicy.DISABLED)
    rows = []
    for p in (2, 4, 8, 16, 1 << 20):
        r = run(name, scale, p=p)
        rows.append([f"p={p}", f"{r.runtime_seconds * 1e3:.2f}",
                     f"{r.normalized_runtime(base) * 100:.1f}%",
                     r.events.thrash_migrations])
    print(format_table(
        ["penalty", "runtime (ms)", "vs baseline", "thrash migrations"],
        rows, title=f"\n== {name}: migration penalty sweep "
                    "(Adaptive scheme, 125% oversub) =="))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()
    for name in ("srad", "ra"):
        sweep_ts(name, args.scale)
        sweep_penalty(name, args.scale)
    print("\nGuidance (Sections VI-A, VI-D): regular workloads are flat in "
          "both knobs;\nirregular workloads gain monotonically with p until "
          "the extreme regime,\nwhere dense workloads start paying for "
          "host-pinned data they should own locally.")


if __name__ == "__main__":
    main()
