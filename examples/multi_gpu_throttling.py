#!/usr/bin/env python3
"""Multi-GPU scaling and memory throttling (the paper's future work).

Two experiments on the RandomAccess workload:

1. **Scale-out** (Section VI quotes NVIDIA's guidance): a working set
   that oversubscribes one GPU by 125% is partitioned across 1/2/4
   devices -- two devices already absorb the oversubscription and
   eliminate thrashing.
2. **Throttling** (Section VIII's proposal): each device may only use a
   fraction of its memory (a co-tenant owns the rest).  The adaptive
   threshold turns the cap into host-pinning of the coldest partition
   instead of a thrash storm.

Run::

    python examples/multi_gpu_throttling.py [--scale tiny|small]
"""

import argparse

from repro import MigrationPolicy, SimulationConfig
from repro.analysis.tables import format_table
from repro.multigpu import MultiGpuSimulator
from repro.workloads import make_workload


def scale_out(scale: str) -> None:
    cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.DISABLED)
    rows = []
    base = None
    for n in (1, 2, 4):
        res = MultiGpuSimulator(cfg, num_gpus=n).run(
            make_workload("ra", scale), oversubscription=1.25)
        if base is None:
            base = res.makespan_cycles
        rows.append([n, f"{res.makespan_cycles:,.0f}",
                     f"{base / res.makespan_cycles:.2f}x",
                     res.total_thrash, f"{res.load_imbalance:.2f}"])
    print(format_table(
        ["GPUs", "makespan (cycles)", "speedup", "thrash", "imbalance"],
        rows, title="\n== scale-out: ra at 125% single-GPU "
                    "oversubscription (baseline policy) =="))
    print("Two devices fit the working set: the order-of-magnitude "
          "thrashing cost vanishes,\nso speedup is superlinear.")


def throttling(scale: str) -> None:
    rows = []
    for policy in (MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE):
        for throttle in (1.0, 0.5, 0.35):
            cfg = SimulationConfig(seed=1).with_policy(policy)
            res = MultiGpuSimulator(cfg, num_gpus=2,
                                    throttle=throttle).run(
                make_workload("ra", scale), oversubscription=1.0)
            rows.append([policy.value, f"{throttle:.0%}",
                         f"{res.makespan_cycles:,.0f}",
                         res.total_thrash])
    print(format_table(
        ["policy", "usable memory", "makespan (cycles)", "thrash"],
        rows, title="\n== throttling: 2 GPUs, collaborative ra, "
                    "capped device memory =="))
    print("Under a tight cap the first-touch baseline thrashes; the "
          "adaptive threshold\nenforces the cap by hardening host pins "
          "instead -- the throttling mechanism\nSection VIII proposes.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()
    scale_out(args.scale)
    throttling(args.scale)


if __name__ == "__main__":
    main()
