#!/usr/bin/env python3
"""Trace-driven workflows: record once, re-simulate under many configs.

The simulator is trace-driven: a workload's access stream is independent
of the memory-system configuration.  Recording it once and replaying it
makes policy sweeps cheap and exactly reproducible, and the ``.npz``
trace format is a documented interchange point for external traces.

This example records the sssp benchmark, then replays the identical
stream under every migration policy and two eviction granularities.

Run::

    python examples/trace_replay.py [--scale tiny|small]
"""

import argparse
import tempfile
import pathlib

from repro import (
    EvictionGranularity,
    MigrationPolicy,
    SimulationConfig,
    Simulator,
)
from repro.analysis.tables import format_table
from repro.trace import TraceWorkload, load_trace, record_trace, save_trace
from repro.workloads import make_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()

    print("recording sssp access trace ...")
    data = record_trace(make_workload("sssp", args.scale), seed=0)
    print(f"  {data.num_launches} kernel launches, {data.num_waves} waves, "
          f"{data.num_accesses:,} coalesced accesses")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace(data, pathlib.Path(tmp) / "sssp.npz")
        size_kb = path.stat().st_size / 1024
        print(f"  saved to {path.name} ({size_kb:.0f} KiB)\n")
        trace = load_trace(path)

        rows = []
        base_cycles = None
        for policy in MigrationPolicy:
            for gran in (EvictionGranularity.CHUNK_2MB,
                         EvictionGranularity.BLOCK_64KB):
                cfg = SimulationConfig(seed=0).with_policy(policy)
                cfg = cfg.with_eviction_granularity(gran)
                r = Simulator(cfg).run(TraceWorkload(trace),
                                       oversubscription=1.25)
                if base_cycles is None:
                    base_cycles = r.total_cycles
                rows.append([
                    policy.value,
                    "64KB" if gran is EvictionGranularity.BLOCK_64KB
                    else "2MB",
                    f"{r.runtime_seconds * 1e3:.2f}",
                    f"{r.total_cycles / base_cycles * 100:.1f}%",
                    r.events.thrash_migrations,
                ])
        print(format_table(
            ["policy", "evict", "runtime (ms)", "vs first row", "thrash"],
            rows, title="sssp trace replayed at 125% oversubscription"))
        print("\nEvery replay consumed the byte-identical access stream -- "
              "differences are\npurely memory-system policy.")


if __name__ == "__main__":
    main()
