#!/usr/bin/env python3
"""Access-pattern atlas: the workload characterization of Section III-B.

Regenerates the analysis behind Figures 2 and 3 for *all eight*
workloads: per-allocation access densities (hot/cold, read-only vs
read-write) and a coarse page-vs-time sketch per kernel, rendered as
ASCII.  Useful to see at a glance why each workload lands in the
regular or irregular bucket.

Run::

    python examples/access_pattern_atlas.py [--workload NAME]
"""

import argparse

import numpy as np

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.tables import format_table
from repro.workloads import ALL_WORKLOADS, make_workload, workload_category


def atlas(name: str, scale: str = "tiny") -> None:
    cfg = SimulationConfig(seed=0, collect_page_histogram=True,
                           collect_access_trace=True)
    cfg = cfg.with_policy(MigrationPolicy.DISABLED)
    r = Simulator(cfg).run(make_workload(name, scale), oversubscription=0.8)

    cat = workload_category(name).value
    print(f"\n==== {name} ({cat}) ====")
    rows = [[s["name"], s["pages"], s["reads"], s["writes"],
             round(s["accesses_per_page"], 1),
             "RO" if s["read_only"] else "RW"]
            for s in r.stats.allocation_summary()]
    print(format_table(
        ["allocation", "pages", "reads", "writes", "acc/page", "type"],
        rows))

    # Page-vs-time sketch: bucket the trace into a character raster.
    trace = r.stats.trace
    if not trace:
        return
    width, height = 64, 12
    t_max = max(rec.cycle for rec in trace) + 1.0
    p_max = max(int(rec.pages.max()) for rec in trace if rec.pages.size) + 1
    raster = [[" "] * width for _ in range(height)]
    for rec in trace:
        col = min(int(width * rec.cycle / t_max), width - 1)
        for page, w in zip(rec.pages, rec.is_write):
            row = min(int(height * page / p_max), height - 1)
            mark = "W" if w else "r"
            if raster[row][col] == " " or mark == "W":
                raster[row][col] = mark
    print("page-vs-time sketch (r = read, W = write; low pages at top):")
    for line in raster:
        print("  |" + "".join(line) + "|")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=ALL_WORKLOADS, default=None)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()
    names = (args.workload,) if args.workload else ALL_WORKLOADS
    for name in names:
        atlas(name, args.scale)


if __name__ == "__main__":
    main()
