#!/usr/bin/env python3
"""Regular stencil workloads: why the framework must do no harm.

Dense, sequential applications (here: fdtd-2d and hotspot) are the
workloads that delayed migration can *hurt* -- every byte they touch is
worth migrating, so any detour through remote zero-copy access is pure
overhead.  This example shows the paper's no-harm property: the adaptive
scheme tracks first-touch migration for stencils both when the grids fit
and when they oversubscribe, and its write-back traffic explains the
residual oversubscription cost.

Run::

    python examples/stencil_oversubscription.py [--scale tiny|small]
"""

import argparse

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.tables import format_table
from repro.workloads import make_workload


def run(name: str, policy: MigrationPolicy, oversub: float, scale: str):
    cfg = SimulationConfig(seed=3).with_policy(policy)
    return Simulator(cfg).run(make_workload(name, scale),
                              oversubscription=oversub)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()

    for name in ("fdtd", "hotspot"):
        rows = []
        for ov, ov_label in ((0.8, "fits (80%)"), (1.25, "125% oversub")):
            base = run(name, MigrationPolicy.DISABLED, ov, args.scale)
            adap = run(name, MigrationPolicy.ADAPTIVE, ov, args.scale)
            rows.append([
                ov_label,
                f"{base.runtime_seconds * 1e3:.2f}",
                f"{adap.runtime_seconds * 1e3:.2f}",
                f"{adap.normalized_runtime(base) * 100:.1f}%",
                adap.events.writeback_blocks,
                adap.events.n_remote,
            ])
        print(format_table(
            ["memory budget", "baseline (ms)", "adaptive (ms)",
             "adaptive/baseline", "writeback blocks", "remote accesses"],
            rows, title=f"\n== {name}: the no-harm property =="))
        print("Dense sweeps cross any access-counter threshold within a "
              "single wave,\nso the adaptive scheme degenerates to "
              "first-touch migration -- by design.")


if __name__ == "__main__":
    main()
