#!/usr/bin/env python3
"""Graph analytics under memory oversubscription.

The scenario the paper's introduction motivates: irregular graph
workloads (BFS and worklist SSSP) whose working sets exceed device
memory.  This example sweeps oversubscription levels and compares all
four migration schemes, showing the crossover the paper describes --
below capacity every scheme behaves like first-touch migration; beyond
capacity the adaptive scheme's host-pinning of cold graph structure
wins while the static schemes trail.

Run::

    python examples/graph_analytics.py [--scale tiny|small]
"""

import argparse

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.tables import ascii_bar_chart, format_table
from repro.workloads import make_workload

POLICIES = [MigrationPolicy.DISABLED, MigrationPolicy.ALWAYS,
            MigrationPolicy.OVERSUB, MigrationPolicy.ADAPTIVE]
OVERSUB_LEVELS = [0.8, 1.0, 1.25, 1.5]


def sweep(workload_name: str, scale: str) -> None:
    """Run the policy x oversubscription grid for one workload."""
    results = {}
    for policy in POLICIES:
        for ov in OVERSUB_LEVELS:
            cfg = SimulationConfig(seed=1).with_policy(policy)
            wl = make_workload(workload_name, scale)
            results[(policy, ov)] = Simulator(cfg).run(wl,
                                                       oversubscription=ov)

    rows = []
    for policy in POLICIES:
        row = [policy.value]
        for ov in OVERSUB_LEVELS:
            r = results[(policy, ov)]
            row.append(f"{r.runtime_seconds * 1e3:.1f}")
        row.append(results[(policy, 1.5)].events.thrash_migrations)
        rows.append(row)
    headers = (["policy"]
               + [f"{int(ov * 100)}% (ms)" for ov in OVERSUB_LEVELS]
               + ["thrash@150%"])
    print(format_table(headers, rows,
                       title=f"\n== {workload_name}: runtime across the "
                             "oversubscription sweep =="))

    # Normalized view at 125%, the paper's main operating point.
    base = results[(MigrationPolicy.DISABLED, 1.25)].total_cycles
    series = {p.value: results[(p, 1.25)].total_cycles / base
              for p in POLICIES}
    print()
    print(ascii_bar_chart(
        f"{workload_name} @125% oversubscription "
        "(runtime relative to baseline)", series))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=("tiny", "small", "medium"))
    args = parser.parse_args()
    for name in ("bfs", "sssp"):
        sweep(name, args.scale)


if __name__ == "__main__":
    main()
