#!/usr/bin/env python3
"""Quickstart: simulate one workload under two migration policies.

Runs the paper's headline scenario in miniature: the RandomAccess
(GUPS) benchmark at 125% device-memory oversubscription, first under
the state-of-the-art baseline (first-touch migration, 2MB LRU), then
under the paper's adaptive dynamic-threshold scheme -- and shows where
the speedup comes from (thrash elimination).

Run::

    python examples/quickstart.py
"""

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.tables import format_table
from repro.workloads import make_workload


def simulate(policy: MigrationPolicy):
    """One simulation: ra at 125% oversubscription under ``policy``."""
    config = SimulationConfig(seed=42).with_policy(policy)
    workload = make_workload("ra", scale="small")
    return Simulator(config).run(workload, oversubscription=1.25)


def main() -> None:
    baseline = simulate(MigrationPolicy.DISABLED)
    adaptive = simulate(MigrationPolicy.ADAPTIVE)

    rows = []
    for label, r in (("baseline (first-touch)", baseline),
                     ("adaptive (Equation 1)", adaptive)):
        ev = r.events
        rows.append([
            label,
            f"{r.runtime_seconds * 1e3:.2f}",
            ev.fault_events,
            ev.migrated_blocks + ev.prefetched_blocks,
            ev.n_remote,
            ev.thrash_migrations,
        ])
    print(format_table(
        ["policy", "runtime (ms)", "far-faults", "blocks migrated",
         "remote accesses", "thrash migrations"],
        rows, title="ra (GUPS) at 125% memory oversubscription"))

    speedup = adaptive.speedup_over(baseline)
    print(f"\nAdaptive speedup over baseline: {speedup:.1f}x "
          f"({(1 - 1 / speedup) * 100:.0f}% runtime reduction)")
    print("The win comes from serving cold, thrash-prone 64KB blocks "
          "remotely (zero-copy)\ninstead of migrating them back and "
          "forth over PCIe.")


if __name__ == "__main__":
    main()
