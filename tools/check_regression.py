#!/usr/bin/env python3
"""Gate CI on the bench history: fail when perf regressed.

Reads ``BENCH_history.jsonl`` (written by ``benchmarks/bench_perf.py``)
and judges the newest report -- or an explicit ``--candidate`` file --
against the trailing-window median of comparable earlier points (same
scale, same host fingerprint).  Exit status 0 when every gated metric
is within tolerance, 1 on regression, 2 on usage errors::

    PYTHONPATH=src python tools/check_regression.py
    PYTHONPATH=src python tools/check_regression.py --candidate BENCH_driver.json
    PYTHONPATH=src python tools/check_regression.py --tolerance 0.1 --json

A history too short to form a baseline passes with ``skipped``
findings, so a fresh machine can seed its own baseline.  The gated
metric set lives in ``repro.obs.regress.GATED_METRICS``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.obs.regress import (  # noqa: E402
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    check_regression,
    load_history,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="bench history JSONL (default: "
                         "BENCH_history.jsonl at the repo root)")
    ap.add_argument("--candidate", default=None,
                    help="judge this bench report JSON instead of the "
                         "newest history entry")
    ap.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                    help=f"trailing baseline window "
                         f"(default {DEFAULT_WINDOW})")
    ap.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                    help=f"relative tolerance, e.g. 0.2 = 20%% "
                         f"(default {DEFAULT_TOLERANCE})")
    ap.add_argument("--json", action="store_true",
                    help="emit the report as JSON instead of text")
    args = ap.parse_args(argv)

    try:
        history = load_history(args.history)
    except OSError as exc:
        print(f"check_regression: cannot read history: {exc}",
              file=sys.stderr)
        return 2
    candidate = None
    if args.candidate is not None:
        try:
            with open(args.candidate, encoding="utf-8") as fh:
                candidate = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"check_regression: cannot read candidate: {exc}",
                  file=sys.stderr)
            return 2
    try:
        report = check_regression(history, candidate=candidate,
                                  window=args.window,
                                  tolerance=args.tolerance)
    except ValueError as exc:
        print(f"check_regression: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
