#!/usr/bin/env python
"""Documentation checker: every link resolves, every CLI example parses.

Run from the repository root (CI runs it as the ``docs`` job)::

    PYTHONPATH=src python tools/check_docs.py

Checks, over README.md, EXPERIMENTS.md, DESIGN.md and ``docs/*.md``:

* **Links** -- every relative markdown link target exists on disk
  (external ``http(s)``/``mailto`` links and pure anchors are skipped);
* **CLI invocations** -- every ``repro ...`` / ``python -m repro ...``
  line inside a fenced code block parses against the real
  ``repro.cli.build_parser()``, so documented flags can never drift
  from the implementation;
* **Example scripts** -- every documented ``python <path>.py`` line
  points at a file that exists;
* **YAML scenarios** -- every fenced ``yaml``/``yml`` block validates
  against the scenario schema (unknown keys, bad values, broken
  ``inherits:`` targets -- resolved against the repo's ``configs/``
  library).  Blocks containing ``# not-a-scenario`` are exempt;
* **Key reference** -- the key table in ``docs/scenarios.md`` covers
  exactly the keys in ``repro.scenario.schema.SCHEMA`` (no missing,
  no stale rows).

Exit status is the number of problems found (0 = docs are clean).
"""

from __future__ import annotations

import io
import re
import shlex
import sys
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

#: Markdown inline link: [text](target)
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced code block with optional language tag.
FENCE_RE = re.compile(r"```(\w*)[ \t]*\n(.*?)```", re.S)

DOC_FILES = ("README.md", "EXPERIMENTS.md", "DESIGN.md", "docs/README.md")


def doc_files(root: Path) -> list[Path]:
    """The markdown files under contract, existing ones only."""
    files = [root / name for name in DOC_FILES]
    files += sorted((root / "docs").glob("*.md"))
    seen: dict[Path, None] = {}
    for f in files:
        if f.exists():
            seen.setdefault(f.resolve())
    return list(seen)


def check_links(path: Path, root: Path) -> list[str]:
    """Relative link targets of ``path`` that do not exist on disk."""
    errors = []
    for target in LINK_RE.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        resolved = (path.parent / target.split("#")[0]).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(root)}: broken link -> "
                          f"{target}")
    return errors


def _cli_lines(text: str) -> list[str]:
    """``repro``/``python -m repro`` command lines from fenced blocks."""
    lines = []
    for lang, body in FENCE_RE.findall(text):
        if lang not in ("", "bash", "sh", "console", "shell"):
            continue
        for raw in body.splitlines():
            line = raw.strip()
            if line.startswith("$ "):
                line = line[2:]
            if line:
                lines.append(line)
    return lines


def _parse_command(line: str) -> list[str] | None:
    """Extract a repro argv from one shell line, or None if not one."""
    line = line.split(" #")[0].strip()
    if not line:
        return None
    try:
        tokens = shlex.split(line)
    except ValueError:
        return None
    # Strip environment-assignment prefixes (PYTHONPATH=src repro ...).
    while tokens and re.match(r"^[A-Za-z_][A-Za-z0-9_]*=", tokens[0]):
        tokens = tokens[1:]
    if not tokens:
        return None
    if tokens[0] == "repro":
        return tokens[1:]
    if (len(tokens) >= 3 and tokens[0].startswith("python")
            and tokens[1] == "-m" and tokens[2] == "repro"):
        return tokens[3:]
    return None


def check_cli_invocations(path: Path, root: Path, build_parser) -> list[str]:
    """Documented repro commands that the real parser rejects."""
    errors = []
    for line in _cli_lines(path.read_text(encoding="utf-8")):
        argv = _parse_command(line)
        if argv is None:
            continue
        parser = build_parser()
        try:
            # parse only -- never executes the command
            with redirect_stdout(io.StringIO()), \
                    redirect_stderr(io.StringIO()):
                parser.parse_args(argv)
        except SystemExit as exc:
            if exc.code not in (0, None):
                errors.append(f"{path.relative_to(root)}: documented "
                              f"command does not parse: {line!r}")
    return errors


def check_example_scripts(path: Path, root: Path) -> list[str]:
    """Documented ``python <script>.py`` lines whose script is missing."""
    errors = []
    for line in _cli_lines(path.read_text(encoding="utf-8")):
        tokens = line.split(" #")[0].split()
        if (len(tokens) >= 2 and tokens[0].startswith("python")
                and tokens[1].endswith(".py")
                and not tokens[1].startswith("-")):
            if not (root / tokens[1]).exists():
                errors.append(f"{path.relative_to(root)}: missing example "
                              f"script -> {tokens[1]}")
    return errors


#: Escape hatch for illustrative YAML that is not a scenario config.
YAML_SKIP_MARKER = "# not-a-scenario"


def check_yaml_blocks(path: Path, root: Path) -> list[str]:
    """Fenced YAML blocks of ``path`` that fail scenario validation.

    ``inherits:`` references are resolved the same way the loader
    resolves them for a file living at the repo's ``configs/`` root, so
    documentation examples may (and do) inherit from the shipped
    library.
    """
    import yaml

    from repro.scenario import check, deep_merge
    from repro.scenario.loader import _resolve, _resolve_ref

    config_root = root / "configs"
    errors = []
    rel = path.relative_to(root)
    for lang, body in FENCE_RE.findall(path.read_text(encoding="utf-8")):
        if lang not in ("yaml", "yml") or YAML_SKIP_MARKER in body:
            continue
        where = f"{rel}: yaml block starting {body.strip().splitlines()[0]!r}"
        try:
            data = yaml.safe_load(body)
        except yaml.YAMLError as exc:
            errors.append(f"{where}: does not parse: {exc}")
            continue
        if not isinstance(data, dict):
            errors.append(f"{where}: not a mapping")
            continue
        refs = data.pop("inherits", None)
        if refs is not None:
            refs = [refs] if isinstance(refs, str) else list(refs)
            merged: dict = {}
            try:
                for ref in refs:
                    base = _resolve(
                        _resolve_ref(ref, config_root, config_root),
                        config_root, ())
                    base.pop("inherits", None)
                    merged = deep_merge(merged, base)
            except Exception as exc:
                errors.append(f"{where}: inherits does not resolve: {exc}")
                continue
            data = deep_merge(merged, data)
        data.setdefault("name", "doc-example")
        for problem in check(data):
            errors.append(f"{where}: {problem}")
    return errors


#: A key cell in the reference table: | `dotted.path` | ...
KEY_ROW_RE = re.compile(r"^\|\s*`([a-z0-9_.]+)`\s*\|", re.M)


def check_key_reference(root: Path) -> list[str]:
    """The scenarios.md key table vs. the live schema, both directions."""
    from repro.scenario import SCHEMA

    doc = root / "docs" / "scenarios.md"
    if not doc.exists():
        return ["docs/scenarios.md: missing (key reference lives there)"]
    text = doc.read_text(encoding="utf-8")
    match = re.search(r"^## Key reference$(.*?)(?=^## |\Z)", text,
                      re.M | re.S)
    if match is None:
        return ["docs/scenarios.md: no '## Key reference' section"]
    documented = set(KEY_ROW_RE.findall(match.group(1)))
    schema = set(SCHEMA)
    errors = []
    for key in sorted(schema - documented):
        errors.append(f"docs/scenarios.md: schema key `{key}` missing "
                      f"from the key reference table")
    for key in sorted(documented - schema):
        errors.append(f"docs/scenarios.md: key reference row `{key}` "
                      f"is not in the schema")
    return errors


def run_checks(root: Path) -> list[str]:
    """All problems across the documentation set."""
    sys.path.insert(0, str(root / "src"))
    from repro.cli import build_parser
    errors: list[str] = []
    for path in doc_files(root):
        errors += check_links(path, root)
        errors += check_cli_invocations(path, root, build_parser)
        errors += check_example_scripts(path, root)
        errors += check_yaml_blocks(path, root)
    errors += check_key_reference(root)
    return errors


def main(argv=None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parents[1]
    errors = run_checks(root)
    for err in errors:
        print(f"check_docs: {err}", file=sys.stderr)
    n = len(doc_files(root))
    if not errors:
        print(f"check_docs: {n} documents clean")
    return len(errors)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
