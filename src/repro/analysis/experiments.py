"""Experiment runners: one per table/figure of the paper's evaluation.

Every public function regenerates the data behind one figure of
Ganguly et al. (IPDPS 2020) on the simulator and returns a
:class:`SeriesResult` carrying measured values, the paper's published
values, and a renderer for side-by-side comparison.  The benchmark
harness under ``benchmarks/`` is a thin wrapper over these functions.

The paper's methodology is followed throughout: working sets are never
scaled; instead the device capacity is derived from the workload
footprint and the oversubscription percentage.  "No oversubscription"
runs leave headroom (capacity = footprint / NO_OVERSUB, with
NO_OVERSUB < 1) so allocations fit with slack, as on a real device.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..config import (EvictionGranularity, MigrationPolicy, PrefetcherKind,
                      SimulationConfig)
from ..sim.results import RunResult
from ..sim.simulator import Simulator
from ..trace.replay import TraceWorkload
from ..workloads import make_workload
from . import paper_data
from .parallel import GridCell, GridOptions, run_grid
from .tables import comparison_table, format_table

#: Capacity factor used for "no oversubscription" runs (20% headroom).
NO_OVERSUB: float = 0.8

#: The oversubscription level of the paper's main evaluation.
OVERSUB_125: float = 1.25


@dataclass
class SeriesResult:
    """Measured data of one figure: ``{series_label: {workload: value}}``."""

    figure: str
    description: str
    #: Normalized measured values per series per workload.
    measured: dict[str, dict[str, float]]
    #: The paper's published values in the same layout (may be sparse).
    paper: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Raw run results for deeper inspection, keyed (series, workload).
    runs: dict[tuple[str, str], RunResult] = field(default_factory=dict,
                                                   repr=False)

    def render(self) -> str:
        """Side-by-side paper-vs-measured tables, one per series."""
        blocks = [f"== {self.figure}: {self.description} =="]
        for label, series in self.measured.items():
            blocks.append(comparison_table(
                f"-- series: {label}", series.keys(), series,
                self.paper.get(label)))
        return "\n\n".join(blocks)

    def to_rows(self) -> list[dict]:
        """Flat records: one per (series, workload) with paper reference."""
        rows = []
        for label, series in self.measured.items():
            for w, v in series.items():
                rows.append({
                    "figure": self.figure,
                    "series": label,
                    "workload": w,
                    "measured": v,
                    "paper": self.paper.get(label, {}).get(w),
                })
        return rows

    def to_csv(self) -> str:
        """CSV export (plotting-tool friendly)."""
        lines = ["figure,series,workload,measured,paper"]
        for r in self.to_rows():
            paper = "" if r["paper"] is None else f"{r['paper']:.6g}"
            lines.append(f"{r['figure']},{r['series']},{r['workload']},"
                         f"{r['measured']:.6g},{paper}")
        return "\n".join(lines) + "\n"

    def render_chart(self, width: int = 40) -> str:
        """Grouped ASCII bar chart, one group per workload (figure-like)."""
        labels = list(self.measured)
        workloads = list(next(iter(self.measured.values())))
        peak = max(max(s.values()) for s in self.measured.values()) or 1.0
        lines = [f"== {self.figure} (bars normalized to the series "
                 "baseline) =="]
        for w in workloads:
            lines.append(w)
            for label in labels:
                v = self.measured[label][w]
                bar = "#" * max(1, int(round(width * v / peak)))
                paper_v = self.paper.get(label, {}).get(w)
                suffix = (f"  (paper {paper_v:.2f})"
                          if paper_v is not None else "")
                lines.append(f"  {label:>10s} | {bar} {v:.2f}{suffix}")
        return "\n".join(lines)


def run_single(workload: str, policy: MigrationPolicy,
               oversubscription: float, scale: str = "small",
               ts: int = 8, p: int = 8, seed: int = 0,
               collect_histogram: bool = False,
               collect_trace: bool = False,
               transfer_fault_rate: float = 0.0,
               migration_fault_rate: float = 0.0,
               fault_retries: int = 3,
               fault_burst_on: float = 0.0,
               fault_burst_off: float = 0.25,
               fault_burst_mult: float = 8.0,
               evict: str = "2mb",
               prefetcher: str = "tree",
               prefetch_degree: int = 4,
               threshold_variant: str = "multiplicative",
               historic_counters: bool = True,
               trace_path: str | None = None,
               backend: str | None = None,
               shards: int | None = None) -> RunResult:
    """Run one (workload, policy, oversubscription) cell.

    ``trace_path`` replays a recorded trace of the same
    ``(workload, scale, seed)`` stream instead of regenerating it --
    bit-identical results, but the (often dominant) wave-generation cost
    is paid once at record time instead of per cell.

    ``backend`` / ``shards`` select the hot-loop kernel backend and the
    decision-phase shard count (:mod:`repro.accel`); ``None`` inherits
    the config default (which honours ``REPRO_BACKEND``).  Both are
    pure performance knobs with bit-identical results.

    The remaining knobs cover the rest of the Table I surface --
    eviction granularity, prefetcher strategy, threshold growth
    function, historic-counter ablation, and correlated fault storms --
    so the scenario compiler (:mod:`repro.scenario`) can express every
    regime as a grid cell.  Each one mutates the config only when it
    differs from its dataclass default, keeping the constructed config
    (and thus every result) bit-identical to the narrower historical
    signature for unchanged arguments.
    """
    cfg = SimulationConfig(seed=seed,
                           collect_page_histogram=collect_histogram,
                           collect_access_trace=collect_trace)
    if backend is not None:
        cfg = cfg.replace(backend=backend)
    if shards is not None:
        cfg = cfg.replace(shards=shards)
    cfg = cfg.with_policy(policy, static_threshold=ts, migration_penalty=p)
    if threshold_variant != "multiplicative" or not historic_counters:
        cfg = cfg.replace(policy=dataclasses.replace(
            cfg.policy, threshold_variant=threshold_variant,
            historic_counters=historic_counters))
    if evict != "2mb":
        cfg = cfg.with_eviction_granularity(
            EvictionGranularity.BLOCK_64KB if evict == "64kb"
            else EvictionGranularity(evict))
    if prefetcher != "tree" or prefetch_degree != 4:
        cfg = cfg.with_prefetcher(PrefetcherKind(prefetcher),
                                  degree=prefetch_degree)
    if transfer_fault_rate or migration_fault_rate:
        fault_kwargs = dict(transfer_fault_rate=transfer_fault_rate,
                            migration_fault_rate=migration_fault_rate,
                            max_retries=fault_retries)
        if fault_burst_on:
            fault_kwargs.update(burst_on_prob=fault_burst_on,
                                burst_off_prob=fault_burst_off,
                                burst_multiplier=fault_burst_mult)
        cfg = cfg.with_faults(**fault_kwargs)
    if trace_path is not None:
        wl: "object" = TraceWorkload(trace_path)
    else:
        wl = make_workload(workload, scale)
    return Simulator(cfg).run(wl, oversubscription=oversubscription)


def _workloads(subset=None) -> tuple[str, ...]:
    return tuple(subset) if subset else paper_data.WORKLOAD_ORDER


def _run_labelled(specs, jobs: int,
                  grid: GridOptions | None = None
                  ) -> dict[tuple[str, str], RunResult]:
    """Run ``[(label, workload, cell), ...]`` and key results by label.

    The figure runners below all share this shape: build the full cell
    list up front, fan it out (``jobs`` worker processes; 1 = serial,
    0 = all cores), then look results up by (series label, workload).
    ``grid`` configures retry/checkpoint resilience (see
    :class:`~repro.analysis.parallel.GridOptions`).
    """
    results = run_grid([cell for _, _, cell in specs], max_workers=jobs,
                       options=grid)
    return {(label, w): r for (label, w, _), r in zip(specs, results)}


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------

def table1() -> str:
    """Render the simulated-system configuration (Table I)."""
    cfg = SimulationConfig()
    rows = [
        ["Simulator", "repro UVM model (trace-driven)"],
        ["GPU Architecture", "GeForceGTX 1080Ti, Pascal-like"],
        ["GPU Cores", f"{cfg.gpu.num_sms} SMs, {cfg.gpu.cores_per_sm} cores "
                      f"each @ {cfg.gpu.clock_mhz:.0f} MHz"],
        ["Shader Core Config",
         f"Max {cfg.gpu.max_ctas_per_sm} CTA / {cfg.gpu.max_warps_per_sm} "
         f"warps per SM, {cfg.gpu.warp_size} threads/warp"],
        ["Page Size", f"{cfg.memory.page_size // 1024}KB"],
        ["Page Table Walk Latency",
         f"{cfg.gpu.page_walk_latency_cycles} core cycles"],
        ["CPU-GPU Interconnect",
         f"PCIe 3.0 16x, {cfg.interconnect.bandwidth / 1e9:.0f} GB/s, "
         f"{cfg.interconnect.latency_cycles} cycle latency"],
        ["DRAM Latency", f"{cfg.gpu.dram_latency_cycles} GPU core cycles"],
        ["Remote Zero-copy Access Latency",
         f"{cfg.interconnect.remote_access_latency_cycles} GPU core cycles"],
        ["Eviction Granularity",
         f"{cfg.memory.eviction_granularity.value // 1024}KB"],
        ["Page Replacement Policy", cfg.memory.replacement.value.upper()],
        ["Far-fault Handling Latency",
         f"{cfg.interconnect.fault_handling_us:.0f}us"],
        ["Hardware Prefetcher", "Tree-based"],
        ["Static Access Counter Threshold", str(cfg.policy.static_threshold)],
        ["Multiplicative Migration Penalty",
         str(cfg.policy.migration_penalty)],
    ]
    return format_table(["Parameter", "Value"], rows,
                        title="Table I: simulated system configuration")


# ---------------------------------------------------------------------------
# Figure 1 -- oversubscription sensitivity (Baseline policy)
# ---------------------------------------------------------------------------

def figure1(scale: str = "small", subset=None, seed: int = 0,
            jobs: int = 1, grid: GridOptions | None = None) -> SeriesResult:
    """Runtime at none/125%/150% oversubscription, Baseline policy."""
    workloads = _workloads(subset)
    specs = [(label, w,
              GridCell(w, MigrationPolicy.DISABLED, ov, scale, seed=seed))
             for w in workloads
             for label, ov in (("no oversub", NO_OVERSUB),
                               ("125% oversub", 1.25),
                               ("150% oversub", 1.50))]
    runs = _run_labelled(specs, jobs, grid)
    measured = {"125% oversub": {}, "150% oversub": {}}
    for w in workloads:
        base = runs[("no oversub", w)]
        for label in measured:
            measured[label][w] = runs[(label, w)].normalized_runtime(base)
    paper = {
        "125% oversub": {w: paper_data.FIGURE1[w][1.25] for w in workloads},
        "150% oversub": {w: paper_data.FIGURE1[w][1.50] for w in workloads},
    }
    return SeriesResult(
        "Figure 1", "runtime vs. memory oversubscription (baseline policy, "
        "normalized to no oversubscription)", measured, paper, runs)


# ---------------------------------------------------------------------------
# Figure 2 -- per-page access distribution (fdtd, sssp)
# ---------------------------------------------------------------------------

def figure2(scale: str = "small", seed: int = 0, jobs: int = 1,
            grid: GridOptions | None = None) -> dict[str, list[dict]]:
    """Per-allocation access histograms for fdtd and sssp.

    Returns, per workload, the allocation summary rows (name, pages,
    read/write totals, accesses per page) that characterize the flat
    profile of fdtd vs. the hot/cold split of sssp.
    """
    workloads = ("fdtd", "sssp")
    results = run_grid(
        [GridCell(w, MigrationPolicy.DISABLED, NO_OVERSUB, scale,
                  seed=seed, collect_histogram=True) for w in workloads],
        max_workers=jobs, options=grid)
    return {w: r.stats.allocation_summary()
            for w, r in zip(workloads, results)}


def render_figure2(data: dict[str, list[dict]]) -> str:
    """Text rendering of the Figure 2 histogram summaries."""
    blocks = ["== Figure 2: page access distribution per allocation =="]
    for w, rows in data.items():
        table_rows = [[r["name"], r["pages"], r["reads"], r["writes"],
                       round(r["accesses_per_page"], 1),
                       "RO" if r["read_only"] else "RW"] for r in rows]
        blocks.append(format_table(
            ["allocation", "pages", "reads", "writes", "acc/page", "type"],
            table_rows, title=f"-- {w}"))
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Figure 3 -- access pattern over time (fdtd iters 2/4, sssp iters 3/5)
# ---------------------------------------------------------------------------

def figure3(scale: str = "small", seed: int = 0, jobs: int = 1,
            grid: GridOptions | None = None) -> dict[str, list]:
    """Sampled (cycle, page) traces for selected iterations.

    Returns trace records for fdtd iterations 2 and 4 and sssp rounds
    3 and 5 -- the iterations the paper plots.
    """
    wanted = {"fdtd": (2, 4), "sssp": (3, 5)}
    results = run_grid(
        [GridCell(w, MigrationPolicy.DISABLED, NO_OVERSUB, scale,
                  seed=seed, collect_trace=True) for w in wanted],
        max_workers=jobs, options=grid)
    return {w: [rec for rec in r.stats.trace if rec.iteration in iters]
            for (w, iters), r in zip(wanted.items(), results)}


def render_figure3(data: dict[str, list]) -> str:
    """Summarize trace shape: page span and wave count per iteration."""
    rows = []
    for w, records in data.items():
        by_iter: dict[tuple[str, int], list] = {}
        for rec in records:
            by_iter.setdefault((rec.kernel, rec.iteration), []).append(rec)
        for (kernel, it), recs in sorted(by_iter.items()):
            import numpy as np
            pages = np.concatenate([r.pages for r in recs])
            rows.append([w, kernel, it, len(recs), int(pages.min()),
                         int(pages.max()), int(np.unique(pages).size)])
    return format_table(
        ["workload", "kernel", "iter", "waves", "min page", "max page",
         "unique pages (sampled)"],
        rows, title="== Figure 3: access pattern over iterations ==")


# ---------------------------------------------------------------------------
# Figure 4 -- sensitivity to the static threshold ts
# ---------------------------------------------------------------------------

def figure4(scale: str = "small", subset=None, seed: int = 0,
            jobs: int = 1, grid: GridOptions | None = None) -> SeriesResult:
    """Always scheme at 125% oversubscription, ts in {8, 16, 32}."""
    workloads = _workloads(subset)
    specs = [(f"ts={ts}", w,
              GridCell(w, MigrationPolicy.ALWAYS, OVERSUB_125, scale,
                       ts=ts, seed=seed))
             for w in workloads for ts in (8, 16, 32)]
    runs = _run_labelled(specs, jobs, grid)
    measured = {"ts=16": {}, "ts=32": {}}
    for w in workloads:
        base = runs[("ts=8", w)]
        for label in measured:
            measured[label][w] = runs[(label, w)].normalized_runtime(base)
    paper = {
        "ts=16": {w: paper_data.FIGURE4[w][16] for w in workloads},
        "ts=32": {w: paper_data.FIGURE4[w][32] for w in workloads},
    }
    return SeriesResult(
        "Figure 4", "sensitivity to static access counter threshold "
        "(Always, 125% oversubscription, normalized to ts=8)",
        measured, paper, runs)


# ---------------------------------------------------------------------------
# Figure 5 -- no oversubscription
# ---------------------------------------------------------------------------

def figure5(scale: str = "small", subset=None, seed: int = 0,
            jobs: int = 1, grid: GridOptions | None = None) -> SeriesResult:
    """Baseline vs Always vs Adaptive with working sets that fit."""
    workloads = _workloads(subset)
    specs = [(label, w, GridCell(w, pol, NO_OVERSUB, scale, seed=seed))
             for w in workloads
             for pol, label in ((MigrationPolicy.DISABLED, "baseline"),
                                (MigrationPolicy.ALWAYS, "always"),
                                (MigrationPolicy.ADAPTIVE, "adaptive"))]
    runs = _run_labelled(specs, jobs, grid)
    measured = {"always": {}, "adaptive": {}}
    for w in workloads:
        base = runs[("baseline", w)]
        for label in measured:
            measured[label][w] = runs[(label, w)].normalized_runtime(base)
    paper = {"always": dict(paper_data.FIGURE5_ALWAYS)}
    return SeriesResult(
        "Figure 5", "no oversubscription (normalized to baseline; the "
        "paper labels the Always bars, Adaptive tracks baseline)",
        measured, paper, runs)


# ---------------------------------------------------------------------------
# Figures 6 and 7 -- the headline oversubscription comparison
# ---------------------------------------------------------------------------

def figure6_7(scale: str = "small", subset=None, seed: int = 0,
              jobs: int = 1, grid: GridOptions | None = None
              ) -> tuple[SeriesResult, SeriesResult]:
    """All four schemes at 125% oversubscription (ts=8, p=8).

    Returns (Figure 6: normalized runtime, Figure 7: normalized thrash);
    the two figures share the same runs.
    """
    workloads = _workloads(subset)
    specs = [(label, w, GridCell(w, pol, OVERSUB_125, scale, seed=seed))
             for w in workloads
             for pol, label in ((MigrationPolicy.DISABLED, "baseline"),
                                (MigrationPolicy.ALWAYS, "always"),
                                (MigrationPolicy.OVERSUB, "oversub"),
                                (MigrationPolicy.ADAPTIVE, "adaptive"))]
    runs = _run_labelled(specs, jobs, grid)
    runtime = {"always": {}, "oversub": {}, "adaptive": {}}
    thrash = {"always": {}, "oversub": {}, "adaptive": {}}
    for w in workloads:
        base = runs[("baseline", w)]
        for label in runtime:
            r = runs[(label, w)]
            runtime[label][w] = r.normalized_runtime(base)
            thrash[label][w] = (r.pages_thrashed / base.pages_thrashed
                                if base.pages_thrashed else 0.0)
    fig6 = SeriesResult(
        "Figure 6", "runtime at 125% oversubscription "
        "(normalized to baseline; ts=8, p=8)",
        runtime, {k: dict(v) for k, v in paper_data.FIGURE6.items()}, runs)
    fig7 = SeriesResult(
        "Figure 7", "pages thrashed at 125% oversubscription "
        "(normalized to baseline)",
        thrash, {k: dict(v) for k, v in paper_data.FIGURE7.items()}, runs)
    return fig6, fig7


# ---------------------------------------------------------------------------
# Figure 8 -- sensitivity to the multiplicative penalty p
# ---------------------------------------------------------------------------

def figure8(scale: str = "small", subset=None, seed: int = 0,
            penalties=(2, 4, 8, 1 << 20), jobs: int = 1,
            grid: GridOptions | None = None) -> SeriesResult:
    """Adaptive scheme at 125% oversubscription, varying p."""
    workloads = _workloads(subset)
    specs = [("baseline", w,
              GridCell(w, MigrationPolicy.DISABLED, OVERSUB_125, scale,
                       seed=seed))
             for w in workloads]
    specs += [(f"p={p}", w,
               GridCell(w, MigrationPolicy.ADAPTIVE, OVERSUB_125, scale,
                        p=p, seed=seed))
              for w in workloads for p in penalties]
    runs = _run_labelled(specs, jobs, grid)
    measured = {f"p={p}": {} for p in penalties}
    for w in workloads:
        base = runs[("baseline", w)]
        for label in measured:
            measured[label][w] = runs[(label, w)].normalized_runtime(base)
    paper = {f"p={p}": {w: paper_data.FIGURE8[p][w] for w in workloads}
             for p in penalties if p in paper_data.FIGURE8}
    return SeriesResult(
        "Figure 8", "sensitivity to multiplicative migration penalty "
        "(Adaptive, 125% oversubscription, normalized to baseline)",
        measured, paper, runs)
