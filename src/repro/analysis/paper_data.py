"""The paper's published data points, for side-by-side comparison.

Values are transcribed from the bar labels of Figures 1 and 4--8 of
Ganguly et al., IPDPS 2020.  Runtime figures are normalized runtimes
(fraction of the respective baseline); Figure 7 is normalized thrash
counts.  The workload order everywhere is the paper's: the regular suite
(backprop, fdtd, hotspot, srad) then the irregular suite (bfs, nw, ra,
sssp).
"""

from __future__ import annotations

WORKLOAD_ORDER: tuple[str, ...] = (
    "backprop", "fdtd", "hotspot", "srad", "bfs", "nw", "ra", "sssp")

#: Figure 1 -- runtime under oversubscription, Baseline policy,
#: normalized to the no-oversubscription run of the same workload.
FIGURE1: dict[str, dict[float, float]] = {
    "backprop": {1.25: 1.02, 1.50: 1.32},
    "fdtd":     {1.25: 1.67, 1.50: 1.89},
    "hotspot":  {1.25: 1.46, 1.50: 1.55},
    "srad":     {1.25: 2.00, 1.50: 2.11},
    "bfs":      {1.25: 4.46, 1.50: 15.36},
    "nw":       {1.25: 1.59, 1.50: 9.84},
    "ra":       {1.25: 15.22, 1.50: 20.83},
    "sssp":     {1.25: 1.11, 1.50: 1.48},
}

#: Figure 4 -- sensitivity to the static threshold ts (Always scheme,
#: 125% oversubscription), normalized to ts=8.
FIGURE4: dict[str, dict[int, float]] = {
    "backprop": {16: 0.9973, 32: 1.0200},
    "fdtd":     {16: 1.0313, 32: 1.0349},
    "hotspot":  {16: 1.0020, 32: 1.0064},
    "srad":     {16: 1.0046, 32: 1.0105},
    "bfs":      {16: 0.9230, 32: 0.9570},
    "nw":       {16: 1.0042, 32: 1.0225},
    "ra":       {16: 0.9294, 32: 0.9855},
    "sssp":     {16: 1.1002, 32: 1.0692},
}

#: Figure 5 -- no oversubscription, normalized to Baseline.  The paper
#: labels the Always bars; Adaptive tracks the baseline within noise.
FIGURE5_ALWAYS: dict[str, float] = {
    "backprop": 0.9895, "fdtd": 0.9913, "hotspot": 1.0008, "srad": 1.0001,
    "bfs": 0.9429, "nw": 1.0172, "ra": 0.7687, "sssp": 1.1099,
}

#: Figure 6 -- 125% oversubscription, runtime normalized to Baseline.
FIGURE6: dict[str, dict[str, float]] = {
    "always": {
        "backprop": 0.9962, "fdtd": 1.0068, "hotspot": 0.9204,
        "srad": 1.0004, "bfs": 0.8015, "nw": 1.0050, "ra": 0.2437,
        "sssp": 0.7462,
    },
    "oversub": {
        "backprop": 1.0002, "fdtd": 1.0052, "hotspot": 0.9946,
        "srad": 1.0000, "bfs": 0.9064, "nw": 0.9868, "ra": 1.0000,
        "sssp": 0.7612,
    },
    "adaptive": {
        "backprop": 1.0050, "fdtd": 1.0077, "hotspot": 1.0022,
        "srad": 1.0001, "bfs": 0.7821, "nw": 0.6718, "ra": 0.2177,
        "sssp": 0.4021,
    },
}

#: Figure 7 -- 125% oversubscription, pages thrashed normalized to
#: Baseline (backprop thrashes nothing under any scheme).
FIGURE7: dict[str, dict[str, float]] = {
    "always": {
        "backprop": 0.0, "fdtd": 1.0000, "hotspot": 0.9333, "srad": 1.0000,
        "bfs": 0.6917, "nw": 0.9753, "ra": 0.1667, "sssp": 0.6429,
    },
    "oversub": {
        "backprop": 0.0, "fdtd": 1.0000, "hotspot": 1.0167, "srad": 1.0000,
        "bfs": 0.8150, "nw": 0.9753, "ra": 1.0000, "sssp": 0.6786,
    },
    "adaptive": {
        "backprop": 0.0, "fdtd": 0.9991, "hotspot": 1.0000, "srad": 1.0000,
        "bfs": 0.6301, "nw": 0.7132, "ra": 0.1014, "sssp": 0.2143,
    },
}

#: Figure 8 -- sensitivity to the multiplicative penalty p (Adaptive,
#: 125% oversubscription), normalized to Baseline.
FIGURE8: dict[int, dict[str, float]] = {
    2: {
        "backprop": 1.0008, "fdtd": 1.0027, "hotspot": 0.9998,
        "srad": 1.0001, "bfs": 0.8360, "nw": 0.9229, "ra": 0.2903,
        "sssp": 0.6446,
    },
    4: {
        "backprop": 1.0022, "fdtd": 0.9994, "hotspot": 1.0237,
        "srad": 1.0001, "bfs": 0.7872, "nw": 0.8419, "ra": 0.1951,
        "sssp": 0.5135,
    },
    8: {
        "backprop": 1.0050, "fdtd": 1.0077, "hotspot": 1.0022,
        "srad": 1.0001, "bfs": 0.7821, "nw": 0.6718, "ra": 0.2177,
        "sssp": 0.4021,
    },
    1048576: {
        "backprop": 1.7407, "fdtd": 0.9073, "hotspot": 1.3965,
        "srad": 2.3838, "bfs": 1.0020, "nw": 0.0604, "ra": 0.1355,
        "sssp": 0.2855,
    },
}

#: Headline claim (abstract / Section VI-C): Adaptive improves irregular
#: applications by 22% to 78% at 125% oversubscription.
HEADLINE_IMPROVEMENT_RANGE: tuple[float, float] = (0.22, 0.78)
