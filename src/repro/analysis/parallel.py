"""Parallel experiment grid runner.

Every figure and sweep replays a (workload x policy x oversubscription)
grid whose cells are completely independent simulations: each one
constructs its own :class:`~repro.config.SimulationConfig`, its own
workload generator, and its own driver state.  This module fans those
cells out across a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism is preserved by construction:

* every :class:`GridCell` carries its own seed (the per-cell RNG is
  derived from it inside the worker, never from shared process state),
  so a cell's :class:`~repro.sim.results.RunResult` is a pure function
  of the cell spec;
* :func:`run_grid` returns results in cell order regardless of which
  worker finished first.

Consequently ``run_grid(cells, max_workers=N)`` is bit-identical to the
serial ``[run_cell(c) for c in cells]`` for any ``N``.  When worker
processes cannot be spawned at all (restricted sandboxes, missing
semaphores, interpreters without ``fork``/``spawn``), the runner
degrades to the serial path instead of failing.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..config import MigrationPolicy
from ..sim.results import RunResult


@dataclass(frozen=True)
class GridCell:
    """One independent experiment: a ``run_single`` argument bundle."""

    workload: str
    policy: MigrationPolicy
    oversubscription: float
    scale: str = "small"
    ts: int = 8
    p: int = 8
    seed: int = 0
    collect_histogram: bool = False
    collect_trace: bool = False


def run_cell(cell: GridCell) -> RunResult:
    """Run one grid cell (the worker entry point; must stay picklable)."""
    # Imported here so a forked/spawned worker pays the import once and
    # the module import graph stays cycle-free (experiments imports us).
    from .experiments import run_single
    return run_single(cell.workload, cell.policy, cell.oversubscription,
                      cell.scale, ts=cell.ts, p=cell.p, seed=cell.seed,
                      collect_histogram=cell.collect_histogram,
                      collect_trace=cell.collect_trace)


def default_jobs() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (= all cores)."""
    return os.cpu_count() or 1


def run_grid(cells, max_workers: int | None = None) -> list[RunResult]:
    """Run every cell, in parallel when workers are available.

    ``max_workers`` of ``None`` or ``1`` runs serially in-process (no
    executor, no pickling); ``0`` means one worker per CPU.  Results
    come back in the order of ``cells``.
    """
    cells = list(cells)
    if max_workers == 0:
        max_workers = default_jobs()
    if max_workers is None or max_workers <= 1 or len(cells) <= 1:
        return [run_cell(c) for c in cells]
    try:
        with ProcessPoolExecutor(
                max_workers=min(max_workers, len(cells))) as pool:
            return list(pool.map(run_cell, cells))
    except (OSError, PermissionError, NotImplementedError):
        # Process pools need working fork/spawn plus POSIX semaphores;
        # restricted environments (CI sandboxes, seccomp jails) may
        # offer neither.  The grid is still correct serially.
        return [run_cell(c) for c in cells]
