"""Fault-tolerant parallel experiment grid runner.

Every figure and sweep replays a (workload x policy x oversubscription)
grid whose cells are completely independent simulations: each one
constructs its own :class:`~repro.config.SimulationConfig`, its own
workload generator, and its own driver state.  This module fans those
cells out across a :class:`~concurrent.futures.ProcessPoolExecutor`
and keeps the sweep alive through the failures a long grid actually
meets in practice:

* a **crashed worker** (OOM-kill, segfaulting interpreter) breaks the
  whole pool in ``concurrent.futures``; the runner rebuilds the pool
  and re-submits only the cells whose results were lost;
* a **flaky cell** (transient resource exhaustion) is retried with
  exponential backoff up to :attr:`GridOptions.retries` times before
  the sweep gives up with :class:`GridExecutionError`;
* a **hung pool** (no cell completing for
  :attr:`GridOptions.cell_timeout` seconds) is terminated and rebuilt;
* an environment with **no working process pools at all** (restricted
  sandboxes, missing semaphores) degrades to the serial path;
* a **killed sweep** resumes from its JSONL checkpoint journal
  (:mod:`repro.analysis.checkpoint`): completed cells are replayed
  bit-identical instead of re-simulated.

Determinism is preserved by construction:

* every :class:`GridCell` carries its own seed (the per-cell RNG is
  derived from it inside the worker, never from shared process state),
  so a cell's :class:`~repro.sim.results.RunResult` is a pure function
  of the cell spec;
* :func:`run_grid` returns results in cell order regardless of which
  worker finished first, how often the pool was rebuilt, or how many
  cells came from a checkpoint.

Consequently ``run_grid(cells, max_workers=N)`` is bit-identical to the
serial ``[run_cell(c) for c in cells]`` for any ``N``, with or without
interruptions.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..config import MigrationPolicy
from ..sim.results import RunResult

#: Broken-pool incarnations tolerated before degrading to serial.
_MAX_POOL_REBUILDS = 2

#: Upper bound on any single backoff sleep, seconds.
_MAX_BACKOFF_S = 10.0


@dataclass(frozen=True)
class GridCell:
    """One independent experiment: a ``run_single`` argument bundle."""

    workload: str
    policy: MigrationPolicy
    oversubscription: float
    scale: str = "small"
    ts: int = 8
    p: int = 8
    seed: int = 0
    collect_histogram: bool = False
    collect_trace: bool = False
    #: Injected transient-fault rates (see :mod:`repro.uvm.faults`).
    transfer_fault_rate: float = 0.0
    migration_fault_rate: float = 0.0
    fault_retries: int = 3
    #: Correlated fault-storm chain (Markov burst modulation of the
    #: fault rates); 0.0 ``fault_burst_on`` disables the chain.
    fault_burst_on: float = 0.0
    fault_burst_off: float = 0.25
    fault_burst_mult: float = 8.0
    #: Eviction granularity (``2mb`` or ``64kb``, Table I).
    evict: str = "2mb"
    #: Prefetcher strategy and degree (Table I: tree-based default).
    prefetcher: str = "tree"
    prefetch_degree: int = 4
    #: Equation-1 growth function and the historic-counter ablation
    #: (see :class:`repro.config.PolicyConfig`).
    threshold_variant: str = "multiplicative"
    historic_counters: bool = True
    #: Replay the access stream from this recorded trace (an ``.npz``
    #: file or mmap-able trace directory) instead of regenerating it.
    #: A pure performance hint: replay is bit-identical to live
    #: generation, so it is excluded from the cell's checkpoint
    #: identity.  Usually filled in by :func:`run_grid` from
    #: :attr:`GridOptions.trace_cache`.
    trace_path: str | None = None
    #: Hot-loop kernel backend / decision-phase shard count for the
    #: cell's config (:mod:`repro.accel`).  ``None`` inherits the config
    #: default (which honours ``REPRO_BACKEND``).  Like ``trace_path``,
    #: pure performance hints with bit-identical results, excluded from
    #: the cell's checkpoint identity.
    backend: str | None = None
    shards: int | None = None


@dataclass(frozen=True)
class GridOptions:
    """Resilience knobs for :func:`run_grid`."""

    #: Extra attempts per cell after its first failure.
    retries: int = 2
    #: Backoff before the first re-attempt, seconds (doubles per retry).
    retry_backoff_s: float = 0.25
    #: Declare the pool hung when no cell completes for this many
    #: seconds; its workers are terminated and the pool rebuilt.
    cell_timeout: float | None = None
    #: JSONL journal path; completed cells are appended as they finish.
    checkpoint: str | None = None
    #: Serve previously journaled cells from the checkpoint instead of
    #: re-simulating them.
    resume: bool = False
    #: Optional :class:`repro.obs.MetricsRegistry`: the runner records
    #: per-cell wall time (``grid.cell_ms`` histogram) and
    #: completion/retry/rebuild counters into it.  Never pickled to
    #: workers; purely an orchestrator-side rollup.
    metrics: object | None = None
    #: Optional :class:`repro.obs.store.RunStore`: every completed cell
    #: is archived as a ``grid-cell`` run under a shared sweep id, so
    #: whole figures/sweeps become ``repro diff``-able families.  Like
    #: ``metrics``, orchestrator-side only (never pickled to workers).
    archive: object | None = None
    #: Sweep id grouping this grid's archived cells; ``None`` derives a
    #: content-addressed id from the cell set.
    sweep_id: str | None = None
    #: Directory of a shared :class:`repro.trace.TraceCache`.  When set,
    #: the runner records each distinct ``(workload, scale, seed)``
    #: access stream once (in the orchestrator, before fan-out) and
    #: annotates every cell with the trace's path, so grid cells at
    #: different oversubscription levels replay the memory-mapped
    #: stream instead of regenerating waves.  Results are bit-identical
    #: to cache-off runs.
    trace_cache: str | None = None
    #: Kernel backend / shard count stamped onto every cell that does
    #: not already carry an explicit one (``None`` = leave cells alone,
    #: inheriting the config default and ``REPRO_BACKEND``).
    backend: str | None = None
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive (or None)")
        if self.resume and not self.checkpoint:
            raise ValueError("resume requires a checkpoint path")


class _GridMetrics:
    """Orchestrator-side rollup of one :func:`run_grid` invocation.

    Thin adapter over a :class:`repro.obs.MetricsRegistry` so the hot
    harvest loops touch pre-resolved metric objects instead of doing
    name lookups per cell.
    """

    def __init__(self, registry) -> None:
        #: Per-cell wall time in milliseconds.  Serial cells measure the
        #: simulation exactly; parallel cells measure submit-to-harvest
        #: (queueing included), which is what sweep latency feels like.
        self.cell_ms = registry.histogram("grid.cell_ms")
        self.completed = registry.counter("grid.cells_completed")
        self.retried = registry.counter("grid.cell_retries")
        self.stalled = registry.counter("grid.cells_stalled")
        self.rebuilds = registry.counter("grid.pool_rebuilds")
        self.from_checkpoint = registry.counter("grid.cells_from_checkpoint")

    @staticmethod
    def of(opts: "GridOptions") -> "_GridMetrics | None":
        return _GridMetrics(opts.metrics) if opts.metrics is not None else None


class _Archiver:
    """Archives each completed cell into a run store, orchestrator-side.

    Provenance (git SHA, host fingerprint) is resolved once per grid,
    not once per cell; the sweep id defaults to a content-addressed
    hash of the whole cell set, so re-running the same grid lands in
    the same archive slots.
    """

    def __init__(self, store, cells, sweep_id: str | None) -> None:
        from ..obs.store import derive_sweep_id, git_info, host_info
        self.store = store
        self.sweep_id = sweep_id or derive_sweep_id(cells)
        self._git = git_info()
        self._host = host_info()

    @staticmethod
    def of(opts: "GridOptions", cells) -> "_Archiver | None":
        return (_Archiver(opts.archive, cells, opts.sweep_id)
                if opts.archive is not None else None)

    def archive(self, cell: GridCell, result: RunResult) -> str:
        from .checkpoint import _encode
        from ..obs.store import RunManifest
        manifest = RunManifest.create(
            kind="grid-cell", workload=cell.workload,
            policy=cell.policy.value, scale=cell.scale, seed=cell.seed,
            oversubscription=cell.oversubscription, config=_encode(cell),
            git=self._git, host=self._host, sweep_id=self.sweep_id)
        return self.store.archive(manifest, result)


class GridExecutionError(RuntimeError):
    """A grid cell kept failing after exhausting its retry budget."""

    def __init__(self, cell: GridCell, attempts: int) -> None:
        super().__init__(
            f"grid cell failed {attempts} time(s), retry budget exhausted: "
            f"{cell}")
        self.cell = cell
        self.attempts = attempts


def run_cell(cell: GridCell) -> RunResult:
    """Run one grid cell (the worker entry point; must stay picklable)."""
    # Imported here so a forked/spawned worker pays the import once and
    # the module import graph stays cycle-free (experiments imports us).
    from .experiments import run_single
    return run_single(cell.workload, cell.policy, cell.oversubscription,
                      cell.scale, ts=cell.ts, p=cell.p, seed=cell.seed,
                      collect_histogram=cell.collect_histogram,
                      collect_trace=cell.collect_trace,
                      transfer_fault_rate=cell.transfer_fault_rate,
                      migration_fault_rate=cell.migration_fault_rate,
                      fault_retries=cell.fault_retries,
                      fault_burst_on=cell.fault_burst_on,
                      fault_burst_off=cell.fault_burst_off,
                      fault_burst_mult=cell.fault_burst_mult,
                      evict=cell.evict, prefetcher=cell.prefetcher,
                      prefetch_degree=cell.prefetch_degree,
                      threshold_variant=cell.threshold_variant,
                      historic_counters=cell.historic_counters,
                      trace_path=cell.trace_path,
                      backend=cell.backend, shards=cell.shards)


def default_jobs() -> int:
    """Worker count when the caller asks for ``--jobs 0`` (= all cores).

    Respects CPU affinity where the platform exposes it: container and
    CI runners frequently pin a process to fewer cores than
    ``os.cpu_count()`` reports, and oversubscribing the pinned set just
    adds context-switch thrash.
    """
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        affinity = 0
    return affinity or os.cpu_count() or 1


def run_grid(cells, max_workers: int | None = None,
             options: GridOptions | None = None) -> list[RunResult]:
    """Run every cell, in parallel when workers are available.

    ``max_workers`` of ``None`` or ``1`` runs serially in-process (no
    executor, no pickling); ``0`` means one worker per CPU.  Results
    come back in the order of ``cells``.  ``options`` configures
    retries, hang detection, and checkpoint/resume; the defaults retry
    transient failures but neither journal nor resume.
    """
    cells = list(cells)
    opts = options or GridOptions()
    if opts.trace_cache:
        cells = _annotate_trace_paths(cells, opts.trace_cache)
    if opts.backend is not None or opts.shards is not None:
        cells = _annotate_backend(cells, opts.backend, opts.shards)
    if max_workers is not None and max_workers < 0:
        raise ValueError(
            f"max_workers must be >= 0 (0 = one per CPU), got {max_workers}")
    if max_workers == 0:
        max_workers = default_jobs()

    results: list[RunResult | None] = [None] * len(cells)
    pending = list(range(len(cells)))
    journal = None
    archiver = _Archiver.of(opts, cells)
    if opts.checkpoint:
        from .checkpoint import CheckpointJournal, cell_key
        journal = CheckpointJournal(opts.checkpoint)
        if opts.resume:
            gm = _GridMetrics.of(opts)
            cached = journal.load()
            fresh = []
            for i in pending:
                cell = cells[i]
                hit = cached.get(cell_key(cell))
                # Cells carrying heavy collectors are never served from
                # the journal (stats are not serialized).
                if hit is not None and not (cell.collect_histogram
                                            or cell.collect_trace):
                    results[i] = hit
                    if gm is not None:
                        gm.from_checkpoint.inc()
                    if archiver is not None:
                        archiver.archive(cell, hit)
                else:
                    fresh.append(i)
            pending = fresh
    try:
        if max_workers is None or max_workers <= 1 or len(pending) <= 1:
            _run_serial(cells, pending, results, opts, journal, archiver)
        else:
            _run_parallel(cells, pending, results, opts, journal,
                          max_workers, archiver)
    finally:
        if journal is not None:
            journal.close()
    return results


def _annotate_trace_paths(cells, cache_root: str) -> list[GridCell]:
    """Record each distinct access stream once; point every cell at it.

    Runs in the orchestrator before any fan-out, so a ten-level sweep
    over one workload records one trace and replays it ten times
    (memory-mapped, shared page cache) instead of regenerating the
    stream per cell.  Cells that already carry an explicit
    ``trace_path`` are left untouched.
    """
    from dataclasses import replace
    from ..trace.cache import TraceCache
    cache = TraceCache(cache_root)
    paths: dict[tuple[str, str, int], str] = {}
    annotated = []
    for cell in cells:
        if cell.trace_path is not None:
            annotated.append(cell)
            continue
        stream = (cell.workload, cell.scale, cell.seed)
        path = paths.get(stream)
        if path is None:
            path = paths[stream] = str(cache.get_or_record(*stream))
        annotated.append(replace(cell, trace_path=path))
    return annotated


def _annotate_backend(cells, backend: str | None,
                      shards: int | None) -> list[GridCell]:
    """Stamp the grid-wide backend/shard choice onto unannotated cells.

    Mirrors :func:`_annotate_trace_paths`: cells that already carry an
    explicit value keep it, and the annotation never changes results
    (both knobs are bit-identical performance hints).
    """
    from dataclasses import replace
    annotated = []
    for cell in cells:
        updates = {}
        if backend is not None and cell.backend is None:
            updates["backend"] = backend
        if shards is not None and cell.shards is None:
            updates["shards"] = shards
        annotated.append(replace(cell, **updates) if updates else cell)
    return annotated


# ---------------------------------------------------------------------------
# execution strategies
# ---------------------------------------------------------------------------

def _store(results, journal, cell, index: int, result: RunResult,
           archiver: "_Archiver | None" = None) -> None:
    """Commit one finished cell: result slot, journal, then archive."""
    results[index] = result
    if journal is not None and not (cell.collect_histogram
                                    or cell.collect_trace):
        journal.append(cell, result)
    if archiver is not None:
        archiver.archive(cell, result)


def _backoff(opts: GridOptions, attempt: int) -> None:
    """Sleep before re-attempting a failed cell (bounded exponential)."""
    if opts.retry_backoff_s <= 0 or attempt <= 0:
        return
    time.sleep(min(opts.retry_backoff_s * 2 ** (attempt - 1),
                   _MAX_BACKOFF_S))


def _run_serial(cells, pending, results, opts, journal,
                archiver=None) -> None:
    """In-process execution with per-cell retry and journaling."""
    gm = _GridMetrics.of(opts)
    for i in pending:
        attempts = 0
        while True:
            start = time.perf_counter()
            try:
                result = run_cell(cells[i])
                break
            except Exception as exc:
                attempts += 1
                if gm is not None:
                    gm.retried.inc()
                if attempts > opts.retries:
                    raise GridExecutionError(cells[i], attempts) from exc
                _backoff(opts, attempts)
        if gm is not None:
            gm.cell_ms.observe((time.perf_counter() - start) * 1e3)
            gm.completed.inc()
        _store(results, journal, cells[i], i, result, archiver)


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Best-effort kill of a pool whose workers stopped responding."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass


def _run_parallel(cells, pending, results, opts, journal,
                  max_workers: int, archiver=None) -> None:
    """Pool execution with lost-cell re-submission and hang detection.

    Each ``while`` iteration is one pool incarnation: submit everything
    still pending, harvest until the pool breaks, hangs, or drains,
    then charge failures and go again with only the unfinished cells.
    A worker crash breaks the whole pool in ``concurrent.futures``, so
    broken-pool failures are charged to a small pool-rebuild budget
    rather than to individual cells; cell-level exceptions and hangs
    consume that cell's own retry budget.
    """
    gm = _GridMetrics.of(opts)
    attempts = dict.fromkeys(pending, 0)
    pool_rebuilds = 0
    remaining = list(pending)
    while remaining:
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(max_workers, len(remaining)))
        except (OSError, PermissionError, NotImplementedError):
            # Process pools need working fork/spawn plus POSIX
            # semaphores; restricted environments (CI sandboxes, seccomp
            # jails) may offer neither.  The grid is still correct
            # serially.
            return _run_serial(cells, remaining, results, opts, journal,
                               archiver)

        completed_here = 0
        pool_broke = False
        stalled: list[int] = []
        failed: list[tuple[int, BaseException]] = []
        future_of: dict = {}
        submitted_at: dict[int, float] = {}
        try:
            for i in remaining:
                submitted_at[i] = time.perf_counter()
                future_of[pool.submit(run_cell, cells[i])] = i
        except BrokenProcessPool:
            pool_broke = True
        outstanding = set(future_of)
        while outstanding:
            done, _ = wait(outstanding, timeout=opts.cell_timeout,
                           return_when=FIRST_COMPLETED)
            if not done:
                # Nothing finished within the budget: declare the pool
                # hung, kill its workers, and retry the stragglers.
                stalled = [future_of[f] for f in outstanding]
                _terminate_workers(pool)
                break
            for future in done:
                outstanding.discard(future)
                i = future_of[future]
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    pool_broke = True
                    failed.append((i, exc))
                except Exception as exc:
                    failed.append((i, exc))
                else:
                    if gm is not None:
                        gm.cell_ms.observe(
                            (time.perf_counter() - submitted_at[i]) * 1e3)
                        gm.completed.inc()
                    _store(results, journal, cells[i], i, result, archiver)
                    completed_here += 1
        pool.shutdown(wait=not stalled, cancel_futures=True)

        # -- charge the round's failures -------------------------------
        for i, exc in failed:
            if isinstance(exc, BrokenProcessPool):
                continue  # pool-level, charged to the rebuild budget
            attempts[i] += 1
            if gm is not None:
                gm.retried.inc()
            if attempts[i] > opts.retries:
                raise GridExecutionError(cells[i], attempts[i]) from exc
        worst = 0
        for i in stalled:
            attempts[i] += 1
            if gm is not None:
                gm.stalled.inc()
            worst = max(worst, attempts[i])
            if attempts[i] > opts.retries:
                raise GridExecutionError(cells[i], attempts[i]) from (
                    TimeoutError(
                        f"no grid cell completed within "
                        f"{opts.cell_timeout}s"))
        if pool_broke:
            pool_rebuilds += 1
            if gm is not None:
                gm.rebuilds.inc()
            if completed_here == 0 and pool_rebuilds >= _MAX_POOL_REBUILDS:
                # The pool breaks without making progress: stop burning
                # incarnations and finish the grid in-process.
                remaining = [i for i in remaining if results[i] is None]
                return _run_serial(cells, remaining, results, opts, journal,
                                   archiver)
            worst = max(worst, pool_rebuilds)
        for i, exc in failed:
            if not isinstance(exc, BrokenProcessPool):
                worst = max(worst, attempts[i])
        remaining = [i for i in remaining if results[i] is None]
        if remaining and worst:
            _backoff(opts, worst)
