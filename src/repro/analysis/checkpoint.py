"""JSONL checkpoint journal for experiment grids.

A grid sweep can run for hours; losing every completed cell to one
crashed worker (or a killed job) is the harness-side equivalent of the
thrashing the paper fights.  :class:`CheckpointJournal` makes completed
cells durable: :func:`~repro.analysis.parallel.run_grid` appends each
:class:`~repro.sim.results.RunResult` to an append-only JSONL file the
moment it finishes, and a resumed sweep replays those lines instead of
re-simulating.

Journal format
--------------

One JSON object per line::

    {"cell": {<GridCell fields, enums by value>}, "result": {<RunResult>}}

* The **key** of an entry is the canonical (sorted-keys) JSON encoding
  of its ``cell`` object -- a cell spec is a pure description of one
  simulation, so equal specs always produce equal results and may be
  shared across figures, sweeps, and sessions.
* Duplicate keys are legal; the last line wins.
* A line torn by a kill mid-write fails to parse and is skipped on
  load, so a crashed sweep always leaves a *consistent* journal: every
  parseable line is a fully-committed result.
* Heavy per-run instrumentation (``RunResult.stats``) is **not**
  serialized; cells that request histograms or traces are always
  re-simulated on resume.

Round-trip fidelity: every serialized field (including floats, which
JSON round-trips exactly via ``repr``) decodes bit-identical, so a
resumed grid is indistinguishable from an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import enum
import json
import os

from ..config import (
    EvictionGranularity,
    FaultConfig,
    GpuConfig,
    InterconnectConfig,
    MemoryConfig,
    MigrationPolicy,
    PolicyConfig,
    PrefetcherKind,
    ReplacementPolicy,
    SimulationConfig,
    TimingConfig,
)
from ..gpu.timing import WaveTiming
from ..sim.results import RunResult
from ..uvm.driver import WaveOutcome


def _encode(obj):
    """Recursively encode dataclasses/enums into plain JSON values."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: _encode(getattr(obj, f.name))
                for f in dataclasses.fields(obj)}
    return obj


def _known_fields(cls, data: dict) -> dict:
    """Constructor kwargs restricted to ``cls``'s declared fields."""
    names = {f.name for f in dataclasses.fields(cls)}
    return {k: v for k, v in data.items() if k in names}


#: GridCell fields that are pure performance hints: they never change
#: results (property-tested bit-identical), so they are excluded from
#: the cell's checkpoint identity and a journal entry is shared across
#: replay sources, kernel backends, and shard counts.
_PERF_HINT_FIELDS = ("trace_path", "backend", "shards")


def cell_key(cell) -> str:
    """Canonical string key of a grid cell (any dataclass spec).

    Performance hints (``trace_path``, ``backend``, ``shards``) are
    excluded: each produces bit-identical results, so a cached journal
    entry must be shared between live and replayed runs of the same
    cell, between kernel backends, and between hosts with different
    cache directories.
    """
    data = _encode(cell)
    for name in _PERF_HINT_FIELDS:
        data.pop(name, None)
    return json.dumps(data, sort_keys=True)


def encode_config(config: SimulationConfig) -> dict:
    """JSON-safe encoding of a simulation configuration."""
    return _encode(config)


def decode_config(data: dict) -> SimulationConfig:
    """Rebuild a :class:`SimulationConfig` from :func:`encode_config`."""
    mem = data.get("memory", {})
    pol = data.get("policy", {})
    top = _known_fields(SimulationConfig, data)
    top.update(
        gpu=GpuConfig(**_known_fields(GpuConfig, data.get("gpu", {}))),
        interconnect=InterconnectConfig(
            **_known_fields(InterconnectConfig, data.get("interconnect", {}))),
        memory=MemoryConfig(**{
            **_known_fields(MemoryConfig, mem),
            "eviction_granularity": EvictionGranularity(
                mem["eviction_granularity"]),
            "replacement": ReplacementPolicy(mem["replacement"]),
            "prefetcher": PrefetcherKind(mem["prefetcher"]),
        }),
        policy=PolicyConfig(**{
            **_known_fields(PolicyConfig, pol),
            "policy": MigrationPolicy(pol["policy"]),
        }),
        timing=TimingConfig(
            **_known_fields(TimingConfig, data.get("timing", {}))),
        faults=FaultConfig(
            **_known_fields(FaultConfig, data.get("faults", {}))),
    )
    return SimulationConfig(**top)


def encode_result(result: RunResult) -> dict:
    """JSON-safe encoding of a run result (``stats`` is dropped)."""
    return {
        "workload": result.workload,
        "config": encode_config(result.config),
        "total_cycles": result.total_cycles,
        "timing": _encode(result.timing),
        "events": _encode(result.events),
        "footprint_bytes": result.footprint_bytes,
        "device_capacity_bytes": result.device_capacity_bytes,
        "unique_thrashed_blocks": result.unique_thrashed_blocks,
    }


def decode_result(data: dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`encode_result`."""
    return RunResult(
        workload=data["workload"],
        config=decode_config(data["config"]),
        total_cycles=data["total_cycles"],
        timing=WaveTiming(**_known_fields(WaveTiming, data["timing"])),
        events=WaveOutcome(**_known_fields(WaveOutcome, data["events"])),
        stats=None,
        footprint_bytes=data.get("footprint_bytes", 0),
        device_capacity_bytes=data.get("device_capacity_bytes", 0),
        unique_thrashed_blocks=data.get("unique_thrashed_blocks", 0),
    )


class CheckpointJournal:
    """Append-only JSONL journal of completed grid cells.

    Appends are flushed line-by-line so a killed process loses at most
    the line it was writing -- which :meth:`load` then skips.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._fh = None

    def load(self) -> dict[str, RunResult]:
        """Read every committed entry, keyed by canonical cell key.

        Malformed lines (torn writes from a killed run, manual edits)
        are skipped rather than fatal; duplicate keys keep the last
        occurrence.
        """
        entries: dict[str, RunResult] = {}
        if not os.path.exists(self.path):
            return entries
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    cell = record["cell"]
                    # Mirror cell_key(): perf hints are not identity.
                    for name in _PERF_HINT_FIELDS:
                        cell.pop(name, None)
                    key = json.dumps(cell, sort_keys=True)
                    entries[key] = decode_result(record["result"])
                except (json.JSONDecodeError, KeyError, TypeError,
                        ValueError):
                    continue
        return entries

    def append(self, cell, result: RunResult) -> None:
        """Durably record one completed cell."""
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        encoded_cell = _encode(cell)
        # Journals are replay-source/backend-agnostic (see cell_key).
        for name in _PERF_HINT_FIELDS:
            encoded_cell.pop(name, None)
        record = {"cell": encoded_cell, "result": encode_result(result)}
        self._fh.write(json.dumps(record) + "\n")
        self._fh.flush()

    def close(self) -> None:
        """Close the append handle (loads stay possible)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
