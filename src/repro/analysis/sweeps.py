"""Parameter sweeps beyond the paper's fixed 125% operating point.

The paper evaluates at 125% oversubscription because contemporary GPUs
could not handle more (Section VI).  These utilities map the whole
curve: where the baseline starts degrading, and where the adaptive
scheme's advantage appears -- the crossover a practitioner cares about
when sizing working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MigrationPolicy
from ..sim.results import RunResult
from .experiments import run_single
from .tables import format_table

#: Default oversubscription grid: fits-with-headroom up to 150%.
DEFAULT_LEVELS: tuple[float, ...] = (0.8, 1.0, 1.1, 1.25, 1.4, 1.5)


@dataclass
class SweepResult:
    """Runtime of several policies across oversubscription levels."""

    workload: str
    levels: tuple[float, ...]
    #: ``{policy value: [RunResult per level]}``
    runs: dict[str, list[RunResult]]

    def normalized(self, policy: str) -> list[float]:
        """Cycles of ``policy`` relative to its own fits-in-memory run."""
        series = self.runs[policy]
        base = series[0].total_cycles
        return [r.total_cycles / base for r in series]

    def advantage(self, policy: str = "adaptive",
                  baseline: str = "disabled") -> list[float]:
        """Per-level runtime of ``policy`` relative to ``baseline``."""
        return [p.total_cycles / b.total_cycles
                for p, b in zip(self.runs[policy], self.runs[baseline])]

    def crossover(self, threshold: float = 0.9, policy: str = "adaptive",
                  baseline: str = "disabled") -> float | None:
        """First oversubscription level where ``policy`` is a real win.

        Returns the smallest level whose normalized runtime against the
        baseline drops below ``threshold``, or None if it never does.
        """
        for level, ratio in zip(self.levels, self.advantage(policy,
                                                            baseline)):
            if ratio < threshold:
                return level
        return None

    def render(self) -> str:
        """Comparison table across levels."""
        headers = ["policy"] + [f"{int(l * 100)}%" for l in self.levels]
        rows = []
        for pol, series in self.runs.items():
            base = self.runs["disabled"]
            rows.append([pol] + [f"{r.total_cycles / b.total_cycles:.3f}"
                                 for r, b in zip(series, base)])
        return format_table(
            headers, rows,
            title=f"== {self.workload}: runtime vs Baseline across "
                  "oversubscription levels ==")


def oversubscription_sweep(workload: str,
                           policies=(MigrationPolicy.DISABLED,
                                     MigrationPolicy.ADAPTIVE),
                           levels: tuple[float, ...] = DEFAULT_LEVELS,
                           scale: str = "small", ts: int = 8, p: int = 8,
                           seed: int = 0) -> SweepResult:
    """Run ``workload`` under each policy at each oversubscription level."""
    if not levels:
        raise ValueError("need at least one oversubscription level")
    runs: dict[str, list[RunResult]] = {}
    for pol in policies:
        runs[pol.value] = [
            run_single(workload, pol, level, scale, ts=ts, p=p, seed=seed)
            for level in levels
        ]
    return SweepResult(workload=workload, levels=tuple(levels), runs=runs)
