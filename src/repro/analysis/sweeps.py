"""Parameter sweeps beyond the paper's fixed 125% operating point.

The paper evaluates at 125% oversubscription because contemporary GPUs
could not handle more (Section VI).  These utilities map the whole
curve: where the baseline starts degrading, and where the adaptive
scheme's advantage appears -- the crossover a practitioner cares about
when sizing working sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MigrationPolicy
from ..sim.results import RunResult
from .parallel import GridCell, GridOptions, run_grid
from .tables import format_table

#: Default oversubscription grid: fits-with-headroom up to 150%.
DEFAULT_LEVELS: tuple[float, ...] = (0.8, 1.0, 1.1, 1.25, 1.4, 1.5)

#: Default transient-fault-rate grid for the degradation sweep.
DEFAULT_FAULT_RATES: tuple[float, ...] = (0.0, 0.01, 0.05, 0.1, 0.2)


@dataclass
class SweepResult:
    """Runtime of several policies across oversubscription levels."""

    workload: str
    levels: tuple[float, ...]
    #: ``{policy value: [RunResult per level]}``
    runs: dict[str, list[RunResult]]

    def _series(self, policy: str) -> tuple[str, list[RunResult]]:
        """Resolve a policy name, falling back to the first swept one.

        A sweep does not have to include ``"disabled"`` (or whichever
        policy a caller asks about); rather than raising ``KeyError``,
        comparisons fall back to the first policy actually swept and
        report the substitution.
        """
        if policy in self.runs:
            return policy, self.runs[policy]
        fallback = next(iter(self.runs))
        return fallback, self.runs[fallback]

    def normalized(self, policy: str) -> list[float]:
        """Cycles of ``policy`` relative to its own fits-in-memory run."""
        _, series = self._series(policy)
        base = series[0].total_cycles
        return [r.total_cycles / base for r in series]

    def advantage(self, policy: str = "adaptive",
                  baseline: str = "disabled") -> list[float]:
        """Per-level runtime of ``policy`` relative to ``baseline``."""
        _, pol_series = self._series(policy)
        _, base_series = self._series(baseline)
        return [p.total_cycles / b.total_cycles
                for p, b in zip(pol_series, base_series)]

    def crossover(self, threshold: float = 0.9, policy: str = "adaptive",
                  baseline: str = "disabled") -> float | None:
        """First oversubscription level where ``policy`` is a real win.

        Returns the smallest level whose normalized runtime against the
        baseline drops below ``threshold``, or None if it never does.
        """
        for level, ratio in zip(self.levels, self.advantage(policy,
                                                            baseline)):
            if ratio < threshold:
                return level
        return None

    def render(self, baseline: str = "disabled") -> str:
        """Comparison table across levels."""
        headers = ["policy"] + [f"{int(l * 100)}%" for l in self.levels]
        base_name, base = self._series(baseline)
        rows = []
        for pol, series in self.runs.items():
            rows.append([pol] + [f"{r.total_cycles / b.total_cycles:.3f}"
                                 for r, b in zip(series, base)])
        title = (f"== {self.workload}: runtime vs {base_name} across "
                 "oversubscription levels ==")
        if base_name != baseline:
            title += f" (baseline {baseline!r} not swept)"
        return format_table(headers, rows, title=title)


def oversubscription_sweep(workload: str,
                           policies=(MigrationPolicy.DISABLED,
                                     MigrationPolicy.ADAPTIVE),
                           levels: tuple[float, ...] = DEFAULT_LEVELS,
                           scale: str = "small", ts: int = 8, p: int = 8,
                           seed: int = 0, jobs: int = 1,
                           grid: GridOptions | None = None) -> SweepResult:
    """Run ``workload`` under each policy at each oversubscription level.

    ``jobs`` > 1 fans the (policy x level) grid out across worker
    processes (0 = one per CPU); cells are independent and individually
    seeded, so the results are identical to a serial run.  ``grid``
    configures retry/checkpoint resilience for long sweeps.
    """
    if not levels:
        raise ValueError("need at least one oversubscription level")
    policies = tuple(policies)
    cells = [GridCell(workload, pol, level, scale, ts=ts, p=p, seed=seed)
             for pol in policies for level in levels]
    results = run_grid(cells, max_workers=jobs, options=grid)
    runs: dict[str, list[RunResult]] = {}
    for i, pol in enumerate(policies):
        runs[pol.value] = results[i * len(levels):(i + 1) * len(levels)]
    return SweepResult(workload=workload, levels=tuple(levels), runs=runs)


@dataclass
class FaultSweepResult:
    """Graceful degradation of one workload across transient-fault rates."""

    workload: str
    policy: str
    oversubscription: float
    rates: tuple[float, ...]
    runs: list[RunResult]

    def slowdown(self) -> list[float]:
        """Runtime at each fault rate relative to the fault-free run."""
        base = self.runs[0].total_cycles
        return [r.total_cycles / base for r in self.runs]

    def render(self) -> str:
        """Table of runtime and fault-handling counters per rate."""
        rows = []
        for rate, run, slow in zip(self.rates, self.runs, self.slowdown()):
            ev = run.events
            rows.append([f"{rate:.3f}", f"{slow:.3f}",
                         ev.retried_transfers, ev.degraded_accesses,
                         f"{run.hit_ratio:.3f}"])
        title = (f"== {self.workload} ({self.policy}, "
                 f"{self.oversubscription:.0%} oversubscription): "
                 "degradation vs transient fault rate ==")
        return format_table(
            ["fault rate", "slowdown", "retried", "degraded", "hit ratio"],
            rows, title=title)


def fault_rate_sweep(workload: str,
                     policy: MigrationPolicy = MigrationPolicy.ADAPTIVE,
                     rates: tuple[float, ...] = DEFAULT_FAULT_RATES,
                     oversubscription: float = 1.25, scale: str = "small",
                     ts: int = 8, p: int = 8, seed: int = 0,
                     fault_retries: int = 3, jobs: int = 1,
                     grid: GridOptions | None = None) -> FaultSweepResult:
    """Map graceful degradation across injected transient-fault rates.

    The first rate (conventionally 0.0) anchors the slowdown curve; the
    fault model is documented in :mod:`repro.uvm.faults`.
    """
    if not rates:
        raise ValueError("need at least one fault rate")
    rates = tuple(rates)
    cells = [GridCell(workload, policy, oversubscription, scale, ts=ts,
                      p=p, seed=seed, transfer_fault_rate=rate,
                      fault_retries=fault_retries)
             for rate in rates]
    results = run_grid(cells, max_workers=jobs, options=grid)
    return FaultSweepResult(workload=workload, policy=policy.value,
                            oversubscription=oversubscription,
                            rates=rates, runs=results)
