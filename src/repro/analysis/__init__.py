"""Experiment runners and reporting for the paper's tables and figures."""

from . import paper_data
from .experiments import (
    NO_OVERSUB,
    OVERSUB_125,
    SeriesResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    render_figure2,
    render_figure3,
    run_single,
    table1,
)
from .checkpoint import CheckpointJournal, cell_key
from .parallel import (
    GridCell,
    GridExecutionError,
    GridOptions,
    default_jobs,
    run_grid,
)
from .sweeps import (
    DEFAULT_FAULT_RATES,
    DEFAULT_LEVELS,
    FaultSweepResult,
    SweepResult,
    fault_rate_sweep,
    oversubscription_sweep,
)
from .tables import ascii_bar_chart, comparison_table, format_table

__all__ = [
    "CheckpointJournal",
    "DEFAULT_FAULT_RATES",
    "DEFAULT_LEVELS",
    "FaultSweepResult",
    "GridCell",
    "GridExecutionError",
    "GridOptions",
    "cell_key",
    "default_jobs",
    "fault_rate_sweep",
    "run_grid",
    "NO_OVERSUB",
    "OVERSUB_125",
    "SeriesResult",
    "SweepResult",
    "ascii_bar_chart",
    "comparison_table",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6_7",
    "figure8",
    "format_table",
    "paper_data",
    "render_figure2",
    "render_figure3",
    "oversubscription_sweep",
    "run_single",
    "table1",
]
