"""ASCII rendering of experiment results (the repo's 'figures')."""

from __future__ import annotations

from typing import Iterable, Mapping


def format_table(headers: list[str], rows: list[list], title: str = "",
                 float_fmt: str = "{:.3f}") -> str:
    """Render a fixed-width text table."""
    cells = [[_fmt(c, float_fmt) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value, float_fmt: str) -> str:
    if isinstance(value, float):
        return float_fmt.format(value)
    return str(value)


def comparison_table(title: str, workloads: Iterable[str],
                     measured: Mapping[str, float],
                     paper: Mapping[str, float] | None,
                     value_name: str = "normalized runtime") -> str:
    """Two-column paper-vs-measured table for one experiment series."""
    headers = ["workload", f"measured {value_name}"]
    if paper is not None:
        headers.append("paper")
    rows = []
    for w in workloads:
        row = [w, float(measured[w])]
        if paper is not None:
            row.append(float(paper.get(w, float("nan"))))
        rows.append(row)
    return format_table(headers, rows, title=title)


def ascii_bar_chart(title: str, series: Mapping[str, float],
                    width: int = 50, unit: str = "x") -> str:
    """Horizontal ASCII bar chart, for quick visual shape checks."""
    if not series:
        return title
    peak = max(series.values()) or 1.0
    lines = [title]
    for name, value in series.items():
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append(f"{name:>10s} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)
