"""The paper's contribution: migrate-vs-remote decision policies."""

from .policy import (
    AdaptivePolicy,
    DecisionPolicy,
    FirstTouchPolicy,
    StaticAlwaysPolicy,
    StaticOversubPolicy,
    make_policy,
)
from .variants import (
    VARIANTS,
    ExponentialBackoffPolicy,
    LinearBackoffPolicy,
    OccupancyOnlyPolicy,
    make_variant,
)

__all__ = [
    "AdaptivePolicy",
    "DecisionPolicy",
    "ExponentialBackoffPolicy",
    "FirstTouchPolicy",
    "LinearBackoffPolicy",
    "OccupancyOnlyPolicy",
    "StaticAlwaysPolicy",
    "StaticOversubPolicy",
    "VARIANTS",
    "make_policy",
    "make_variant",
]
