"""Dynamic-threshold variants: exploring Equation 1's design space.

Section VI-D frames ``ts`` and ``p`` as driver module parameters and
leaves their interaction with the round-trip count as the mechanism
under study.  Equation 1 grows the threshold *multiplicatively* in the
round-trip count:  ``td = ts * (r + 1) * p``.  This module implements
the neighbouring designs a reviewer would ask about, so they can be
ablated against the paper's choice:

* :class:`LinearBackoffPolicy` -- additive growth, ``td = ts + r * p``:
  pins thrashing blocks more gently; a block can keep earning
  migrations forever if its access rate grows linearly.
* :class:`ExponentialBackoffPolicy` -- geometric growth,
  ``td = ts * p ** (r + 1)`` (capped): pins much harder after few round
  trips, converging on permanent zero-copy.
* :class:`OccupancyOnlyPolicy` -- ignores round trips entirely and uses
  the pre-oversubscription branch of Equation 1 at all times: the
  ablation showing that occupancy scaling alone cannot stop thrashing.

All variants keep the framework's other machinery (historic counters,
LFU replacement) so the comparison isolates the threshold function.
"""

from __future__ import annotations

import numpy as np

from ..config import MigrationPolicy, PolicyConfig
from ..uvm import thresholds as th
from .policy import AdaptivePolicy, DecisionPolicy, make_policy as _make_base


class LinearBackoffPolicy(AdaptivePolicy):
    """Additive round-trip backoff: ``td = ts + r * p`` once oversubscribed."""

    kind = MigrationPolicy.ADAPTIVE

    def decision_state(self, blocks, driver):
        ts = self.config.static_threshold
        counters = driver.counters
        if not driver.device.oversubscribed:
            return super().decision_state(blocks, driver)
        r = counters.roundtrips[blocks]
        td = ts + r * self.config.migration_penalty
        return (td, counters.counts[blocks])


class ExponentialBackoffPolicy(AdaptivePolicy):
    """Geometric round-trip backoff: ``td = ts * p**(r+1)``, capped.

    The cap keeps thresholds inside the 27-bit counter range; blocks
    that reach it are effectively hard-pinned to host memory.
    """

    kind = MigrationPolicy.ADAPTIVE

    #: Upper bound on the threshold (2^20 accesses, the paper's extreme
    #: penalty value).
    CAP = 1 << 20

    def decision_state(self, blocks, driver):
        ts = self.config.static_threshold
        counters = driver.counters
        if not driver.device.oversubscribed:
            return super().decision_state(blocks, driver)
        r = counters.roundtrips[blocks]
        p = self.config.migration_penalty
        exponents = np.minimum(r + 1, 32)
        td = np.minimum(ts * np.power(float(p), exponents),
                        float(self.CAP)).astype(np.int64)
        td = np.maximum(td, 1)
        return (td, counters.counts[blocks])


class OccupancyOnlyPolicy(AdaptivePolicy):
    """Ablation: Equation 1's first branch only, even after pressure."""

    kind = MigrationPolicy.ADAPTIVE

    def decision_state(self, blocks, driver):
        ts = self.config.static_threshold
        counters = driver.counters
        td_scalar = th.dynamic_threshold_no_oversub(
            ts, driver.device.occupancy)
        td = np.full(len(blocks), td_scalar, dtype=np.int64)
        return (td, counters.counts[blocks])


#: Registry of threshold variants, keyed by a short name.
VARIANTS: dict[str, type[DecisionPolicy]] = {
    "multiplicative": AdaptivePolicy,       # the paper's Equation 1
    "linear": LinearBackoffPolicy,
    "exponential": ExponentialBackoffPolicy,
    "occupancy-only": OccupancyOnlyPolicy,
}


def make_variant(name: str, config: PolicyConfig) -> DecisionPolicy:
    """Instantiate a threshold variant by name."""
    try:
        cls = VARIANTS[name]
    except KeyError:
        raise KeyError(f"unknown threshold variant {name!r}; "
                       f"choose from {sorted(VARIANTS)}") from None
    return cls(config)
