"""Migrate-vs-remote decision policies (Section IV and the evaluated baselines).

Each policy answers, for every non-resident basic block touched by a
wave: *against which counter value and threshold should the block's far
accesses be judged?*  The driver turns the ``(threshold, counter)`` pair
into a split between remotely served accesses, a migration trigger, and
locally served accesses: accesses numbered below the threshold are
served remotely, the access that reaches it migrates the block.

Counter semantics differ per scheme and are the crux of the paper:

* The **static** schemes (*Always*, *Oversub*) model Volta hardware
  access counters: they count only *remote* accesses and are reset when
  the block migrates, so the full delay applies afresh after every
  eviction round trip.  *Oversub* additionally arms the delay per block:
  only blocks whose first migration would happen after the device is
  already oversubscribed are soft-pinned; blocks that migrated earlier
  keep device preference and re-migrate at first touch (which is why the
  scheme barely helps workloads whose whole footprint floods in before
  memory pressure builds, e.g. RandomAccess).
* The **Adaptive** framework keeps *historic* counters -- local and
  remote accesses, never reset, globally halved on saturation -- and
  compares them against the dynamic threshold of Equation 1.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from ..config import MigrationPolicy, PolicyConfig
from ..uvm import thresholds as th

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..uvm.driver import UvmDriver

#: Placeholder round-trip slice for the non-oversubscribed Equation-1
#: branch: the backend kernels take an array argument unconditionally
#: (numba cannot type ``None``), but never read it on that branch.
_NO_ROUNDTRIPS = np.empty(0, dtype=np.int64)
_NO_ROUNDTRIPS.flags.writeable = False


class DecisionPolicy(ABC):
    """Interface the UVM driver consults on every far access."""

    #: Scheme identifier, for statistics and display.
    kind: MigrationPolicy

    def __init__(self, config: PolicyConfig) -> None:
        self.config = config

    @abstractmethod
    def decision_state(self, blocks: np.ndarray,
                       driver: "UvmDriver") -> tuple[np.ndarray, np.ndarray]:
        """Return ``(thresholds, counter_baselines)`` for ``blocks``.

        A block migrates once its counter baseline plus the accesses of
        the current wave reaches its threshold; earlier accesses are
        served remotely.  A threshold of 1 with baseline 0 is exactly
        first-touch migration.

        Returned arrays are owned by the caller but must be treated as
        read-only by the policy afterwards: fancy-indexed gathers from
        the counter file already produce fresh copies, so policies do
        not defensively ``.copy()`` on the hot path.
        """


class FirstTouchPolicy(DecisionPolicy):
    """State-of-the-art baseline (*Disabled*): migrate at first touch."""

    kind = MigrationPolicy.DISABLED

    def decision_state(self, blocks, driver):
        n = len(blocks)
        return (th.first_touch_thresholds(n), np.zeros(n, dtype=np.int64))


class StaticAlwaysPolicy(DecisionPolicy):
    """Volta-style delayed migration with a static threshold, always active.

    Every block is soft-pinned to host memory from the start; each round
    trip requires ``ts`` fresh remote accesses before re-migration.
    """

    kind = MigrationPolicy.ALWAYS

    def decision_state(self, blocks, driver):
        ts = self.config.static_threshold
        return (th.static_thresholds(len(blocks), ts),
                driver.counters.volta_counts[blocks])


class StaticOversubPolicy(DecisionPolicy):
    """Static-threshold delayed migration armed only after oversubscription.

    Before memory pressure: pure first touch.  After: only blocks that
    have never been device-resident get the soft-pin treatment; blocks
    that migrated earlier keep device preference and re-migrate at first
    touch after eviction.
    """

    kind = MigrationPolicy.OVERSUB

    def decision_state(self, blocks, driver):
        n = len(blocks)
        if not driver.device.oversubscribed:
            return (th.first_touch_thresholds(n), np.zeros(n, dtype=np.int64))
        ts = self.config.static_threshold
        td = np.where(driver.ever_migrated[blocks], 1, ts).astype(np.int64)
        return (td, driver.counters.volta_counts[blocks])


class AdaptivePolicy(DecisionPolicy):
    """The paper's dynamic access-counter threshold (Equation 1).

    Before the device ever has to evict, the threshold scales with the
    occupancy fraction, converging on first-touch behaviour when memory
    is plentiful.  Once oversubscribed, the threshold grows with the
    block's round-trip count and the multiplicative migration penalty,
    hard-pinning thrashing blocks to host memory.  Judged against the
    historic (local + remote, never reset) counters.
    """

    kind = MigrationPolicy.ADAPTIVE

    def __init__(self, config: PolicyConfig) -> None:
        super().__init__(config)
        # Validate Equation 1's parameters once here so the per-wave
        # threshold kernel can skip argument checks on the hot path.
        if config.static_threshold < 1:
            raise ValueError("static threshold must be >= 1")
        if config.migration_penalty < 1:
            raise ValueError("migration penalty must be >= 1")

    def decision_state(self, blocks, driver):
        counters = driver.counters
        over = driver.device.oversubscribed
        # Equation 1 runs on the driver's backend kernels (python or
        # numba); repro.uvm.thresholds.eq1_thresholds is the pinned
        # reference both mirror.
        td = driver.kernels.eq1_thresholds(
            self.config.static_threshold, self.config.migration_penalty,
            over, driver.device.occupancy, len(blocks),
            counters.roundtrips[blocks] if over else _NO_ROUNDTRIPS)
        if self.config.historic_counters:
            baseline = counters.counts[blocks]
        else:
            # Ablation: plain Volta counters under the dynamic threshold.
            baseline = counters.volta_counts[blocks]
        return (td, baseline)


_POLICY_CLASSES: dict[MigrationPolicy, type[DecisionPolicy]] = {
    MigrationPolicy.DISABLED: FirstTouchPolicy,
    MigrationPolicy.ALWAYS: StaticAlwaysPolicy,
    MigrationPolicy.OVERSUB: StaticOversubPolicy,
    MigrationPolicy.ADAPTIVE: AdaptivePolicy,
}


def make_policy(config: PolicyConfig) -> DecisionPolicy:
    """Instantiate the decision policy selected by ``config.policy``.

    For the ADAPTIVE scheme, ``config.threshold_variant`` may swap
    Equation 1's multiplicative backoff for one of the design-space
    variants in :mod:`repro.core.variants`.
    """
    if (config.policy is MigrationPolicy.ADAPTIVE
            and config.threshold_variant != "multiplicative"):
        from .variants import make_variant
        return make_variant(config.threshold_variant, config)
    return _POLICY_CLASSES[config.policy](config)
