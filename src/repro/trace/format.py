"""On-disk trace format (single ``.npz`` file).

A trace captures everything the simulator consumes from a workload: the
managed-allocation table and the full wave stream (pages, write flags,
coalesced access counts, compute estimates), grouped by kernel launch.
Traces let a workload's access pattern be generated once and re-simulated
under many configurations, or be produced by external tools.

Arrays stored:

========================  =====================================================
``alloc_names``           allocation names (unicode)
``alloc_sizes``           requested bytes per allocation (int64)
``alloc_read_only``       read-only flags (bool)
``alloc_advice``          advice codes (unicode, ``Advice.value``)
``kernel_names``          one entry per kernel launch (unicode)
``kernel_iterations``     iteration id per launch (int64)
``wave_kernel``           launch index per wave (int64)
``wave_offsets``          CSR offsets into the flattened access arrays
``wave_compute``          compute-cycles override per wave (NaN = default)
``pages`` / ``is_write`` / ``counts``   flattened access stream
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Format version written into every trace file.
TRACE_VERSION = 1


@dataclass
class TraceData:
    """In-memory representation of a recorded trace."""

    alloc_names: list[str]
    alloc_sizes: np.ndarray
    alloc_read_only: np.ndarray
    alloc_advice: list[str]
    kernel_names: list[str]
    kernel_iterations: np.ndarray
    wave_kernel: np.ndarray
    wave_offsets: np.ndarray
    wave_compute: np.ndarray
    pages: np.ndarray
    is_write: np.ndarray
    counts: np.ndarray
    version: int = TRACE_VERSION
    meta: dict = field(default_factory=dict)

    @property
    def num_waves(self) -> int:
        """Number of recorded waves."""
        return self.wave_kernel.size

    @property
    def num_launches(self) -> int:
        """Number of recorded kernel launches."""
        return len(self.kernel_names)

    @property
    def num_accesses(self) -> int:
        """Total coalesced accesses in the trace."""
        return int(self.counts.sum())

    def validate(self) -> None:
        """Check structural invariants of the trace."""
        if self.version != TRACE_VERSION:
            raise ValueError(f"unsupported trace version {self.version}")
        if self.wave_offsets[0] != 0 or self.wave_offsets[-1] != self.pages.size:
            raise ValueError("wave offsets do not cover the access stream")
        if np.any(np.diff(self.wave_offsets) < 0):
            raise ValueError("wave offsets must be nondecreasing")
        if self.wave_offsets.size != self.num_waves + 1:
            raise ValueError("need one offset per wave plus a sentinel")
        if not (self.pages.size == self.is_write.size == self.counts.size):
            raise ValueError("access arrays must be parallel")
        if self.wave_kernel.size and (
                self.wave_kernel.min() < 0
                or self.wave_kernel.max() >= self.num_launches):
            raise ValueError("wave kernel index out of range")
        if self.counts.size and self.counts.min() < 1:
            raise ValueError("counts must be >= 1")
        if len(self.alloc_names) != self.alloc_sizes.size:
            raise ValueError("allocation table arrays must be parallel")
