"""Trace capture and replay: record a workload's access stream once,
re-simulate it under any configuration, or import external traces."""

from .cache import TraceCache, trace_key
from .format import TRACE_VERSION, TraceData
from .recorder import (
    load_trace,
    load_trace_dir,
    record_trace,
    save_trace,
    save_trace_dir,
)
from .replay import TraceWorkload

__all__ = [
    "TRACE_VERSION",
    "TraceCache",
    "TraceData",
    "TraceWorkload",
    "load_trace",
    "load_trace_dir",
    "record_trace",
    "save_trace",
    "save_trace_dir",
    "trace_key",
]
