"""Trace capture and replay: record a workload's access stream once,
re-simulate it under any configuration, or import external traces."""

from .format import TRACE_VERSION, TraceData
from .recorder import load_trace, record_trace, save_trace
from .replay import TraceWorkload

__all__ = [
    "TRACE_VERSION",
    "TraceData",
    "TraceWorkload",
    "load_trace",
    "record_trace",
    "save_trace",
]
