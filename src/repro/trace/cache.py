"""Content-addressed on-disk cache of recorded workload traces.

A grid sweep evaluates the same ``(workload, scale, seed)`` access
stream under many configurations (oversubscription levels, policies,
replacement schemes), yet every live cell regenerates the stream from
scratch -- and profiled grids spend most of their time in exactly that
generation (graph construction, ``np.unique`` dedup, RNG draws), not in
the driver.  :class:`TraceCache` records each distinct stream once via
:func:`repro.trace.recorder.record_trace`, stores it in the mmap-able
directory layout of :func:`~repro.trace.recorder.save_trace_dir`, and
hands every cell a path to replay instead.

Trace recording is deterministic (the recorder seeds its own generator
exactly like a live :class:`~repro.sim.simulator.Simulator` run), so a
replayed cell is bit-identical to a live one; the property suite pins
this across every registered workload.

Cache entries are content-addressed by ``(workload, scale, seed,
trace-format version)``, so a cache directory can be shared across
sweeps and sessions and survives format bumps without serving stale
layouts.  Commits are atomic -- arrays are written into a private temp
directory which is ``os.rename``-ed into place -- so concurrent
recorders of the same stream race benignly: one wins, the others
discard their work and use the winner's entry.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import shutil

from .format import TRACE_VERSION, TraceData
from .recorder import MANIFEST_NAME, record_trace, save_trace_dir


def trace_key(workload: str, scale: str, seed: int) -> str:
    """Content-address of one recorded stream (stable across runs)."""
    ident = f"{workload}|{scale}|{seed}|trace-v{TRACE_VERSION}"
    return hashlib.sha256(ident.encode("utf-8")).hexdigest()[:16]


class TraceCache:
    """Record-once / replay-many store of workload access streams."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)
        #: Streams recorded by this cache instance (statistics).
        self.recorded = 0
        #: Streams served from an existing entry (statistics).
        self.hits = 0

    def path_for(self, workload: str, scale: str, seed: int) -> pathlib.Path:
        """Cache-entry directory for one stream (may not exist yet)."""
        key = trace_key(workload, scale, seed)
        return self.root / f"{workload}-{scale}-s{seed}-{key}"

    def get_or_record(self, workload: str, scale: str,
                      seed: int = 0) -> pathlib.Path:
        """Return a committed trace directory, recording it if absent."""
        path = self.path_for(workload, scale, seed)
        if (path / MANIFEST_NAME).exists():
            self.hits += 1
            return path
        from ..workloads import make_workload
        data = record_trace(make_workload(workload, scale), seed=seed)
        self.recorded += 1
        return self._commit(data, path)

    def _commit(self, data: TraceData, path: pathlib.Path) -> pathlib.Path:
        """Atomically publish ``data`` at ``path`` (loser-safe on races)."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        save_trace_dir(data, tmp)
        try:
            os.rename(tmp, path)
        except OSError:
            # A concurrent recorder committed first; its entry is
            # equivalent (the key is content-addressed), so drop ours.
            shutil.rmtree(tmp, ignore_errors=True)
            if not (path / MANIFEST_NAME).exists():
                raise
        return path
