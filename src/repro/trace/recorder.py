"""Recording workload executions into trace files."""

from __future__ import annotations

import pathlib

import numpy as np

from ..memory.allocator import VirtualAddressSpace
from ..workloads.base import Workload
from .format import TraceData


def record_trace(workload: Workload, seed: int = 0) -> TraceData:
    """Run ``workload``'s generators and capture the full wave stream.

    No simulation happens -- this only materializes the access trace a
    simulator run would consume, so it is fast and configuration
    independent.
    """
    vas = VirtualAddressSpace()
    workload.build(vas, np.random.default_rng(seed))
    if not vas.allocations:
        raise ValueError(f"workload {workload.name!r} allocated nothing")

    kernel_names: list[str] = []
    kernel_iters: list[int] = []
    wave_kernel: list[int] = []
    wave_compute: list[float] = []
    offsets: list[int] = [0]
    pages_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []

    cursor = 0
    for launch in workload.kernels():
        kid = len(kernel_names)
        kernel_names.append(launch.name)
        kernel_iters.append(launch.iteration)
        for wave in launch.waves():
            wave_kernel.append(kid)
            wave_compute.append(
                float("nan") if wave.compute_cycles is None
                else float(wave.compute_cycles))
            pages_parts.append(wave.pages)
            write_parts.append(wave.is_write)
            count_parts.append(wave.counts)
            cursor += wave.pages.size
            offsets.append(cursor)

    empty64 = np.empty(0, dtype=np.int64)
    data = TraceData(
        alloc_names=[a.name for a in vas.allocations],
        alloc_sizes=np.array([a.requested_bytes for a in vas.allocations],
                             dtype=np.int64),
        alloc_read_only=np.array([a.read_only for a in vas.allocations],
                                 dtype=bool),
        alloc_advice=[a.advice.value for a in vas.allocations],
        kernel_names=kernel_names,
        kernel_iterations=np.array(kernel_iters, dtype=np.int64),
        wave_kernel=np.array(wave_kernel, dtype=np.int64),
        wave_offsets=np.array(offsets, dtype=np.int64),
        wave_compute=np.array(wave_compute, dtype=np.float64),
        pages=(np.concatenate(pages_parts) if pages_parts else empty64),
        is_write=(np.concatenate(write_parts) if write_parts
                  else np.empty(0, dtype=bool)),
        counts=(np.concatenate(count_parts) if count_parts else empty64),
        meta={"workload": workload.name, "seed": seed,
              "category": workload.category.value},
    )
    data.validate()
    return data


def save_trace(data: TraceData, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path`` (``.npz``)."""
    data.validate()
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        version=np.array([data.version]),
        alloc_names=np.array(data.alloc_names),
        alloc_sizes=data.alloc_sizes,
        alloc_read_only=data.alloc_read_only,
        alloc_advice=np.array(data.alloc_advice),
        kernel_names=np.array(data.kernel_names),
        kernel_iterations=data.kernel_iterations,
        wave_kernel=data.wave_kernel,
        wave_offsets=data.wave_offsets,
        wave_compute=data.wave_compute,
        pages=data.pages,
        is_write=data.is_write,
        counts=data.counts,
        meta_workload=np.array([data.meta.get("workload", "")]),
        meta_category=np.array([data.meta.get("category", "")]),
        meta_seed=np.array([data.meta.get("seed", 0)]),
    )
    # np.savez appends .npz only when missing; normalize the return.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


def load_trace(path: str | pathlib.Path) -> TraceData:
    """Read a trace written by :func:`save_trace`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as z:
        data = TraceData(
            alloc_names=[str(s) for s in z["alloc_names"]],
            alloc_sizes=z["alloc_sizes"],
            alloc_read_only=z["alloc_read_only"],
            alloc_advice=[str(s) for s in z["alloc_advice"]],
            kernel_names=[str(s) for s in z["kernel_names"]],
            kernel_iterations=z["kernel_iterations"],
            wave_kernel=z["wave_kernel"],
            wave_offsets=z["wave_offsets"],
            wave_compute=z["wave_compute"],
            pages=z["pages"],
            is_write=z["is_write"],
            counts=z["counts"],
            version=int(z["version"][0]),
            meta={"workload": str(z["meta_workload"][0]),
                  "category": str(z["meta_category"][0]),
                  "seed": int(z["meta_seed"][0])},
        )
    data.validate()
    return data
