"""Recording workload executions into trace files.

Two on-disk layouts are supported:

* ``save_trace``/``load_trace`` -- one compressed ``.npz`` file; compact
  and self-contained, but ``np.load`` must decompress every array into
  fresh memory on open.
* ``save_trace_dir``/``load_trace_dir`` -- a directory holding one raw
  ``.npy`` file per array plus a ``manifest.json`` for the scalar
  tables.  Raw ``.npy`` files memory-map (``mmap_mode="r"``), so many
  simulator processes replaying the same recorded stream share one
  page-cache copy of the access arrays instead of materializing a
  private copy each -- the layout the grid trace cache uses.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..memory.allocator import VirtualAddressSpace
from ..workloads.base import Workload
from .format import TraceData


def record_trace(workload: Workload, seed: int = 0) -> TraceData:
    """Run ``workload``'s generators and capture the full wave stream.

    No simulation happens -- this only materializes the access trace a
    simulator run would consume, so it is fast and configuration
    independent.
    """
    vas = VirtualAddressSpace()
    workload.build(vas, np.random.default_rng(seed))
    if not vas.allocations:
        raise ValueError(f"workload {workload.name!r} allocated nothing")

    kernel_names: list[str] = []
    kernel_iters: list[int] = []
    wave_kernel: list[int] = []
    wave_compute: list[float] = []
    offsets: list[int] = [0]
    pages_parts: list[np.ndarray] = []
    write_parts: list[np.ndarray] = []
    count_parts: list[np.ndarray] = []

    cursor = 0
    for launch in workload.kernels():
        kid = len(kernel_names)
        kernel_names.append(launch.name)
        kernel_iters.append(launch.iteration)
        for wave in launch.waves():
            wave_kernel.append(kid)
            wave_compute.append(
                float("nan") if wave.compute_cycles is None
                else float(wave.compute_cycles))
            pages_parts.append(wave.pages)
            write_parts.append(wave.is_write)
            count_parts.append(wave.counts)
            cursor += wave.pages.size
            offsets.append(cursor)

    empty64 = np.empty(0, dtype=np.int64)
    data = TraceData(
        alloc_names=[a.name for a in vas.allocations],
        alloc_sizes=np.array([a.requested_bytes for a in vas.allocations],
                             dtype=np.int64),
        alloc_read_only=np.array([a.read_only for a in vas.allocations],
                                 dtype=bool),
        alloc_advice=[a.advice.value for a in vas.allocations],
        kernel_names=kernel_names,
        kernel_iterations=np.array(kernel_iters, dtype=np.int64),
        wave_kernel=np.array(wave_kernel, dtype=np.int64),
        wave_offsets=np.array(offsets, dtype=np.int64),
        wave_compute=np.array(wave_compute, dtype=np.float64),
        pages=(np.concatenate(pages_parts) if pages_parts else empty64),
        is_write=(np.concatenate(write_parts) if write_parts
                  else np.empty(0, dtype=bool)),
        counts=(np.concatenate(count_parts) if count_parts else empty64),
        meta={"workload": workload.name, "seed": seed,
              "category": workload.category.value},
    )
    data.validate()
    return data


def save_trace(data: TraceData, path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace to ``path`` (``.npz``)."""
    data.validate()
    path = pathlib.Path(path)
    np.savez_compressed(
        path,
        version=np.array([data.version]),
        alloc_names=np.array(data.alloc_names),
        alloc_sizes=data.alloc_sizes,
        alloc_read_only=data.alloc_read_only,
        alloc_advice=np.array(data.alloc_advice),
        kernel_names=np.array(data.kernel_names),
        kernel_iterations=data.kernel_iterations,
        wave_kernel=data.wave_kernel,
        wave_offsets=data.wave_offsets,
        wave_compute=data.wave_compute,
        pages=data.pages,
        is_write=data.is_write,
        counts=data.counts,
        meta_workload=np.array([data.meta.get("workload", "")]),
        meta_category=np.array([data.meta.get("category", "")]),
        meta_seed=np.array([data.meta.get("seed", 0)]),
    )
    # np.savez appends .npz only when missing; normalize the return.
    return path if path.suffix == ".npz" else path.with_suffix(
        path.suffix + ".npz")


#: Scalar-table file inside a trace directory; its presence marks the
#: directory as a fully committed trace.
MANIFEST_NAME = "manifest.json"

#: The numeric arrays stored as individual ``.npy`` files in a trace
#: directory (everything else lives in the manifest).
_DIR_ARRAYS = ("alloc_sizes", "alloc_read_only", "kernel_iterations",
               "wave_kernel", "wave_offsets", "wave_compute",
               "pages", "is_write", "counts")


def save_trace_dir(data: TraceData,
                   path: str | pathlib.Path) -> pathlib.Path:
    """Write a trace as a directory of mmap-able ``.npy`` files.

    The manifest is written last, so readers that gate on its presence
    (:class:`repro.trace.cache.TraceCache`) never observe a
    half-written trace.
    """
    data.validate()
    path = pathlib.Path(path)
    path.mkdir(parents=True, exist_ok=True)
    for name in _DIR_ARRAYS:
        np.save(path / f"{name}.npy", np.asarray(getattr(data, name)))
    manifest = {
        "version": data.version,
        "alloc_names": list(data.alloc_names),
        "alloc_advice": list(data.alloc_advice),
        "kernel_names": list(data.kernel_names),
        "meta": {"workload": data.meta.get("workload", ""),
                 "category": data.meta.get("category", ""),
                 "seed": int(data.meta.get("seed", 0))},
    }
    (path / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    return path


def load_trace_dir(path: str | pathlib.Path,
                   mmap: bool = True) -> TraceData:
    """Read a trace directory written by :func:`save_trace_dir`.

    With ``mmap`` (the default) the access arrays are memory-mapped
    read-only instead of loaded, so opening a multi-hundred-MB trace is
    O(metadata) and concurrent replays share the page cache.
    """
    path = pathlib.Path(path)
    manifest = json.loads((path / MANIFEST_NAME).read_text(encoding="utf-8"))
    mode = "r" if mmap else None
    arrays = {name: np.load(path / f"{name}.npy", mmap_mode=mode,
                            allow_pickle=False)
              for name in _DIR_ARRAYS}
    data = TraceData(
        alloc_names=[str(s) for s in manifest["alloc_names"]],
        alloc_advice=[str(s) for s in manifest["alloc_advice"]],
        kernel_names=[str(s) for s in manifest["kernel_names"]],
        version=int(manifest["version"]),
        meta=dict(manifest["meta"]),
        **arrays,
    )
    data.validate()
    return data


def load_trace(path: str | pathlib.Path) -> TraceData:
    """Read a trace written by :func:`save_trace`."""
    with np.load(pathlib.Path(path), allow_pickle=False) as z:
        data = TraceData(
            alloc_names=[str(s) for s in z["alloc_names"]],
            alloc_sizes=z["alloc_sizes"],
            alloc_read_only=z["alloc_read_only"],
            alloc_advice=[str(s) for s in z["alloc_advice"]],
            kernel_names=[str(s) for s in z["kernel_names"]],
            kernel_iterations=z["kernel_iterations"],
            wave_kernel=z["wave_kernel"],
            wave_offsets=z["wave_offsets"],
            wave_compute=z["wave_compute"],
            pages=z["pages"],
            is_write=z["is_write"],
            counts=z["counts"],
            version=int(z["version"][0]),
            meta={"workload": str(z["meta_workload"][0]),
                  "category": str(z["meta_category"][0]),
                  "seed": int(z["meta_seed"][0])},
        )
    data.validate()
    return data
