"""Replaying recorded traces as workloads."""

from __future__ import annotations

import math
import pathlib

import numpy as np

from ..memory.advice import Advice
from ..workloads.base import Category, KernelLaunch, Wave, Workload
from .format import TraceData
from .recorder import load_trace, load_trace_dir


class TraceWorkload(Workload):
    """A workload that replays a recorded trace verbatim.

    The replay reallocates the trace's allocation table in order, which
    reproduces the identical virtual layout (the allocator is
    deterministic), so the recorded page ids remain valid.

    ``trace`` may be in-memory :class:`TraceData`, an ``.npz`` file
    path, or a trace *directory* (the mmap-able layout of
    :func:`repro.trace.recorder.save_trace_dir`); directories are
    memory-mapped, so concurrent replays of one cache entry share a
    single page-cache copy of the access arrays.
    """

    def __init__(self, trace: TraceData | str | pathlib.Path) -> None:
        super().__init__()
        if not isinstance(trace, TraceData):
            p = pathlib.Path(trace)
            trace = load_trace_dir(p) if p.is_dir() else load_trace(p)
        trace.validate()
        self.trace = trace
        self.name = trace.meta.get("workload") or "trace"
        cat = trace.meta.get("category", "")
        self.category = (Category(cat) if cat in
                         (c.value for c in Category) else Category.IRREGULAR)
        # Recorded traces list waves in launch order, so each launch is
        # one contiguous segment of ``wave_kernel`` and a binary search
        # replaces the per-launch full scan.  Externally-produced traces
        # may interleave; those keep the scan.
        wk = trace.wave_kernel
        self._ordered = bool(wk.size == 0 or (wk[1:] >= wk[:-1]).all())

    def _allocate(self, vas, rng) -> None:
        t = self.trace
        for name, size, ro, adv in zip(t.alloc_names, t.alloc_sizes,
                                       t.alloc_read_only, t.alloc_advice):
            self._register(vas.malloc_managed(
                name, int(size), read_only=bool(ro), advice=Advice(adv)))

    def _waves_for(self, launch_index: int):
        t = self.trace
        if self._ordered:
            wave_ids = range(
                int(np.searchsorted(t.wave_kernel, launch_index, "left")),
                int(np.searchsorted(t.wave_kernel, launch_index, "right")))
        else:
            wave_ids = np.flatnonzero(t.wave_kernel == launch_index)
        for w in wave_ids:
            lo, hi = t.wave_offsets[w], t.wave_offsets[w + 1]
            compute = t.wave_compute[w]
            yield Wave(t.pages[lo:hi], t.is_write[lo:hi],
                       counts=t.counts[lo:hi],
                       compute_cycles=None if math.isnan(compute)
                       else compute)

    def kernels(self):
        t = self.trace
        for kid, (name, it) in enumerate(zip(t.kernel_names,
                                             t.kernel_iterations)):
            yield KernelLaunch(name, int(it),
                               lambda k=kid: self._waves_for(k))
