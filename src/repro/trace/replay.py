"""Replaying recorded traces as workloads."""

from __future__ import annotations

import math
import pathlib

import numpy as np

from ..memory.advice import Advice
from ..workloads.base import Category, KernelLaunch, Wave, Workload
from .format import TraceData
from .recorder import load_trace


class TraceWorkload(Workload):
    """A workload that replays a recorded trace verbatim.

    The replay reallocates the trace's allocation table in order, which
    reproduces the identical virtual layout (the allocator is
    deterministic), so the recorded page ids remain valid.
    """

    def __init__(self, trace: TraceData | str | pathlib.Path) -> None:
        super().__init__()
        if not isinstance(trace, TraceData):
            trace = load_trace(trace)
        trace.validate()
        self.trace = trace
        self.name = trace.meta.get("workload") or "trace"
        cat = trace.meta.get("category", "")
        self.category = (Category(cat) if cat in
                         (c.value for c in Category) else Category.IRREGULAR)

    def _allocate(self, vas, rng) -> None:
        t = self.trace
        for name, size, ro, adv in zip(t.alloc_names, t.alloc_sizes,
                                       t.alloc_read_only, t.alloc_advice):
            self._register(vas.malloc_managed(
                name, int(size), read_only=bool(ro), advice=Advice(adv)))

    def _waves_for(self, launch_index: int):
        t = self.trace
        wave_ids = np.flatnonzero(t.wave_kernel == launch_index)
        for w in wave_ids:
            lo, hi = t.wave_offsets[w], t.wave_offsets[w + 1]
            compute = t.wave_compute[w]
            yield Wave(t.pages[lo:hi], t.is_write[lo:hi],
                       counts=t.counts[lo:hi],
                       compute_cycles=None if math.isnan(compute)
                       else compute)

    def kernels(self):
        t = self.trace
        for kid, (name, it) in enumerate(zip(t.kernel_names,
                                             t.kernel_iterations)):
            yield KernelLaunch(name, int(it),
                               lambda k=kid: self._waves_for(k))
