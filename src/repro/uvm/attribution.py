"""Per-tenant eviction-interference and thrashing attribution.

Under multi-tenant serving (:mod:`repro.serve`) every tenant's waves
flow through one shared :class:`~repro.uvm.driver.UvmDriver`, so the
driver's aggregate counters cannot answer the isolation questions a
serving layer is judged on: *whose* data was evicted, and was it pushed
out by its owner's own working set or by a neighbor's pressure?

:class:`TenantAttribution` is an optional driver plug-in
(``driver.attribution``) that answers both.  The serving loop sets
:attr:`current` to the tenant whose wave is being processed; the driver
calls :meth:`on_evict` with every evicted block batch and
:meth:`on_thrash` with every re-migrated (thrashing) block batch.  The
plug-in maps blocks to owners through a static per-block owner table
and accumulates three per-tenant counters:

* ``evicted_blocks`` -- blocks a tenant lost to eviction (victim side);
* ``cross_evictions`` -- the subset evicted while *another* tenant's
  wave was driving the pressure (the interference metric);
* ``thrash_migrations`` -- a tenant's blocks re-migrated after eviction
  (the paper's round-trip pathology, attributed to the data's owner).

Attribution is strictly observational: it mutates only its own arrays,
so instrumented runs are bit-identical to bare ones, and a driver
without a plug-in (the default) pays a single ``is None`` check per
eviction/thrash site.
"""

from __future__ import annotations

import numpy as np


class TenantAttribution:
    """Maps driver-level evictions and thrash to owning tenants.

    ``block_owner`` assigns every basic block an owning tenant id
    (``-1`` for alignment gaps and unowned ranges); ``n_tenants`` sizes
    the counter arrays.
    """

    def __init__(self, block_owner: np.ndarray, n_tenants: int) -> None:
        if n_tenants < 1:
            raise ValueError("n_tenants must be >= 1")
        self.block_owner = np.asarray(block_owner, dtype=np.int32)
        self.n_tenants = n_tenants
        if (self.block_owner.size
                and int(self.block_owner.max()) >= n_tenants):
            raise ValueError("block_owner references a tenant id past "
                             f"n_tenants ({n_tenants})")
        #: Tenant whose wave the driver is currently processing (-1:
        #: no tenant context, e.g. warm-up traffic).
        self.current = -1
        #: Per-tenant blocks lost to eviction (victim side).
        self.evicted_blocks = np.zeros(n_tenants, dtype=np.int64)
        #: Per-tenant blocks evicted while another tenant's wave drove
        #: the pressure (eviction interference).
        self.cross_evictions = np.zeros(n_tenants, dtype=np.int64)
        #: Per-tenant thrash migrations (owner's data re-migrated).
        self.thrash_migrations = np.zeros(n_tenants, dtype=np.int64)

    def on_evict(self, victims: np.ndarray) -> None:
        """Charge one batch of evicted blocks to their owners."""
        owners = self.block_owner[victims]
        owned = owners[owners >= 0]
        if not owned.size:
            return
        counts = np.bincount(owned, minlength=self.n_tenants)
        self.evicted_blocks += counts
        if self.current >= 0:
            cross = counts.copy()
            cross[self.current] = 0
            self.cross_evictions += cross
        else:
            self.cross_evictions += counts

    def on_thrash(self, blocks: np.ndarray) -> None:
        """Charge one batch of re-migrated (thrashing) blocks."""
        owners = self.block_owner[blocks]
        owned = owners[owners >= 0]
        if owned.size:
            self.thrash_migrations += np.bincount(
                owned, minlength=self.n_tenants)

    def thrash_of(self, tenant_id: int) -> int:
        """Cumulative thrash migrations charged to ``tenant_id``."""
        return int(self.thrash_migrations[tenant_id])

    def snapshot_thrash(self) -> np.ndarray:
        """Copy of the per-tenant thrash counters (for delta windows)."""
        return self.thrash_migrations.copy()
