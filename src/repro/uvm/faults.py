"""Deterministic fault injection for the simulated UVM transfer path.

Real UVM management treats transfer failure and retry as first-class
behavior (GPUVM, arXiv:2411.05309; intelligent-oversubscription
frameworks model the same for PCIe traffic): a bulk DMA can be dropped
by the link and a device frame allocation can transiently fail under
memory pressure.  The seed simulator silently assumed every transfer
succeeds; :class:`FaultInjector` makes failure an explicit, *seeded*
event source so graceful degradation becomes an experiment axis.

Fault model
-----------

A block migration consists of a device frame **allocation** followed by
a PCIe **transfer**; each attempt fails independently with
``migration_fault_rate`` and ``transfer_fault_rate`` respectively.  The
driver re-attempts a failed migration up to ``max_retries`` times, each
retry preceded by an exponentially growing backoff wait that is charged
to the timing model (the SMs stall exactly as they do for ordinary
fault handling).  Once the budget is exhausted the access *degrades*:
the block stays host-pinned and is served over the remote zero-copy
path -- the same graceful fallback the paper's policies use for cold
data.

Correlated bursts
-----------------

Real fault storms are not memoryless: a flaky link drops several
transfers in a row, then recovers.  Setting
:attr:`~repro.config.FaultConfig.burst_on_prob` > 0 arms a two-state
Markov chain (calm/storm) stepped once per migration site; while the
storm is on, both fault rates are multiplied by
:attr:`~repro.config.FaultConfig.burst_multiplier`.  This composes
fault storms with serving-layer overload spikes (``repro serve``)
without changing the uncorrelated model: with the chain disarmed
(the default) no extra randomness is consumed.

Determinism contract
--------------------

* The injector owns its own :class:`numpy.random.Generator`, seeded
  from ``(seed, stream constant)``, so it never perturbs the workload
  or prefetcher RNG streams.
* Draws happen in wave order, one fault site at a time, so a run is a
  pure function of ``(config, seed)``: serial and parallel grids agree.
* A rate of 0.0 short-circuits before any draw, making zero-rate runs
  bit-identical to runs without an injector at all (the property tests
  pin this) -- burst fields included: the Markov chain only exists
  behind non-zero base rates.
"""

from __future__ import annotations

import numpy as np

from ..config import FaultConfig

#: SeedSequence stream key separating injector draws from every other
#: consumer of the run seed (workload build, prefetcher).
_FAULT_STREAM = 0xFA017


class FaultInjector:
    """Seeded source of transient migration failures.

    >>> inj = FaultInjector(FaultConfig(transfer_fault_rate=0.5,
    ...                                 max_retries=2), seed=7)
    >>> failures, ok = inj.migration_attempt()
    >>> 0 <= failures <= 3
    True
    """

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        self.config = config
        self._rng = np.random.default_rng(
            np.random.SeedSequence(entropy=(seed, _FAULT_STREAM)))
        #: Injected allocation failures across the run (diagnostics).
        self.injected_migration_faults = 0
        #: Injected transfer failures across the run (diagnostics).
        self.injected_transfer_faults = 0
        #: Markov storm state: True while a correlated burst is active.
        self._burst_on = False
        #: Calm<->storm transitions across the run (diagnostics).
        self.burst_transitions = 0

    @property
    def enabled(self) -> bool:
        """Whether any fault class can fire (rate > 0)."""
        return self.config.enabled

    @property
    def in_burst(self) -> bool:
        """Whether the correlated fault storm is currently active."""
        return self._burst_on

    def migration_attempt(self) -> tuple[int, bool]:
        """Simulate one block migration against both fault sites.

        Returns ``(failures, success)``: ``failures`` is the number of
        failed attempts (each one costs a wasted transfer plus one
        backoff wait), ``success`` is False when the whole retry budget
        was exhausted and the access must degrade to the remote path.

        With bursts armed, the calm/storm chain is stepped once per
        call (one migration site), so consecutive migrations see
        correlated rates; all retries of one site share one storm state.
        """
        cfg = self.config
        rng = self._rng
        migration_rate = cfg.migration_fault_rate
        transfer_rate = cfg.transfer_fault_rate
        if cfg.burst_enabled:
            flip = (cfg.burst_off_prob if self._burst_on
                    else cfg.burst_on_prob)
            if flip > 0.0 and rng.random() < flip:
                self._burst_on = not self._burst_on
                self.burst_transitions += 1
            if self._burst_on:
                migration_rate *= cfg.burst_multiplier
                transfer_rate *= cfg.burst_multiplier
        for attempt in range(cfg.max_retries + 1):
            if (migration_rate > 0.0
                    and rng.random() < migration_rate):
                self.injected_migration_faults += 1
                continue
            if (transfer_rate > 0.0
                    and rng.random() < transfer_rate):
                self.injected_transfer_faults += 1
                continue
            return attempt, True
        return cfg.max_retries + 1, False
