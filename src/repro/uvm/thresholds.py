"""Migration-threshold rules (Equation 1 and the static baselines).

A threshold rule answers: *after how many accesses should a non-resident
basic block be migrated to the device?*  Access number ``td`` triggers the
migration; the ``td - 1`` accesses before it are served remotely (zero
copy).  ``td == 1`` is therefore exactly first-touch migration.
"""

from __future__ import annotations

import math

import numpy as np


def first_touch_thresholds(num_blocks: int) -> np.ndarray:
    """Thresholds for the Baseline/Disabled scheme: always migrate at once."""
    return np.ones(num_blocks, dtype=np.int64)


def static_thresholds(num_blocks: int, ts: int) -> np.ndarray:
    """Volta-style static access-counter threshold (the *Always* scheme)."""
    if ts < 1:
        raise ValueError("static threshold must be >= 1")
    return np.full(num_blocks, ts, dtype=np.int64)


def dynamic_threshold_no_oversub(ts: int, occupancy_fraction: float) -> int:
    """Equation 1, first branch: ``td = floor(ts * allocated/total) + 1``.

    Grows from 1 (below ``1/ts`` occupancy: pure first touch) to ``ts``
    just before the device fills, and ``ts + 1`` exactly at full
    occupancy -- matching the worked example in Section IV (ts=8: td is 1
    below 12.5% occupancy, 8 just before full capacity, 9 at the brink of
    oversubscription).
    """
    if ts < 1:
        raise ValueError("static threshold must be >= 1")
    if not 0.0 <= occupancy_fraction <= 1.0:
        raise ValueError(f"occupancy fraction {occupancy_fraction} outside [0, 1]")
    return int(math.floor(ts * occupancy_fraction)) + 1


def dynamic_thresholds_oversub(ts: int, roundtrips: np.ndarray,
                               penalty: int) -> np.ndarray:
    """Equation 1, second branch: ``td = ts * (r + 1) * p`` per block.

    ``r`` is each block's round-trip (eviction) count: the more a block
    has thrashed, the harder it is pinned to host memory.  With ts=8,
    p=2 a never-evicted block migrates on its 16th access; after two
    evictions the threshold is 48, as in the paper's example.
    """
    if ts < 1:
        raise ValueError("static threshold must be >= 1")
    if penalty < 1:
        raise ValueError("migration penalty must be >= 1")
    r = np.asarray(roundtrips, dtype=np.int64)
    if r.size and r.min() < 0:
        raise ValueError("round-trip counts cannot be negative")
    return ts * (r + 1) * penalty


def eq1_thresholds(ts: int, penalty: int, oversubscribed: bool,
                   occupancy_fraction: float, n: int,
                   roundtrips: np.ndarray | None = None) -> np.ndarray:
    """Both Equation-1 regimes as one per-wave kernel, validation-free.

    The driver's hot path calls this once per wave with pre-validated
    parameters (``ts >= 1``, ``penalty >= 1`` -- checked when the policy
    is constructed).  Below oversubscription the scalar occupancy
    threshold is broadcast over ``n`` blocks; above it the per-block
    thrash penalty applies to the counter file's round-trip slice
    (``roundtrips``, only needed then).  Semantics are identical to
    :func:`dynamic_threshold_no_oversub` / :func:`dynamic_thresholds_oversub`.

    This function is the specification; the backend kernels in
    :mod:`repro.accel.kernels` / :mod:`repro.accel.jit` mirror it (the
    hot path calls whichever namespace the config's ``backend``
    selected) and are property-tested bit-identical to it.
    """
    if oversubscribed:
        return ts * penalty * (roundtrips + 1)
    td = math.floor(ts * occupancy_fraction) + 1
    return np.full(n, td, dtype=np.int64)
