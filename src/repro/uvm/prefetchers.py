"""Prefetch strategies: the tree prefetcher and the baselines it beat.

The paper's background (Section II-B) credits the CUDA tree-based
prefetcher as the best of the prefetchers studied by Zheng et al. and
Ganguly et al.  This module provides that prefetcher plus the simpler
strategies those works compared against, so the choice can be ablated:

* :class:`TreePrefetchStrategy` -- the default; the >50% balancing
  heuristic over each chunk's full binary tree.
* :class:`NoPrefetchStrategy` -- pure fault-driven 64KB migration.
* :class:`SequentialPrefetchStrategy` -- migrate the next ``degree``
  absent blocks after the faulting one (within the chunk).
* :class:`RandomPrefetchStrategy` -- migrate ``degree`` random absent
  blocks of the chunk (a deliberately poor spatial predictor).

Every strategy operates on the chunk's :class:`PrefetchTree`, which
doubles as the chunk residency index, so occupancy bookkeeping stays
identical across strategies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .tree import PrefetchTree


class PrefetchStrategy(ABC):
    """Decides which absent leaves to pull in alongside a faulting one."""

    @abstractmethod
    def on_fault(self, tree: PrefetchTree, leaf: int) -> np.ndarray:
        """Install ``leaf`` and return the extra leaves prefetched.

        Implementations must mark every returned leaf resident in
        ``tree`` before returning.
        """


class TreePrefetchStrategy(PrefetchStrategy):
    """The CUDA driver's tree-based neighborhood prefetcher."""

    def on_fault(self, tree, leaf):
        return tree.on_fault(leaf)


class NoPrefetchStrategy(PrefetchStrategy):
    """Fault-driven migration only."""

    def on_fault(self, tree, leaf):
        tree.mark_resident(leaf)
        return np.empty(0, dtype=np.int64)


class SequentialPrefetchStrategy(PrefetchStrategy):
    """Prefetch the next ``degree`` absent leaves after the fault."""

    def __init__(self, degree: int = 4) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree

    def on_fault(self, tree, leaf):
        tree.mark_resident(leaf)
        picked = []
        for cand in range(leaf + 1, tree.num_leaves):
            if len(picked) == self.degree:
                break
            if not tree.is_resident(cand):
                tree.mark_resident(cand)
                picked.append(cand)
        return np.array(picked, dtype=np.int64)


class RandomPrefetchStrategy(PrefetchStrategy):
    """Prefetch ``degree`` random absent leaves of the chunk."""

    def __init__(self, degree: int = 4, seed: int = 0) -> None:
        if degree < 1:
            raise ValueError("prefetch degree must be >= 1")
        self.degree = degree
        self._rng = np.random.default_rng(seed)

    def on_fault(self, tree, leaf):
        tree.mark_resident(leaf)
        absent = np.array([l for l in range(tree.num_leaves)
                           if not tree.is_resident(l)], dtype=np.int64)
        if absent.size == 0:
            return absent
        n = min(self.degree, absent.size)
        picked = self._rng.choice(absent, size=n, replace=False)
        for l in picked:
            tree.mark_resident(int(l))
        return np.sort(picked)


def make_prefetcher(kind: str, degree: int = 4,
                    seed: int = 0) -> PrefetchStrategy:
    """Build a strategy by name: tree / none / sequential / random."""
    if kind == "tree":
        return TreePrefetchStrategy()
    if kind == "none":
        return NoPrefetchStrategy()
    if kind == "sequential":
        return SequentialPrefetchStrategy(degree)
    if kind == "random":
        return RandomPrefetchStrategy(degree, seed)
    raise ValueError(f"unknown prefetcher kind {kind!r}")
