"""UVM driver model: residency, counters, prefetcher, replacement, driver."""

from .counters import AccessCounterFile
from .driver import DriverCounters, UvmDriver, WaveOutcome
from .eviction import ChunkDirectory, select_victims
from .faults import FaultInjector
from .prefetchers import (
    NoPrefetchStrategy,
    PrefetchStrategy,
    RandomPrefetchStrategy,
    SequentialPrefetchStrategy,
    TreePrefetchStrategy,
    make_prefetcher,
)
from .residency import ResidencyMap
from .tree import PrefetchTree

__all__ = [
    "AccessCounterFile",
    "ChunkDirectory",
    "DriverCounters",
    "FaultInjector",
    "NoPrefetchStrategy",
    "PrefetchStrategy",
    "PrefetchTree",
    "RandomPrefetchStrategy",
    "SequentialPrefetchStrategy",
    "TreePrefetchStrategy",
    "make_prefetcher",
    "ResidencyMap",
    "UvmDriver",
    "WaveOutcome",
    "select_victims",
]
