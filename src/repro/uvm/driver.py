"""The UVM driver model: far-fault handling, migration, prefetch, eviction.

This is the component the paper modifies ("solely based on pragmatic
modification to GPU driver", Section IV).  The driver consumes *waves* --
batches of page accesses issued by concurrently scheduled warps between
synchronization points -- and resolves every access to one of three
services:

* **local**: the basic block is device-resident;
* **remote**: the block stays host-pinned and the access crosses PCIe as
  a zero-copy transaction;
* **migration**: the access (a far-fault) pulls the block into device
  memory, runs the tree prefetcher, and may force evictions.

Which service a far access receives is delegated to a
:class:`repro.core.policy.DecisionPolicy`; the mechanics (counters,
trees, replacement, write-back) live here and are shared by every scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import EvictionGranularity, SimulationConfig
from ..memory.advice import Advice
from ..core.policy import DecisionPolicy, make_policy
from ..memory import layout
from ..memory.allocator import VirtualAddressSpace
from ..memory.device import DeviceMemory
from ..memory.host import HostMemory
from .counters import AccessCounterFile
from .eviction import ChunkDirectory, select_victims
from .prefetchers import make_prefetcher
from .residency import ResidencyMap
from .tree import PrefetchTree


@dataclass
class WaveOutcome:
    """Event counts produced by one wave, consumed by the timing model."""

    n_accesses: int = 0
    #: Accesses served from device-local DRAM.
    n_local: int = 0
    #: Accesses served remotely over PCIe (zero copy).
    n_remote: int = 0
    #: Far-faults that triggered a block migration.
    fault_migrations: int = 0
    #: Far-faults that only established a remote mapping.
    mapping_faults: int = 0
    #: 64KB blocks transferred host->device on faults.
    migrated_blocks: int = 0
    #: 64KB blocks transferred host->device by the prefetcher.
    prefetched_blocks: int = 0
    #: Chunks evicted to make room.
    evicted_chunks: int = 0
    #: 64KB blocks released by evictions.
    evicted_blocks: int = 0
    #: Dirty blocks written back device->host before release.
    writeback_blocks: int = 0
    #: Migrations (fault or prefetch) of a block with round trips > 0.
    thrash_migrations: int = 0

    @property
    def fault_events(self) -> int:
        """Total far-fault events needing driver handling."""
        return self.fault_migrations + self.mapping_faults

    @property
    def h2d_blocks(self) -> int:
        """Total host->device block transfers."""
        return self.migrated_blocks + self.prefetched_blocks

    def merge(self, other: "WaveOutcome") -> None:
        """Accumulate ``other`` into this outcome (for aggregation)."""
        for f in self.__dataclass_fields__:
            setattr(self, f, getattr(self, f) + getattr(other, f))


@dataclass
class DriverCounters:
    """Cumulative driver statistics across a whole run."""

    totals: WaveOutcome = field(default_factory=WaveOutcome)
    waves: int = 0
    #: Blocks that have thrashed (been re-migrated) at least once.
    thrashed_block_ids: set[int] = field(default_factory=set)


class UvmDriver:
    """Shared UVM mechanics parameterized by a migrate-vs-remote policy."""

    def __init__(self, vas: VirtualAddressSpace, config: SimulationConfig) -> None:
        if not vas.allocations:
            raise ValueError("cannot build a driver over an empty VA space")
        self.config = config
        self.vas = vas
        total_blocks = vas.total_blocks
        self.residency = ResidencyMap(total_blocks)
        self.host = HostMemory(total_blocks)
        self.device = DeviceMemory(config.memory.device_capacity)
        self.counters = AccessCounterFile(
            total_blocks,
            counter_bits=config.policy.counter_bits,
            roundtrip_bits=config.policy.roundtrip_bits,
        )
        self.directory = ChunkDirectory(vas.chunks, total_blocks)
        self.trees: list[PrefetchTree] = [
            PrefetchTree(span.num_blocks) for span in vas.chunks
        ]
        #: Whether a block has ever been device-resident (drives the
        #: per-block arming of the Oversub scheme's soft-pinning).
        self.ever_migrated = np.zeros(total_blocks, dtype=bool)
        # Programmer placement hints (Section III-C): hard-pinned blocks
        # never migrate; preferred-host blocks get at least the static
        # delayed-migration threshold regardless of the active policy.
        self.block_pinned_host = vas.block_advice(Advice.PINNED_HOST)
        self.block_preferred_host = vas.block_advice(Advice.PREFERRED_HOST)
        self.policy: DecisionPolicy = make_policy(config.policy)
        kind = (config.memory.prefetcher.value
                if config.memory.prefetcher_enabled else "none")
        self.prefetcher = make_prefetcher(
            kind, config.memory.prefetch_degree, seed=config.seed)
        self.stats = DriverCounters()
        self._clock = 0  # logical LRU timestamp, bumped per wave
        # Per-wave caches for LFU victim ordering.
        self._heat_cache: np.ndarray | None = None
        self._dirty_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # wave processing
    # ------------------------------------------------------------------

    def process_wave(self, pages: np.ndarray, is_write: np.ndarray,
                     counts: np.ndarray | None = None) -> WaveOutcome:
        """Resolve one wave of page accesses; returns its event counts.

        ``counts`` optionally weights each entry with the number of
        coalesced accesses it represents (default: one each).
        """
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if pages.shape != is_write.shape:
            raise ValueError("pages and is_write must have identical shape")
        if counts is None:
            counts = np.ones(pages.shape, dtype=np.int64)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != pages.shape:
                raise ValueError("counts must match pages in shape")
        out = WaveOutcome(n_accesses=int(counts.sum()))
        if pages.size == 0:
            return out
        self._clock += 1
        self._heat_cache = None
        self._dirty_cache = None

        blocks = pages >> layout.BLOCK_SHIFT
        ublocks, inv = np.unique(blocks, return_inverse=True)
        totals = np.bincount(inv, weights=counts,
                             minlength=ublocks.size).astype(np.int64)
        w_counts = np.bincount(inv, weights=counts * is_write,
                               minlength=ublocks.size).astype(np.int64)

        # LRU touch + warp pinning for every addressed chunk.
        touched_chunks = np.unique(self.directory.chunk_of_block[ublocks])
        touched_chunks = touched_chunks[touched_chunks >= 0]
        self.directory.touch(touched_chunks, self._clock)
        pinned = np.zeros(self.directory.num_chunks, dtype=bool)
        pinned[touched_chunks] = True

        res_mask = self.residency.resident[ublocks]

        # -- resident blocks: local service ------------------------------
        out.n_local += int(totals[res_mask].sum())
        dirty_now = ublocks[res_mask & (w_counts > 0)]
        if dirty_now.size:
            self.residency.mark_dirty(dirty_now)

        # -- non-resident blocks: policy decision -------------------------
        # (Decided against pre-wave counter values, then counters updated.)
        nr = ~res_mask
        if np.any(nr):
            self._handle_far_accesses(ublocks[nr], totals[nr], w_counts[nr],
                                      pinned, out)

        # Historic counters track local and remote accesses alike (Sec. IV).
        self.counters.add_accesses(ublocks, totals)

        self.stats.waves += 1
        self.stats.totals.merge(out)
        return out

    def _handle_far_accesses(self, nrb: np.ndarray, k: np.ndarray,
                             kw: np.ndarray, pinned: np.ndarray,
                             out: WaveOutcome) -> None:
        """Split far accesses into remote service and migrations."""
        td, c0 = self.policy.decision_state(nrb, self)
        td = np.asarray(td, dtype=np.int64)
        c0 = np.asarray(c0, dtype=np.int64)

        # Programmer hints override the policy (Section III-C).
        preferred = self.block_preferred_host[nrb]
        if np.any(preferred):
            ts = self.config.policy.static_threshold
            volta = self.counters.volta_counts[nrb]
            td = np.where(preferred, np.maximum(td, ts), td)
            c0 = np.where(preferred, volta, c0)

        migrate = (c0 + k) >= td
        pinned_host = self.block_pinned_host[nrb]
        if np.any(pinned_host):
            migrate &= ~pinned_host

        # Accesses served remotely before a (possible) migration trigger.
        remote_before = np.clip(td - 1 - c0, 0, k - 1)
        remote = np.where(migrate, remote_before, k)
        out.n_remote += int(remote.sum())
        # Volta hardware counters see every remote access.
        self.counters.add_remote_accesses(nrb, remote)

        # Blocks that stay host-pinned get (or keep) a remote mapping.
        staying = nrb[~migrate]
        if staying.size:
            fresh = staying[~self.host.remote_mapped[staying]]
            out.mapping_faults += int(fresh.size)
            self.host.map_remote(staying)

        # Migrations run block-by-block so prefetch and eviction interact
        # in arrival order, like fault-buffer draining in the real driver.
        mig = nrb[migrate]
        mig_k = k[migrate]
        mig_kw = kw[migrate]
        mig_remote = remote[migrate]
        for b, kk, kkw, rr in zip(mig.tolist(), mig_k.tolist(),
                                  mig_kw.tolist(), mig_remote.tolist()):
            if self.residency.resident[b]:
                # A prefetch earlier in this loop already pulled it in.
                out.n_local += int(kk - rr)
                if kkw > 0:
                    self.residency.mark_dirty(np.array([b]))
                continue
            if self._migrate_block(int(b), pinned, out):
                # One access is the fault itself; the rest hit locally.
                out.n_local += int(kk - rr - 1)
                if kkw > 0:
                    self.residency.mark_dirty(np.array([b]))
            else:
                # No room even after eviction attempts: serve remotely.
                extra = int(kk - rr)
                out.n_remote += extra
                if not self.host.remote_mapped[b]:
                    out.mapping_faults += 1
                    self.host.map_remote(np.array([b]))

    # ------------------------------------------------------------------
    # migration machinery
    # ------------------------------------------------------------------

    def _migrate_block(self, block: int, pinned: np.ndarray,
                       out: WaveOutcome) -> bool:
        """Fault-migrate ``block``; runs prefetcher; returns success."""
        cid = int(self.directory.chunk_of_block[block])
        if cid < 0:
            raise RuntimeError(f"block {block} belongs to no chunk")
        never = np.zeros(self.directory.num_chunks, dtype=bool)
        never[cid] = True

        if not self._make_room(1, pinned, never, out):
            return False
        leaf = block - int(self.directory.first_block[cid])
        tree = self.trees[cid]
        pf_leaves = self.prefetcher.on_fault(tree, leaf)

        self._install(np.array([block], dtype=np.int64), cid)
        out.fault_migrations += 1
        out.migrated_blocks += 1
        if self.counters.roundtrips[block] > 0:
            out.thrash_migrations += 1
            self.stats.thrashed_block_ids.add(block)

        if pf_leaves.size:
            pf_blocks = int(self.directory.first_block[cid]) + pf_leaves
            if self._make_room(int(pf_blocks.size), pinned, never, out):
                self._install(pf_blocks, cid)
                out.prefetched_blocks += int(pf_blocks.size)
                thrashy = pf_blocks[self.counters.roundtrips[pf_blocks] > 0]
                out.thrash_migrations += int(thrashy.size)
                self.stats.thrashed_block_ids.update(thrashy.tolist())
            else:
                # Could not hold the prefetch: roll the leaves back out of
                # the tree by clearing and re-marking only true residents.
                self._rebuild_tree(cid)
        return True

    def _install(self, blocks: np.ndarray, cid: int) -> None:
        """Claim frames and map ``blocks`` device-resident."""
        self.device.allocate(int(blocks.size))
        self.residency.mark_resident(blocks)
        self.host.migrate_to_device(blocks)
        self.counters.reset_volta(blocks)
        self.ever_migrated[blocks] = True
        self.directory.occupancy[cid] += int(blocks.size)
        self.directory.touch(np.array([cid]), self._clock)

    def _rebuild_tree(self, cid: int) -> None:
        """Resynchronize a chunk's tree with the residency map."""
        tree = self.trees[cid]
        tree.clear()
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        first = int(self.directory.first_block[cid])
        for b in chunk_blocks[self.residency.resident[chunk_blocks]]:
            tree.mark_resident(int(b) - first)

    def _make_room(self, n_blocks: int, pinned: np.ndarray,
                   never: np.ndarray, out: WaveOutcome) -> bool:
        """Evict until ``n_blocks`` frames are free; False if impossible.

        At the default 2MB granularity whole victim chunks are evicted;
        at 64KB granularity only as many blocks as needed are evicted
        from each victim chunk, coldest blocks first.
        """
        if self.device.can_fit(n_blocks):
            return True
        self.device.note_pressure()
        needed = n_blocks - self.device.free_blocks
        heat = dirty = None
        if self.config.memory.replacement.value == "lfu":
            if self._heat_cache is None:
                self._heat_cache = self.directory.chunk_heat_buckets(
                    self.counters.counts, self.residency.resident)
                self._dirty_cache = self.directory.chunk_dirty(self.residency.dirty)
            heat, dirty = self._heat_cache, self._dirty_cache
        try:
            victims = select_victims(
                self.directory, needed, self.config.memory.replacement,
                pinned, heat=heat, dirty_any=dirty, never=never)
        except RuntimeError:
            return False
        block_granular = (self.config.memory.eviction_granularity
                          is EvictionGranularity.BLOCK_64KB)
        for cid in victims:
            if block_granular:
                still_needed = n_blocks - self.device.free_blocks
                if still_needed <= 0:
                    break
                self._evict_blocks(cid, still_needed, out)
            else:
                self._evict_chunk(cid, out)
        return self.device.can_fit(n_blocks)

    def _evict_blocks(self, cid: int, n_wanted: int,
                      out: WaveOutcome) -> None:
        """Evict up to ``n_wanted`` of chunk ``cid``'s coldest blocks."""
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        rblocks = chunk_blocks[self.residency.resident[chunk_blocks]]
        if rblocks.size == 0:
            return
        order = np.argsort(self.counters.counts[rblocks], kind="stable")
        victims = rblocks[order[:n_wanted]]
        first = int(self.directory.first_block[cid])
        tree = self.trees[cid]
        for b in victims:
            tree.remove(int(b) - first)
        n_dirty = self.residency.evict(victims)
        self.counters.add_roundtrip(victims)
        self.host.accept_eviction(victims)
        self.device.release(int(victims.size))
        self.directory.occupancy[cid] -= int(victims.size)
        self._dirty_cache = None
        self._heat_cache = None
        out.evicted_chunks += int(victims.size == rblocks.size)
        out.evicted_blocks += int(victims.size)
        out.writeback_blocks += n_dirty

    def _evict_chunk(self, cid: int, out: WaveOutcome) -> None:
        """Evict every resident block of chunk ``cid``."""
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        rblocks = chunk_blocks[self.residency.resident[chunk_blocks]]
        if rblocks.size == 0:
            return
        n_dirty = self.residency.evict(rblocks)
        self.counters.add_roundtrip(rblocks)
        self.host.accept_eviction(rblocks)
        self.device.release(int(rblocks.size))
        self.trees[cid].clear()
        self.directory.occupancy[cid] = 0
        # Eviction invalidates the per-wave dirty cache for LFU ordering.
        self._dirty_cache = None
        self._heat_cache = None
        out.evicted_chunks += 1
        out.evicted_blocks += int(rblocks.size)
        out.writeback_blocks += n_dirty

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def check_consistency(self) -> None:
        """Verify cross-structure invariants (used by tests)."""
        assert self.residency.resident_count == self.device.used_blocks, \
            "residency map and device ledger disagree"
        for cid, span in enumerate(self.vas.chunks):
            chunk_blocks = self.directory.blocks_of_chunk(cid)
            res = set(np.flatnonzero(
                self.residency.resident[chunk_blocks]).tolist())
            tree_res = set(self.trees[cid].resident_leaves().tolist())
            assert res == tree_res, f"tree/residency mismatch in chunk {cid}"
            assert self.directory.occupancy[cid] == len(res), \
                f"occupancy mismatch in chunk {cid}"
            self.trees[cid].check_invariants()
        # A block can never be host-valid and device-resident at once.
        assert not np.any(self.residency.resident & self.host.valid), \
            "block resident on both host and device"
