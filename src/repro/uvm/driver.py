"""The UVM driver model: far-fault handling, migration, prefetch, eviction.

This is the component the paper modifies ("solely based on pragmatic
modification to GPU driver", Section IV).  The driver consumes *waves* --
batches of page accesses issued by concurrently scheduled warps between
synchronization points -- and resolves every access to one of three
services:

* **local**: the basic block is device-resident;
* **remote**: the block stays host-pinned and the access crosses PCIe as
  a zero-copy transaction;
* **migration**: the access (a far-fault) pulls the block into device
  memory, runs the tree prefetcher, and may force evictions.

Which service a far access receives is delegated to a
:class:`repro.core.policy.DecisionPolicy`; the mechanics (counters,
trees, replacement, write-back) live here and are shared by every scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..accel import resolve_backend
from ..accel.sharding import make_shard_plan
from ..config import EvictionGranularity, SimulationConfig
from ..memory.advice import Advice
from ..core.policy import DecisionPolicy, make_policy
from ..memory import layout
from ..memory.allocator import VirtualAddressSpace
from ..memory.device import DeviceMemory
from ..memory.host import HostMemory
from ..obs.events import Eviction, FaultRetry, MigrationDecision, PrefetchExpand
from ..workloads.base import default_counts
from .counters import AccessCounterFile
from .eviction import ChunkDirectory, select_victims
from .faults import FaultInjector
from .prefetchers import TreePrefetchStrategy, make_prefetcher
from .residency import ResidencyMap
from .tree import PrefetchTree


@dataclass
class WaveOutcome:
    """Event counts produced by one wave, consumed by the timing model."""

    n_accesses: int = 0
    #: Accesses served from device-local DRAM.
    n_local: int = 0
    #: Accesses served remotely over PCIe (zero copy).
    n_remote: int = 0
    #: Far-faults that triggered a block migration.
    fault_migrations: int = 0
    #: Far-faults that only established a remote mapping.
    mapping_faults: int = 0
    #: 64KB blocks transferred host->device on faults.
    migrated_blocks: int = 0
    #: 64KB blocks transferred host->device by the prefetcher.
    prefetched_blocks: int = 0
    #: Chunks evicted to make room.
    evicted_chunks: int = 0
    #: 64KB blocks released by evictions.
    evicted_blocks: int = 0
    #: Dirty blocks written back device->host before release.
    writeback_blocks: int = 0
    #: Migrations (fault or prefetch) of a block with round trips > 0.
    thrash_migrations: int = 0
    #: Migration attempts re-issued after an injected transient fault.
    retried_transfers: int = 0
    #: Far accesses degraded to the remote path after the migration
    #: retry budget was exhausted (fault injection only).
    degraded_accesses: int = 0
    #: Cumulative retry backoff wait injected by fault handling, in
    #: microseconds (converted to stall cycles by the timing model).
    retry_backoff_us: float = 0.0

    @property
    def fault_events(self) -> int:
        """Total far-fault events needing driver handling."""
        return self.fault_migrations + self.mapping_faults

    @property
    def h2d_blocks(self) -> int:
        """Total host->device block transfers."""
        return self.migrated_blocks + self.prefetched_blocks

    def merge(self, other: "WaveOutcome") -> None:
        """Accumulate ``other`` into this outcome (for aggregation).

        The body is replaced after the class definition by a compiled,
        field-unrolled accumulate: ``merge`` runs on every wave, and the
        generic getattr/setattr walk costs ~4 dynamic lookups per field
        per call.
        """
        raise NotImplementedError  # pragma: no cover - replaced below


#: Field names of :class:`WaveOutcome`, precomputed once and used to
#: code-generate the unrolled ``merge`` body below.
_WAVE_OUTCOME_FIELDS: tuple[str, ...] = tuple(
    f.name for f in WaveOutcome.__dataclass_fields__.values())


def _compile_merge() -> "callable":
    """Build the unrolled ``WaveOutcome.merge`` from the field list."""
    body = "".join(f"    self.{name} += other.{name}\n"
                   for name in _WAVE_OUTCOME_FIELDS)
    ns: dict[str, object] = {}
    exec(f"def merge(self, other):\n{body}", ns)  # noqa: S102
    fn = ns["merge"]
    fn.__doc__ = WaveOutcome.merge.__doc__
    return fn


WaveOutcome.merge = _compile_merge()


@dataclass
class DriverCounters:
    """Cumulative driver statistics across a whole run."""

    totals: WaveOutcome = field(default_factory=WaveOutcome)
    waves: int = 0
    #: Waves resolved entirely by the resident fast path (every accessed
    #: block already device-resident: counter add + LRU touch only).
    fast_path_waves: int = 0
    #: Blocks that have thrashed (been re-migrated) at least once.
    thrashed_block_ids: set[int] = field(default_factory=set)


class UvmDriver:
    """Shared UVM mechanics parameterized by a migrate-vs-remote policy."""

    def __init__(self, vas: VirtualAddressSpace, config: SimulationConfig,
                 obs=None) -> None:
        if not vas.allocations:
            raise ValueError("cannot build a driver over an empty VA space")
        self.config = config
        self.vas = vas
        #: Optional :class:`repro.obs.Observability` handle.  ``None``
        #: (the default) is the zero-overhead path: instrumented sites
        #: guard on the derived ``_bus``/``_prof`` attributes and never
        #: construct an event.  Emission is side-effect-free on driver
        #: state, so instrumented runs are bit-identical to bare ones.
        self.obs = obs
        self._bus = obs.bus if obs is not None else None
        self._prof = obs.profiler if obs is not None else None
        #: Resolved hot-loop kernel backend (``repro.accel``).  The
        #: resolved name may differ from ``config.backend`` when numba
        #: was requested but is not importable (warned once, falls back
        #: to the numpy reference kernels).
        self.accel = resolve_backend(config.backend)
        self._kern = self.accel.kernels
        total_blocks = vas.total_blocks
        self.residency = ResidencyMap(total_blocks)
        self.host = HostMemory(total_blocks)
        self.device = DeviceMemory(config.memory.device_capacity)
        self.counters = AccessCounterFile(
            total_blocks,
            counter_bits=config.policy.counter_bits,
            roundtrip_bits=config.policy.roundtrip_bits,
            bus=self._bus,
            kernels=self._kern,
        )
        self.directory = ChunkDirectory(vas.chunks, total_blocks)
        self.trees: list[PrefetchTree] = [
            PrefetchTree(span.num_blocks, kernels=self._kern)
            for span in vas.chunks
        ]
        #: Chunk-aligned partition of the block address space for
        #: ``--shards N`` (None = unsharded).  Only the stateless
        #: per-wave decision/accounting phase is sharded; results are
        #: bit-identical for any shard count (property-tested).
        self._shard_plan = (
            make_shard_plan(self.directory.first_block, total_blocks,
                            config.shards)
            if config.shards > 1 else None)
        #: Whether a block has ever been device-resident (drives the
        #: per-block arming of the Oversub scheme's soft-pinning).
        self.ever_migrated = np.zeros(total_blocks, dtype=bool)
        # Programmer placement hints (Section III-C): hard-pinned blocks
        # never migrate; preferred-host blocks get at least the static
        # delayed-migration threshold regardless of the active policy.
        self.block_pinned_host = vas.block_advice(Advice.PINNED_HOST)
        self.block_preferred_host = vas.block_advice(Advice.PREFERRED_HOST)
        # Advice is fixed at allocation time, so the common no-hints case
        # is decided once here instead of with per-wave array reductions.
        self._has_pinned = bool(self.block_pinned_host.any())
        self._has_preferred = bool(self.block_preferred_host.any())
        self.policy: DecisionPolicy = make_policy(config.policy)
        kind = (config.memory.prefetcher.value
                if config.memory.prefetcher_enabled else "none")
        self.prefetcher = make_prefetcher(
            kind, config.memory.prefetch_degree, seed=config.seed)
        #: Transient-fault source; None when both rates are 0.0 so the
        #: zero-rate hot path is bit-identical to a fault-free build.
        self.injector: FaultInjector | None = (
            FaultInjector(config.faults, seed=config.seed)
            if config.faults.enabled else None)
        #: Optional per-tenant eviction/thrash attribution
        #: (:class:`repro.uvm.attribution.TenantAttribution`), attached
        #: by the serving layer.  ``None`` (the default) is the
        #: zero-overhead path: hooks guard on the attribute and the
        #: plug-in mutates only its own arrays, so attributed runs stay
        #: bit-identical to bare ones.
        self.attribution = None
        #: Re-verify accounting invariants after every wave (slow).
        self.debug_invariants = config.debug_invariants
        self.stats = DriverCounters()
        self._clock = 0  # logical LRU timestamp, bumped per wave
        #: Resolve migrations through the batched drain (chunk-grouped
        #: bulk installs).  The scalar drain is kept as the reference
        #: implementation; the equivalence property tests and the perf
        #: harness flip this flag to compare the two paths.
        self.batched_migrations = True
        #: Resolve all-resident waves through the short-circuit fast
        #: path (one residency gather, then counter add + LRU touch
        #: only).  Off, every wave walks the full pipeline; the
        #: equivalence property tests flip this flag to pin
        #: bit-identical outcomes and driver state.
        self.resident_fast_path = True
        # Per-wave LFU victim-ordering caches: per-chunk resident heat
        # sums and any-dirty flags, built lazily at the wave's first
        # pressure event and updated incrementally on install/evict.
        self._heat_sum: np.ndarray | None = None
        self._dirty_cache: np.ndarray | None = None
        # Per-wave LRU victim order: ``last_touch`` only moves at the
        # start of a wave (installs re-touch already-touched chunks), so
        # the argsort is computed at most once per wave.
        self._lru_order: np.ndarray | None = None

    # ------------------------------------------------------------------
    # wave processing
    # ------------------------------------------------------------------

    def process_wave(self, pages: np.ndarray, is_write: np.ndarray,
                     counts: np.ndarray | None = None) -> WaveOutcome:
        """Resolve one wave of page accesses; returns its event counts.

        ``counts`` optionally weights each entry with the number of
        coalesced accesses it represents (default: one each).
        """
        blocks, is_write, counts = self._prepare_wave(pages, is_write, counts)
        return self._process_blocks(blocks, is_write, counts)

    def _prepare_wave(self, pages, is_write, counts):
        """Validate/convert one wave's arrays; returns block-space form.

        Pure (no driver state touched), so batch assembly can prepare
        every segment up front before any of them executes.
        """
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if pages.shape != is_write.shape:
            raise ValueError("pages and is_write must have identical shape")
        if counts is None:
            counts = default_counts(pages.size)
        else:
            counts = np.asarray(counts, dtype=np.int64)
            if counts.shape != pages.shape:
                raise ValueError("counts must match pages in shape")
        return pages >> layout.BLOCK_SHIFT, is_write, counts

    def _group_wave(self, blocks, is_write, counts):
        """Group a wave's accesses per basic block: sort once, then
        segment-reduce, which beats np.unique + two weighted bincounts
        on the per-wave hot path."""
        if blocks.size == 1 or bool((blocks[1:] >= blocks[:-1]).all()):
            # Sweep-style waves arrive block-sorted: skip the argsort
            # and the three gather permutations entirely.
            sorted_blocks = blocks
            sorted_counts = counts
            sorted_w = counts * is_write
        else:
            order = np.argsort(blocks, kind="stable")
            sorted_blocks = blocks[order]
            sorted_counts = counts[order]
            sorted_w = (counts * is_write)[order]
        return self._kern.group_sorted(sorted_blocks, sorted_counts,
                                       sorted_w)

    def _process_blocks(self, blocks: np.ndarray, is_write: np.ndarray,
                        counts: np.ndarray, grouped=None) -> WaveOutcome:
        """The wave pipeline over prepared block-space arrays.

        ``grouped`` optionally carries a precomputed :meth:`_group_wave`
        result for these exact arrays (the batch path caches grouping
        across re-speculation); grouping is pure, so reuse is safe.
        """
        out = WaveOutcome(n_accesses=int(counts.sum()))
        if blocks.size == 0:
            return out
        self._clock += 1
        self._heat_sum = None
        self._dirty_cache = None
        self._lru_order = None
        if self._bus is not None:
            # Wave context for every event emitted below this frame.
            self._bus.wave = self.stats.waves

        # -- resident fast path ------------------------------------------
        # Steady state for a warmed-up working set: every accessed block
        # already device-resident.  One residency gather detects it, and
        # the wave then needs only local-service accounting, the dirty
        # marks, the LRU touch, and the counter add -- no per-block
        # grouping, policy consultation, fault injection, or room-making.
        # Duplicate block/chunk ids are harmless to each of those updates,
        # so the grouping pass is skipped entirely; outcomes and driver
        # state are bit-identical to the full pipeline (property-tested).
        if self.resident_fast_path and self._kern.resident_all(
                self.residency.resident, blocks):
            out.n_local = out.n_accesses
            wb = blocks[is_write]
            if wb.size:
                self._note_dirty(wb)
            self.directory.last_touch[
                self.directory.chunk_of_block[blocks]] = self._clock
            self.counters.add_accesses(blocks, counts)
            self.stats.fast_path_waves += 1
            self.stats.waves += 1
            self.stats.totals.merge(out)
            if self.debug_invariants:
                self._check_wave_accounting()
            return out

        ublocks, totals, w_counts = (
            grouped if grouped is not None
            else self._group_wave(blocks, is_write, counts))

        # LRU touch + warp pinning for every addressed chunk.  The chunk
        # ids of sorted unique blocks are non-decreasing (chunks are laid
        # out in block order), so run compression replaces np.unique.
        touched_chunks = self.directory.chunk_of_block[ublocks]
        touched_chunks = touched_chunks[np.concatenate(
            ([True], touched_chunks[1:] != touched_chunks[:-1]))]
        touched_chunks = touched_chunks[touched_chunks >= 0]
        self.directory.touch(touched_chunks, self._clock)
        pinned = np.zeros(self.directory.num_chunks, dtype=bool)
        pinned[touched_chunks] = True

        res_mask = self.residency.resident[ublocks]

        # -- resident blocks: local service ------------------------------
        out.n_local += int(totals[res_mask].sum())
        dirty_now = ublocks[res_mask & (w_counts > 0)]
        if dirty_now.size:
            self._note_dirty(dirty_now)

        # -- non-resident blocks: policy decision -------------------------
        # (Decided against pre-wave counter values, then counters updated.)
        nr = ~res_mask
        if nr.any():
            self._handle_far_accesses(ublocks[nr], totals[nr], w_counts[nr],
                                      pinned, out)

        # Historic counters track local and remote accesses alike (Sec. IV).
        if self._shard_plan is not None:
            self.counters.add_accesses_sharded(
                ublocks, totals, self._shard_plan.split(ublocks))
        else:
            self.counters.add_accesses(ublocks, totals)

        self.stats.waves += 1
        self.stats.totals.merge(out)
        if self.debug_invariants:
            self._check_wave_accounting()
        return out

    # ------------------------------------------------------------------
    # fused multi-tenant batch dispatch (serving layer)
    # ------------------------------------------------------------------

    def process_wave_batch(self, waves, tenants=None) -> list[WaveOutcome]:
        """Resolve a batch of waves as fused dispatches where possible.

        ``waves`` is a sequence of ``(pages, is_write, counts)`` triples
        (``counts`` may be ``None``) -- in the serving layer, one ready
        wave from each tenant of a scheduler sub-round.  ``tenants``
        optionally carries a parallel tenant id per wave for
        eviction/thrash attribution when a segment falls back to the
        sequential pipeline.

        The contract is strict bit-identity with the sequential loop
        ``[self.process_wave(*w) for w in waves]`` -- outcomes, driver
        state, and emitted events all match, so batching is a pure perf
        hint like ``--shards`` (property-pinned on both backends).

        Mechanism: consecutive non-empty waves over pairwise-disjoint
        ascending block ranges (tenant namespaces are disjoint by
        construction) form a *run*.  A run is grouped once with one
        global sort (:meth:`_fused_context`; disjoint ascending
        segments stay contiguous under it), then resolved with one
        residency gather and one fused :meth:`_decision_state` +
        ``decide`` pass evaluated speculatively against pre-batch
        state.  Segments before the first migration candidate are
        *zero-migration* waves: they change no residency, occupancy,
        round-trip, or policy-visible global state, so their fused
        decisions equal the sequential ones and the prefix commits in
        one pass (an all-resident run commits whole: its decision pass
        is empty).  The first migrating segment then runs the full
        sequential pipeline (migrations/evictions in segment =
        tenant-id order), and the remainder of the run is
        re-speculated over suffix views of the same context.

        Cross-segment couplings that would break the speculation are
        guarded explicitly: a fused counter add only happens when no
        global counter halving can trigger at any sequential
        intermediate point (:meth:`_fused_add_safe`), and injected
        migration faults only draw RNG for migration candidates, which
        by construction the committed prefix does not contain.
        """
        n = len(waves)
        outs: list[WaveOutcome | None] = [None] * n
        if tenants is None:
            tenants = (None,) * n
        preps = [self._prepare_wave(p, w, c) for p, w, c in waves]
        # Grouping and block-range bounds are pure functions of the
        # prepared arrays, so both are computed once per run and reused
        # across re-speculations (a fallback wave's migrations change
        # driver state, never the waves themselves).
        bounds: list = self._batch_bounds(preps)
        i = 0
        while i < n:
            j = self._fused_run_end(preps, i, bounds)
            if j - i < 2:
                outs[i] = self._process_segment(preps[i], tenants[i])
                i += 1
                continue
            ctx = self._fused_context(preps, i, j, bounds)
            while i < j:
                if j - i < 2:
                    outs[i] = self._process_segment(
                        preps[i], tenants[i], self._ctx_group(ctx, i))
                    i += 1
                    continue
                done = self._fused_commit(ctx, i, j, outs)
                i += done
                if i < j:
                    # First segment with a migration candidate (or an
                    # unsafe fused counter add): run the sequential
                    # pipeline, then re-speculate over the remainder.
                    outs[i] = self._process_segment(
                        preps[i], tenants[i], self._ctx_group(ctx, i))
                    i += 1
        return outs

    def _process_segment(self, prep, tenant, grouped=None) -> WaveOutcome:
        """Sequential-pipeline fallback for one batch segment."""
        attribution = self.attribution
        if attribution is not None and tenant is not None:
            prev = attribution.current
            attribution.current = tenant
            try:
                return self._process_blocks(*prep, grouped=grouped)
            finally:
                attribution.current = prev
        return self._process_blocks(*prep, grouped=grouped)

    @staticmethod
    def _batch_bounds(preps) -> list:
        """``(min, max)`` block range per segment (``(0, -1)`` if empty).

        One concatenated pair of segmented reductions replaces the
        2-per-segment ``min``/``max`` calls of a lazy scan.
        """
        bounds: list = [(0, -1)] * len(preps)
        nonempty = [s for s, p in enumerate(preps) if p[0].size]
        if not nonempty:
            return bounds
        if len(nonempty) == 1:
            blocks = preps[nonempty[0]][0]
            bounds[nonempty[0]] = (int(blocks.min()), int(blocks.max()))
            return bounds
        cat = np.concatenate([preps[s][0] for s in nonempty])
        starts = np.zeros(len(nonempty), dtype=np.int64)
        np.cumsum([preps[s][0].size for s in nonempty[:-1]],
                  out=starts[1:])
        mins = np.minimum.reduceat(cat, starts).tolist()
        maxs = np.maximum.reduceat(cat, starts).tolist()
        for k, s in enumerate(nonempty):
            bounds[s] = (mins[k], maxs[k])
        return bounds

    @staticmethod
    def _fused_run_end(preps, i: int, bounds) -> int:
        """End of the maximal fusable run starting at segment ``i``.

        A run is a maximal stretch of non-empty segments whose block
        ranges are pairwise disjoint and ascending (every block of
        segment ``s+1`` above every block of segment ``s``), which is
        what makes the per-segment-sorted concatenation globally sorted
        and the segments' state updates independent.
        """
        _, hi = bounds[i]
        if hi < 0:
            return i + 1
        j = i + 1
        while j < len(preps):
            nlo, nhi = bounds[j]
            if nhi < 0 or nlo <= hi:
                break
            hi = nhi
            j += 1
        return j

    def _fused_add_safe(self, blocks: np.ndarray,
                        amounts: np.ndarray) -> bool:
        """Whether one fused counter add is halving-equivalent.

        Counts only grow between halvings, so if the hottest updated
        block plus the batch's entire access budget stays below the
        saturation limit, no global halving can trigger at *any*
        sequential intermediate point -- and therefore not in the fused
        add either.  A loose bound, but waves carry thousands of
        accesses against a 2^27 limit, so it essentially never fails;
        when it does, the batch simply degrades to sequential waves.
        """
        counters = self.counters
        return bool(int(counters.counts[blocks].max()) + int(amounts.sum())
                    < int(counters.counter_max))

    def _fused_context(self, preps, i: int, j: int, bounds):
        """Grouped view of run ``preps[i:j]``, built once per run.

        Because run segments are pairwise disjoint and ascending, one
        global stable sort keeps every segment contiguous and in order,
        so a single ``group_sorted`` pass replaces the per-segment
        grouping (sequential fallbacks reuse plain views of it via
        :meth:`_ctx_group`).  Returns
        ``(base, cat_u, cat_t, cat_w, starts, safe)`` where
        ``starts[s]:starts[s+1]`` bounds segment ``base + s`` in the
        grouped arrays.
        """
        segs = preps[i:j]
        nseg = len(segs)
        cat_b = np.concatenate([p[0] for p in segs])
        cat_c = np.concatenate([p[2] for p in segs])
        cat_wr = cat_c * np.concatenate([p[1] for p in segs])
        if cat_b.size == 1 or bool((cat_b[1:] >= cat_b[:-1]).all()):
            sb, sc, sw = cat_b, cat_c, cat_wr
        else:
            order = np.argsort(cat_b, kind="stable")
            sb = cat_b[order]
            sc = cat_c[order]
            sw = cat_wr[order]
        cat_u, cat_t, cat_w = self._kern.group_sorted(sb, sc, sw)
        starts = np.empty(nseg + 1, dtype=np.int64)
        # Each segment's first unique block is its cached range minimum
        # (bounds were filled by the run scan).
        starts[:nseg] = np.searchsorted(
            cat_u, np.array([bounds[s][0] for s in range(i, j)],
                            dtype=np.int64))
        starts[nseg] = cat_u.size
        # The fused-add halving guard holds for every suffix if it holds
        # for the whole run (a suffix's hottest block and access budget
        # are bounded by the run's), and sequential fallbacks only add
        # to their own disjoint blocks (or shrink everything by
        # halving), so one check serves every speculation pass.
        safe = self._fused_add_safe(cat_u, cat_t)
        return i, cat_u, cat_t, cat_w, starts, safe

    @staticmethod
    def _ctx_group(ctx, s: int):
        """Segment ``s``'s grouped-wave view of run context ``ctx``."""
        base, cat_u, cat_t, cat_w, starts, _ = ctx
        lo, hi = int(starts[s - base]), int(starts[s - base + 1])
        return cat_u[lo:hi], cat_t[lo:hi], cat_w[lo:hi]

    def _fused_commit(self, ctx, i: int, j: int, outs) -> int:
        """Commit the zero-migration prefix of run segments ``i:j``.

        Works over suffix views of the run context ``ctx``, so a
        re-speculation after a sequential fallback costs one residency
        gather and one decision pass -- no re-grouping and no
        re-concatenation.  Returns the number of segments committed (0
        when the very first segment has a migration candidate or the
        fused add guard fails); the caller resolves the next segment
        sequentially.
        """
        kern = self._kern
        base, all_u, all_t, all_w, all_starts, safe = ctx
        if not safe:
            return 0
        s0 = i - base
        nseg = j - i
        off = int(all_starts[s0])
        cat_u = all_u[off:]
        cat_t = all_t[off:]
        cat_w = all_w[off:]
        starts = all_starts[s0:s0 + nseg] - off
        bus = self._bus
        res_mask = self.residency.resident[cat_u]
        nr_mask = ~res_mask
        ncommit = nseg
        have_nr = bool(nr_mask.any())
        cat_nrb = td = c0 = cat_k = None
        if have_nr:
            cat_nrb = cat_u[nr_mask]
            cat_k = cat_t[nr_mask]
            # One fused decision pass over every non-resident block of
            # the run, against pre-batch state.  Elementwise per block,
            # so it equals the sequential (and sharded) evaluation for
            # every segment that commits below.
            td, c0 = self._decision_state(cat_nrb)
            migrate = kern.decide(c0, cat_k, td)
            if self._has_pinned:
                pinned_host = self.block_pinned_host[cat_nrb]
                if pinned_host.any():
                    migrate = migrate & ~pinned_host
            if migrate.any():
                mig_full = np.zeros(cat_u.size, dtype=bool)
                mig_full[np.flatnonzero(nr_mask)[migrate]] = True
                ncommit = int(np.argmax(kern.segment_any(mig_full, starts)))
        if ncommit == 0:
            return 0
        cut = int(starts[ncommit]) if ncommit < nseg else cat_u.size
        starts_c = starts[:ncommit]

        # Per-segment outcome split of the fused pass.  An all-resident
        # prefix (the steady-state common case) skips the remote/fresh
        # split entirely -- every access is local by definition.
        res_c = res_mask[:cut]
        nr_c = nr_mask[:cut]
        t_c = cat_t[:cut]
        n_acc_seg = kern.segment_sums(t_c, starts_c)
        nr_prefix = have_nr and bool(nr_c.any())
        n_local_seg = n_remote_seg = n_fresh_seg = seg_allres = None
        if nr_prefix:
            n_local_seg = kern.segment_sums(t_c * res_c, starts_c)
            n_remote_seg = n_acc_seg - n_local_seg
            fresh_mask = nr_c & ~self.host.remote_mapped[cat_u[:cut]]
            n_fresh_seg = kern.segment_sums(fresh_mask.astype(np.int64),
                                            starts_c)
            # The sequential pipeline short-circuits all-resident waves
            # through the fast path; mirror its statistic.
            seg_allres = (kern.segment_all(res_c, starts_c)
                          if self.resident_fast_path else None)

        self._heat_sum = None
        self._dirty_cache = None
        self._lru_order = None
        stats = self.stats
        bus_on = bus is not None and bus.enabled
        nr_off = None
        if bus_on and have_nr:
            # Per-segment offsets into the nr-space decision arrays.
            counts_nr = kern.segment_sums(nr_mask.astype(np.int64), starts)
            nr_off = np.zeros(nseg + 1, dtype=np.int64)
            np.cumsum(counts_nr, out=nr_off[1:])
        # One ordered scatter replaces the per-segment LRU touches:
        # per-position clocks carry each segment's sequential clock, and
        # NumPy duplicate-index assignment is last-wins, so a chunk
        # shared across segments keeps the later clock exactly as the
        # sequential loop leaves it.  Alignment-gap chunks (id -1) are
        # masked out as the sequential touch does.
        touched_all = self.directory.chunk_of_block[cat_u[:cut]]
        seg_sizes = np.empty(ncommit, dtype=np.int64)
        np.subtract(starts_c[1:], starts_c[:-1], out=seg_sizes[:-1])
        seg_sizes[-1] = cut - starts_c[-1]
        pos_clock = self._clock + 1 + np.repeat(
            np.arange(ncommit, dtype=np.int64), seg_sizes)
        in_chunk = touched_all >= 0
        if not in_chunk.all():
            touched_all = touched_all[in_chunk]
            pos_clock = pos_clock[in_chunk]
        self.directory.last_touch[touched_all] = pos_clock
        self._clock += ncommit
        wave0 = stats.waves
        acc_l = n_acc_seg.tolist()
        if nr_prefix:
            loc_l = n_local_seg.tolist()
            rem_l = n_remote_seg.tolist()
            fresh_l = n_fresh_seg.tolist()
            allres_l = seg_allres.tolist() if seg_allres is not None else None
        nr_off_l = nr_off.tolist() if nr_off is not None else None
        agg = WaveOutcome()
        for s in range(ncommit):
            if bus is not None:
                bus.wave = wave0 + s
            out = WaveOutcome(n_accesses=acc_l[s])
            if nr_prefix:
                out.n_local = loc_l[s]
                out.n_remote = rem_l[s]
                out.mapping_faults = fresh_l[s]
                if allres_l is not None and allres_l[s]:
                    stats.fast_path_waves += 1
            else:
                out.n_local = out.n_accesses
            if nr_off_l is not None:
                slo, shi = nr_off_l[s], nr_off_l[s + 1]
                for b, t, c, kk in zip(cat_nrb[slo:shi].tolist(),
                                       td[slo:shi].tolist(),
                                       c0[slo:shi].tolist(),
                                       cat_k[slo:shi].tolist()):
                    bus.emit(MigrationDecision(wave=bus.wave, block=b,
                                               threshold=t, counter=c,
                                               accesses=kk,
                                               migrated=False))
            agg.merge(out)
            outs[i + s] = out
        # Totals are additive, so one merged update equals the
        # per-wave ``stats.totals.merge`` sequence.
        stats.totals.merge(agg)
        stats.waves += ncommit
        if not nr_prefix and self.resident_fast_path:
            stats.fast_path_waves += ncommit
        # Fused state commits: every touched block set is disjoint
        # across segments, so the grouped-by-operation order below is
        # state-equivalent to the sequential per-wave order.
        dirty_now = cat_u[:cut][res_c & (cat_w[:cut] > 0)]
        if dirty_now.size:
            self._note_dirty(dirty_now)
        if nr_prefix:
            cut_nr = int(nr_c.sum())
            if cut_nr:
                nrb_c = cat_nrb[:cut_nr]
                # All committed far accesses stay remote: Volta counters
                # see every one, and each block gets (or keeps) its
                # zero-copy mapping.
                self.counters.add_remote_accesses_unique(nrb_c,
                                                         cat_k[:cut_nr])
                self.host.map_remote(nrb_c)
        # Grouped block sets are duplicate-free, so the plain-fancy-add
        # counter update applies.
        self.counters.add_accesses_unique(cat_u[:cut], t_c)
        if self.debug_invariants:
            self._check_wave_accounting()
        return ncommit

    def _handle_far_accesses(self, nrb: np.ndarray, k: np.ndarray,
                             kw: np.ndarray, pinned: np.ndarray,
                             out: WaveOutcome) -> None:
        """Split far accesses into remote service and migrations.

        The decision itself is one fused array kernel: the policy
        produces the per-block thresholds (both Equation-1 regimes fused
        in :func:`repro.uvm.thresholds.eq1_thresholds`) and counter
        baselines, and the migrate/remote partition falls out of a
        single vectorized comparison.  Per-block observability events
        are materialized only when an event sink is actually attached.

        With ``--shards N`` the decision state and migrate mask are
        evaluated per contiguous block-range shard (``nrb`` is sorted,
        so each shard is a slice) and concatenated in shard order.
        Thresholds, baselines, and the decide comparison are all
        elementwise per block, so the merged arrays are bit-identical
        to the unsharded ones; the globally-coupled tail (fault
        injection, drain, eviction) always runs unsharded.
        """
        plan = self._shard_plan
        if plan is not None and nrb.size > 1:
            kern = self._kern
            td_parts: list[np.ndarray] = []
            c0_parts: list[np.ndarray] = []
            mig_parts: list[np.ndarray] = []
            for lo, hi in plan.split(nrb):
                if hi == lo:
                    continue
                td_i, c0_i = self._decision_state(nrb[lo:hi])
                td_parts.append(td_i)
                c0_parts.append(c0_i)
                mig_parts.append(kern.decide(c0_i, k[lo:hi], td_i))
            if len(td_parts) == 1:
                td, c0, migrate = td_parts[0], c0_parts[0], mig_parts[0]
            else:
                td = np.concatenate(td_parts)
                c0 = np.concatenate(c0_parts)
                migrate = np.concatenate(mig_parts)
        else:
            td, c0 = self._decision_state(nrb)
            migrate = self._kern.decide(c0, k, td)
        if self._has_pinned:
            pinned_host = self.block_pinned_host[nrb]
            if pinned_host.any():
                migrate &= ~pinned_host

        # Injected transient faults: a migration that exhausts its retry
        # budget degrades to the remote path (joins the non-migrating
        # blocks below); surviving retries charge backoff to the wave.
        if (self.injector is not None and self.injector.enabled
                and migrate.any()):
            self._inject_migration_faults(nrb, k, c0, td, migrate, out)

        bus = self._bus
        if bus is not None and bus.enabled:
            wave = bus.wave
            for b, t, c, kk, m in zip(nrb.tolist(), td.tolist(), c0.tolist(),
                                      k.tolist(), migrate.tolist()):
                bus.emit(MigrationDecision(wave=wave, block=b, threshold=t,
                                           counter=c, accesses=kk,
                                           migrated=m))

        # Accesses served remotely before a (possible) migration trigger.
        remote = self._kern.remote_counts(migrate, td, c0, k)
        out.n_remote += int(remote.sum())
        # Volta hardware counters see every remote access.
        self.counters.add_remote_accesses(nrb, remote)

        # Blocks that stay host-pinned get (or keep) a remote mapping.
        staying = nrb[~migrate]
        if staying.size:
            fresh = staying[~self.host.remote_mapped[staying]]
            out.mapping_faults += int(fresh.size)
            self.host.map_remote(staying)

        # Migrations drain in arrival order so prefetch and eviction
        # interact like fault-buffer draining in the real driver.  The
        # batched drain defers bookkeeping into chunk-grouped bulk
        # installs; the scalar drain is the reference implementation.
        mig = nrb[migrate]
        if mig.size:
            drain = (self._drain_migrations_batched if self.batched_migrations
                     else self._drain_migrations_scalar)
            if self._prof is not None:
                with self._prof.span("migrate_drain"):
                    drain(mig, k[migrate], kw[migrate], remote[migrate],
                          pinned, out)
            else:
                drain(mig, k[migrate], kw[migrate], remote[migrate], pinned,
                      out)

    def _decision_state(self, nrb: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Policy decision state for ``nrb``, with hint overrides applied.

        Factored out of :meth:`_handle_far_accesses` so the sharded path
        can evaluate it per block-range slice; it is elementwise per
        block, which is what makes sharding bit-identical.
        """
        td, c0 = self.policy.decision_state(nrb, self)
        td = np.asarray(td, dtype=np.int64)
        c0 = np.asarray(c0, dtype=np.int64)

        # Programmer hints override the policy (Section III-C).  Whether
        # any hint exists at all is precomputed at construction, so the
        # unhinted common case pays no per-wave gather.
        if self._has_preferred:
            preferred = self.block_preferred_host[nrb]
            if preferred.any():
                ts = self.config.policy.static_threshold
                volta = self.counters.volta_counts[nrb]
                td = np.where(preferred, np.maximum(td, ts), td)
                c0 = np.where(preferred, volta, c0)
        return td, c0

    def _inject_migration_faults(self, nrb: np.ndarray, k: np.ndarray,
                                 c0: np.ndarray, td: np.ndarray,
                                 migrate: np.ndarray,
                                 out: WaveOutcome) -> None:
        """Draw fault outcomes for every would-be migration, in order.

        Mutates ``migrate`` in place: blocks whose migration failed past
        the retry budget are flipped to the remote path.  Draw order is
        wave order, so results are a pure function of the run seed.
        """
        fcfg = self.config.faults
        injector = self.injector
        bus = self._bus
        bus_on = bus is not None and bus.enabled
        for i in np.flatnonzero(migrate).tolist():
            failures, ok = injector.migration_attempt()
            if failures:
                out.retried_transfers += failures
                out.retry_backoff_us += fcfg.total_backoff_us(failures)
            if not ok:
                migrate[i] = False
                # The accesses that would have hit device memory after
                # the migration stay on the remote zero-copy path.
                would_remote = int(min(max(td[i] - 1 - c0[i], 0), k[i] - 1))
                out.degraded_accesses += int(k[i]) - would_remote
            if bus_on and (failures or not ok):
                bus.emit(FaultRetry(wave=bus.wave, block=int(nrb[i]),
                                    failures=failures, degraded=not ok))

    def _drain_migrations_scalar(self, mig: np.ndarray, mig_k: np.ndarray,
                                 mig_kw: np.ndarray, mig_remote: np.ndarray,
                                 pinned: np.ndarray,
                                 out: WaveOutcome) -> None:
        """Reference drain: migrations resolved one block at a time."""
        for b, kk, kkw, rr in zip(mig.tolist(), mig_k.tolist(),
                                  mig_kw.tolist(), mig_remote.tolist()):
            if self.residency.resident[b]:
                # A prefetch earlier in this loop already pulled it in.
                out.n_local += int(kk - rr)
                if kkw > 0:
                    self._note_dirty(np.array([b]))
                continue
            if self._migrate_block(int(b), pinned, out):
                # One access is the fault itself; the rest hit locally.
                out.n_local += int(kk - rr - 1)
                if kkw > 0:
                    self._note_dirty(np.array([b]))
            else:
                # No room even after eviction attempts: serve remotely.
                extra = int(kk - rr)
                out.n_remote += extra
                if not self.host.remote_mapped[b]:
                    out.mapping_faults += 1
                    self.host.map_remote(np.array([b]))

    def _drain_migrations_batched(self, mig: np.ndarray, mig_k: np.ndarray,
                                  mig_kw: np.ndarray, mig_remote: np.ndarray,
                                  pinned: np.ndarray,
                                  out: WaveOutcome) -> None:
        """Batched drain: defer installs into chunk-grouped bulk flushes.

        Produces bit-identical event counts to the scalar drain.  Blocks
        still drain in arrival order (prefetch decisions are inherently
        sequential within a chunk's tree), but as long as the device has
        room, installs only append to per-chunk pending batches that are
        committed with one array operation per chunk.  Pending state is
        flushed before any eviction, so victim selection, write-back
        accounting and round-trip counters observe exactly the state the
        scalar drain would.
        """
        resident = self.residency.resident
        trees = self.trees
        # The default tree strategy is a bare delegation to the chunk
        # tree; calling the tree method unbound skips that frame on
        # every fault of the drain.
        prefetch = (PrefetchTree.on_fault
                    if type(self.prefetcher) is TreePrefetchStrategy
                    else self.prefetcher.on_fault)
        if self._prof is not None:
            prefetch = self._prof.wrap("prefetch_tree", prefetch)
        bus = self._bus
        bus_on = bus is not None and bus.enabled
        counters = self.counters
        pending: dict[int, list[int]] = {}
        pending_set: set[int] = set()
        pending_dirty: list[int] = []

        def flush() -> None:
            roundtrips = counters.roundtrips
            for cid, blks in pending.items():
                batch = np.array(blks, dtype=np.int64)
                self._install(batch, cid)
                if counters.has_roundtrips:
                    thrashy = batch[roundtrips[batch] > 0]
                    out.thrash_migrations += int(thrashy.size)
                    self.stats.thrashed_block_ids.update(thrashy.tolist())
                    if self.attribution is not None and thrashy.size:
                        self.attribution.on_thrash(thrashy)
            pending.clear()
            pending_set.clear()
            if pending_dirty:
                self._note_dirty(np.array(pending_dirty, dtype=np.int64))
                pending_dirty.clear()

        # Chunk geometry is static: gather it for the whole batch once.
        cids = self.directory.chunk_of_block[mig]
        if cids.min() < 0:
            bad = int(mig[np.argmin(cids)])
            raise RuntimeError(f"block {bad} belongs to no chunk")
        firsts = self.directory.first_block[cids]

        #: Frames still free once all pending installs commit; kept as a
        #: plain int so the drain loop never touches the device ledger.
        free = self.device.free_blocks
        # Hot counters accumulate in locals and fold into ``out`` once.
        n_local = faults = prefetched = 0
        for b, kk, kkw, rr, cid, first in zip(
                mig.tolist(), mig_k.tolist(), mig_kw.tolist(),
                mig_remote.tolist(), cids.tolist(), firsts.tolist()):
            if resident[b] or b in pending_set:
                # A prefetch earlier in this drain already pulled it in.
                n_local += kk - rr
                if kkw > 0:
                    pending_dirty.append(b)
                continue
            if free < 1:
                # The fault itself needs an eviction: commit pending
                # state, then take the scalar path for this block.
                flush()
                if self._migrate_block(b, pinned, out):
                    n_local += kk - rr - 1
                    if kkw > 0:
                        self._note_dirty(np.array([b]))
                else:
                    out.n_remote += kk - rr
                    if not self.host.remote_mapped[b]:
                        out.mapping_faults += 1
                        self.host.map_remote(np.array([b]))
                free = self.device.free_blocks
                continue
            # Fast path: the fault block fits without eviction.
            pf_leaves = prefetch(trees[cid], b - first)
            chunk_pending = pending.get(cid)
            if chunk_pending is None:
                chunk_pending = pending[cid] = []
            chunk_pending.append(b)
            pending_set.add(b)
            free -= 1
            faults += 1
            n_local += kk - rr - 1
            if kkw > 0:
                pending_dirty.append(b)
            if not pf_leaves.size:
                continue
            pf_blocks = first + pf_leaves
            if free >= pf_leaves.size:
                pf_list = pf_blocks.tolist()
                chunk_pending.extend(pf_list)
                pending_set.update(pf_list)
                free -= len(pf_list)
                prefetched += len(pf_list)
                if bus_on:
                    bus.emit(PrefetchExpand(wave=bus.wave, chunk=cid,
                                            fault_block=b,
                                            blocks=len(pf_list)))
            else:
                # The prefetch batch needs an eviction: commit pending
                # state (including this fault block), then make room
                # exactly as the scalar path would.
                flush()
                never = np.zeros(self.directory.num_chunks, dtype=bool)
                never[cid] = True
                if self._make_room(int(pf_blocks.size), pinned, never, out):
                    self._install(pf_blocks, cid)
                    out.prefetched_blocks += int(pf_blocks.size)
                    if bus_on:
                        bus.emit(PrefetchExpand(wave=bus.wave, chunk=cid,
                                                fault_block=b,
                                                blocks=int(pf_blocks.size)))
                    if counters.has_roundtrips:
                        thrashy = pf_blocks[
                            counters.roundtrips[pf_blocks] > 0]
                        out.thrash_migrations += int(thrashy.size)
                        self.stats.thrashed_block_ids.update(thrashy.tolist())
                        if self.attribution is not None and thrashy.size:
                            self.attribution.on_thrash(thrashy)
                else:
                    # Could not hold the prefetch: roll the leaves back
                    # out of the tree.
                    self._rebuild_tree(cid)
                free = self.device.free_blocks
        flush()
        out.n_local += n_local
        out.fault_migrations += faults
        out.migrated_blocks += faults
        out.prefetched_blocks += prefetched

    # ------------------------------------------------------------------
    # migration machinery
    # ------------------------------------------------------------------

    def _migrate_block(self, block: int, pinned: np.ndarray,
                       out: WaveOutcome) -> bool:
        """Fault-migrate ``block``; runs prefetcher; returns success."""
        cid = int(self.directory.chunk_of_block[block])
        if cid < 0:
            raise RuntimeError(f"block {block} belongs to no chunk")
        never = np.zeros(self.directory.num_chunks, dtype=bool)
        never[cid] = True

        if not self._make_room(1, pinned, never, out):
            return False
        leaf = block - int(self.directory.first_block[cid])
        tree = self.trees[cid]
        on_fault = self.prefetcher.on_fault
        if self._prof is not None:
            on_fault = self._prof.wrap("prefetch_tree", on_fault)
        pf_leaves = on_fault(tree, leaf)

        self._install(np.array([block], dtype=np.int64), cid)
        out.fault_migrations += 1
        out.migrated_blocks += 1
        if self.counters.roundtrips[block] > 0:
            out.thrash_migrations += 1
            self.stats.thrashed_block_ids.add(block)
            if self.attribution is not None:
                self.attribution.on_thrash(np.array([block], dtype=np.int64))

        if pf_leaves.size:
            pf_blocks = int(self.directory.first_block[cid]) + pf_leaves
            if self._make_room(int(pf_blocks.size), pinned, never, out):
                self._install(pf_blocks, cid)
                out.prefetched_blocks += int(pf_blocks.size)
                if self._bus is not None and self._bus.enabled:
                    self._bus.emit(PrefetchExpand(
                        wave=self._bus.wave, chunk=cid, fault_block=block,
                        blocks=int(pf_blocks.size)))
                thrashy = pf_blocks[self.counters.roundtrips[pf_blocks] > 0]
                out.thrash_migrations += int(thrashy.size)
                self.stats.thrashed_block_ids.update(thrashy.tolist())
                if self.attribution is not None and thrashy.size:
                    self.attribution.on_thrash(thrashy)
            else:
                # Could not hold the prefetch: roll the leaves back out of
                # the tree by clearing and re-marking only true residents.
                self._rebuild_tree(cid)
        return True

    def _install(self, blocks: np.ndarray, cid: int) -> None:
        """Claim frames and map ``blocks`` device-resident."""
        self.device.allocate(int(blocks.size))
        self.residency.mark_resident(blocks)
        self.host.migrate_to_device(blocks)
        self.counters.reset_volta(blocks)
        self.ever_migrated[blocks] = True
        self.directory.occupancy[cid] += int(blocks.size)
        # Migrations land in chunks the wave touched, so this is almost
        # always a no-op; when it isn't, the cached LRU order is stale.
        if self.directory.last_touch[cid] != self._clock:
            self.directory.last_touch[cid] = self._clock
            self._lru_order = None
        if self._heat_sum is not None:
            # Newly resident blocks contribute their heat to the chunk.
            self._heat_sum[cid] += float(self.counters.counts[blocks].sum())

    def _note_dirty(self, blocks: np.ndarray) -> None:
        """Mark blocks dirty, keeping the LFU dirty cache in sync."""
        self.residency.mark_dirty(blocks)
        if self._dirty_cache is not None:
            # Duplicate chunk ids are harmless for a boolean set.
            self._dirty_cache[self.directory.chunk_of_block[blocks]] = True

    def _rebuild_tree(self, cid: int) -> None:
        """Resynchronize a chunk's tree with the residency map."""
        if self._prof is not None:
            with self._prof.span("prefetch_tree"):
                return self._rebuild_tree_impl(cid)
        self._rebuild_tree_impl(cid)

    def _rebuild_tree_impl(self, cid: int) -> None:
        tree = self.trees[cid]
        tree.clear()
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        tree.install_leaves(
            np.flatnonzero(self.residency.resident[chunk_blocks]))

    def _make_room(self, n_blocks: int, pinned: np.ndarray,
                   never: np.ndarray, out: WaveOutcome) -> bool:
        """Evict until ``n_blocks`` frames are free; False if impossible.

        At the default 2MB granularity whole victim chunks are evicted;
        at 64KB granularity only as many blocks as needed are evicted
        from each victim chunk, coldest blocks first.
        """
        if self.device.can_fit(n_blocks):
            return True
        if self._prof is not None:
            with self._prof.span("eviction"):
                return self._make_room_under_pressure(n_blocks, pinned,
                                                      never, out)
        return self._make_room_under_pressure(n_blocks, pinned, never, out)

    def _make_room_under_pressure(self, n_blocks: int, pinned: np.ndarray,
                                  never: np.ndarray,
                                  out: WaveOutcome) -> bool:
        """The eviction path of :meth:`_make_room` (capacity exceeded)."""
        self.device.note_pressure()
        needed = n_blocks - self.device.free_blocks
        heat = dirty = order = None
        if self.config.memory.replacement.value == "lfu":
            if self._heat_sum is None:
                self._heat_sum = self.directory.resident_heat(
                    self.counters.counts, self.residency.resident)
                self._dirty_cache = self.directory.chunk_dirty(self.residency.dirty)
            heat = self.directory.heat_buckets_from_sums(self._heat_sum)
            dirty = self._dirty_cache
        else:
            if self._lru_order is None:
                self._lru_order = np.argsort(self.directory.last_touch,
                                             kind="stable")
            order = self._lru_order
        try:
            victims = select_victims(
                self.directory, needed, self.config.memory.replacement,
                pinned, heat=heat, dirty_any=dirty, never=never,
                order=order, kern=self._kern)
        except RuntimeError:
            return False
        block_granular = (self.config.memory.eviction_granularity
                          is EvictionGranularity.BLOCK_64KB)
        for cid in victims:
            if block_granular:
                still_needed = n_blocks - self.device.free_blocks
                if still_needed <= 0:
                    break
                self._evict_blocks(cid, still_needed, out)
            else:
                self._evict_chunk(cid, out)
        return self.device.can_fit(n_blocks)

    def _evict_blocks(self, cid: int, n_wanted: int,
                      out: WaveOutcome) -> None:
        """Evict up to ``n_wanted`` of chunk ``cid``'s coldest blocks."""
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        rblocks = chunk_blocks[self.residency.resident[chunk_blocks]]
        if rblocks.size == 0:
            return
        order = np.argsort(self.counters.counts[rblocks], kind="stable")
        victims = rblocks[order[:n_wanted]]
        first = int(self.directory.first_block[cid])
        self.trees[cid].remove_leaves(victims - first)
        if self.attribution is not None:
            self.attribution.on_evict(victims)
        n_dirty = self.residency.evict(victims)
        self.counters.add_roundtrip(victims)
        self.host.accept_eviction(victims)
        self.device.release(int(victims.size))
        self.directory.occupancy[cid] -= int(victims.size)
        if self._heat_sum is not None:
            self._heat_sum[cid] -= float(self.counters.counts[victims].sum())
        if self._dirty_cache is not None:
            self._dirty_cache[cid] = bool(
                np.any(self.residency.dirty[chunk_blocks]))
        out.evicted_chunks += int(victims.size == rblocks.size)
        out.evicted_blocks += int(victims.size)
        out.writeback_blocks += n_dirty
        if self._bus is not None and self._bus.enabled:
            self._bus.emit(Eviction(wave=self._bus.wave, chunk=cid,
                                    blocks=int(victims.size),
                                    dirty_blocks=n_dirty,
                                    whole_chunk=False))

    def _evict_chunk(self, cid: int, out: WaveOutcome) -> None:
        """Evict every resident block of chunk ``cid``."""
        chunk_blocks = self.directory.blocks_of_chunk(cid)
        rblocks = chunk_blocks[self.residency.resident[chunk_blocks]]
        if rblocks.size == 0:
            return
        if self.attribution is not None:
            self.attribution.on_evict(rblocks)
        n_dirty = self.residency.evict(rblocks)
        self.counters.add_roundtrip(rblocks)
        self.host.accept_eviction(rblocks)
        self.device.release(int(rblocks.size))
        self.trees[cid].clear()
        self.directory.occupancy[cid] = 0
        if self._heat_sum is not None:
            self._heat_sum[cid] = 0.0
        if self._dirty_cache is not None:
            self._dirty_cache[cid] = False
        out.evicted_chunks += 1
        out.evicted_blocks += int(rblocks.size)
        out.writeback_blocks += n_dirty
        if self._bus is not None and self._bus.enabled:
            self._bus.emit(Eviction(wave=self._bus.wave, chunk=cid,
                                    blocks=int(rblocks.size),
                                    dirty_blocks=n_dirty,
                                    whole_chunk=True))

    # ------------------------------------------------------------------
    # tenant teardown (serving layer)
    # ------------------------------------------------------------------

    def release_chunks(self, chunk_ids) -> tuple[int, int]:
        """Tear down a departing tenant's chunks; used by ``repro serve``.

        Unlike eviction under pressure this is a *free* release: the
        owner has completed, so freed blocks charge no round-trip
        counters (a later re-migration of the range by a reincarnated
        allocation is not thrashing), select no victims, and emit no
        :class:`~repro.obs.events.Eviction` events.  Dirty blocks still
        count as write-backs -- the device copy must reach the host
        before the frames are reused -- and the caller charges that
        traffic to the timing model.  Remote zero-copy mappings for the
        range are also dropped.

        Returns ``(freed_blocks, writeback_blocks)``.
        """
        freed = 0
        writebacks = 0
        for cid in chunk_ids:
            cid = int(cid)
            chunk_blocks = self.directory.blocks_of_chunk(cid)
            rblocks = chunk_blocks[self.residency.resident[chunk_blocks]]
            if rblocks.size:
                writebacks += self.residency.evict(rblocks)
                self.host.accept_eviction(rblocks)
                self.device.release(int(rblocks.size))
                self.trees[cid].clear()
                self.directory.occupancy[cid] = 0
                freed += int(rblocks.size)
            self.host.remote_mapped[chunk_blocks] = False
        if freed:
            # Victim-ordering caches reflect pre-release residency.
            self._heat_sum = None
            self._dirty_cache = None
            self._lru_order = None
        return freed, writebacks

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def kernels(self):
        """The resolved backend kernel namespace (``repro.accel``)."""
        return self._kern

    @property
    def backend_name(self) -> str:
        """Name of the *active* backend (after any fallback)."""
        return self.accel.name

    @property
    def shards(self) -> int:
        """Number of address-space shards the decision phase runs over."""
        return 1 if self._shard_plan is None else self._shard_plan.n_shards

    @property
    def fast_path_hit_rate(self) -> float:
        """Fraction of waves resolved by the resident fast path.

        1.0 means every wave found its whole working set device-resident
        (steady state, no oversubscription churn); 0.0 means the full
        pipeline ran every wave.  Exported as the ``driver.fast_path_hit_rate``
        gauge when an observability handle is attached.
        """
        if self.stats.waves == 0:
            return 0.0
        return self.stats.fast_path_waves / self.stats.waves

    def _check_wave_accounting(self) -> None:
        """Cheap residency/capacity invariants, run after every wave.

        Enabled by ``SimulationConfig.debug_invariants`` (or the CLI's
        ``--debug-invariants``); unlike :meth:`check_consistency` this
        avoids the per-chunk tree walk so it is affordable per wave, and
        it pinpoints the first wave at which accounting drifted.
        """
        used = self.device.used_blocks
        resident = self.residency.resident_count
        if resident != used:
            raise AssertionError(
                f"wave {self.stats.waves}: residency map holds {resident} "
                f"resident blocks but the device ledger charges {used}")
        if used > self.device.capacity_blocks:
            raise AssertionError(
                f"wave {self.stats.waves}: {used} resident blocks exceed "
                f"device capacity of {self.device.capacity_blocks} blocks")
        occupancy = int(self.directory.occupancy.sum())
        if occupancy != used:
            raise AssertionError(
                f"wave {self.stats.waves}: chunk occupancy sums to "
                f"{occupancy} but the device ledger charges {used}")

    def check_consistency(self) -> None:
        """Verify cross-structure invariants (used by tests)."""
        assert self.residency.resident_count == self.device.used_blocks, \
            "residency map and device ledger disagree"
        for cid, span in enumerate(self.vas.chunks):
            chunk_blocks = self.directory.blocks_of_chunk(cid)
            res = set(np.flatnonzero(
                self.residency.resident[chunk_blocks]).tolist())
            tree_res = set(self.trees[cid].resident_leaves().tolist())
            assert res == tree_res, f"tree/residency mismatch in chunk {cid}"
            assert self.directory.occupancy[cid] == len(res), \
                f"occupancy mismatch in chunk {cid}"
            self.trees[cid].check_invariants()
        # A block can never be host-valid and device-resident at once.
        assert not np.any(self.residency.resident & self.host.valid), \
            "block resident on both host and device"
