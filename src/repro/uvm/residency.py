"""Per-basic-block residency and dirty state (the simulated page table).

The GMMU's page table is modelled at basic-block (64KB) granularity, the
unit at which the driver migrates, prefetches and counts accesses.  Each
block is either HOST-backed or DEVICE-resident; DEVICE-resident blocks
carry a dirty bit that forces a write-back on eviction (the long-latency
write-backs Section III-A blames for regular apps' oversubscription
overhead).
"""

from __future__ import annotations

import numpy as np


class ResidencyMap:
    """Vectorized residency/dirty state for the whole VA space."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise ValueError("VA space must contain at least one block")
        #: True when the block is resident in device memory.
        self.resident = np.zeros(total_blocks, dtype=bool)
        #: True when the device copy has been written since migration.
        self.dirty = np.zeros(total_blocks, dtype=bool)

    @property
    def total_blocks(self) -> int:
        """Number of basic blocks tracked."""
        return self.resident.size

    @property
    def resident_count(self) -> int:
        """Number of device-resident blocks."""
        return int(np.count_nonzero(self.resident))

    def mark_resident(self, blocks: np.ndarray) -> None:
        """Install device mappings for migrated/prefetched blocks."""
        self.resident[blocks] = True
        self.dirty[blocks] = False

    def mark_dirty(self, blocks: np.ndarray) -> None:
        """Record device-local writes; caller guarantees residency."""
        self.dirty[blocks] = True

    def evict(self, blocks: np.ndarray) -> int:
        """Remove device mappings; returns the number of dirty blocks.

        The dirty count drives write-back traffic accounting.  Dirty bits
        are cleared because the host copy becomes authoritative again.
        """
        n_dirty = int(np.count_nonzero(self.dirty[blocks]))
        self.resident[blocks] = False
        self.dirty[blocks] = False
        return n_dirty
