"""Tree-based neighborhood prefetcher (Section II-B; Ganguly et al. ISCA'19).

Each logical chunk of a managed allocation (2MB, or a power-of-two
remainder) owns one *full binary tree* whose leaves are 64KB basic
blocks.  Leaves are populated by fault-driven migration; internal nodes
cache the number of resident leaves below them.  Whenever the occupancy
of a non-leaf node becomes *strictly greater than 50%*, the prefetcher
balances that node by scheduling every still-absent leaf in its subtree
for prefetch, then continues evaluating up the tree with the updated
occupancy.  Prefetch therefore never crosses a chunk boundary and issues
transfers between 64KB and half the chunk (1MB for a full chunk).

For a sequential sweep this faults on leaves 0, 1, 2, 4, 8, 16 of a
32-leaf chunk and prefetches the rest -- the behaviour published for the
CUDA driver's prefetcher.

Representation
--------------
A chunk holds at most 32 leaves, so leaf residency is authoritatively a
Python int bitmask: subtree occupancy is one ``bit_count`` of a masked
range, which makes the per-fault balancing walk allocation-free.  The
heap-indexed occupancy-count array that mirrors the hardware structure
is kept too -- bulk installs propagate counts level-by-level with a
single ``np.add.at`` -- but it is maintained lazily: the scalar fault
path only touches the bitmask and the counts are rebuilt from it on the
next bulk or introspection access.
"""

from __future__ import annotations

import numpy as np

from ..accel import kernels as _py_kernels

#: Shared empty result for prefetch-free faults (treated as read-only).
_NO_PREFETCH: np.ndarray = np.empty(0, dtype=np.int64)


def _bits_ascending(bits: int) -> list[int]:
    """Set-bit positions of ``bits``, lowest first."""
    out: list[int] = []
    while bits:
        low = bits & -bits
        out.append(low.bit_length() - 1)
        bits ^= low
    return out


def _build_tables(num_leaves: int, levels: int) -> tuple:
    """Precompute the heap-geometry lookup tables for one tree size.

    One tree exists per chunk, so thousands of instances share a table.
    Returns ``(anc, node_mask, leaf_submasks)``:

    * ``anc`` -- (num_leaves, levels) heap indices of each leaf's
      ancestors, nearest first (for heap index ``i`` the level-``l``
      ancestor is ``((i + 1) >> l) - 1``);
    * ``node_mask`` -- bitmask of the leaf range under each heap node;
    * ``leaf_submasks`` -- per leaf, ``(node_mask, span // 2)`` of each
      of its ancestors, nearest first (the fault walk's working set; the
      >50% test is ``popcount(mask & node_mask) > span // 2``).
    """
    shifts = np.arange(1, levels + 1, dtype=np.int64)[:, None]
    leaf_ids = np.arange(num_leaves, dtype=np.int64)
    anc = np.ascontiguousarray(((num_leaves + leaf_ids) >> shifts).T - 1)
    node_mask: list[int] = []
    node_span: list[int] = []
    for node in range(2 * num_leaves - 1):
        first, span = node, 1
        while first < num_leaves - 1:
            first = 2 * first + 1
            span *= 2
        node_mask.append(((1 << span) - 1) << (first - (num_leaves - 1)))
        node_span.append(span)
    leaf_submasks = [[(node_mask[a], node_span[a] >> 1)
                      for a in row.tolist()] for row in anc]
    return anc, node_mask, leaf_submasks


class PrefetchTree:
    """Occupancy tree for one chunk; heap-indexed full binary tree."""

    __slots__ = ("num_leaves", "_levels", "_mask", "_tree", "_counts_valid",
                 "_anc", "_node_mask", "_leaf_submasks", "_kern")

    #: Per-size lookup tables, shared by every tree of that size.
    _TABLES: dict[int, tuple] = {}

    def __init__(self, num_leaves: int, kernels=None) -> None:
        if num_leaves < 1 or num_leaves & (num_leaves - 1):
            raise ValueError(f"num_leaves must be a power of two, got {num_leaves}")
        #: Backend namespace for the bulk install/remove ops (the
        #: scalar fault walk stays pure python -- it is bitmask
        #: arithmetic, not array work).  See :mod:`repro.accel`.
        self._kern = kernels if kernels is not None else _py_kernels
        self.num_leaves = num_leaves
        self._levels = num_leaves.bit_length() - 1
        #: Authoritative leaf residency, bit ``i`` = leaf ``i`` resident.
        self._mask = 0
        # Heap layout: node i has children 2i+1, 2i+2; leaves occupy
        # indices [num_leaves-1, 2*num_leaves-1).
        self._tree = np.zeros(2 * num_leaves - 1, dtype=np.int32)
        self._counts_valid = True
        tables = PrefetchTree._TABLES.get(num_leaves)
        if tables is None:
            tables = PrefetchTree._TABLES[num_leaves] = _build_tables(
                num_leaves, self._levels)
        self._anc, self._node_mask, self._leaf_submasks = tables

    # -- bookkeeping -----------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of resident leaves in the chunk."""
        return self._mask.bit_count()

    def is_resident(self, leaf: int) -> bool:
        """Whether leaf ``leaf`` (0-based within the chunk) is resident."""
        self._check_leaf(leaf)
        return bool((self._mask >> leaf) & 1)

    def resident_leaves(self) -> np.ndarray:
        """Indices of resident leaves."""
        return np.array(_bits_ascending(self._mask), dtype=np.int64)

    def clear(self) -> None:
        """Reset the tree after the chunk is evicted."""
        self._mask = 0
        self._tree[:] = 0
        self._counts_valid = True

    def remove(self, leaf: int) -> None:
        """Evict a single leaf (64KB-granular eviction support).

        Decrements occupancy along the leaf's path so the balancing
        heuristic sees the reduced residency on later faults.
        """
        self._check_leaf(leaf)
        bit = 1 << leaf
        if not self._mask & bit:
            raise RuntimeError(f"leaf {leaf} is not resident")
        self._mask ^= bit
        if self._counts_valid:
            self._tree[self.num_leaves - 1 + leaf] = 0
            # A single leaf's ancestors are distinct, so one
            # fancy-indexed subtract propagates the whole path.
            self._tree[self._anc[leaf]] -= 1

    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} outside chunk of {self.num_leaves} leaves")

    def _set_leaf(self, leaf: int) -> None:
        """Mark one leaf resident and propagate occupancy to the root."""
        bit = 1 << leaf
        if self._mask & bit:
            raise RuntimeError(f"leaf {leaf} already resident")
        self._mask |= bit
        if self._counts_valid:
            self._tree[self.num_leaves - 1 + leaf] = 1
            self._tree[self._anc[leaf]] += 1

    def _counts(self) -> np.ndarray:
        """The occupancy-count heap, rebuilt from the bitmask if stale."""
        if not self._counts_valid:
            self._tree[:] = 0
            resident = _bits_ascending(self._mask)
            if resident:
                leaves = np.array(resident, dtype=np.int64)
                self._kern.tree_bulk_set(self._tree, self._anc, leaves,
                                         self.num_leaves - 1, 1, 1)
            self._counts_valid = True
        return self._tree

    def install_leaves(self, leaves: np.ndarray) -> None:
        """Mark many *distinct* leaves resident in one pass.

        Occupancy propagates through all ancestor levels with a single
        ``np.add.at`` instead of one root-walk per leaf, so installing a
        whole prefetch batch (or rebuilding a chunk's tree from the
        residency map) costs O(levels) vectorized work rather than
        O(leaves * levels) scalar walks.  Equivalent to calling
        :meth:`mark_resident` on each leaf in turn; callers must not
        pass duplicate leaves.
        """
        leaves = np.asarray(leaves, dtype=np.int64)
        if leaves.size == 0:
            return
        if leaves.min() < 0 or leaves.max() >= self.num_leaves:
            raise IndexError(
                f"leaves outside chunk of {self.num_leaves} leaves")
        bits = int(self._kern.leaf_bits(leaves))
        if self._mask & bits:
            raise RuntimeError("bulk install of an already-resident leaf")
        self._mask |= bits
        if self._counts_valid:
            self._kern.tree_bulk_set(self._tree, self._anc, leaves,
                                     self.num_leaves - 1, 1, 1)

    def remove_leaves(self, leaves: np.ndarray) -> None:
        """Evict many *distinct* leaves in one pass (bulk :meth:`remove`)."""
        leaves = np.asarray(leaves, dtype=np.int64)
        if leaves.size == 0:
            return
        if leaves.min() < 0 or leaves.max() >= self.num_leaves:
            raise IndexError(
                f"leaves outside chunk of {self.num_leaves} leaves")
        bits = int(self._kern.leaf_bits(leaves))
        if (self._mask & bits) != bits:
            raise RuntimeError("bulk removal of a non-resident leaf")
        self._mask ^= bits
        if self._counts_valid:
            self._kern.tree_bulk_set(self._tree, self._anc, leaves,
                                     self.num_leaves - 1, 0, -1)

    # -- driver entry points ----------------------------------------------

    def mark_resident(self, leaf: int) -> None:
        """Install a leaf without running the prefetch heuristic.

        Used for the leaves the prefetcher itself pulls in and for tests.
        """
        self._check_leaf(leaf)
        self._set_leaf(leaf)

    def on_fault(self, leaf: int) -> np.ndarray:
        """Handle a first-touch fault on ``leaf``.

        Marks the leaf resident, then walks from its parent to the root;
        at every ancestor whose occupancy strictly exceeds half its span,
        all absent leaves of that subtree are added to the prefetch set
        (and marked resident so higher levels see the updated occupancy).

        Returns the prefetched leaf indices (possibly empty), excluding
        the faulting leaf itself.
        """
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(
                f"leaf {leaf} outside chunk of {self.num_leaves} leaves")
        bit = 1 << leaf
        mask = self._mask
        if mask & bit:
            raise RuntimeError(f"leaf {leaf} already resident")
        mask |= bit
        # The count heap goes stale; it is rebuilt lazily from the mask.
        self._counts_valid = False
        if self.num_leaves == 1:
            self._mask = mask
            return _NO_PREFETCH

        prefetched: list[int] = []
        for submask, half in self._leaf_submasks[leaf]:
            # Subtree occupancy is one popcount of the masked leaf range.
            if (mask & submask).bit_count() > half:
                absent = submask & ~mask
                if absent:
                    mask |= absent
                    while absent:
                        low = absent & -absent
                        prefetched.append(low.bit_length() - 1)
                        absent ^= low
        self._mask = mask
        if not prefetched:
            return _NO_PREFETCH
        return np.array(prefetched, dtype=np.int64)

    # -- invariants (used by property tests) -------------------------------

    def check_invariants(self) -> None:
        """Verify internal-node counts equal the sum of their children."""
        tree = self._counts()
        for node in range(self.num_leaves - 1):
            left, right = 2 * node + 1, 2 * node + 2
            if tree[node] != tree[left] + tree[right]:
                raise AssertionError(f"occupancy mismatch at node {node}")
        leaf_bits = tree[self.num_leaves - 1:]
        if not np.all((leaf_bits == 0) | (leaf_bits == 1)):
            raise AssertionError("leaf occupancy must be 0 or 1")
        mask = 0
        for leaf in np.flatnonzero(leaf_bits).tolist():
            mask |= 1 << leaf
        if mask != self._mask:
            raise AssertionError("count heap disagrees with residency mask")
