"""Tree-based neighborhood prefetcher (Section II-B; Ganguly et al. ISCA'19).

Each logical chunk of a managed allocation (2MB, or a power-of-two
remainder) owns one *full binary tree* whose leaves are 64KB basic
blocks.  Leaves are populated by fault-driven migration; internal nodes
cache the number of resident leaves below them.  Whenever the occupancy
of a non-leaf node becomes *strictly greater than 50%*, the prefetcher
balances that node by scheduling every still-absent leaf in its subtree
for prefetch, then continues evaluating up the tree with the updated
occupancy.  Prefetch therefore never crosses a chunk boundary and issues
transfers between 64KB and half the chunk (1MB for a full chunk).

For a sequential sweep this faults on leaves 0, 1, 2, 4, 8, 16 of a
32-leaf chunk and prefetches the rest -- the behaviour published for the
CUDA driver's prefetcher.
"""

from __future__ import annotations

import numpy as np


class PrefetchTree:
    """Occupancy tree for one chunk; heap-indexed full binary tree."""

    __slots__ = ("num_leaves", "_levels", "_tree")

    def __init__(self, num_leaves: int) -> None:
        if num_leaves < 1 or num_leaves & (num_leaves - 1):
            raise ValueError(f"num_leaves must be a power of two, got {num_leaves}")
        self.num_leaves = num_leaves
        self._levels = num_leaves.bit_length() - 1
        # Heap layout: node i has children 2i+1, 2i+2; leaves occupy
        # indices [num_leaves-1, 2*num_leaves-1).
        self._tree = np.zeros(2 * num_leaves - 1, dtype=np.int32)

    # -- bookkeeping -----------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Number of resident leaves in the chunk."""
        return int(self._tree[0])

    def is_resident(self, leaf: int) -> bool:
        """Whether leaf ``leaf`` (0-based within the chunk) is resident."""
        self._check_leaf(leaf)
        return bool(self._tree[self.num_leaves - 1 + leaf])

    def resident_leaves(self) -> np.ndarray:
        """Indices of resident leaves."""
        leaves = self._tree[self.num_leaves - 1:]
        return np.flatnonzero(leaves)

    def clear(self) -> None:
        """Reset the tree after the chunk is evicted."""
        self._tree[:] = 0

    def remove(self, leaf: int) -> None:
        """Evict a single leaf (64KB-granular eviction support).

        Decrements occupancy along the leaf's path so the balancing
        heuristic sees the reduced residency on later faults.
        """
        self._check_leaf(leaf)
        idx = self.num_leaves - 1 + leaf
        if not self._tree[idx]:
            raise RuntimeError(f"leaf {leaf} is not resident")
        self._tree[idx] = 0
        while idx:
            idx = (idx - 1) >> 1
            self._tree[idx] -= 1

    def _check_leaf(self, leaf: int) -> None:
        if not 0 <= leaf < self.num_leaves:
            raise IndexError(f"leaf {leaf} outside chunk of {self.num_leaves} leaves")

    def _set_leaf(self, leaf: int) -> None:
        """Mark one leaf resident and propagate occupancy to the root."""
        idx = self.num_leaves - 1 + leaf
        if self._tree[idx]:
            raise RuntimeError(f"leaf {leaf} already resident")
        self._tree[idx] = 1
        while idx:
            idx = (idx - 1) >> 1
            self._tree[idx] += 1

    def _subtree_absent_leaves(self, node: int) -> np.ndarray:
        """Absent leaf indices under heap node ``node``."""
        # Find the leaf range covered by the node.
        first, span = node, 1
        while first < self.num_leaves - 1:
            first = 2 * first + 1
            span *= 2
        first -= self.num_leaves - 1
        leaves = self._tree[self.num_leaves - 1 + first:
                            self.num_leaves - 1 + first + span]
        return first + np.flatnonzero(leaves == 0)

    # -- driver entry points ----------------------------------------------

    def mark_resident(self, leaf: int) -> None:
        """Install a leaf without running the prefetch heuristic.

        Used for the leaves the prefetcher itself pulls in and for tests.
        """
        self._set_leaf(leaf)

    def on_fault(self, leaf: int) -> np.ndarray:
        """Handle a first-touch fault on ``leaf``.

        Marks the leaf resident, then walks from its parent to the root;
        at every ancestor whose occupancy strictly exceeds half its span,
        all absent leaves of that subtree are added to the prefetch set
        (and marked resident so higher levels see the updated occupancy).

        Returns the prefetched leaf indices (possibly empty), excluding
        the faulting leaf itself.
        """
        self._check_leaf(leaf)
        self._set_leaf(leaf)
        if self.num_leaves == 1:
            return np.empty(0, dtype=np.int64)

        prefetched: list[np.ndarray] = []
        node = self.num_leaves - 1 + leaf
        span = 1
        while node:
            node = (node - 1) >> 1
            span *= 2
            if 2 * int(self._tree[node]) > span:
                absent = self._subtree_absent_leaves(node)
                for lf in absent:
                    self._set_leaf(int(lf))
                if absent.size:
                    prefetched.append(absent)
        if not prefetched:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(prefetched).astype(np.int64)

    # -- invariants (used by property tests) -------------------------------

    def check_invariants(self) -> None:
        """Verify internal-node counts equal the sum of their children."""
        for node in range(self.num_leaves - 1):
            left, right = 2 * node + 1, 2 * node + 2
            if self._tree[node] != self._tree[left] + self._tree[right]:
                raise AssertionError(f"occupancy mismatch at node {node}")
        if not np.all((self._tree[self.num_leaves - 1:] == 0)
                      | (self._tree[self.num_leaves - 1:] == 1)):
            raise AssertionError("leaf occupancy must be 0 or 1")
