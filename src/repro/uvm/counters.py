"""Access counter file (Section IV, "Access Counter Maintenance").

The paper keeps one 32-bit register per 64KB basic block: the low 27 bits
count accesses (both device-local and remote -- unlike Volta hardware,
which counts only remote accesses) and the top 5 bits count round trips,
i.e. how many times the block has been evicted.  When either field of any
block saturates, the framework *halves* that field across all blocks
instead of resetting, preserving the relative hotness ordering across
allocations.
"""

from __future__ import annotations

import numpy as np

from ..accel import kernels as _py_kernels
from ..obs.events import CounterHalving


class AccessCounterFile:
    """Vectorized per-basic-block access and round-trip counters.

    ``bus`` optionally connects the file to the observability event bus:
    every global halving then emits a
    :class:`~repro.obs.events.CounterHalving` event (halvings are rare
    and change the relative hotness resolution, so they are worth
    tracing when debugging threshold behaviour).

    ``kernels`` selects the backend namespace for the bulk array ops
    (scatter-adds and saturation halving); the default is the numpy
    reference implementation.  See :mod:`repro.accel`.
    """

    def __init__(self, total_blocks: int, counter_bits: int = 27,
                 roundtrip_bits: int = 5, bus=None, kernels=None) -> None:
        if total_blocks <= 0:
            raise ValueError("need at least one basic block")
        self.bus = bus
        self._kern = kernels if kernels is not None else _py_kernels
        if counter_bits + roundtrip_bits != 32:
            raise ValueError("counter register must total 32 bits")
        self.counter_max = np.int64((1 << counter_bits) - 1)
        self.roundtrip_max = np.int64((1 << roundtrip_bits) - 1)
        # Stored wider than the architectural registers so a vectorized
        # bulk add cannot wrap before the saturation check runs.  int64
        # (rather than uint64) keeps the fields in the native dtype of
        # the driver's wave arithmetic, so the per-wave bulk adds and the
        # policies' counter gathers never pay a dtype-conversion copy.
        self._counts = np.zeros(total_blocks, dtype=np.int64)
        self._roundtrips = np.zeros(total_blocks, dtype=np.int64)
        #: Volta-hardware-style counters: remote accesses since the block
        #: last migrated (reset on migration).  The static Always/Oversub
        #: schemes consult these; the paper's framework uses the historic
        #: ``counts`` above instead -- that difference is Section IV's
        #: "Access Counter Maintenance" contribution.
        self.volta_counts = np.zeros(total_blocks, dtype=np.int64)
        #: Number of times each field has been globally halved (statistic).
        self.count_halvings = 0
        self.roundtrip_halvings = 0
        #: Whether any block has ever taken an eviction round trip; lets
        #: the driver skip thrash accounting until the first eviction.
        self.has_roundtrips = False

    @property
    def total_blocks(self) -> int:
        """Number of basic blocks tracked."""
        return self._counts.size

    @property
    def counts(self) -> np.ndarray:
        """Read-only view of the access-count field."""
        return self._counts

    @property
    def roundtrips(self) -> np.ndarray:
        """Read-only view of the round-trip field."""
        return self._roundtrips

    def add_accesses(self, blocks: np.ndarray, amounts: np.ndarray) -> None:
        """Accumulate per-block access counts (local and remote alike).

        ``blocks`` may contain duplicates; ``amounts`` is added per entry.
        Saturation of any block halves the access-count field of *all*
        blocks, as described in the paper.
        """
        self._kern.scatter_add(self._counts, blocks,
                               amounts.astype(np.int64, copy=False))
        self._halve_saturated_counts(blocks)

    def add_accesses_unique(self, blocks: np.ndarray,
                            amounts: np.ndarray) -> None:
        """:meth:`add_accesses` for *distinct* blocks.

        The fused batch path commits grouped (hence duplicate-free)
        block sets, where a plain fancy add replaces the duplicate-safe
        scatter.  Bit-identical to :meth:`add_accesses` on such input.
        """
        self._kern.scatter_add_unique(self._counts, blocks,
                                      amounts.astype(np.int64, copy=False))
        self._halve_saturated_counts(blocks)

    def add_accesses_sharded(self, blocks: np.ndarray, amounts: np.ndarray,
                             splits: list[tuple[int, int]]) -> None:
        """Sharded :meth:`add_accesses` over a sorted, pre-split wave.

        Each ``(lo, hi)`` slice is scatter-added independently (the
        per-shard work of ``--shards N``); the saturation check then
        runs once over the whole update.  Bit-identical to the
        unsharded add: the slices partition ``blocks``, so the summed
        counts are the same, and halving commutes with the split
        because ``max`` over the union equals the max of per-slice
        maxima.
        """
        amounts = amounts.astype(np.int64, copy=False)
        for lo, hi in splits:
            if hi > lo:
                self._kern.scatter_add(self._counts, blocks[lo:hi],
                                       amounts[lo:hi])
        self._halve_saturated_counts(blocks)

    def _halve_saturated_counts(self, blocks: np.ndarray) -> None:
        # Only just-updated blocks can newly saturate (counts never grow
        # elsewhere), so the check scans the update, not the whole file.
        n = self._kern.halve_while_ge(self._counts, blocks,
                                      self.counter_max)
        for _ in range(n):
            self.count_halvings += 1
            if self.bus is not None and self.bus.enabled:
                self.bus.emit(CounterHalving(wave=self.bus.wave,
                                             field="counts",
                                             halvings=self.count_halvings))

    def add_roundtrip(self, blocks: np.ndarray) -> None:
        """Record an eviction round trip for each *distinct* block."""
        self._kern.increment(self._roundtrips, blocks)
        self.has_roundtrips = True
        n = self._kern.halve_while_gt(self._roundtrips, blocks,
                                      self.roundtrip_max)
        for _ in range(n):
            self.roundtrip_halvings += 1
            if self.bus is not None and self.bus.enabled:
                self.bus.emit(CounterHalving(
                    wave=self.bus.wave, field="roundtrips",
                    halvings=self.roundtrip_halvings))

    def add_remote_accesses(self, blocks: np.ndarray,
                            amounts: np.ndarray) -> None:
        """Accumulate the Volta-style remote-access counters."""
        self._kern.scatter_add(self.volta_counts, blocks, amounts)

    def add_remote_accesses_unique(self, blocks: np.ndarray,
                                   amounts: np.ndarray) -> None:
        """:meth:`add_remote_accesses` for *distinct* blocks."""
        self._kern.scatter_add_unique(self.volta_counts, blocks, amounts)

    def reset_volta(self, blocks: np.ndarray) -> None:
        """Reset hardware counters when blocks migrate to the device."""
        self._kern.fill_zero(self.volta_counts, blocks)

    def chunk_heat(self, first_block: int, num_blocks: int) -> int:
        """Aggregate access count of one chunk (LFU victim ordering key)."""
        return int(self._counts[first_block:first_block + num_blocks].sum())
