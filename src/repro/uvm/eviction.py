"""Page replacement: 2MB-granular LRU and the framework's simplified LFU.

Replacement works on large chunks (Section II-C): a chunk is preferred as
a victim only when it is fully populated and not addressed by currently
scheduled warps (modelled as the chunks the in-flight wave touches).  If
no full, unpinned chunk exists the selector falls back to partially
populated chunks, and finally to pinned ones, so forward progress is
always possible.

Victim ordering:

* **LRU** (baseline): oldest ``last_touch`` first.
* **LFU** (framework, Section IV "Access Counter Based Page Replacement"):
  coldest aggregate access count first, read-only (clean) chunks before
  dirty ones, ties broken by ``last_touch`` -- which makes the policy
  degenerate to LRU for regular applications whose counters are uniform.
"""

from __future__ import annotations

import numpy as np

from ..accel import kernels as _py_kernels
from ..config import ReplacementPolicy
from ..memory.allocation import ChunkSpan


class ChunkDirectory:
    """Vectorized per-chunk residency metadata for the whole VA space."""

    def __init__(self, chunks: tuple[ChunkSpan, ...], total_blocks: int) -> None:
        if not chunks:
            raise ValueError("VA space has no chunks")
        self.num_chunks = len(chunks)
        self.first_block = np.array([c.first_block for c in chunks], dtype=np.int64)
        self.num_blocks = np.array([c.num_blocks for c in chunks], dtype=np.int64)
        #: Resident basic blocks per chunk.
        self.occupancy = np.zeros(self.num_chunks, dtype=np.int64)
        #: Logical timestamp of the most recent touch (LRU key).
        self.last_touch = np.zeros(self.num_chunks, dtype=np.int64)
        #: Map basic block -> owning chunk (-1 in alignment gaps).
        self.chunk_of_block = np.full(total_blocks, -1, dtype=np.int64)
        for cid, span in enumerate(chunks):
            if span.chunk_id != cid:
                raise ValueError("chunks must be passed in chunk-id order")
            self.chunk_of_block[span.first_block:span.last_block] = cid
        # Chunk geometry is immutable, so the per-chunk block-index
        # arrays and the gap mask are built once and shared (read-only)
        # instead of being reallocated on every eviction/rebuild.
        self._valid_block = self.chunk_of_block >= 0
        self._valid_block.flags.writeable = False
        self._valid_chunk_ids = self.chunk_of_block[self._valid_block]
        self._valid_chunk_ids.flags.writeable = False
        self._chunk_blocks: list[np.ndarray | None] = [None] * self.num_chunks

    def blocks_of_chunk(self, chunk_id: int) -> np.ndarray:
        """Global basic-block indices of one chunk (shared, read-only)."""
        blocks = self._chunk_blocks[chunk_id]
        if blocks is None:
            first = self.first_block[chunk_id]
            blocks = np.arange(first, first + self.num_blocks[chunk_id],
                               dtype=np.int64)
            blocks.flags.writeable = False
            self._chunk_blocks[chunk_id] = blocks
        return blocks

    def touch(self, chunk_ids: np.ndarray, now: int) -> None:
        """Refresh the LRU position of accessed chunks."""
        self.last_touch[chunk_ids] = now

    def chunk_heat(self, counters: np.ndarray) -> np.ndarray:
        """Aggregate access count per chunk from the per-block counter file."""
        return np.bincount(self._valid_chunk_ids,
                           weights=counters[self._valid_block]
                           .astype(np.float64),
                           minlength=self.num_chunks)

    def resident_heat(self, counters: np.ndarray,
                      resident: np.ndarray) -> np.ndarray:
        """Per-chunk sum of access counts over device-resident blocks.

        The driver builds this once per wave and then maintains it
        incrementally across installs and evictions (integer-valued
        float64 arithmetic, so the running sums stay exact).
        """
        valid = self._valid_block & resident
        return np.bincount(self.chunk_of_block[valid],
                           weights=counters[valid].astype(np.float64),
                           minlength=self.num_chunks)

    def heat_buckets_from_sums(self, heat_sum: np.ndarray) -> np.ndarray:
        """LFU ordering buckets from maintained resident-heat sums.

        Density is taken over the chunk's current occupancy; see
        :meth:`chunk_heat_buckets` for the bucketing rationale.
        """
        density = heat_sum / np.maximum(self.occupancy, 1)
        return np.floor(np.log2(np.maximum(density, 1.0))).astype(np.int64)

    def chunk_heat_buckets(self, counters: np.ndarray,
                           resident: np.ndarray | None = None) -> np.ndarray:
        """LFU ordering key: log2 bucket of per-block access density.

        The paper's simplified LFU must degenerate to LRU when "pages are
        accessed with almost the same frequency" (regular applications).
        Comparing raw sums would break ties on incidental mid-sweep count
        skew, so chunks are ranked by the binary order of magnitude of
        their mean per-block access count; within a bucket the LRU
        timestamp decides.

        When ``resident`` is given, only device-resident blocks
        contribute -- what matters is the hotness of the pages an
        eviction would actually displace.
        """
        if resident is not None:
            valid = self._valid_block & resident
            ids = self.chunk_of_block[valid]
        else:
            valid = self._valid_block
            ids = self._valid_chunk_ids
        heat = np.bincount(ids,
                           weights=counters[valid].astype(np.float64),
                           minlength=self.num_chunks)
        denom = (np.maximum(self.occupancy, 1) if resident is not None
                 else np.maximum(self.num_blocks, 1))
        density = heat / denom
        return np.floor(np.log2(np.maximum(density, 1.0))).astype(np.int64)

    def chunk_dirty(self, dirty: np.ndarray) -> np.ndarray:
        """True per chunk when any resident block is dirty."""
        counts = np.bincount(self._valid_chunk_ids,
                             weights=dirty[self._valid_block]
                             .astype(np.float64),
                             minlength=self.num_chunks)
        return counts > 0


_I64_MAX = np.int64(np.iinfo(np.int64).max)


def _victim_key(directory: ChunkDirectory,
                policy: ReplacementPolicy,
                heat: np.ndarray | None,
                dirty_any: np.ndarray | None,
                kern) -> np.ndarray:
    """Per-chunk eviction-ordering key, smallest evicts first.

    LFU packs (heat bucket, dirty, last_touch) into one 64-bit composite
    instead of a three-pass lexsort: heat buckets are small non-negative
    ints and the LRU clock counts waves, so heat is the primary key and
    ``last_touch`` breaks ties.  LRU is just ``last_touch``.
    """
    if policy is ReplacementPolicy.LFU:
        if heat is None or dirty_any is None:
            raise ValueError("LFU selection needs heat and dirty information")
        return kern.lfu_key(heat, dirty_any, directory.last_touch)
    return directory.last_touch


def select_victims(directory: ChunkDirectory,
                   needed_blocks: int,
                   policy: ReplacementPolicy,
                   pinned: np.ndarray,
                   heat: np.ndarray | None = None,
                   dirty_any: np.ndarray | None = None,
                   never: np.ndarray | None = None,
                   order: np.ndarray | None = None,
                   kern=None) -> list[int]:
    """Choose chunks to evict until ``needed_blocks`` frames are freed.

    ``pinned`` chunks (addressed by scheduled warps) are avoided but may
    be reclaimed as a last resort; ``never`` chunks (the chunk a
    migration is currently filling) are excluded unconditionally.
    ``order`` optionally supplies a precomputed victim ordering (the
    driver caches the LRU argsort across a wave); it must match what
    this function would compute from the current metadata.

    ``kern`` selects the backend kernel namespace for the ordering-key
    and argmin steps (:mod:`repro.accel`; default: numpy reference).

    Returns chunk ids in eviction order.  Raises ``RuntimeError`` if even
    evicting everything cannot free enough space (capacity misconfigured).
    """
    if needed_blocks <= 0:
        return []
    if kern is None:
        kern = _py_kernels
    occ = directory.occupancy
    populated = occ > 0
    if never is not None:
        populated = populated & ~never
    full = occ == directory.num_blocks

    if needed_blocks == 1:
        # Any populated chunk covers a one-frame deficit -- the common
        # case when a single fault block needs room -- so the best
        # victim is an argmin over the ordering key, no sort at all.
        # np.argmin's first-occurrence tie-break matches the stable
        # argsort the general path uses.
        key = _victim_key(directory, policy, heat, dirty_any, kern)
        for tier_mask in (populated & full & ~pinned,
                          populated & ~pinned,
                          populated):
            if tier_mask.any():
                return [int(kern.masked_argmin(key, tier_mask))]
        raise RuntimeError("cannot free 1 block: nothing resident")

    if order is None:
        key = _victim_key(directory, policy, heat, dirty_any, kern)
        order = np.argsort(key, kind="stable")
    victims: list[int] = []
    chosen = np.zeros(directory.num_chunks, dtype=bool)
    freed = 0
    # Candidate tiers: (full, unpinned) -> (partial, unpinned) -> (any populated).
    for tier_mask in (populated & full & ~pinned,
                      populated & ~pinned,
                      populated):
        if freed >= needed_blocks:
            break
        # Walk the tier's candidates in eviction order, taking chunks
        # until their cumulative occupancy covers the deficit.
        cands = order[(tier_mask & ~chosen)[order]]
        if cands.size == 0:
            continue
        cum = freed + np.cumsum(occ[cands])
        cut = int(np.searchsorted(cum, needed_blocks, side="left"))
        take = cands[:min(cut + 1, cands.size)]
        victims.extend(int(c) for c in take)
        chosen[take] = True
        freed = int(cum[take.size - 1])
    if freed < needed_blocks:
        raise RuntimeError(
            f"cannot free {needed_blocks} blocks: only {freed} resident"
        )
    return victims
