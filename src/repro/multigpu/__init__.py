"""Multi-GPU collaborative execution (paper future work, Section VIII)."""

from .cluster import MultiGpuResult, MultiGpuSimulator

__all__ = ["MultiGpuResult", "MultiGpuSimulator"]
