"""Multi-GPU collaborative execution (paper future work, Section VIII)."""

from .cluster import KNOWN_PARTITIONS, MultiGpuResult, MultiGpuSimulator

__all__ = ["KNOWN_PARTITIONS", "MultiGpuResult", "MultiGpuSimulator"]
