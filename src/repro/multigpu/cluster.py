"""Multi-GPU collaborative execution (the paper's future work).

Section VIII proposes studying the dynamic-threshold heuristic "in
multi-GPU clusters for collaborative applications as a mechanism to
enforce memory throttling and reduce thrashing"; Section VI notes
NVIDIA's guidance to spread working sets across GPUs beyond 125%
oversubscription.  This module implements that system:

* the workload's wave stream is partitioned across ``num_gpus`` devices
  at 2MB-chunk granularity (chunk ``c`` belongs to GPU ``c % N``), the
  data-parallel decomposition a collaborative UVM application uses;
* each GPU runs its own UVM driver (residency, counters, prefetch
  trees, replacement) over its partition, backed by the shared host
  memory;
* kernels are bulk-synchronous: a launch completes when the slowest
  GPU finishes its partition, so the reported makespan is the max over
  devices per kernel, summed over launches;
* an optional **throttle** caps the fraction of each device's memory
  the driver may use -- the knob the paper proposes driving with the
  adaptive threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import SimulationConfig, capacity_for_oversubscription
from ..gpu.timing import TimingModel, WaveTiming
from ..interconnect.pcie import PcieModel
from ..memory import layout
from ..memory.allocator import VirtualAddressSpace
from ..sim.results import RunResult
from ..uvm.driver import UvmDriver, WaveOutcome
from ..workloads.base import Workload

#: Wave-stream partition strategies: how virtual pages map to devices.
#:
#: * ``chunk`` -- 2MB chunks round-robin across GPUs (the default; the
#:   data-parallel decomposition a collaborative UVM application uses);
#: * ``block`` -- 64KB basic blocks round-robin, a finer interleave that
#:   spreads hot chunks across devices at the cost of more cross-device
#:   wave splitting;
#: * ``span`` -- contiguous spans: the address space is cut into N
#:   equal chunk ranges, GPU ``g`` owning the ``g``-th range (the
#:   static partitioning of an explicitly-decomposed application).
KNOWN_PARTITIONS: tuple[str, ...] = ("chunk", "block", "span")


@dataclass
class MultiGpuResult:
    """Outcome of a collaborative multi-GPU simulation."""

    workload: str
    num_gpus: int
    #: Bulk-synchronous makespan in GPU core cycles.
    makespan_cycles: float
    #: Per-device busy cycles (sum of that device's kernel times).
    per_gpu_cycles: list[float]
    #: Per-device event totals.
    per_gpu_events: list[WaveOutcome]
    #: Per-device timing breakdowns.
    per_gpu_timing: list[WaveTiming] = field(repr=False, default=None)
    footprint_bytes: int = 0
    capacity_per_gpu_bytes: int = 0
    #: Partition strategy the wave stream was split with.
    partition: str = "chunk"

    @property
    def total_thrash(self) -> int:
        """Thrash migrations summed over devices."""
        return sum(ev.thrash_migrations for ev in self.per_gpu_events)

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean per-device busy cycles (1.0 = perfectly even)."""
        mean = sum(self.per_gpu_cycles) / self.num_gpus
        return max(self.per_gpu_cycles) / mean if mean else 1.0

    def speedup_over(self, other: "MultiGpuResult | RunResult") -> float:
        """Makespan ratio versus another run."""
        theirs = getattr(other, "makespan_cycles", None)
        if theirs is None:
            theirs = other.total_cycles
        return theirs / self.makespan_cycles


class MultiGpuSimulator:
    """Bulk-synchronous collaborative execution across N devices."""

    def __init__(self, config: SimulationConfig | None = None,
                 num_gpus: int = 2, throttle: float = 1.0,
                 partition: str = "chunk") -> None:
        if num_gpus < 1:
            raise ValueError("need at least one GPU")
        if not 0.0 < throttle <= 1.0:
            raise ValueError("throttle must be in (0, 1]")
        if partition not in KNOWN_PARTITIONS:
            raise ValueError(f"unknown partition strategy {partition!r}; "
                             f"choose from {KNOWN_PARTITIONS}")
        self.config = config or SimulationConfig()
        self.num_gpus = num_gpus
        self.throttle = throttle
        self.partition = partition
        #: Chunks in the running workload's address space (set per run;
        #: the ``span`` strategy needs the total to cut equal ranges).
        self._num_chunks = 1

    def run(self, workload: Workload,
            oversubscription: float | None = None) -> MultiGpuResult:
        """Simulate ``workload`` split across the cluster.

        ``oversubscription`` is interpreted per the paper's single-GPU
        methodology: it sets the capacity one device would have.  Adding
        devices adds capacity, so the per-partition pressure drops with
        the cluster size.
        """
        rng = np.random.default_rng(self.config.seed)
        vas = VirtualAddressSpace()
        workload.build(vas, rng)
        if not vas.allocations:
            raise ValueError(f"workload {workload.name!r} allocated nothing")
        self._num_chunks = max(len(vas.chunks), 1)

        config = self.config
        if oversubscription is not None:
            cap = capacity_for_oversubscription(vas.footprint_bytes,
                                                oversubscription)
            config = config.with_device_capacity(cap)
        usable = int(config.memory.device_capacity * self.throttle)
        usable -= usable % layout.CHUNK_SIZE
        usable = max(usable, layout.CHUNK_SIZE)
        config = config.with_device_capacity(usable)

        drivers = [UvmDriver(vas, config) for _ in range(self.num_gpus)]
        timings = [TimingModel(config, PcieModel(config.interconnect,
                                                 config.gpu))
                   for _ in range(self.num_gpus)]
        busy = [0.0] * self.num_gpus
        events = [WaveOutcome() for _ in range(self.num_gpus)]
        breakdowns = [WaveTiming() for _ in range(self.num_gpus)]
        makespan = 0.0

        for launch in workload.kernels():
            kernel_busy = [0.0] * self.num_gpus
            for wave in launch.waves():
                owner = self._owners(wave.pages)
                for g in range(self.num_gpus):
                    mask = owner == g
                    if not mask.any():
                        continue
                    out = drivers[g].process_wave(
                        wave.pages[mask], wave.is_write[mask],
                        wave.counts[mask])
                    compute = None
                    if wave.compute_cycles is not None:
                        # Compute splits with the accesses.
                        share = out.n_accesses / max(wave.n_accesses, 1)
                        compute = wave.compute_cycles * share
                    t = timings[g].wave_cycles(out, compute)
                    kernel_busy[g] += t.total
                    events[g].merge(out)
                    breakdowns[g].merge(t)
            for g in range(self.num_gpus):
                busy[g] += kernel_busy[g]
            makespan += max(kernel_busy)

        return MultiGpuResult(
            workload=workload.name,
            num_gpus=self.num_gpus,
            makespan_cycles=makespan,
            per_gpu_cycles=busy,
            per_gpu_events=events,
            per_gpu_timing=breakdowns,
            footprint_bytes=vas.footprint_bytes,
            capacity_per_gpu_bytes=usable,
            partition=self.partition,
        )

    def _owners(self, pages: np.ndarray) -> np.ndarray:
        """Device owning each accessed page (see :data:`KNOWN_PARTITIONS`)."""
        if self.partition == "block":
            return (pages // layout.PAGES_PER_BLOCK) % self.num_gpus
        chunk_ids = pages // layout.PAGES_PER_CHUNK
        if self.partition == "span":
            owners = chunk_ids * self.num_gpus // self._num_chunks
            return np.minimum(owners, self.num_gpus - 1)
        return chunk_ids % self.num_gpus
