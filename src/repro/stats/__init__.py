"""Statistics collection."""

from .collector import (KernelStats, StatsCollector,
                        TimelineSample, TraceRecord)

__all__ = ["KernelStats", "StatsCollector", "TimelineSample",
           "TraceRecord"]
