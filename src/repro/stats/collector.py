"""Run statistics: counters, per-page histograms, and access traces.

The collector sits next to the driver and records what the paper's
figures need:

* cumulative event totals (runtime components, thrash counts) for
  Figures 1 and 4--8;
* optional per-page read/write access histograms, grouped per managed
  allocation, for the Figure 2 access-distribution plots;
* optional sampled ``(cycle, page, is_write)`` traces tagged with kernel
  name and iteration for the Figure 3 access-pattern visualizations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..memory.allocator import VirtualAddressSpace


@dataclass
class TraceRecord:
    """One sampled wave for access-pattern plots (Figure 3)."""

    cycle: float
    kernel: str
    iteration: int
    pages: np.ndarray
    is_write: np.ndarray


@dataclass
class KernelStats:
    """Aggregated cycles and accesses per kernel name."""

    cycles: float = 0.0
    accesses: int = 0
    launches: int = 0


@dataclass
class TimelineSample:
    """One memory-pressure sample (taken after a wave completes)."""

    cycle: float
    resident_blocks: int
    capacity_blocks: int
    cumulative_faults: int
    cumulative_thrash: int

    @property
    def occupancy(self) -> float:
        """Device occupancy fraction at this sample."""
        return self.resident_blocks / self.capacity_blocks


class StatsCollector:
    """Optional heavyweight instrumentation toggled by the config.

    A collector **accumulates** across every run it observes: feeding a
    second engine run into the same instance sums its page histograms,
    extends its trace and timeline, and merges per-kernel stats by
    kernel name (``launches`` keeps growing).  That is the right
    behaviour for a multi-kernel workload within one run, but reusing
    one collector across repeated ``Simulator``/engine runs silently
    aggregates them -- call :meth:`reset` between runs when per-run
    stats are wanted.
    """

    def __init__(self, vas: VirtualAddressSpace,
                 histogram: bool = False, trace: bool = False,
                 timeline: bool = False, trace_sample: int = 512) -> None:
        self.vas = vas
        self.histogram_enabled = histogram
        self.trace_enabled = trace
        self.timeline_enabled = timeline
        self.trace_sample = trace_sample
        n = vas.total_pages
        self.page_reads = np.zeros(n, dtype=np.int64) if histogram else None
        self.page_writes = np.zeros(n, dtype=np.int64) if histogram else None
        self.trace: list[TraceRecord] = []
        self.timeline: list[TimelineSample] = []
        self.kernels: dict[str, KernelStats] = {}

    def reset(self) -> None:
        """Clear all accumulated state so the collector can be reused.

        Zeroes the page histograms in place and empties the trace,
        timeline, and per-kernel aggregates.  The enabled/disabled
        switches and the bound address space are untouched, so the
        collector observes its next run exactly as a fresh instance
        would.
        """
        if self.histogram_enabled:
            self.page_reads[:] = 0
            self.page_writes[:] = 0
        self.trace.clear()
        self.timeline.clear()
        self.kernels.clear()

    def on_wave(self, kernel: str, iteration: int, cycle: float,
                pages: np.ndarray, is_write: np.ndarray,
                counts: np.ndarray | None = None) -> None:
        """Record one wave before the driver consumes it."""
        if counts is None:
            counts = np.ones(pages.shape, dtype=np.int64)
        if self.histogram_enabled:
            np.add.at(self.page_reads, pages[~is_write], counts[~is_write])
            np.add.at(self.page_writes, pages[is_write], counts[is_write])
        if self.trace_enabled and pages.size:
            if pages.size > self.trace_sample:
                idx = np.linspace(0, pages.size - 1, self.trace_sample,
                                  dtype=np.int64)
                rec_pages, rec_writes = pages[idx], is_write[idx]
            else:
                rec_pages, rec_writes = pages.copy(), is_write.copy()
            self.trace.append(TraceRecord(cycle, kernel, iteration,
                                          rec_pages, rec_writes))

    def on_timeline(self, cycle: float, resident_blocks: int,
                    capacity_blocks: int, cumulative_faults: int,
                    cumulative_thrash: int) -> None:
        """Record one post-wave memory-pressure sample."""
        if not self.timeline_enabled:
            return
        self.timeline.append(TimelineSample(
            cycle=cycle, resident_blocks=resident_blocks,
            capacity_blocks=capacity_blocks,
            cumulative_faults=cumulative_faults,
            cumulative_thrash=cumulative_thrash))

    def render_timeline(self, width: int = 64, height: int = 8) -> str:
        """ASCII occupancy-over-time sketch from the timeline samples."""
        if not self.timeline:
            return "(no timeline samples)"
        t_max = self.timeline[-1].cycle or 1.0
        raster = [[" "] * width for _ in range(height)]
        for s in self.timeline:
            col = min(int(width * s.cycle / t_max), width - 1)
            row = min(int(height * s.occupancy), height - 1)
            raster[height - 1 - row][col] = "#"
        lines = ["occupancy over time (100% at top):"]
        lines += ["  |" + "".join(r) + "|" for r in raster]
        return "\n".join(lines)

    def on_kernel_end(self, kernel: str, cycles: float, accesses: int) -> None:
        """Accumulate per-kernel totals."""
        ks = self.kernels.setdefault(kernel, KernelStats())
        ks.cycles += cycles
        ks.accesses += accesses
        ks.launches += 1

    # -- Figure 2 helpers ---------------------------------------------------

    def allocation_histogram(self, name: str) -> dict[str, np.ndarray]:
        """Per-page read/write counts of one allocation, requested pages only."""
        if not self.histogram_enabled:
            raise RuntimeError("histogram collection was not enabled")
        alloc = next(a for a in self.vas.allocations if a.name == name)
        lo, hi = alloc.first_page, alloc.last_page
        return {
            "reads": self.page_reads[lo:hi].copy(),
            "writes": self.page_writes[lo:hi].copy(),
        }

    def allocation_summary(self) -> list[dict]:
        """Access totals per allocation (hot/cold, RO/RW classification)."""
        if not self.histogram_enabled:
            raise RuntimeError("histogram collection was not enabled")
        rows = []
        for alloc in self.vas.allocations:
            lo, hi = alloc.first_page, alloc.last_page
            reads = int(self.page_reads[lo:hi].sum())
            writes = int(self.page_writes[lo:hi].sum())
            pages = hi - lo
            rows.append({
                "name": alloc.name,
                "pages": pages,
                "reads": reads,
                "writes": writes,
                "accesses_per_page": (reads + writes) / pages,
                "read_only": writes == 0,
            })
        return rows
