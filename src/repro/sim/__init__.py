"""Simulation facade and results."""

from .results import RunResult
from .simulator import Simulator

__all__ = ["RunResult", "Simulator"]
