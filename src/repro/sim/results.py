"""Run results: the quantities the paper's evaluation reports."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import SimulationConfig
from ..gpu.timing import WaveTiming
from ..stats.collector import StatsCollector
from ..uvm.driver import WaveOutcome


@dataclass
class RunResult:
    """Outcome of simulating one workload under one configuration."""

    workload: str
    config: SimulationConfig
    #: Total kernel execution time in GPU core cycles (the paper's
    #: "runtime"; host-side setup is excluded, as in the paper).
    total_cycles: float
    #: Cycle breakdown summed over all waves.
    timing: WaveTiming
    #: Event totals summed over all waves.
    events: WaveOutcome
    #: Optional heavy instrumentation (histograms/traces).
    stats: StatsCollector | None = field(default=None, repr=False)
    #: Working-set and capacity context.
    footprint_bytes: int = 0
    device_capacity_bytes: int = 0
    #: Number of distinct basic blocks that thrashed at least once.
    unique_thrashed_blocks: int = 0

    @property
    def runtime_seconds(self) -> float:
        """Wall-clock kernel time implied by the core clock."""
        return self.total_cycles / self.config.gpu.clock_hz

    @property
    def oversubscription(self) -> float:
        """Working set as a fraction of device capacity."""
        if self.device_capacity_bytes == 0:
            return 0.0
        return self.footprint_bytes / self.device_capacity_bytes

    @property
    def pages_thrashed(self) -> int:
        """Total thrash migrations (Figure 7's metric, block granularity)."""
        return self.events.thrash_migrations

    @property
    def fault_count(self) -> int:
        """Total far-fault events."""
        return self.events.fault_events

    @property
    def hit_ratio(self) -> float:
        """Fraction of accesses served device-locally."""
        if self.events.n_accesses == 0:
            return 0.0
        return self.events.n_local / self.events.n_accesses

    # -- traffic and utilization -------------------------------------------

    @property
    def h2d_bytes(self) -> int:
        """Host->device bytes moved (migrations + prefetches)."""
        from ..memory.layout import BASIC_BLOCK_SIZE
        return self.events.h2d_blocks * BASIC_BLOCK_SIZE

    @property
    def d2h_bytes(self) -> int:
        """Device->host bytes moved (dirty write-backs)."""
        from ..memory.layout import BASIC_BLOCK_SIZE
        return self.events.writeback_blocks * BASIC_BLOCK_SIZE

    @property
    def remote_bytes(self) -> int:
        """Payload bytes served by remote zero-copy transactions."""
        return (self.events.n_remote
                * self.config.interconnect.remote_transaction_bytes)

    @property
    def pcie_utilization(self) -> float:
        """Fraction of one PCIe direction's capacity the run consumed.

        Uses the heavier direction (h2d migrations + remote traffic vs
        d2h write-backs) against the link capacity over the whole run.
        """
        if self.total_cycles == 0:
            return 0.0
        bpc = (self.config.interconnect.bandwidth
               / self.config.gpu.clock_hz)
        heavier = max(self.h2d_bytes + self.remote_bytes, self.d2h_bytes)
        return heavier / (self.total_cycles * bpc)

    def bandwidth_report(self) -> dict:
        """Effective bandwidths in GB/s plus link utilization."""
        seconds = max(self.runtime_seconds, 1e-12)
        return {
            "h2d_gbps": self.h2d_bytes / seconds / 1e9,
            "d2h_gbps": self.d2h_bytes / seconds / 1e9,
            "remote_gbps": self.remote_bytes / seconds / 1e9,
            "pcie_utilization": self.pcie_utilization,
        }

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles divided by this run's cycles (>1 means faster)."""
        if self.total_cycles == 0:
            raise ZeroDivisionError("run recorded zero cycles")
        return baseline.total_cycles / self.total_cycles

    def normalized_runtime(self, baseline: "RunResult") -> float:
        """This run's cycles relative to a baseline run (the paper's y-axes)."""
        if baseline.total_cycles == 0:
            raise ZeroDivisionError("baseline recorded zero cycles")
        return self.total_cycles / baseline.total_cycles

    def summary(self) -> dict:
        """Flat dictionary for tabular reporting."""
        ev = self.events
        return {
            "workload": self.workload,
            "policy": self.config.policy.policy.value,
            "cycles": self.total_cycles,
            "runtime_ms": self.runtime_seconds * 1e3,
            "accesses": ev.n_accesses,
            "local": ev.n_local,
            "remote": ev.n_remote,
            "faults": ev.fault_events,
            "migrated_blocks": ev.migrated_blocks,
            "prefetched_blocks": ev.prefetched_blocks,
            "evicted_blocks": ev.evicted_blocks,
            "writeback_blocks": ev.writeback_blocks,
            "thrash_migrations": ev.thrash_migrations,
            "retried_transfers": ev.retried_transfers,
            "degraded_accesses": ev.degraded_accesses,
            "oversubscription": self.oversubscription,
        }
