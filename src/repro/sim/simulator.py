"""Top-level simulation facade.

``Simulator`` wires together the VA space, the UVM driver, the PCIe and
timing models, and the execution engine, then runs a workload end to end:

>>> from repro import Simulator, SimulationConfig, MigrationPolicy
>>> from repro.workloads import make_workload
>>> cfg = SimulationConfig().with_policy(MigrationPolicy.ADAPTIVE)
>>> result = Simulator(cfg).run(make_workload("sssp", scale="tiny"))
>>> result.total_cycles > 0
True
"""

from __future__ import annotations

import numpy as np

from ..config import SimulationConfig, capacity_for_oversubscription
from ..gpu.engine import GpuExecutionEngine
from ..gpu.timing import TimingModel
from ..interconnect.pcie import PcieModel
from ..memory.allocator import VirtualAddressSpace
from ..obs.events import RunMeta
from ..stats.collector import StatsCollector
from ..uvm.driver import UvmDriver
from ..workloads.base import Workload
from .results import RunResult


class Simulator:
    """Runs one workload under one configuration."""

    def __init__(self, config: SimulationConfig | None = None) -> None:
        self.config = (config or SimulationConfig()).validate()

    def run(self, workload: Workload,
            oversubscription: float | None = None,
            obs=None) -> RunResult:
        """Simulate ``workload`` to completion.

        When ``oversubscription`` is given, the device capacity is derived
        from the workload footprint (the paper's methodology: free space is
        throttled, working sets are not scaled).  Otherwise the configured
        ``memory.device_capacity`` is used as-is.

        ``obs`` optionally wires a :class:`repro.obs.Observability`
        handle through the driver and engine: structured events flow to
        its sinks, rollups to its metrics registry, span timings to its
        profiler.  ``None`` (the default) is the zero-overhead path and
        produces bit-identical results to any instrumented run.
        """
        rng = np.random.default_rng(self.config.seed)
        vas = VirtualAddressSpace()
        workload.build(vas, rng)
        if not vas.allocations:
            raise ValueError(f"workload {workload.name!r} allocated nothing")

        config = self.config
        if oversubscription is not None:
            cap = capacity_for_oversubscription(vas.footprint_bytes,
                                                oversubscription)
            config = config.with_device_capacity(cap)

        driver = UvmDriver(vas, config, obs=obs)
        if obs is not None and obs.bus.enabled:
            # Self-describing log header: lets `repro inspect` map
            # per-block events back to managed allocations.
            obs.bus.emit(RunMeta(
                workload=workload.name,
                policy=config.policy.policy.value,
                seed=config.seed,
                total_blocks=vas.total_blocks,
                capacity_blocks=driver.device.capacity_blocks,
                allocations=tuple(
                    (a.name, a.first_block, a.first_block + a.num_blocks)
                    for a in vas.allocations),
                backend=driver.backend_name,
                shards=driver.shards))
        pcie = PcieModel(config.interconnect, config.gpu)
        timing = TimingModel(config, pcie)
        collector = None
        if (config.collect_page_histogram or config.collect_access_trace
                or config.collect_timeline):
            collector = StatsCollector(
                vas,
                histogram=config.collect_page_histogram,
                trace=config.collect_access_trace,
                timeline=config.collect_timeline,
            )
        engine = GpuExecutionEngine(driver, timing, collector, obs=obs)
        if obs is not None and obs.profiler is not None:
            # Root span bracketing the whole execution: gives the
            # profile report an end-to-end total and the timeline
            # export a top-level lane enclosing every wave.
            with obs.profiler.span("run"):
                total = engine.run(workload)
        else:
            total = engine.run(workload)

        if obs is not None and obs.metrics is not None:
            # End-of-run rollup: how much of the wave stream the resident
            # fast path absorbed (see docs/observability.md).
            obs.metrics.gauge("driver.fast_path_hit_rate").set(
                driver.fast_path_hit_rate)
            obs.metrics.counter("driver.fast_path_waves").inc(
                driver.stats.fast_path_waves)
            obs.metrics.counter("driver.waves").inc(driver.stats.waves)
            # Which kernel backend actually ran (after any numba
            # fallback) and the decision-phase shard count.
            obs.metrics.counter(
                f"driver.backend.{driver.backend_name}").inc()
            obs.metrics.gauge("driver.shards").set(float(driver.shards))

        return RunResult(
            workload=workload.name,
            config=config,
            total_cycles=total,
            timing=engine.total_timing,
            events=engine.total_events,
            stats=collector,
            footprint_bytes=vas.footprint_bytes,
            device_capacity_bytes=driver.device.capacity_bytes,
            unique_thrashed_blocks=len(driver.stats.thrashed_block_ids),
        )
