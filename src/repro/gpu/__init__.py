"""GPU-side execution and timing models."""

from .engine import GpuExecutionEngine
from .sm import KernelResources, SmOccupancyModel, SmResources
from .timing import TimingModel, WaveTiming

__all__ = [
    "GpuExecutionEngine",
    "KernelResources",
    "SmOccupancyModel",
    "SmResources",
    "TimingModel",
    "WaveTiming",
]
