"""SM occupancy model (Table I's shader-core configuration).

The paper's simulator inherits GPGPU-Sim's shader cores: 28 SMs with up
to 32 CTAs and 64 warps each, GTO-scheduled.  The wave-based timing
model does not simulate warp issue, but occupancy still matters: a
kernel that cannot fill the SMs hides less memory latency, which is why
`TimingModel` lets workloads scale their compute estimate.  This module
provides the standard CUDA occupancy arithmetic so that scaling can be
derived from a kernel's launch configuration instead of guessed.

`KernelResources` describes one kernel's per-CTA appetite;
`SmOccupancyModel.occupancy` returns the fraction of the GPU's warp
slots it can keep busy, limited by whichever resource runs out first
(warps, CTA slots, registers, or shared memory) -- the same arithmetic
as NVIDIA's occupancy calculator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GpuConfig


@dataclass(frozen=True)
class KernelResources:
    """Per-CTA resource appetite of one kernel."""

    #: Threads per CTA (block size).
    threads_per_cta: int = 256
    #: Registers per thread.
    registers_per_thread: int = 32
    #: Shared memory bytes per CTA.
    shared_mem_per_cta: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_cta < 1:
            raise ValueError("CTA must have at least one thread")
        if self.registers_per_thread < 0 or self.shared_mem_per_cta < 0:
            raise ValueError("resource demands cannot be negative")


@dataclass(frozen=True)
class SmResources:
    """Per-SM resource pools (Pascal GP102 defaults)."""

    register_file: int = 65536
    shared_memory: int = 98304
    max_threads: int = 2048


class SmOccupancyModel:
    """CUDA occupancy arithmetic over the configured GPU."""

    def __init__(self, gpu: GpuConfig | None = None,
                 sm: SmResources | None = None) -> None:
        self.gpu = gpu or GpuConfig()
        self.sm = sm or SmResources()

    def warps_per_cta(self, kernel: KernelResources) -> int:
        """Warps one CTA occupies (rounded up)."""
        return -(-kernel.threads_per_cta // self.gpu.warp_size)

    def ctas_per_sm(self, kernel: KernelResources) -> int:
        """Resident CTAs per SM, limited by the scarcest resource."""
        g, s = self.gpu, self.sm
        warps = self.warps_per_cta(kernel)
        limits = [
            g.max_ctas_per_sm,
            g.max_warps_per_sm // warps,
            s.max_threads // kernel.threads_per_cta,
        ]
        regs_per_cta = (kernel.registers_per_thread
                        * kernel.threads_per_cta)
        if regs_per_cta:
            limits.append(s.register_file // regs_per_cta)
        if kernel.shared_mem_per_cta:
            limits.append(s.shared_memory // kernel.shared_mem_per_cta)
        return max(0, min(limits))

    def active_warps_per_sm(self, kernel: KernelResources) -> int:
        """Warps resident on one SM under this kernel."""
        return self.ctas_per_sm(kernel) * self.warps_per_cta(kernel)

    def occupancy(self, kernel: KernelResources) -> float:
        """Fraction of the SM's warp slots the kernel fills (0..1)."""
        return self.active_warps_per_sm(kernel) / self.gpu.max_warps_per_sm

    def total_active_warps(self, kernel: KernelResources) -> int:
        """Active warps across the whole GPU."""
        return self.active_warps_per_sm(kernel) * self.gpu.num_sms

    def compute_scale(self, kernel: KernelResources,
                      reference_occupancy: float = 1.0) -> float:
        """Compute-time multiplier for a kernel's launch configuration.

        Lower occupancy means less latency hiding, hence proportionally
        more effective cycles per access relative to a fully occupied
        reference.  Returns >= 1.0; infinite-demand kernels (occupancy
        zero) are rejected.
        """
        occ = self.occupancy(kernel)
        if occ <= 0.0:
            raise ValueError("kernel cannot be scheduled on this SM")
        if not 0.0 < reference_occupancy <= 1.0:
            raise ValueError("reference occupancy must be in (0, 1]")
        return max(1.0, reference_occupancy / occ)
