"""Wave-based GPU timing model.

Converts the event counts of a :class:`repro.uvm.driver.WaveOutcome` into
GPU core cycles.  The model captures the structure the paper's results
depend on, not SM pipeline detail:

* compute and *local* memory traffic overlap (massive TLP hides local
  DRAM latency, Section II-A), so a wave's execution time is the max of
  its compute time and its memory-service time;
* far-fault handling and fault-driven migration **serialize** with
  kernel execution ("the data migration and kernel execution is
  serialized", Section II-A) -- the offending warps stall and the SMs run
  dry while the driver works;
* write-backs serialize before the migrations that needed the space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from ..interconnect.pcie import PcieModel
from ..uvm.driver import WaveOutcome


@dataclass
class WaveTiming:
    """Cycle breakdown of one wave (all floats, GPU core cycles)."""

    compute: float = 0.0
    local: float = 0.0
    remote: float = 0.0
    fault_handling: float = 0.0
    migration: float = 0.0
    writeback: float = 0.0
    total: float = 0.0

    def merge(self, other: "WaveTiming") -> None:
        """Accumulate ``other`` into this breakdown."""
        for f in _WAVE_TIMING_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f))


#: Field names of :class:`WaveTiming`, precomputed once: ``merge`` runs
#: once per wave on the hot path.
_WAVE_TIMING_FIELDS: tuple[str, ...] = tuple(
    f.name for f in WaveTiming.__dataclass_fields__.values())


class TimingModel:
    """Maps wave outcomes to cycles using the configured cost constants."""

    def __init__(self, config: SimulationConfig, pcie: PcieModel) -> None:
        self.config = config
        self.pcie = pcie
        gcfg = config.gpu
        #: Device DRAM bytes per core cycle.
        self.dram_bytes_per_cycle = gcfg.dram_bandwidth / gcfg.clock_hz

    def wave_cycles(self, outcome: WaveOutcome,
                    compute_cycles: float | None = None) -> WaveTiming:
        """Cycle cost of one wave.

        ``compute_cycles`` overrides the default arithmetic-intensity
        estimate (``compute_cycles_per_access`` per issued access).
        """
        tcfg = self.config.timing
        t = WaveTiming()
        if compute_cycles is None:
            compute_cycles = (outcome.n_accesses * tcfg.compute_cycles_per_access
                              + tcfg.wave_overhead_cycles)
        t.compute = float(compute_cycles)
        t.local = (outcome.n_local * tcfg.bytes_per_access
                   / self.dram_bytes_per_cycle)
        t.remote = self.pcie.remote_cycles(outcome.n_remote)
        t.fault_handling = self.pcie.fault_handling_cycles(outcome.fault_events)
        t.migration = self.pcie.migration_cycles(outcome.h2d_blocks)
        # Injected transient faults: re-issued transfers occupy the link
        # again, and the retry backoff stalls the SMs like fault handling.
        if outcome.retried_transfers:
            t.migration += self.pcie.retry_cycles(outcome.retried_transfers)
        if outcome.retry_backoff_us:
            t.migration += self.config.gpu.us_to_cycles(
                outcome.retry_backoff_us)
        t.writeback = self.pcie.writeback_cycles(outcome.writeback_blocks)
        # Compute overlaps local+remote traffic; faults, migrations and
        # write-backs stall execution.
        t.total = (max(t.compute, t.local + t.remote)
                   + t.fault_handling + t.migration + t.writeback)
        return t

    def wave_total_cycles(self, outcome: WaveOutcome,
                          compute_cycles: float | None = None) -> float:
        """``wave_cycles(...).total`` without the breakdown object.

        The serve hot loop charges a single scalar per wave, so it
        skips the :class:`WaveTiming` construction and field writes.
        Identical arithmetic and PCIe byte-accounting side effects as
        :meth:`wave_cycles` (pinned equal by test).
        """
        tcfg = self.config.timing
        if compute_cycles is None:
            compute_cycles = (outcome.n_accesses
                              * tcfg.compute_cycles_per_access
                              + tcfg.wave_overhead_cycles)
        compute = float(compute_cycles)
        pcie = self.pcie
        mem = (outcome.n_local * tcfg.bytes_per_access
               / self.dram_bytes_per_cycle
               + pcie.remote_cycles(outcome.n_remote))
        stall = (pcie.fault_handling_cycles(outcome.fault_events)
                 + pcie.migration_cycles(outcome.h2d_blocks)
                 + pcie.writeback_cycles(outcome.writeback_blocks))
        if outcome.retried_transfers:
            stall += pcie.retry_cycles(outcome.retried_transfers)
        if outcome.retry_backoff_us:
            stall += self.config.gpu.us_to_cycles(outcome.retry_backoff_us)
        return (compute if compute > mem else mem) + stall
