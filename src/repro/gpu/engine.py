"""GPU execution engine: drives a workload's kernels through the driver.

The engine is the simulated SM array at wave granularity: it pulls waves
from each kernel launch, hands them to the UVM driver, converts the
resulting event counts to cycles with the timing model, and advances the
global cycle clock.  Kernel launches execute back-to-back, as the
benchmarks in the paper do (``cudaDeviceSynchronize`` between launches).
"""

from __future__ import annotations

from ..gpu.timing import TimingModel, WaveTiming
from ..stats.collector import StatsCollector
from ..uvm.driver import UvmDriver, WaveOutcome
from ..workloads.base import KernelLaunch, Workload


class GpuExecutionEngine:
    """Runs a workload to completion and accumulates cycles and events."""

    def __init__(self, driver: UvmDriver, timing: TimingModel,
                 collector: StatsCollector | None = None) -> None:
        self.driver = driver
        self.timing = timing
        self.collector = collector
        self.cycle = 0.0
        self.total_timing = WaveTiming()
        self.total_events = WaveOutcome()

    def run_kernel(self, launch: KernelLaunch) -> float:
        """Execute one kernel launch; returns its cycle cost."""
        kernel_cycles = 0.0
        kernel_accesses = 0
        for wave in launch.waves():
            if self.collector is not None:
                self.collector.on_wave(launch.name, launch.iteration,
                                       self.cycle, wave.pages, wave.is_write,
                                       wave.counts)
            outcome = self.driver.process_wave(wave.pages, wave.is_write,
                                               wave.counts)
            t = self.timing.wave_cycles(outcome, wave.compute_cycles)
            self.total_timing.merge(t)
            self.total_events.merge(outcome)
            self.cycle += t.total
            kernel_cycles += t.total
            kernel_accesses += outcome.n_accesses
            if self.collector is not None:
                self.collector.on_timeline(
                    self.cycle, self.driver.device.used_blocks,
                    self.driver.device.capacity_blocks,
                    self.total_events.fault_events,
                    self.total_events.thrash_migrations)
        if self.collector is not None:
            self.collector.on_kernel_end(launch.name, kernel_cycles,
                                         kernel_accesses)
        return kernel_cycles

    def run(self, workload: Workload) -> float:
        """Execute every kernel of ``workload``; returns total cycles."""
        for launch in workload.kernels():
            self.run_kernel(launch)
        return self.cycle
