"""GPU execution engine: drives a workload's kernels through the driver.

The engine is the simulated SM array at wave granularity: it pulls waves
from each kernel launch, hands them to the UVM driver, converts the
resulting event counts to cycles with the timing model, and advances the
global cycle clock.  Kernel launches execute back-to-back, as the
benchmarks in the paper do (``cudaDeviceSynchronize`` between launches).
"""

from __future__ import annotations

from ..gpu.timing import TimingModel, WaveTiming
from ..stats.collector import StatsCollector
from ..uvm.driver import UvmDriver, WaveOutcome
from ..workloads.base import KernelLaunch, Workload


class GpuExecutionEngine:
    """Runs a workload to completion and accumulates cycles and events."""

    def __init__(self, driver: UvmDriver, timing: TimingModel,
                 collector: StatsCollector | None = None,
                 obs=None) -> None:
        self.driver = driver
        self.timing = timing
        self.collector = collector
        self.cycle = 0.0
        self.total_timing = WaveTiming()
        self.total_events = WaveOutcome()
        #: Optional :class:`repro.obs.Observability` handle.  The engine
        #: contributes the wave-loop rollups: a wave-cycle histogram and
        #: the PCIe-queue-depth / device-occupancy time series.  All of
        #: it is read-only over simulation state.
        self.obs = obs
        self._prof = obs.profiler if obs is not None else None
        self._m_wave_cycles = None
        if obs is not None and obs.metrics is not None:
            m = obs.metrics
            self._m_wave_cycles = m.histogram("engine.wave_cycles")
            self._m_queue = m.series("pcie.queued_blocks")
            self._m_occupancy = m.series("device.occupancy")

    def run_kernel(self, launch: KernelLaunch) -> float:
        """Execute one kernel launch; returns its cycle cost."""
        kernel_cycles = 0.0
        kernel_accesses = 0
        prof = self._prof
        # The wave loop is the simulator's innermost Python loop; bound
        # methods are resolved once per launch instead of per wave.
        collector = self.collector
        process_wave = self.driver.process_wave
        wave_cycles = self.timing.wave_cycles
        merge_timing = self.total_timing.merge
        merge_events = self.total_events.merge
        # The global clock advances once per wave; accumulate in a local
        # and publish back to the attribute once per launch (every
        # in-loop consumer below reads the local).
        cycle = self.cycle
        for wave in launch.waves():
            if collector is not None:
                collector.on_wave(launch.name, launch.iteration,
                                  cycle, wave.pages, wave.is_write,
                                  wave.counts)
            if prof is not None:
                with prof.span("wave"):
                    outcome = process_wave(
                        wave.pages, wave.is_write, wave.counts)
            else:
                outcome = process_wave(wave.pages, wave.is_write,
                                       wave.counts)
            t = wave_cycles(outcome, wave.compute_cycles)
            merge_timing(t)
            merge_events(outcome)
            cycle += t.total
            kernel_cycles += t.total
            kernel_accesses += outcome.n_accesses
            if self._m_wave_cycles is not None:
                self._m_wave_cycles.observe(t.total)
                # Link pressure proxy: blocks queued on PCIe this wave
                # (h2d migrations + prefetches + d2h write-backs).
                self._m_queue.append(
                    cycle,
                    outcome.h2d_blocks + outcome.writeback_blocks)
                self._m_occupancy.append(
                    cycle,
                    self.driver.device.used_blocks
                    / self.driver.device.capacity_blocks)
            if collector is not None:
                collector.on_timeline(
                    cycle, self.driver.device.used_blocks,
                    self.driver.device.capacity_blocks,
                    self.total_events.fault_events,
                    self.total_events.thrash_migrations)
        self.cycle = cycle
        if collector is not None:
            collector.on_kernel_end(launch.name, kernel_cycles,
                                    kernel_accesses)
        return kernel_cycles

    def run(self, workload: Workload) -> float:
        """Execute every kernel of ``workload``; returns total cycles."""
        for launch in workload.kernels():
            self.run_kernel(launch)
        return self.cycle
