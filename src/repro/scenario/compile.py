"""Compile resolved scenarios into runnable experiment specs.

:func:`expand` turns one scenario into its sweep variants (the cross
product of the ``sweep:`` axes, in declaration order with the first
axis outermost -- the same nesting :func:`repro.analysis.sweeps.
oversubscription_sweep` uses, so a config-driven sweep enumerates
cells in exactly the order the flag-driven one does).  The ``build_*``
functions then map a single variant onto the existing execution
surfaces:

* :func:`build_cell` -> :class:`~repro.analysis.parallel.GridCell`
  (modes ``run`` and ``sweep``), with field values matching the CLI
  defaults exactly so a config-built cell is *equal* to the flag-built
  one -- the bit-identity contract the property tests pin;
* :func:`build_serve_config` -> :class:`~repro.config.ServeConfig`
  (mode ``serve``);
* :func:`build_multigpu_spec` -> :class:`MultiGpuSpec` (mode
  ``multigpu``), including the Section VIII throttle knob.

Omitted keys never materialize: the builders only override a default
when the scenario actually sets the key, so the constructed configs
are bit-identical to hand-constructed ones for unset knobs (including
``backend``, which keeps honouring ``REPRO_BACKEND``).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass

from ..analysis.parallel import GridCell
from ..config import (EvictionGranularity, MigrationPolicy, PrefetcherKind,
                      ServeConfig, SimulationConfig)
from .schema import ScenarioError, flatten

__all__ = ["expand", "build_cell", "build_serve_config",
           "build_sim_config", "build_multigpu_spec", "build_slo_config",
           "compile_check", "MultiGpuSpec", "Variant"]


@dataclass(frozen=True)
class Variant:
    """One point of a scenario's sweep: a fully concrete scenario."""

    #: Scenario name plus the swept coordinates, e.g.
    #: ``fig1[oversubscription=1.25]`` (just the name when unswept).
    label: str
    #: The resolved scenario with this variant's values substituted and
    #: the ``sweep:`` key removed -- exactly what gets archived.
    data: dict
    #: The swept ``{axis: value}`` coordinates (empty when unswept).
    coords: dict


def _set_path(data: dict, path: str, value) -> None:
    """Deep-set ``a.b.c`` into nested dicts, creating sections."""
    keys = path.split(".")
    node = data
    for key in keys[:-1]:
        node = node.setdefault(key, {})
    node[keys[-1]] = value


def _deep_copy(data):
    if isinstance(data, dict):
        return {k: _deep_copy(v) for k, v in data.items()}
    if isinstance(data, list):
        return [_deep_copy(v) for v in data]
    return data


def expand(scenario: dict) -> list[Variant]:
    """All sweep variants of a resolved scenario, in deterministic order.

    Axes expand in declaration order with the first axis outermost;
    without a ``sweep:`` key the scenario is its own single variant.
    """
    name = scenario.get("name", "scenario")
    axes = scenario.get("sweep") or {}
    base = {k: _deep_copy(v) for k, v in scenario.items() if k != "sweep"}
    if not axes:
        return [Variant(label=name, data=base, coords={})]
    paths = list(axes)
    variants = []
    for values in itertools.product(*(axes[p] for p in paths)):
        coords = dict(zip(paths, values))
        data = _deep_copy(base)
        for path, value in coords.items():
            _set_path(data, path, value)
        coord_str = ",".join(f"{p}={v}" for p, v in coords.items())
        variants.append(Variant(label=f"{name}[{coord_str}]", data=data,
                                coords=coords))
    return variants


def _get(flat: dict, path: str, default):
    """Flat lookup treating an explicit ``null`` as unset."""
    value = flat.get(path)
    return default if value is None else value


def build_cell(variant: dict) -> GridCell:
    """Map one concrete scenario onto a :class:`GridCell`.

    Every default below is the :class:`GridCell` dataclass default, so
    a scenario that omits a key builds a cell *equal* (and therefore
    checkpoint-identical) to one built from CLI flags that omitted the
    matching flag.
    """
    flat = flatten(variant)
    workload = flat.get("workload")
    if not workload:
        raise ScenarioError(
            f"{variant.get('name', '<scenario>')}: workload is unset after "
            "expansion; set it or add it as a sweep axis")
    return GridCell(
        workload=workload,
        policy=MigrationPolicy(_get(flat, "policy.variant", "adaptive")),
        oversubscription=float(_get(flat, "oversubscription", 1.25)),
        scale=_get(flat, "scale", "small"),
        ts=int(_get(flat, "policy.static_threshold", 8)),
        p=int(_get(flat, "policy.migration_penalty", 8)),
        seed=int(_get(flat, "seed", 0)),
        transfer_fault_rate=float(_get(flat, "faults.transfer_rate", 0.0)),
        migration_fault_rate=float(_get(flat, "faults.migration_rate", 0.0)),
        fault_retries=int(_get(flat, "faults.max_retries", 3)),
        fault_burst_on=float(_get(flat, "faults.burst_on", 0.0)),
        fault_burst_off=float(_get(flat, "faults.burst_off", 0.25)),
        fault_burst_mult=float(_get(flat, "faults.burst_multiplier", 8.0)),
        evict=_get(flat, "memory.eviction", "2mb"),
        prefetcher=_get(flat, "memory.prefetcher", "tree"),
        prefetch_degree=int(_get(flat, "memory.prefetch_degree", 4)),
        threshold_variant=_get(flat, "policy.threshold_variant",
                               "multiplicative"),
        historic_counters=bool(_get(flat, "policy.historic_counters", True)),
        backend=flat.get("backend"),
        shards=flat.get("shards"),
    )


#: ``serve.*`` schema path -> (ServeConfig field, coercion).
_SERVE_FIELDS = {
    "serve.arrival_rate": ("arrival_rate", float),
    "serve.tenants": ("tenants", int),
    "serve.duration_ms": ("duration_ms", float),
    "serve.process": ("process", str),
    "serve.burst_factor": ("burst_factor", float),
    "serve.burst_len_ms": ("burst_len_ms", float),
    "serve.calm_len_ms": ("calm_len_ms", float),
    "serve.workload_mix": ("workload_mix", tuple),
    "serve.capacity_mb": ("capacity_mb", int),
    "serve.admit_watermark": ("admit_watermark", float),
    "serve.shed_watermark": ("shed_watermark", float),
    "serve.throttle_watermark": ("throttle_watermark", float),
    "serve.queue_depth": ("queue_depth", int),
    "serve.quantum": ("quantum", int),
    "serve.throttle_rounds": ("throttle_rounds", int),
    "serve.live_admission": ("live_admission", bool),
    "serve.live_thrash_threshold": ("live_thrash_threshold", float),
    "serve.window_ms": ("window_ms", float),
    "serve.scheduler": ("scheduler", str),
    "serve.batch_waves": ("batch_waves", bool),
    "serve.weights": ("weights", lambda v: tuple(float(w) for w in v)),
    "serve.throttle_decay": ("throttle_decay", float),
}

#: ``slo.*`` schema path -> (SloConfig field, coercion).
_SLO_FIELDS = {
    "slo.p99_latency_us": ("p99_latency_us", float),
    "slo.latency_attainment": ("latency_attainment", float),
    "slo.max_shed_rate": ("max_shed_rate", float),
    "slo.min_throughput": ("min_throughput", float),
    "slo.fast_windows": ("fast_windows", int),
    "slo.slow_windows": ("slow_windows", int),
    "slo.burn_threshold": ("burn_threshold", float),
}


def build_slo_config(variant: dict):
    """Map a variant's ``slo.*`` keys onto an
    :class:`~repro.obs.live.slo.SloConfig`, or ``None`` when the
    scenario states no objective (tuning keys alone do not enable the
    engine).
    """
    from ..obs.live.slo import SloConfig

    flat = flatten(variant)
    kwargs: dict = {}
    for path, (name, coerce) in _SLO_FIELDS.items():
        value = flat.get(path)
        if value is not None:
            kwargs[name] = coerce(value)
    config = SloConfig(**kwargs)
    if not config.enabled:
        return None
    config.validate()
    return config


def build_serve_config(variant: dict) -> ServeConfig:
    """Map one concrete scenario onto a :class:`ServeConfig`.

    Only keys the scenario sets are passed, so omitted ones take the
    :class:`ServeConfig` dataclass defaults (note serving defaults to
    ``scale: tiny``; the top-level ``scale``/``seed`` keys apply here
    too).
    """
    flat = flatten(variant)
    kwargs: dict = {}
    for path, (name, coerce) in _SERVE_FIELDS.items():
        value = flat.get(path)
        if value is not None:
            kwargs[name] = coerce(value)
    if flat.get("scale") is not None:
        kwargs["scale"] = flat["scale"]
    if flat.get("seed") is not None:
        kwargs["seed"] = int(flat["seed"])
    return ServeConfig(**kwargs).validate()


def build_sim_config(variant: dict) -> SimulationConfig:
    """Construct the :class:`SimulationConfig` a variant describes.

    Applies the same mutation sequence as
    :func:`repro.analysis.experiments.run_single` (and only for keys
    actually set), so the config -- and any simulation run from it --
    is bit-identical to the equivalent flag-driven invocation.
    """
    flat = flatten(variant)
    cfg = SimulationConfig(seed=int(_get(flat, "seed", 0)))
    if flat.get("backend") is not None:
        cfg = cfg.replace(backend=flat["backend"])
    if flat.get("shards") is not None:
        cfg = cfg.replace(shards=int(flat["shards"]))
    cfg = cfg.with_policy(
        MigrationPolicy(_get(flat, "policy.variant", "adaptive")),
        static_threshold=int(_get(flat, "policy.static_threshold", 8)),
        migration_penalty=int(_get(flat, "policy.migration_penalty", 8)))
    variant_fn = _get(flat, "policy.threshold_variant", "multiplicative")
    historic = bool(_get(flat, "policy.historic_counters", True))
    if variant_fn != "multiplicative" or not historic:
        cfg = cfg.replace(policy=dataclasses.replace(
            cfg.policy, threshold_variant=variant_fn,
            historic_counters=historic))
    if _get(flat, "memory.eviction", "2mb") == "64kb":
        cfg = cfg.with_eviction_granularity(EvictionGranularity.BLOCK_64KB)
    prefetcher = _get(flat, "memory.prefetcher", "tree")
    degree = int(_get(flat, "memory.prefetch_degree", 4))
    if prefetcher != "tree" or degree != 4:
        cfg = cfg.with_prefetcher(PrefetcherKind(prefetcher), degree=degree)
    transfer = float(_get(flat, "faults.transfer_rate", 0.0))
    migration = float(_get(flat, "faults.migration_rate", 0.0))
    if transfer or migration:
        fault_kwargs = dict(
            transfer_fault_rate=transfer, migration_fault_rate=migration,
            max_retries=int(_get(flat, "faults.max_retries", 3)))
        burst_on = float(_get(flat, "faults.burst_on", 0.0))
        if burst_on:
            fault_kwargs.update(
                burst_on_prob=burst_on,
                burst_off_prob=float(_get(flat, "faults.burst_off", 0.25)),
                burst_multiplier=float(
                    _get(flat, "faults.burst_multiplier", 8.0)))
        cfg = cfg.with_faults(**fault_kwargs)
    return cfg.validate()


@dataclass(frozen=True)
class MultiGpuSpec:
    """Everything a ``mode: multigpu`` variant needs to execute."""

    config: SimulationConfig
    workload: str
    scale: str
    oversubscription: float
    gpus: int
    partition: str
    throttle: float


def build_multigpu_spec(variant: dict) -> MultiGpuSpec:
    """Map one concrete scenario onto a :class:`MultiGpuSpec`."""
    flat = flatten(variant)
    workload = flat.get("workload")
    if not workload:
        raise ScenarioError(
            f"{variant.get('name', '<scenario>')}: workload is unset after "
            "expansion; set it or add it as a sweep axis")
    return MultiGpuSpec(
        config=build_sim_config(variant),
        workload=workload,
        scale=_get(flat, "scale", "small"),
        oversubscription=float(_get(flat, "oversubscription", 1.25)),
        gpus=int(_get(flat, "multigpu.gpus", 2)),
        partition=_get(flat, "multigpu.partition", "chunk"),
        throttle=float(_get(flat, "multigpu.throttle", 1.0)),
    )


def compile_check(scenario: dict) -> list[str]:
    """Compile every variant to its mode-specific spec without running.

    The dry-run behind ``repro config validate``: catches problems
    schema validation alone cannot see (a workload only unset after
    expansion, cross-field config invariants like watermark ordering or
    fault-rate bounds).  Returns the variant labels in expansion order;
    raises :class:`ScenarioError` on the first variant that fails.
    """
    mode = scenario.get("mode", "run")
    labels = []
    for variant in expand(scenario):
        try:
            if mode in ("run", "sweep"):
                build_cell(variant.data)
                build_sim_config(variant.data)
            elif mode == "serve":
                build_serve_config(variant.data)
                build_sim_config(variant.data)
                build_slo_config(variant.data)
            else:
                spec = build_multigpu_spec(variant.data)
                if not 0.0 < spec.throttle <= 1.0:
                    raise ValueError(
                        f"multigpu.throttle must be in (0, 1], got "
                        f"{spec.throttle}")
                if spec.gpus < 1:
                    raise ValueError("multigpu.gpus must be >= 1")
        except ScenarioError:
            raise
        except ValueError as exc:
            raise ScenarioError(
                f"{variant.label}: {exc}") from exc
        labels.append(variant.label)
    return labels
