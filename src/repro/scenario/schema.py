"""The scenario schema: every YAML key, typed and validated.

A *scenario* is a declarative experiment description: one YAML mapping
whose keys cover every knob the simulator exposes -- workload, scale,
policy, memory management, fault injection, kernel backend, tenancy
(``serve:``) and multi-GPU topology (``multigpu:``) -- plus the two
structural keys ``inherits:`` (resolved by :mod:`repro.scenario.loader`)
and ``sweep:`` (expanded by :mod:`repro.scenario.compile`).

The schema is a flat registry of :class:`Key` descriptors keyed by
dotted path (``policy.static_threshold``).  Everything downstream is
derived from this one table:

* :func:`validate` walks a resolved scenario and reports *every*
  problem at once (unknown keys with suggestions, type mismatches,
  out-of-choice values, unsweepable axes) with field-qualified paths;
* ``tools/check_docs.py`` validates the fenced YAML examples in the
  documentation against it, and checks that the key-reference table in
  ``docs/scenarios.md`` covers every path listed here;
* defaults are documentation of the *effective* value an omitted key
  takes (they mirror the :mod:`repro.config` dataclass defaults; the
  compiler never materializes them, so an omitted key really does
  inherit the config default, including ``REPRO_BACKEND``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import (KNOWN_ARRIVAL_PROCESSES, KNOWN_BACKENDS,
                      KNOWN_SCHEDULERS, KNOWN_THRESHOLD_VARIANTS)
from ..multigpu.cluster import KNOWN_PARTITIONS
from ..workloads import SCALES, workload_names

#: Execution modes a scenario can declare.
KNOWN_MODES: tuple[str, ...] = ("run", "sweep", "serve", "multigpu")

#: Eviction granularities by CLI-style name.
KNOWN_EVICT: tuple[str, ...] = ("2mb", "64kb")

#: Prefetcher kinds (mirrors :class:`repro.config.PrefetcherKind`).
KNOWN_PREFETCHERS: tuple[str, ...] = ("tree", "none", "sequential", "random")

#: Migration policies by value (mirrors :class:`MigrationPolicy`).
KNOWN_POLICIES: tuple[str, ...] = ("disabled", "always", "oversub",
                                   "adaptive")



class ScenarioError(ValueError):
    """A scenario failed to load, resolve, or validate.

    The message always names the offending file (or doc block) and
    lists every problem found, one per line.
    """


@dataclass(frozen=True)
class Key:
    """One schema entry: a dotted path plus its contract."""

    path: str
    #: Accepted python type(s) of a value (int also satisfies float).
    type: tuple
    description: str
    #: Closed vocabulary, or ``None`` for open values.
    choices: tuple | None = None
    #: Whether ``sweep:`` may use this path as an axis.
    sweepable: bool = True
    #: Effective value when omitted (documentation; never materialized).
    default: object = None


def _k(path, type_, description, choices=None, sweepable=True,
       default=None) -> Key:
    type_ = type_ if isinstance(type_, tuple) else (type_,)
    return Key(path, type_, description, choices, sweepable, default)


#: The full schema, one entry per legal dotted path.
SCHEMA: dict[str, Key] = {k.path: k for k in (
    # -- structural ------------------------------------------------------
    _k("name", str, "scenario name (defaults to the file stem)",
       sweepable=False, default="<file stem>"),
    _k("description", str, "free-form note shown by `repro config`",
       sweepable=False, default=""),
    _k("inherits", (str, list), "base config(s) to deep-merge under this "
       "file (resolved relative to the file, then the config root)",
       sweepable=False),
    _k("mode", str, "what running the scenario means",
       choices=KNOWN_MODES, sweepable=False, default="run"),
    _k("sweep", dict, "sweep axes: {dotted.key: [values, ...]}; expands "
       "to the cross product in declaration order (first axis outermost)",
       sweepable=False),
    # -- the single-run surface -----------------------------------------
    _k("workload", str, "workload name (see `repro list`)",
       choices=workload_names(extended=True)),
    _k("scale", str, "workload scale preset", choices=tuple(SCALES),
       default="small"),
    _k("oversubscription", (int, float), "working set as a fraction of "
       "device capacity (1.25 = 125% oversubscription)", default=1.25),
    _k("seed", int, "root RNG seed", default=0),
    _k("backend", str, "hot-loop kernel backend",
       choices=KNOWN_BACKENDS, default="$REPRO_BACKEND or python"),
    _k("shards", int, "chunk-aligned decision-phase shards "
       "(bit-identical for any N)", default=1),
    # -- policy ----------------------------------------------------------
    _k("policy.variant", str, "migration policy scheme",
       choices=KNOWN_POLICIES, default="adaptive"),
    _k("policy.static_threshold", int, "static access-counter threshold "
       "ts (Table I)", default=8),
    _k("policy.migration_penalty", int, "multiplicative migration "
       "penalty p (Equation 1)", default=8),
    _k("policy.threshold_variant", str, "Equation-1 growth function",
       choices=KNOWN_THRESHOLD_VARIANTS, default="multiplicative"),
    _k("policy.historic_counters", bool, "judge the adaptive threshold "
       "against historic counters (False = Volta ablation)",
       default=True),
    # -- memory management ----------------------------------------------
    _k("memory.eviction", str, "eviction granularity",
       choices=KNOWN_EVICT, default="2mb"),
    _k("memory.prefetcher", str, "hardware prefetcher strategy",
       choices=KNOWN_PREFETCHERS, default="tree"),
    _k("memory.prefetch_degree", int, "blocks pulled per fault by the "
       "sequential/random prefetchers", default=4),
    # -- fault injection -------------------------------------------------
    _k("faults.transfer_rate", (int, float), "per-migration PCIe "
       "transfer-fault probability", default=0.0),
    _k("faults.migration_rate", (int, float), "per-migration device "
       "allocation-fault probability", default=0.0),
    _k("faults.max_retries", int, "retries before degrading a faulted "
       "migration to remote access", default=3),
    _k("faults.burst_on", (int, float), "calm->storm transition "
       "probability of the correlated fault chain (0 disables)",
       default=0.0),
    _k("faults.burst_off", (int, float), "storm->calm transition "
       "probability", default=0.25),
    _k("faults.burst_multiplier", (int, float), "fault-rate multiplier "
       "while a storm is active", default=8.0),
    # -- multi-tenant serving (mode: serve) ------------------------------
    _k("serve.arrival_rate", (int, float), "tenant arrivals per second "
       "of simulated time", default=400.0),
    _k("serve.tenants", int, "tenant arrivals to generate", default=12),
    _k("serve.duration_ms", (int, float), "arrival window in simulated "
       "milliseconds (omit: cut by tenants alone)", default=None),
    _k("serve.process", str, "arrival process",
       choices=KNOWN_ARRIVAL_PROCESSES, default="poisson"),
    _k("serve.burst_factor", (int, float), "arrival-rate multiplier "
       "inside a burst (bursty process)", default=8.0),
    _k("serve.burst_len_ms", (int, float), "mean burst sojourn, "
       "simulated ms", default=2.0),
    _k("serve.calm_len_ms", (int, float), "mean calm sojourn, "
       "simulated ms", default=10.0),
    _k("serve.workload_mix", list, "workloads tenants are drawn from",
       sweepable=False, default=["ra", "sssp", "bfs", "fdtd"]),
    _k("serve.capacity_mb", int, "shared device capacity in MB",
       default=32),
    _k("serve.admit_watermark", (int, float), "oversubscription up to "
       "which arrivals are admitted immediately", default=1.5),
    _k("serve.shed_watermark", (int, float), "oversubscription past "
       "which arrivals are shed", default=2.5),
    _k("serve.throttle_watermark", (int, float), "oversubscription at "
       "which the heaviest-thrashing tenant is throttled", default=1.2),
    _k("serve.queue_depth", int, "bounded admission queue depth",
       default=8),
    _k("serve.quantum", int, "waves per runnable tenant per scheduler "
       "round", default=4),
    _k("serve.throttle_rounds", int, "rounds a throttled tenant sits "
       "out", default=8),
    _k("serve.live_admission", bool, "drive the throttle from live "
       "windowed interference telemetry instead of the static "
       "watermark alone", default=False),
    _k("serve.live_thrash_threshold", (int, float), "EWMA thrash "
       "migrations per wave at which live admission throttles",
       default=0.25),
    _k("serve.window_ms", (int, float), "live-telemetry tumbling-window "
       "width, simulated ms", default=5.0),
    _k("serve.scheduler", str, "wave scheduler interleaving live "
       "tenants", choices=KNOWN_SCHEDULERS, default="round_robin"),
    _k("serve.batch_waves", bool, "fuse each multi-tenant scheduler "
       "slot into one driver dispatch (pure perf hint: bit-identical "
       "results)", default=False),
    _k("serve.weights", list, "per-tenant fair-share weights under drr "
       "(tenant i gets weights[i mod len]; empty = equal shares)",
       default=[]),
    _k("serve.throttle_decay", (int, float), "drr weight multiplier "
       "while a tenant is throttled (1.0 = throttle ignored)",
       default=0.25),
    # -- serving SLOs (mode: serve; enables the SLO engine) --------------
    _k("slo.p99_latency_us", (int, float), "per-tenant wave-latency "
       "target in simulated us (omit: no latency objective)",
       default=None),
    _k("slo.latency_attainment", (int, float), "required fraction of "
       "waves under the latency target", default=0.99),
    _k("slo.max_shed_rate", (int, float), "service-level ceiling on the "
       "fraction of arrivals shed (omit: no shed objective)",
       default=None),
    _k("slo.min_throughput", (int, float), "per-tenant accesses-per-"
       "second floor (omit: no throughput objective)", default=None),
    _k("slo.fast_windows", int, "closed windows merged into the fast "
       "burn-rate horizon", default=3),
    _k("slo.slow_windows", int, "closed windows merged into the slow "
       "burn-rate horizon", default=12),
    _k("slo.burn_threshold", (int, float), "error-budget burn rate both "
       "horizons must exceed to flag a violation", default=2.0),
    # -- multi-GPU topology (mode: multigpu) -----------------------------
    _k("multigpu.gpus", int, "devices in the collaborative cluster",
       default=2),
    _k("multigpu.partition", str, "wave-stream partition strategy",
       choices=KNOWN_PARTITIONS, default="chunk"),
    _k("multigpu.throttle", (int, float), "fraction of each device's "
       "memory the driver may use (Section VIII throttle knob)",
       default=1.0),
)}

#: Section names (key prefixes) the schema knows about.
SECTIONS: tuple[str, ...] = tuple(sorted(
    {p.split(".")[0] for p in SCHEMA if "." in p}))


def flatten(data: dict, prefix: str = "") -> dict:
    """``{"policy": {"variant": ...}}`` -> ``{"policy.variant": ...}``.

    Only known section prefixes recurse; other dict values (e.g. the
    ``sweep:`` mapping) stay whole so they validate as their own type.
    """
    flat: dict = {}
    for key, value in data.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict) and path in SECTIONS:
            flat.update(flatten(value, f"{path}."))
        else:
            flat[path] = value
    return flat


def _type_ok(value, types: tuple) -> bool:
    # bool is an int subclass; only accept it where bool is declared.
    if isinstance(value, bool):
        return bool in types
    if float in types and isinstance(value, int):
        return True
    return isinstance(value, tuple(t for t in types if t is not bool))


def _type_names(types: tuple) -> str:
    return "/".join(t.__name__ for t in types)


def _suggest(path: str) -> str:
    """Closest schema paths to an unknown one (same leaf, prefix, typo)."""
    leaf = path.rsplit(".", 1)[-1]
    hits = [p for p in SCHEMA
            if p.rsplit(".", 1)[-1] == leaf or p.startswith(path)]
    if not hits:
        import difflib
        hits = difflib.get_close_matches(path, SCHEMA, n=3, cutoff=0.8)
    return f" (did you mean {' or '.join(sorted(hits)[:3])}?)" if hits else ""


def _check_value(path: str, value, errors: list[str]) -> None:
    key = SCHEMA[path]
    if value is None:
        return  # explicit null = "unset", always legal
    if not _type_ok(value, key.type):
        errors.append(
            f"{path}: expected {_type_names(key.type)}, got "
            f"{type(value).__name__} ({value!r})")
        return
    if key.choices is not None and value not in key.choices:
        errors.append(f"{path}: unknown value {value!r}; choose from "
                      f"{', '.join(map(str, key.choices))}")
    if path == "serve.workload_mix":
        known = workload_names(extended=True)
        for item in value:
            if item not in known:
                errors.append(f"{path}: unknown workload {item!r}; "
                              f"available: {', '.join(known)}")
    if path == "serve.weights":
        for item in value:
            if not isinstance(item, (int, float)) or isinstance(item, bool) \
                    or item <= 0:
                errors.append(f"{path}: weights must be positive numbers, "
                              f"got {item!r}")


def _check_sweep(sweep, errors: list[str]) -> None:
    if not isinstance(sweep, dict):
        errors.append(f"sweep: expected a mapping of axis -> value list, "
                      f"got {type(sweep).__name__}")
        return
    for axis, values in sweep.items():
        key = SCHEMA.get(axis)
        if key is None:
            errors.append(f"sweep.{axis}: unknown axis{_suggest(axis)}")
            continue
        if not key.sweepable:
            errors.append(f"sweep.{axis}: this key cannot be swept")
            continue
        if not isinstance(values, list) or not values:
            errors.append(f"sweep.{axis}: expected a non-empty list of "
                          f"values, got {values!r}")
            continue
        for v in values:
            _check_value(axis, v, errors)


def check(data: dict) -> list[str]:
    """Every schema violation in ``data`` (resolved scenario mapping)."""
    errors: list[str] = []
    if not isinstance(data, dict):
        return [f"scenario must be a YAML mapping, got "
                f"{type(data).__name__}"]
    for path, value in flatten(data).items():
        if path == "sweep":
            _check_sweep(value, errors)
            continue
        if path == "inherits":
            continue  # consumed by the loader before validation
        if path not in SCHEMA:
            errors.append(f"{path}: unknown key{_suggest(path)}")
            continue
        _check_value(path, value, errors)
    errors.extend(_check_mode(data))
    return errors


def _check_mode(data: dict) -> list[str]:
    """Cross-key requirements per execution mode."""
    errors: list[str] = []
    mode = data.get("mode", "run")
    if mode not in KNOWN_MODES:
        return errors  # already reported as a value error
    axes = data.get("sweep") if isinstance(data.get("sweep"), dict) else {}
    if mode in ("run", "sweep", "multigpu"):
        if "workload" not in data and "workload" not in axes:
            errors.append(f"workload: required for mode {mode!r} (set it "
                          "or sweep it)")
    if mode == "run" and axes:
        errors.append("sweep: mode 'run' is a single simulation; use "
                      "mode: sweep to expand axes")
    return errors


def validate(data: dict, source: str = "<scenario>") -> dict:
    """Validate a resolved scenario; returns it, raises on any problem."""
    errors = check(data)
    if errors:
        raise ScenarioError(
            f"invalid scenario {source}:\n  - " + "\n  - ".join(errors))
    return data


def key_reference() -> list[Key]:
    """Schema entries in documentation order (structural keys first)."""
    return list(SCHEMA.values())
