"""Declarative YAML scenario configs (ROADMAP item 4).

A scenario is a small YAML file describing one experiment -- workload,
policy, faults, tenancy, multi-GPU topology -- with ``inherits:``
deep-merge inheritance and ``sweep:`` axis expansion.  The subsystem
splits into:

* :mod:`~repro.scenario.schema` -- the typed key registry + validation;
* :mod:`~repro.scenario.loader` -- YAML loading and ``inherits:``
  resolution (deep merge, cycle detection);
* :mod:`~repro.scenario.compile` -- sweep expansion and mapping onto
  :class:`~repro.analysis.parallel.GridCell` /
  :class:`~repro.config.ServeConfig` / multi-GPU specs;
* :mod:`~repro.scenario.runner` -- batch execution with scenario-aware
  run archiving.

CLI entry points: ``repro run --config``, ``repro sweep --config-dir``,
``repro serve --config``, and ``repro config <validate|show>``.  The
shipped scenario library lives in ``configs/``; the cookbook is
``docs/scenarios.md``.
"""

from .compile import (MultiGpuSpec, Variant, build_cell,
                      build_multigpu_spec, build_serve_config,
                      build_sim_config, build_slo_config, compile_check,
                      expand)
from .loader import (deep_merge, is_base, load_directory, load_scenario,
                     scenario_files)
from .runner import ScenarioOutcome, VariantOutcome, run_scenarios
from .schema import SCHEMA, Key, ScenarioError, check, validate

__all__ = [
    "SCHEMA", "Key", "ScenarioError", "check", "validate",
    "deep_merge", "is_base", "load_directory", "load_scenario",
    "scenario_files",
    "MultiGpuSpec", "Variant", "build_cell", "build_multigpu_spec",
    "build_serve_config", "build_sim_config", "build_slo_config",
    "compile_check", "expand",
    "ScenarioOutcome", "VariantOutcome", "run_scenarios",
]
