"""Execute resolved scenarios on the existing execution surfaces.

The runner is a thin orchestration layer: :func:`run_scenarios` takes
fully resolved scenario mappings (from :mod:`repro.scenario.loader`),
expands their sweeps (:mod:`repro.scenario.compile`), and dispatches
each variant by mode:

* ``run``/``sweep`` variants compile to :class:`GridCell`\\ s.  All
  grid cells from *every* scenario in the batch are pooled into ONE
  :func:`~repro.analysis.parallel.run_grid` call -- they share the
  worker pool, the retry machinery, the checkpoint journal, and the
  trace cache -- then regrouped per scenario for reporting.  Cell
  order inside a scenario follows variant declaration order, so a
  config-driven sweep is bit-identical (same cells, same order) to the
  flag-driven equivalent.
* ``serve`` and ``multigpu`` variants run serially in-process (each is
  internally heavyweight and stateful; there are rarely many).

When archiving is requested, every variant's manifest embeds the fully
resolved scenario (post-inheritance, post-expansion) under
``config["scenario"]`` and carries ``manifest.scenario = <name>``, so
``repro diff`` explains any two archived variants by their scenario
key deltas and ``repro runs`` shows where a run came from.  The
runner archives scenario cells itself (the grid runner's own archiver
is bypassed) precisely so the manifests carry that provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.parallel import GridCell, GridOptions, run_grid
from ..analysis.tables import format_table
from .compile import (Variant, build_cell, build_multigpu_spec,
                      build_serve_config, build_sim_config, expand)
from .schema import ScenarioError

__all__ = ["run_scenarios", "ScenarioOutcome", "VariantOutcome"]


@dataclass(frozen=True)
class VariantOutcome:
    """One executed variant: its label, spec, and raw result."""

    label: str
    #: The resolved post-expansion scenario (what got archived).
    data: dict
    #: ``RunResult`` | ``ServeResult`` | ``MultiGpuResult``.
    result: object
    #: Archived run id, or ``None`` when archiving was off.
    run_id: str | None = None


@dataclass
class ScenarioOutcome:
    """Every variant outcome of one scenario, in expansion order."""

    name: str
    mode: str
    variants: list[VariantOutcome] = field(default_factory=list)

    def render(self) -> str:
        """A compact per-variant comparison table."""
        title = f"== scenario {self.name} ({self.mode}) =="
        if self.mode in ("run", "sweep"):
            rows = [[v.label, f"{v.result.runtime_seconds * 1e3:.2f}",
                     v.result.fault_count, v.result.events.n_remote,
                     v.result.events.thrash_migrations,
                     v.run_id or "-"]
                    for v in self.variants]
            return format_table(
                ["variant", "runtime (ms)", "faults", "remote", "thrash",
                 "run id"], rows, title=title)
        if self.mode == "serve":
            rows = [[v.label, v.result.arrivals, v.result.completed,
                     v.result.shed, f"{v.result.shed_rate:.1%}",
                     f"{v.result.peak_live_oversubscription:.2f}x",
                     "-" if v.result.p99_wave_latency_us is None
                     else f"{v.result.p99_wave_latency_us:.1f}",
                     v.run_id or "-"]
                    for v in self.variants]
            return format_table(
                ["variant", "arrivals", "done", "shed", "shed rate",
                 "peak oversub", "p99 us", "run id"], rows, title=title)
        rows = [[v.label, v.result.num_gpus, v.result.partition,
                 f"{v.result.makespan_cycles:,.0f}",
                 f"{v.result.load_imbalance:.2f}",
                 v.result.total_thrash, v.run_id or "-"]
                for v in self.variants]
        return format_table(
            ["variant", "gpus", "partition", "makespan (cycles)",
             "imbalance", "thrash", "run id"], rows, title=title)


class _ScenarioArchiver:
    """Archives scenario variants with resolved-config manifests."""

    def __init__(self, store, sweep_id: str | None = None) -> None:
        from ..obs.store import git_info, host_info
        self.store = store
        self.sweep_id = sweep_id
        self._git = git_info()
        self._host = host_info()

    def archive_cell(self, name: str, variant: Variant, cell: GridCell,
                     result) -> str:
        from ..analysis.checkpoint import _encode
        from ..obs.store import RunManifest
        manifest = RunManifest.create(
            kind="grid-cell", workload=cell.workload,
            policy=cell.policy.value, scale=cell.scale, seed=cell.seed,
            oversubscription=cell.oversubscription,
            config={"cell": _encode(cell), "scenario": variant.data},
            git=self._git, host=self._host, sweep_id=self.sweep_id,
            scenario=name)
        return self.store.archive(manifest, result)

    def archive_serve(self, name: str, variant: Variant, serve_cfg,
                      sim_cfg, result) -> str:
        from ..analysis.checkpoint import encode_config
        from ..obs.store import RunManifest
        manifest = RunManifest.create(
            kind="serve", workload="+".join(serve_cfg.workload_mix),
            policy=sim_cfg.policy.policy.value, scale=serve_cfg.scale,
            seed=serve_cfg.seed, oversubscription=None,
            config={"serve": serve_cfg.as_dict(),
                    "sim": encode_config(sim_cfg),
                    "scenario": variant.data},
            git=self._git, host=self._host, sweep_id=self.sweep_id,
            scenario=name)
        writer = self.store.open_run(manifest)
        return writer.commit_dict(result.as_dict())

    def archive_multigpu(self, name: str, variant: Variant, spec,
                         result) -> str:
        import dataclasses as _dc
        from ..analysis.checkpoint import encode_config
        from ..obs.store import RunManifest
        manifest = RunManifest.create(
            kind="multigpu", workload=spec.workload,
            policy=spec.config.policy.policy.value, scale=spec.scale,
            seed=spec.config.seed, oversubscription=spec.oversubscription,
            config={"sim": encode_config(spec.config),
                    "multigpu": {"gpus": spec.gpus,
                                 "partition": spec.partition,
                                 "throttle": spec.throttle},
                    "scenario": variant.data},
            git=self._git, host=self._host, sweep_id=self.sweep_id,
            scenario=name)
        writer = self.store.open_run(manifest)
        payload = _dc.asdict(result)
        payload["per_gpu_events"] = [_dc.asdict(e)
                                     for e in result.per_gpu_events]
        payload["per_gpu_timing"] = [_dc.asdict(t)
                                     for t in result.per_gpu_timing]
        return writer.commit_dict(payload)


def run_scenarios(scenarios: list[dict], jobs: int = 1,
                  options: GridOptions | None = None,
                  store=None) -> list[ScenarioOutcome]:
    """Execute resolved scenarios; returns outcomes in input order.

    ``options`` configures the pooled grid run (retries, checkpoint,
    trace cache, backend stamping); its ``archive`` store -- or the
    explicit ``store`` argument -- turns on scenario-aware archiving
    for every mode, with the resolved config embedded in each
    manifest.  The grid runner's own per-cell archiver is bypassed so
    cells are not archived twice.
    """
    opts = options or GridOptions()
    if store is None and opts.archive is not None:
        store = opts.archive

    outcomes: list[ScenarioOutcome] = []
    grid_work: list[tuple[ScenarioOutcome, Variant, GridCell]] = []
    serial_work: list[tuple[ScenarioOutcome, Variant]] = []
    for scenario in scenarios:
        mode = scenario.get("mode", "run")
        outcome = ScenarioOutcome(name=scenario.get("name", "scenario"),
                                  mode=mode)
        outcomes.append(outcome)
        for variant in expand(scenario):
            if mode in ("run", "sweep"):
                grid_work.append((outcome, variant,
                                  build_cell(variant.data)))
            else:
                serial_work.append((outcome, variant))

    archiver = None
    if store is not None:
        from ..obs.store import derive_sweep_id
        cells = [cell for _, _, cell in grid_work]
        sweep_id = derive_sweep_id(cells) if cells else None
        archiver = _ScenarioArchiver(store, sweep_id)

    if grid_work:
        import dataclasses as _dc
        # Scenario manifests replace the grid runner's plain per-cell
        # archiving (which knows nothing about resolved configs).
        grid_opts = _dc.replace(opts, archive=None, sweep_id=None)
        results = run_grid([cell for _, _, cell in grid_work],
                           max_workers=jobs, options=grid_opts)
        for (outcome, variant, cell), result in zip(grid_work, results):
            run_id = None
            if archiver is not None:
                run_id = archiver.archive_cell(outcome.name, variant, cell,
                                               result)
            outcome.variants.append(VariantOutcome(
                label=variant.label, data=variant.data, result=result,
                run_id=run_id))

    for outcome, variant in serial_work:
        if outcome.mode == "serve":
            _run_serve(outcome, variant, archiver)
        elif outcome.mode == "multigpu":
            _run_multigpu(outcome, variant, archiver)
        else:  # pragma: no cover - validate() rejects unknown modes
            raise ScenarioError(f"unknown mode {outcome.mode!r}")
    return outcomes


def _run_serve(outcome: ScenarioOutcome, variant: Variant,
               archiver) -> None:
    from ..serve import ServeSession
    serve_cfg = build_serve_config(variant.data)
    sim_cfg = build_sim_config(variant.data)
    result = ServeSession(serve_cfg, sim_config=sim_cfg,
                          scenario=outcome.name).run()
    run_id = None
    if archiver is not None:
        run_id = archiver.archive_serve(outcome.name, variant, serve_cfg,
                                        sim_cfg, result)
    outcome.variants.append(VariantOutcome(
        label=variant.label, data=variant.data, result=result,
        run_id=run_id))


def _run_multigpu(outcome: ScenarioOutcome, variant: Variant,
                  archiver) -> None:
    from ..multigpu import MultiGpuSimulator
    from ..workloads import make_workload
    spec = build_multigpu_spec(variant.data)
    sim = MultiGpuSimulator(spec.config, num_gpus=spec.gpus,
                            throttle=spec.throttle,
                            partition=spec.partition)
    result = sim.run(make_workload(spec.workload, spec.scale),
                     oversubscription=spec.oversubscription)
    run_id = None
    if archiver is not None:
        run_id = archiver.archive_multigpu(outcome.name, variant, spec,
                                           result)
    outcome.variants.append(VariantOutcome(
        label=variant.label, data=variant.data, result=result,
        run_id=run_id))
