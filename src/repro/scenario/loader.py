"""Load scenario YAML files and resolve ``inherits:`` chains.

Inheritance is a recursive deep merge: a scenario names one or more
bases (``inherits: _base`` or ``inherits: [a, b]``), each base is
loaded and resolved the same way, and the child is merged *over* the
result.  Mappings merge key-by-key (recursively); scalars and lists in
the child replace the base value wholesale; an explicit ``null`` in
the child resets the key to its built-in default.  With several bases,
later ones win over earlier ones, and the child wins over all.

Base references resolve relative to the referring file's directory
first, then the config root (the directory handed to
:func:`load_directory`, or the file's own directory for a bare
:func:`load_scenario`), with or without a ``.yaml``/``.yml`` suffix.
Cycles are detected on the resolved-path stack and reported with the
full chain.
"""

from __future__ import annotations

from pathlib import Path

from .schema import ScenarioError, validate

try:  # PyYAML is a hard dependency of the scenario layer only.
    import yaml
except ImportError:  # pragma: no cover - exercised on minimal images
    yaml = None

#: Suffixes tried when an ``inherits:`` reference has none.
_SUFFIXES = ("", ".yaml", ".yml")


def _require_yaml() -> None:
    if yaml is None:  # pragma: no cover
        raise ScenarioError(
            "PyYAML is required for scenario configs (pip install pyyaml)")


def deep_merge(base: dict, override: dict) -> dict:
    """Merge ``override`` over ``base`` recursively; returns a new dict.

    Nested mappings merge key-by-key; any other value in ``override``
    (scalar, list, null) replaces the base value.  Neither input is
    mutated.
    """
    merged = dict(base)
    for key, value in override.items():
        if isinstance(value, dict) and isinstance(merged.get(key), dict):
            merged[key] = deep_merge(merged[key], value)
        else:
            merged[key] = value
    return merged


def _load_yaml(path: Path) -> dict:
    _require_yaml()
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {path}: {exc}") from exc
    try:
        data = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ScenarioError(f"invalid YAML in {path}: {exc}") from exc
    if data is None:
        data = {}
    if not isinstance(data, dict):
        raise ScenarioError(
            f"{path}: scenario must be a YAML mapping, got "
            f"{type(data).__name__}")
    return data


def _resolve_ref(ref: str, relative_to: Path, root: Path) -> Path:
    """Locate the file an ``inherits:`` reference names."""
    candidates = []
    for base_dir in (relative_to, root):
        for suffix in _SUFFIXES:
            candidates.append(base_dir / f"{ref}{suffix}")
    for candidate in candidates:
        if candidate.is_file():
            return candidate.resolve()
    tried = ", ".join(str(c) for c in dict.fromkeys(candidates))
    raise ScenarioError(
        f"inherits: cannot find base {ref!r} (tried {tried})")


def _resolve(path: Path, root: Path, stack: tuple[Path, ...]) -> dict:
    path = path.resolve()
    if path in stack:
        chain = " -> ".join(p.name for p in stack + (path,))
        raise ScenarioError(f"inherits: cycle detected: {chain}")
    data = _load_yaml(path)
    refs = data.pop("inherits", None)
    if refs is None:
        return data
    if isinstance(refs, str):
        refs = [refs]
    if (not isinstance(refs, list)
            or not all(isinstance(r, str) for r in refs)):
        raise ScenarioError(
            f"{path}: inherits must be a name or list of names, "
            f"got {refs!r}")
    merged: dict = {}
    for ref in refs:
        base_path = _resolve_ref(ref, path.parent, root)
        merged = deep_merge(
            merged, _resolve(base_path, root, stack + (path,)))
    return deep_merge(merged, data)


def load_scenario(path: str | Path, root: str | Path | None = None) -> dict:
    """Load one scenario file, resolve inheritance, and validate it.

    Returns the fully resolved mapping with ``inherits:`` consumed and
    ``name`` defaulted to the file stem.  ``root`` is the extra
    directory base references resolve against (defaults to the file's
    own directory).
    """
    path = Path(path)
    root = Path(root) if root is not None else path.parent
    data = _resolve(path, root, ())
    data.setdefault("name", path.stem)
    return validate(data, source=str(path))


def is_base(path: str | Path) -> bool:
    """Underscore-prefixed files are inheritable bases, not scenarios."""
    return Path(path).name.startswith("_")


def scenario_files(directory: str | Path) -> list[Path]:
    """Runnable scenario files under ``directory``, sorted by name.

    The scan is non-recursive: sub-directories are independent scenario
    sets (e.g. ``configs/smoke/``).  Files starting with ``_`` are
    bases meant only for ``inherits:`` and are skipped.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError(f"not a config directory: {directory}")
    files = sorted(
        p for p in directory.iterdir()
        if p.suffix in (".yaml", ".yml") and not is_base(p))
    if not files:
        raise ScenarioError(
            f"no scenario files (*.yaml) in {directory} -- files starting "
            "with '_' are inheritance bases and do not run")
    return files


def load_directory(directory: str | Path) -> list[dict]:
    """Load every runnable scenario in a config directory, in name order."""
    directory = Path(directory)
    return [load_scenario(p, root=directory)
            for p in scenario_files(directory)]
