"""PCIe interconnect cost model (Table I: PCIe 3.0 x16, 8 GT/s per lane).

Translates transfer events into GPU core cycles.  Three traffic classes
cross the link:

* **bulk migration** (host->device): streams at full link bandwidth --
  this is what the tree prefetcher optimizes for;
* **write-back** (device->host): evicted dirty blocks, also at link
  bandwidth, but serialized *before* the migrations that forced the
  eviction (the long-latency write-backs of Section III-A);
* **remote zero-copy transactions**: small (one 128B sector), low
  latency but poor bandwidth efficiency -- the paper's motivation for
  migrating hot data and host-pinning only cold data.

The model also keeps cumulative byte counters for utilization reporting.
"""

from __future__ import annotations

from ..config import GpuConfig, InterconnectConfig
from ..memory.layout import BASIC_BLOCK_SIZE


class PcieModel:
    """Cycle costs and cumulative traffic for the CPU-GPU interconnect."""

    def __init__(self, icfg: InterconnectConfig, gcfg: GpuConfig) -> None:
        self.config = icfg
        #: Link payload bytes per GPU core cycle, per direction.
        self.bytes_per_cycle = icfg.bandwidth / gcfg.clock_hz
        #: Cycles to resolve one far-fault batch (page-table walk and
        #: driver handling, 45us on Pascal).
        self.fault_batch_cycles = gcfg.us_to_cycles(icfg.fault_handling_us)
        #: Effective cycles charged per remote zero-copy access: link
        #: occupancy of one (overhead-inflated) transaction plus the
        #: share of the 200-cycle latency that outstanding-request
        #: parallelism cannot hide.
        self.remote_access_cycles = (
            icfg.remote_transaction_bytes * icfg.remote_overhead
            / self.bytes_per_cycle
            + icfg.remote_access_latency_cycles / icfg.remote_concurrency
        )
        #: Cycles to stream one 64KB basic block.
        self.block_transfer_cycles = (
            BASIC_BLOCK_SIZE / self.bytes_per_cycle + icfg.latency_cycles
        )
        # Cumulative traffic (bytes) for utilization statistics.
        self.h2d_bytes = 0
        self.d2h_bytes = 0
        self.remote_bytes = 0

    def migration_cycles(self, n_blocks: int) -> float:
        """Host->device streaming cost of ``n_blocks`` basic blocks."""
        if n_blocks <= 0:
            return 0.0
        self.h2d_bytes += n_blocks * BASIC_BLOCK_SIZE
        return n_blocks * self.block_transfer_cycles

    def writeback_cycles(self, n_blocks: int) -> float:
        """Device->host write-back cost of ``n_blocks`` dirty blocks."""
        if n_blocks <= 0:
            return 0.0
        self.d2h_bytes += n_blocks * BASIC_BLOCK_SIZE
        return n_blocks * self.block_transfer_cycles

    def remote_cycles(self, n_accesses: int) -> float:
        """Cost of ``n_accesses`` remote zero-copy transactions."""
        if n_accesses <= 0:
            return 0.0
        self.remote_bytes += n_accesses * self.config.remote_transaction_bytes
        return n_accesses * self.remote_access_cycles

    def fault_handling_cycles(self, fault_events: int) -> float:
        """Driver handling cost: faults are drained in shared batches."""
        if fault_events <= 0:
            return 0.0
        batches = -(-fault_events // self.config.fault_batch_size)
        return batches * self.fault_batch_cycles

    def retry_cycles(self, n_retries: int) -> float:
        """Link cost of ``n_retries`` re-issued block transfers.

        A failed migration attempt (injected transient fault) still
        occupied the link for a full block stream before being dropped,
        so each retry wastes one block-transfer time and its bytes count
        toward h2d traffic.  The backoff *wait* between attempts is
        charged separately by the timing model from
        ``WaveOutcome.retry_backoff_us``.
        """
        if n_retries <= 0:
            return 0.0
        self.h2d_bytes += n_retries * BASIC_BLOCK_SIZE
        return n_retries * self.block_transfer_cycles
