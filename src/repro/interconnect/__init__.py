"""CPU-GPU interconnect models."""

from .pcie import PcieModel

__all__ = ["PcieModel"]
