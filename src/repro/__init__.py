"""repro -- Adaptive page migration for GPU memory oversubscription.

A trace-driven reproduction of *"Adaptive Page Migration for Irregular
Data-intensive Applications under GPU Memory Oversubscription"*
(Ganguly, Zhang, Yang, Melhem -- IPDPS 2020).

The package provides a Unified-Memory (UVM) simulator for discrete
CPU-GPU systems -- far-fault driven migration, the CUDA tree-based
prefetcher, 2MB LRU replacement, remote zero-copy access, and hardware
access counters -- plus the paper's contribution: a dynamic
access-counter threshold (Equation 1) that adaptively navigates between
first-touch migration and host-pinned remote access, with an
access-counter-based LFU replacement policy.

Quickstart::

    from repro import Simulator, SimulationConfig, MigrationPolicy
    from repro.workloads import make_workload

    cfg = SimulationConfig().with_policy(MigrationPolicy.ADAPTIVE)
    result = Simulator(cfg).run(make_workload("sssp", scale="small"),
                                oversubscription=1.25)
    print(result.summary())
"""

from .config import (
    EvictionGranularity,
    FaultConfig,
    GpuConfig,
    InterconnectConfig,
    MemoryConfig,
    MigrationPolicy,
    PolicyConfig,
    PrefetcherKind,
    ReplacementPolicy,
    SimulationConfig,
    TimingConfig,
    capacity_for_oversubscription,
)
from .memory.advice import Advice
from .sim import RunResult, Simulator

__version__ = "1.0.0"

__all__ = [
    "Advice",
    "EvictionGranularity",
    "FaultConfig",
    "GpuConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "MigrationPolicy",
    "PolicyConfig",
    "PrefetcherKind",
    "ReplacementPolicy",
    "RunResult",
    "SimulationConfig",
    "Simulator",
    "TimingConfig",
    "capacity_for_oversubscription",
    "__version__",
]
