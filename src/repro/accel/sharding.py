"""Intra-run address-space sharding for the per-wave decision phase.

``--shards N`` partitions the basic-block address space into N
contiguous, chunk-aligned ranges -- the same block-range decomposition
:mod:`repro.multigpu.cluster` uses to split chunks across GPUs, except
contiguous rather than round-robin so a *sorted* wave splits with two
``searchsorted`` cuts instead of a gather per shard.

Only the stateless per-wave decision work is sharded: the policy's
``(threshold, baseline)`` gathers and the migrate/remote partition are
elementwise per block, so evaluating them per shard and concatenating
in shard order is bit-identical to the unsharded arrays by
construction.  Everything globally coupled -- the migration drain,
eviction, device occupancy, counter halving -- stays unsharded, which
is what keeps ``--shards 1`` ≡ ``--shards N`` exact (property-tested)
rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous chunk-aligned partition of the block address space."""

    #: Interior shard boundaries (ascending block ids, chunk-aligned);
    #: shard ``i`` covers ``[boundaries[i-1], boundaries[i])``.
    boundaries: np.ndarray
    total_blocks: int

    @property
    def n_shards(self) -> int:
        """Number of (possibly uneven) shards in the plan."""
        return self.boundaries.size + 1

    def split(self, sorted_blocks: np.ndarray) -> list[tuple[int, int]]:
        """Slice bounds of each shard's run inside a sorted block array.

        Returns ``n_shards`` ``(lo, hi)`` pairs covering
        ``sorted_blocks`` exactly, in shard (= block) order; empty
        shards yield ``lo == hi``.
        """
        cuts = np.searchsorted(sorted_blocks, self.boundaries).tolist()
        edges = [0] + cuts + [sorted_blocks.size]
        return [(edges[i], edges[i + 1]) for i in range(len(edges) - 1)]


def make_shard_plan(chunk_first_blocks: np.ndarray, total_blocks: int,
                    n_shards: int) -> ShardPlan:
    """Split ``total_blocks`` into up to ``n_shards`` chunk-aligned ranges.

    Ideal equal-size cut points are snapped to the nearest following
    chunk start (a 2MB chunk is the eviction and prefetch-tree unit, so
    shard edges never split a chunk's tree).  Duplicate or degenerate
    boundaries collapse, so tiny address spaces get fewer effective
    shards rather than empty busywork.
    """
    if n_shards < 1:
        raise ValueError("shard count must be >= 1")
    firsts = np.asarray(chunk_first_blocks, dtype=np.int64)
    ideal = (np.arange(1, n_shards, dtype=np.int64) * total_blocks
             ) // n_shards
    snapped = firsts[np.minimum(
        np.searchsorted(firsts, ideal), firsts.size - 1)]
    interior = np.unique(snapped)
    interior = interior[(interior > 0) & (interior < total_blocks)]
    return ShardPlan(boundaries=interior, total_blocks=int(total_blocks))
