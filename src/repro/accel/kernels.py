"""Pure-numpy reference kernels for the per-wave hot loop.

This module is the ``python`` backend: every function is the exact
array expression the driver, counter file, eviction selector and
prefetch tree historically ran inline.  :mod:`repro.accel.jit` holds
the loop-shaped twins that numba compiles; the backend equivalence
property tests pin the two modules to bit-identical results, so either
namespace can be handed to the driver as ``kernels``.

Contracts shared by both backends (callers guarantee them, kernels do
not re-check on the hot path):

* index arrays are ``int64``; count/threshold arrays are ``int64``;
* ``increment``/``fill_zero`` indices are distinct (eviction victims
  and migrating blocks are unique by construction);
* ``group_sorted`` input is non-empty and sorted;
* ``halve_while_*`` mutate their counter array in place and return the
  number of global halvings applied (the caller emits the events).

Imports nothing from the rest of the package (only numpy), so any
module -- including :mod:`repro.uvm` -- can use it as a default
without import cycles.
"""

from __future__ import annotations

import math

import numpy as np

_I64_MAX = np.int64(np.iinfo(np.int64).max)


# -- decision kernel (UvmDriver._handle_far_accesses) -----------------------

def eq1_thresholds(ts: int, penalty: int, oversubscribed: bool,
                   occupancy_fraction: float, n: int,
                   roundtrips: np.ndarray) -> np.ndarray:
    """Both Equation-1 regimes, validation-free (mirrors
    :func:`repro.uvm.thresholds.eq1_thresholds`; ``roundtrips`` may be
    empty when not oversubscribed)."""
    if oversubscribed:
        return ts * penalty * (roundtrips + 1)
    return np.full(n, math.floor(ts * occupancy_fraction) + 1,
                   dtype=np.int64)


def decide(c0: np.ndarray, k: np.ndarray, td: np.ndarray) -> np.ndarray:
    """Migrate mask: the wave's accesses reach each block's threshold."""
    return (c0 + k) >= td


def remote_counts(migrate: np.ndarray, td: np.ndarray, c0: np.ndarray,
                  k: np.ndarray) -> np.ndarray:
    """Accesses served remotely per block (all ``k`` for non-migrators).

    Computed *after* fault injection may have flipped entries of
    ``migrate``, which is why this is a separate kernel from
    :func:`decide`.
    """
    if not migrate.any():
        return k
    return np.where(migrate, np.clip(td - 1 - c0, 0, k - 1), k)


# -- wave grouping and the resident fast path (UvmDriver.process_wave) ------

def group_sorted(sorted_blocks: np.ndarray, sorted_counts: np.ndarray,
                 sorted_w: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Segment-reduce a block-sorted wave into unique blocks + totals."""
    starts = np.flatnonzero(np.concatenate(
        ([True], sorted_blocks[1:] != sorted_blocks[:-1])))
    return (sorted_blocks[starts],
            np.add.reduceat(sorted_counts, starts),
            np.add.reduceat(sorted_w, starts))


def resident_all(resident: np.ndarray, blocks: np.ndarray) -> bool:
    """Whether every accessed block is already device-resident."""
    return bool(resident[blocks].all())


# -- segmented batch reductions (UvmDriver.process_wave_batch) --------------
#
# A fused multi-tenant batch concatenates per-tenant waves into one
# array with ``starts[i]`` marking where segment ``i`` begins (segments
# are non-empty and ``starts`` is strictly increasing, ``starts[0] ==
# 0``; segment ``i`` spans ``[starts[i], starts[i+1])`` with the last
# segment running to the end).  These reductions split one fused pass
# back into per-segment (per-tenant) accounting.

def segment_sums(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` (int64 in, int64 out)."""
    return np.add.reduceat(values, starts)


def segment_all(mask: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment AND of a boolean ``mask``."""
    return np.logical_and.reduceat(mask, starts)


def segment_any(mask: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Per-segment OR of a boolean ``mask``."""
    return np.logical_or.reduceat(mask, starts)


# -- counter file (AccessCounterFile) ---------------------------------------

def scatter_add(target: np.ndarray, idx: np.ndarray,
                amounts: np.ndarray) -> None:
    """``target[idx] += amounts`` with duplicate indices accumulated."""
    np.add.at(target, idx, amounts)


def scatter_add_unique(target: np.ndarray, idx: np.ndarray,
                       amounts: np.ndarray) -> None:
    """``target[idx] += amounts`` for *distinct* indices.

    Equals :func:`scatter_add` on duplicate-free index arrays, but a
    plain fancy add skips ``np.add.at``'s unbuffered-accumulation
    machinery (an order of magnitude on small updates).
    """
    target[idx] += amounts


def increment(target: np.ndarray, idx: np.ndarray) -> None:
    """``target[idx] += 1`` (indices must be distinct)."""
    target[idx] += 1


def fill_zero(target: np.ndarray, idx: np.ndarray) -> None:
    """``target[idx] = 0`` (Volta counter reset on migration)."""
    target[idx] = 0


def halve_while_ge(counts: np.ndarray, blocks: np.ndarray,
                   limit: np.int64) -> int:
    """Global halvings while any just-updated block is ``>= limit``."""
    h = 0
    while counts[blocks].max(initial=np.int64(0)) >= limit:
        counts >>= 1
        h += 1
    return h


def halve_while_gt(counts: np.ndarray, blocks: np.ndarray,
                   limit: np.int64) -> int:
    """Global halvings while any just-updated block is ``> limit``."""
    h = 0
    while counts[blocks].max(initial=np.int64(0)) > limit:
        counts >>= 1
        h += 1
    return h


# -- victim selection (uvm.eviction) ----------------------------------------

def lfu_key(heat: np.ndarray, dirty_any: np.ndarray,
            last_touch: np.ndarray) -> np.ndarray:
    """(heat bucket, dirty, last_touch) packed into one 64-bit key."""
    return ((heat << np.int64(33)) | (dirty_any << np.int64(32))
            | last_touch)


def masked_argmin(key: np.ndarray, mask: np.ndarray) -> int:
    """Index of the smallest key inside ``mask`` (first occurrence).

    ``mask`` must have at least one True entry.
    """
    return int(np.argmin(np.where(mask, key, _I64_MAX)))


# -- prefetch tree bulk ops (uvm.tree) --------------------------------------

def leaf_bits(leaves: np.ndarray) -> np.int64:
    """Bitmask with the given leaf positions set (leaves < 32)."""
    bits = 0
    for leaf in leaves.tolist():
        bits |= 1 << leaf
    return np.int64(bits)


def tree_bulk_set(tree: np.ndarray, anc: np.ndarray, leaves: np.ndarray,
                  leaf_base: int, leaf_value: int, delta: int) -> None:
    """Set distinct leaf slots and propagate ``delta`` up all ancestors."""
    tree[leaf_base + leaves] = leaf_value
    np.add.at(tree, anc[leaves].ravel(), delta)
