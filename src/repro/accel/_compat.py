"""Numba detection and the ``njit`` shim the compiled backend builds on.

The ``accel`` package must import cleanly on machines without numba
(the base install ships pure python/numpy only; numba arrives via the
``repro[accel]`` extra).  This module centralizes the probe so every
other accel module can ask one question -- ``HAS_NUMBA`` -- and use one
decorator -- ``njit`` -- that degrades to the identity function when the
compiler is absent.
"""

from __future__ import annotations

import os

#: Whether numba imported successfully in this process.
HAS_NUMBA: bool
#: ``numba.__version__`` when importable, else ``None`` (recorded in
#: bench reports so perf history stays comparable across hosts).
NUMBA_VERSION: str | None

#: Set (via ``REPRO_ACCEL_INTERPRET=1``) to keep the loop kernels
#: undecorated even when numba is installed: they then run as plain
#: python loops.  This is how the property tests exercise the exact
#: code the compiled backend runs on hosts without numba, and a handy
#: escape hatch when debugging a kernel under pdb.
INTERPRET_ENV: bool = os.environ.get(
    "REPRO_ACCEL_INTERPRET", "").strip() not in ("", "0")

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAS_NUMBA = True
    NUMBA_VERSION = numba.__version__
except ImportError:
    HAS_NUMBA = False
    NUMBA_VERSION = None


def njit(*args, **kwargs):
    """``numba.njit`` when compiling, identity decorator otherwise.

    Kernels are compiled only when numba is importable and
    ``REPRO_ACCEL_INTERPRET`` is unset; in every other case the
    decorated function is returned unchanged, so the loop bodies below
    stay importable, debuggable and property-testable everywhere.
    """
    if HAS_NUMBA and not INTERPRET_ENV:  # pragma: no cover - needs numba
        return numba.njit(*args, **kwargs)
    if args and callable(args[0]) and not kwargs:
        return args[0]

    def decorate(fn):
        return fn

    return decorate
