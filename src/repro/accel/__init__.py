"""Compiled backend for the per-wave hot loop (``SimulationConfig.backend``).

Two interchangeable kernel namespaces implement the driver's inner
array operations:

* ``python`` -- :mod:`repro.accel.kernels`, the numpy reference
  implementations (the bit-identity baseline; always available);
* ``numba`` -- :mod:`repro.accel.jit`, the same kernels as explicit
  loops compiled with ``@njit(cache=True)`` when numba is installed
  (the ``repro[accel]`` extra).  Without numba the loops still run
  interpreted when explicitly forced (tests), but a normal request for
  the numba backend falls back to ``python`` with a one-line warning.

Selection order: ``--backend`` CLI flag > ``REPRO_BACKEND`` environment
variable > ``python``.  The active (resolved) backend is recorded on
``RunMeta`` and in bench reports, so an archived run always says which
kernels produced it.

Both namespaces are bit-identical by contract, enforced by
``tests/property/test_backend_equivalence.py``: final driver state and
every per-wave ``WaveOutcome`` match across backends for every
registered workload.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from types import ModuleType

import numpy as np

from . import jit, kernels
from ._compat import HAS_NUMBA, NUMBA_VERSION
from .sharding import ShardPlan, make_shard_plan

__all__ = [
    "Backend",
    "HAS_NUMBA",
    "NUMBA_VERSION",
    "FORCE_INTERPRETED",
    "ShardPlan",
    "make_shard_plan",
    "resolve_backend",
    "warm_jit",
]

#: Allow resolving the ``numba`` backend without numba installed: the
#: loop kernels then run interpreted.  Off by default (a user asking
#: for numba without it gets a warning + python fallback, not a 100x
#: slowdown); the equivalence tests flip it to exercise the loop
#: kernels everywhere.  Seeded from ``REPRO_ACCEL_INTERPRET``.
FORCE_INTERPRETED: bool = os.environ.get(
    "REPRO_ACCEL_INTERPRET", "").strip() not in ("", "0")

_WARN_ENV = "_REPRO_ACCEL_WARNED"
_warned = False
_warmed = False


@dataclass(frozen=True)
class Backend:
    """A resolved kernel namespace plus the name it resolved from."""

    #: Active backend (``python`` or ``numba``) -- what actually runs.
    name: str
    #: What was asked for (differs from ``name`` only on fallback).
    requested: str
    #: Module providing the kernel functions (see kernels.py contract).
    kernels: ModuleType


def _warn_numba_missing() -> None:
    """One-line fallback warning, once per process tree.

    The environment guard keeps grid worker processes (which inherit
    the parent's environment) from each repeating the warning.
    """
    global _warned
    if _warned or os.environ.get(_WARN_ENV):
        return
    _warned = True
    os.environ[_WARN_ENV] = "1"
    print("repro: backend 'numba' requested but numba is not importable; "
          "falling back to the pure-python backend "
          "(install with: pip install 'repro[accel]')", file=sys.stderr)


def resolve_backend(name: str = "python") -> Backend:
    """Map a backend name to its kernel namespace.

    ``numba`` resolves to the loop kernels when numba is importable
    (pre-warming the JIT once per process) or when
    :data:`FORCE_INTERPRETED` is set; otherwise it degrades to the
    python kernels with a single warning.  Unknown names raise --
    though config validation normally rejects them first.
    """
    if name == "python":
        return Backend("python", "python", kernels)
    if name != "numba":
        raise ValueError(
            f"unknown backend {name!r}; choose 'python' or 'numba'")
    if HAS_NUMBA or FORCE_INTERPRETED:
        warm_jit()
        return Backend("numba", "numba", jit)
    _warn_numba_missing()
    return Backend("python", "numba", kernels)


def warm_jit() -> None:
    """Compile every loop kernel on tiny inputs, once per process.

    First-call JIT latency otherwise lands inside whatever happens to
    run first -- skewing the grid's first-cell ``grid.cell_ms`` metric
    and racing ``cell_timeout`` hang detection.  ``cache=True`` kernels
    also persist compiled artifacts on disk, so later processes mostly
    pay a cache load here, not a compile.
    """
    global _warmed
    if _warmed:
        return
    _warmed = True
    i64 = np.array([0, 1], dtype=np.int64)
    ones = np.ones(2, dtype=np.int64)
    bools = np.array([True, False])
    jit.eq1_thresholds(8, 8, True, 0.5, 2, ones)
    jit.eq1_thresholds(8, 8, False, 0.5, 2, ones)
    migrate = jit.decide(ones, ones, ones)
    jit.remote_counts(migrate, ones, ones, ones)
    jit.group_sorted(i64, ones, ones)
    jit.resident_all(bools, np.zeros(1, dtype=np.int64))
    starts = np.array([0, 1], dtype=np.int64)
    jit.segment_sums(ones, starts)
    jit.segment_all(bools, starts)
    jit.segment_any(bools, starts)
    jit.scatter_add(np.zeros(2, dtype=np.int64), i64, ones)
    jit.scatter_add_unique(np.zeros(2, dtype=np.int64), i64, ones)
    jit.increment(np.zeros(2, dtype=np.int64), i64)
    jit.fill_zero(np.zeros(2, dtype=np.int64), i64)
    jit.halve_while_ge(np.zeros(2, dtype=np.int64), i64, np.int64(4))
    jit.halve_while_gt(np.zeros(2, dtype=np.int64), i64, np.int64(4))
    jit.lfu_key(ones, bools, ones)
    jit.masked_argmin(ones, np.array([True, True]))
    jit.leaf_bits(i64)
    jit.tree_bulk_set(np.zeros(3, dtype=np.int32),
                      np.array([[0], [0]], dtype=np.int64), i64, 1, 1, 1)
