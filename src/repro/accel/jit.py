"""Loop-shaped kernels for the ``numba`` backend.

Every function here is the loop twin of the same-named array kernel in
:mod:`repro.accel.kernels` and must produce bit-identical results --
the backend equivalence property tests enforce it.  With numba
installed (the ``repro[accel]`` extra) each function is compiled with
``@njit(cache=True)`` at import; without it (or with
``REPRO_ACCEL_INTERPRET=1``) the same loops run interpreted, which is
slow but keeps the backend selectable -- and testable -- everywhere.

Loop bodies are written in the numba-typable subset: scalar indexing,
explicit output allocation with fixed dtypes, no ``None`` arguments,
no keyword-only numpy features (``max(initial=...)``, ``np.add.at``).
"""

from __future__ import annotations

import math

import numpy as np

from ._compat import njit

_I64_MAX = np.int64(np.iinfo(np.int64).max)


# -- decision kernel --------------------------------------------------------

@njit(cache=True)
def eq1_thresholds(ts, penalty, oversubscribed, occupancy_fraction, n,
                   roundtrips):
    out = np.empty(n, dtype=np.int64)
    if oversubscribed:
        for i in range(n):
            out[i] = ts * penalty * (roundtrips[i] + 1)
    else:
        td = np.int64(math.floor(ts * occupancy_fraction) + 1)
        for i in range(n):
            out[i] = td
    return out


@njit(cache=True)
def decide(c0, k, td):
    n = c0.size
    out = np.empty(n, dtype=np.bool_)
    for i in range(n):
        out[i] = (c0[i] + k[i]) >= td[i]
    return out


@njit(cache=True)
def remote_counts(migrate, td, c0, k):
    n = k.size
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        if migrate[i]:
            v = td[i] - 1 - c0[i]
            if v < 0:
                v = 0
            hi = k[i] - 1
            if v > hi:
                v = hi
            out[i] = v
        else:
            out[i] = k[i]
    return out


# -- wave grouping and the resident fast path -------------------------------

@njit(cache=True)
def group_sorted(sorted_blocks, sorted_counts, sorted_w):
    n = sorted_blocks.size
    u = 1
    for i in range(1, n):
        if sorted_blocks[i] != sorted_blocks[i - 1]:
            u += 1
    ublocks = np.empty(u, dtype=np.int64)
    totals = np.zeros(u, dtype=np.int64)
    w_counts = np.zeros(u, dtype=np.int64)
    j = -1
    for i in range(n):
        if i == 0 or sorted_blocks[i] != sorted_blocks[i - 1]:
            j += 1
            ublocks[j] = sorted_blocks[i]
        totals[j] += sorted_counts[i]
        w_counts[j] += sorted_w[i]
    return ublocks, totals, w_counts


@njit(cache=True)
def resident_all(resident, blocks):
    # Early exit on the first non-resident block: cheaper than the
    # numpy gather-and-reduce when the fast path misses.
    for i in range(blocks.size):
        if not resident[blocks[i]]:
            return False
    return True


# -- segmented batch reductions ---------------------------------------------

@njit(cache=True)
def segment_sums(values, starts):
    k = starts.size
    n = values.size
    out = np.zeros(k, dtype=np.int64)
    for s in range(k):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < k else n
        acc = np.int64(0)
        for i in range(lo, hi):
            acc += values[i]
        out[s] = acc
    return out


@njit(cache=True)
def segment_all(mask, starts):
    k = starts.size
    n = mask.size
    out = np.empty(k, dtype=np.bool_)
    for s in range(k):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < k else n
        v = True
        for i in range(lo, hi):
            if not mask[i]:
                v = False
                break
        out[s] = v
    return out


@njit(cache=True)
def segment_any(mask, starts):
    k = starts.size
    n = mask.size
    out = np.empty(k, dtype=np.bool_)
    for s in range(k):
        lo = starts[s]
        hi = starts[s + 1] if s + 1 < k else n
        v = False
        for i in range(lo, hi):
            if mask[i]:
                v = True
                break
        out[s] = v
    return out


# -- counter file -----------------------------------------------------------

@njit(cache=True)
def scatter_add(target, idx, amounts):
    for i in range(idx.size):
        target[idx[i]] += amounts[i]


@njit(cache=True)
def scatter_add_unique(target, idx, amounts):
    for i in range(idx.size):
        target[idx[i]] += amounts[i]


@njit(cache=True)
def increment(target, idx):
    for i in range(idx.size):
        target[idx[i]] += 1


@njit(cache=True)
def fill_zero(target, idx):
    for i in range(idx.size):
        target[idx[i]] = 0


@njit(cache=True)
def halve_while_ge(counts, blocks, limit):
    h = 0
    while True:
        m = np.int64(0)
        for i in range(blocks.size):
            v = counts[blocks[i]]
            if v > m:
                m = v
        if m < limit:
            return h
        for j in range(counts.size):
            counts[j] >>= 1
        h += 1


@njit(cache=True)
def halve_while_gt(counts, blocks, limit):
    h = 0
    while True:
        m = np.int64(0)
        for i in range(blocks.size):
            v = counts[blocks[i]]
            if v > m:
                m = v
        if m <= limit:
            return h
        for j in range(counts.size):
            counts[j] >>= 1
        h += 1


# -- victim selection -------------------------------------------------------

@njit(cache=True)
def lfu_key(heat, dirty_any, last_touch):
    n = heat.size
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        d = np.int64(1) if dirty_any[i] else np.int64(0)
        out[i] = (heat[i] << 33) | (d << 32) | last_touch[i]
    return out


@njit(cache=True)
def masked_argmin(key, mask):
    best = -1
    best_v = _I64_MAX
    for i in range(key.size):
        if mask[i] and key[i] < best_v:
            best = i
            best_v = key[i]
    return best


# -- prefetch tree bulk ops -------------------------------------------------

@njit(cache=True)
def leaf_bits(leaves):
    bits = np.int64(0)
    for i in range(leaves.size):
        bits |= np.int64(1) << leaves[i]
    return bits


@njit(cache=True)
def tree_bulk_set(tree, anc, leaves, leaf_base, leaf_value, delta):
    levels = anc.shape[1]
    for i in range(leaves.size):
        leaf = leaves[i]
        tree[leaf_base + leaf] = leaf_value
        for lvl in range(levels):
            tree[anc[leaf, lvl]] += delta
