"""ra (HPC Challenge RandomAccess / GUPS).

The paper's most extreme irregular workload: uniformly random
read-modify-write updates to one huge table, with **no data reuse at
all** -- which makes it "a perfect candidate for zero-copy host-pinned
memory access" (Section VI-C).  Under first-touch migration every update
to a non-resident 64KB block drags the whole block (plus prefetch) over
PCIe just to serve a single 8-byte update, then thrashes it back out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, Workload
from .util import coalesced_page_offsets_batch


@dataclass(frozen=True)
class RaParams:
    """Table size and update volume for RandomAccess."""

    #: Number of 8-byte table entries (HPCC uses a power of two).
    table_entries: int = 1 << 23
    #: Total random updates (HPCC mandates 4x table size; we scale down
    #: to keep simulation time bounded -- the access pattern is what
    #: matters, not the absolute update count).
    updates: int = 1 << 18
    updates_per_wave: int = 2048
    #: Arithmetic intensity: compute cycles per coalesced access
    #: (a single xor per update).
    compute_per_access: float = 0.5

    @property
    def table_bytes(self) -> int:
        """Bytes of the update table."""
        return self.table_entries * 8


PRESETS: dict[str, RaParams] = {
    "tiny": RaParams(table_entries=1 << 21, updates=1 << 14,
                     updates_per_wave=128),
    "small": RaParams(table_entries=1 << 23, updates=1 << 16,
                      updates_per_wave=512),
    "medium": RaParams(table_entries=1 << 24, updates=1 << 17,
                       updates_per_wave=1024),
}


class RandomAccess(Workload):
    """GUPS: xor-update random table entries."""

    name = "ra"
    category = Category.IRREGULAR

    def __init__(self, params: RaParams | None = None) -> None:
        super().__init__()
        self.params = params or RaParams()
        self._rng: np.random.Generator | None = None

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.table = self._register(
            vas.malloc_managed("ra.table", p.table_bytes))
        self._rng = np.random.default_rng(rng.integers(0, 2**63))

    #: Waves of update indices drawn per bulk RNG call.  One bulk
    #: ``integers`` consumes the PCG64 stream element by element exactly
    #: like the per-wave draws it replaces, so wave content is unchanged
    #: while the RNG call overhead amortizes across the chunk.
    _DRAW_WAVES = 16

    def _updates(self) -> Iterator[Wave]:
        """Waves of random read-modify-write updates."""
        p = self.params
        rng = self._rng
        done = 0
        while done < p.updates:
            span = min(p.updates_per_wave * self._DRAW_WAVES,
                       p.updates - done)
            offs = rng.integers(0, p.table_entries, size=span,
                                dtype=np.int64) * 8
            first_page = self.table.first_page
            waves = coalesced_page_offsets_batch(offs, p.updates_per_wave)
            for w, (rel_pages, ucounts) in enumerate(waves):
                n = min(p.updates_per_wave, span - w * p.updates_per_wave)
                # Each update is one read plus one write of the sector.
                yield Wave(first_page + rel_pages,
                           np.ones(rel_pages.shape, dtype=bool),
                           counts=2 * ucounts,
                           compute_cycles=p.compute_per_access * 2 * n)
            done += span

    def kernels(self) -> Iterator[KernelLaunch]:
        yield KernelLaunch("ra.update", 0, self._updates)
