"""bfs (Rodinia): level-synchronous breadth-first search.

Irregular workload: each level reads the CSR node offsets of the current
frontier, gathers the (scattered) adjacency lists from the large
read-only edge array, and updates the small cost/flags arrays at random
neighbor positions.  Which edge pages a level touches depends entirely
on the input graph -- the statically unpredictable access irregularity
of Section I.  The cost/flags arrays are hot; the edge array is cold
with page-level reuse *across* levels, which is what thrashes under
first-touch migration and a strict memory budget.

The traversal is computed for real on the generated graph; waves are the
accesses that traversal performs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .graphs import CsrGraph, make_graph
from .util import coalesced_page_offsets, coalesced_pages, ragged_ranges


@dataclass(frozen=True)
class BfsParams:
    """Graph dimensions for bfs."""

    num_nodes: int = 1 << 19
    avg_degree: float = 8.0
    skew: float = 0.25
    #: Input family: ``random``, ``rmat`` (heavy-tailed) or ``grid``
    #: (road-like, long diameter).
    graph_kind: str = "random"
    frontier_per_wave: int = 2048
    #: Arithmetic intensity: effective compute cycles per coalesced
    #: access (traversal logic plus atomics and divergence stalls).
    compute_per_access: float = 6.0


PRESETS: dict[str, BfsParams] = {
    "tiny": BfsParams(num_nodes=1 << 17, frontier_per_wave=1024),
    "small": BfsParams(num_nodes=1 << 19),
    "medium": BfsParams(num_nodes=1 << 21),
}


class Bfs(Workload):
    """Frontier-expansion BFS over a synthetic CSR graph."""

    name = "bfs"
    category = Category.IRREGULAR

    def __init__(self, params: BfsParams | None = None) -> None:
        super().__init__()
        self.params = params or BfsParams()
        self.graph: CsrGraph | None = None

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.graph = make_graph(p.graph_kind, p.num_nodes, p.avg_degree,
                                rng, skew=p.skew)
        # Out-degrees are reused by every level of every launch; derive
        # them once instead of diffing the CSR pointers per kernel.
        self._deg = self.graph.degrees()
        self._rng = np.random.default_rng(rng.integers(0, 2**63))
        m = self.graph.num_edges
        # Lonestar-style layout: per-node {start, degree} struct, 64-bit
        # edge records, plus cost and visited/mask flags.
        self.nodes = self._register(
            vas.malloc_managed("bfs.nodes", p.num_nodes * 8, read_only=True))
        self.edges = self._register(
            vas.malloc_managed("bfs.edges", m * 8, read_only=True))
        self.cost = self._register(
            vas.malloc_managed("bfs.cost", p.num_nodes * 4))
        self.flags = self._register(
            vas.malloc_managed("bfs.flags", p.num_nodes * 4))

    def _level_waves(self, frontier: np.ndarray, all_eidx: np.ndarray,
                     all_nbrs: np.ndarray,
                     bounds: np.ndarray) -> Iterator[Wave]:
        """Accesses of one BFS level, chunked into waves.

        ``all_eidx``/``all_nbrs`` are the level's full edge gather
        (computed once by :meth:`kernels`, which also needs it for the
        traversal itself); ``bounds`` maps frontier positions to edge
        positions, so each wave's slice is exactly what a per-slice
        ``ragged_ranges`` would have produced.
        """
        p = self.params
        for c0 in range(0, frontier.size, p.frontier_per_wave):
            c1 = min(c0 + p.frontier_per_wave, frontier.size)
            # Both frontier-indexed reads coalesce the same node set at
            # different strides; pre-sorting once lets each call skip
            # its internal sort (the sector sets are unchanged).
            f = np.sort(frontier[c0:c1])
            eidx = all_eidx[bounds[c0]:bounds[c1]]
            nbrs = all_nbrs[bounds[c0]:bounds[c1]]
            wb = WaveBuilder()
            np_pages, np_counts = coalesced_pages(self.nodes, f * 8)
            wb.read(np_pages, np_counts)
            fp, fc = coalesced_pages(self.flags, f * 4)
            wb.read(fp, fc)
            if eidx.size:
                ep, ec = coalesced_pages(self.edges, eidx * 8)
                wb.read(ep, ec)
                # cost and flags are parallel 4-byte-per-node arrays, so
                # the scattered neighbor writes land on the same page
                # offsets in both: coalesce once, rebase twice.
                rel, rc = coalesced_page_offsets(nbrs * 4)
                wb.write(self.cost.first_page + rel, rc)
                wb.write(self.flags.first_page + rel, rc)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        g = self.graph
        deg = self._deg
        visited = np.zeros(g.num_nodes, dtype=bool)
        visited[0] = True
        frontier = np.array([0], dtype=np.int64)
        level = 0
        while frontier.size:
            fdeg = deg[frontier]
            eidx = ragged_ranges(g.ptr[frontier], fdeg)
            all_nbrs = g.dst[eidx].astype(np.int64)
            bounds = np.zeros(frontier.size + 1, dtype=np.int64)
            np.cumsum(fdeg, out=bounds[1:])
            yield KernelLaunch(
                "bfs.kernel", level,
                lambda f=frontier.copy(), e=eidx, nb=all_nbrs, b=bounds:
                    self._level_waves(f, e, nb, b))
            # Dedup + visited filter as one boolean scatter instead of
            # np.unique (which sorts the whole edge gather): flatnonzero
            # of the mask yields the same sorted unique node ids.
            reached = np.zeros(g.num_nodes, dtype=bool)
            reached[all_nbrs] = True
            nbrs = np.flatnonzero(reached & ~visited)
            visited[nbrs] = True
            # GPU worklists are unordered: neighbors are discovered in
            # whatever order threads win the visited-flag race, so the
            # next frontier is processed in scattered, not sorted, order.
            frontier = self._rng.permutation(nbrs)
            level += 1
