"""hotspot (Rodinia): iterative 2-D thermal simulation.

Regular workload: each time step reads the temperature grid (five-point
stencil) and the static power grid, and writes the next temperature
grid.  Source and destination grids swap every iteration (ping-pong
buffering), so both are read-write over the run while ``power`` stays
read-only -- dense, sequential, repeated sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import SECTORS_PER_PAGE


@dataclass(frozen=True)
class HotspotParams:
    """Problem dimensions for hotspot."""

    rows: int = 1536
    cols: int = 2048
    iterations: int = 6
    wave_rows: int = 128
    #: Effective sector reads per temperature page per step: the 5-point
    #: stencil re-reads neighbor rows, ~2x after cache coalescing.
    stencil_read_factor: int = 2
    #: Arithmetic intensity: compute cycles per coalesced access (the
    #: per-cell update is the most math-heavy of the regular suite).
    compute_per_access: float = 27.0

    @property
    def row_bytes(self) -> int:
        """Bytes of one grid row (float32)."""
        return self.cols * 4

    @property
    def array_bytes(self) -> int:
        """Bytes of one grid."""
        return self.rows * self.row_bytes


PRESETS: dict[str, HotspotParams] = {
    "tiny": HotspotParams(rows=1280, cols=1024, iterations=3, wave_rows=64),
    "small": HotspotParams(rows=1536, cols=2048, iterations=6, wave_rows=128),
    "medium": HotspotParams(rows=3072, cols=4096, iterations=6, wave_rows=192),
}


class Hotspot(Workload):
    """Ping-pong stencil over temp grids plus a read-only power grid."""

    name = "hotspot"
    category = Category.REGULAR

    def __init__(self, params: HotspotParams | None = None) -> None:
        super().__init__()
        self.params = params or HotspotParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.temp = [
            self._register(vas.malloc_managed("hotspot.temp0", p.array_bytes)),
            self._register(vas.malloc_managed("hotspot.temp1", p.array_bytes)),
        ]
        self.power = self._register(
            vas.malloc_managed("hotspot.power", p.array_bytes, read_only=True))

    def _step(self, src, dst) -> Iterator[Wave]:
        p = self.params
        for r0 in range(0, p.rows, p.wave_rows):
            r1 = min(r0 + p.wave_rows, p.rows)
            lo, hi = r0 * p.row_bytes, r1 * p.row_bytes
            wb = WaveBuilder()
            wb.read(src.page_range(lo, hi),
                    SECTORS_PER_PAGE * p.stencil_read_factor)
            wb.read(self.power.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(dst.page_range(lo, hi), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        p = self.params
        for t in range(p.iterations):
            src, dst = self.temp[t % 2], self.temp[(t + 1) % 2]
            yield KernelLaunch(
                "hotspot.calculate_temp", t,
                lambda src=src, dst=dst: self._step(src, dst))
