"""pagerank (extended suite; Pannotia-style graph analytics).

Not part of the paper's eight benchmarks -- included to show the
framework generalizes to the wider irregular-analytics class the
introduction motivates (the Pannotia suite the related work cites).

Power iteration over a CSR graph: every sweep reads the rank of each
node's in-neighbors (scattered gather over the large, read-only graph
structure) and writes the next rank vector densely.  Like sssp it has
a hot/cold split (rank vectors hot, edges cold), but unlike sssp every
iteration touches *all* edges -- denser cold traffic, so the adaptive
scheme must rely on round-trip hardening rather than sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .graphs import CsrGraph, make_graph
from .util import SECTORS_PER_PAGE, coalesced_pages, ragged_ranges


@dataclass(frozen=True)
class PagerankParams:
    """Graph dimensions and iteration count for pagerank."""

    num_nodes: int = 1 << 17
    avg_degree: float = 8.0
    skew: float = 0.3
    graph_kind: str = "random"
    iterations: int = 4
    nodes_per_wave: int = 2048
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 2.0


PRESETS: dict[str, PagerankParams] = {
    "tiny": PagerankParams(num_nodes=1 << 17, iterations=3,
                           nodes_per_wave=1024),
    "small": PagerankParams(num_nodes=1 << 17),
    "medium": PagerankParams(num_nodes=1 << 19),
}


class Pagerank(Workload):
    """Power iteration: scattered rank gathers, dense rank updates."""

    name = "pagerank"
    category = Category.IRREGULAR

    def __init__(self, params: PagerankParams | None = None) -> None:
        super().__init__()
        self.params = params or PagerankParams()
        self.graph: CsrGraph | None = None

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.graph = make_graph(p.graph_kind, p.num_nodes, p.avg_degree,
                                rng, skew=p.skew)
        m = self.graph.num_edges
        self.nodes = self._register(vas.malloc_managed(
            "pagerank.nodes", p.num_nodes * 8, read_only=True))
        self.edges = self._register(vas.malloc_managed(
            "pagerank.edges", m * 8, read_only=True))
        self.rank = self._register(vas.malloc_managed(
            "pagerank.rank", p.num_nodes * 4))
        self.rank_next = self._register(vas.malloc_managed(
            "pagerank.rank_next", p.num_nodes * 4))
        self._order = np.random.default_rng(
            rng.integers(0, 2**63)).permutation(p.num_nodes).astype(np.int64)

    def _sweep(self) -> Iterator[Wave]:
        """One power iteration, chunked into waves of nodes.

        Nodes are processed in scattered (GPU worklist) order.
        """
        g, p = self.graph, self.params
        deg = g.degrees()
        for c0 in range(0, p.num_nodes, p.nodes_per_wave):
            nodes = self._order[c0:c0 + p.nodes_per_wave]
            eidx = ragged_ranges(g.ptr[nodes], deg[nodes])
            wb = WaveBuilder()
            npg, npc = coalesced_pages(self.nodes, nodes * 8)
            wb.read(npg, npc)
            if eidx.size:
                epg, epc = coalesced_pages(self.edges, eidx * 8)
                wb.read(epg, epc)
                nbrs = g.dst[eidx].astype(np.int64)
                rpg, rpc = coalesced_pages(self.rank, nbrs * 4)
                wb.read(rpg, rpc)
            wpg, wpc = coalesced_pages(self.rank_next, nodes * 4)
            wb.write(wpg, wpc)
            yield wb.build(compute_per_access=p.compute_per_access)

    def _swap(self) -> Iterator[Wave]:
        """Dense rank-vector swap/normalization kernel."""
        p = self.params
        total = p.num_nodes * 4
        step = p.nodes_per_wave * 64
        for lo in range(0, total, step):
            hi = min(lo + step, total)
            wb = WaveBuilder()
            wb.read(self.rank_next.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.rank.page_range(lo, hi), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        for it in range(self.params.iterations):
            yield KernelLaunch("pagerank.gather", it, self._sweep)
            yield KernelLaunch("pagerank.swap", it, self._swap)
