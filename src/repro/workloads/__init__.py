"""The paper's application suite and workload abstractions.

Regular (dense, sequential, repetitive access): ``backprop``, ``fdtd``,
``hotspot``, ``srad``.  Irregular (sparse, input-dependent access with a
hot/cold allocation split): ``bfs``, ``nw``, ``ra``, ``sssp``.
"""

from .backprop import Backprop, BackpropParams
from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload, chunked
from .bfs import Bfs, BfsParams
from .fdtd2d import Fdtd2d, FdtdParams
from .graphs import CsrGraph, random_graph
from .hotspot import Hotspot, HotspotParams
from .nw import NeedlemanWunsch, NwParams
from .pagerank import Pagerank, PagerankParams
from .ra import RandomAccess, RaParams
from .spmv import Spmv, SpmvParams
from .registry import (
    ALL_WORKLOADS,
    EXTENDED_WORKLOADS,
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    SCALES,
    make_workload,
    workload_category,
    workload_names,
)
from .srad import Srad, SradParams
from .sssp import Sssp, SsspParams

__all__ = [
    "ALL_WORKLOADS",
    "Backprop",
    "BackpropParams",
    "Bfs",
    "BfsParams",
    "Category",
    "CsrGraph",
    "EXTENDED_WORKLOADS",
    "Fdtd2d",
    "FdtdParams",
    "Hotspot",
    "HotspotParams",
    "IRREGULAR_WORKLOADS",
    "KernelLaunch",
    "NeedlemanWunsch",
    "NwParams",
    "Pagerank",
    "PagerankParams",
    "RandomAccess",
    "RaParams",
    "REGULAR_WORKLOADS",
    "SCALES",
    "Spmv",
    "SpmvParams",
    "Srad",
    "SradParams",
    "Sssp",
    "SsspParams",
    "Wave",
    "WaveBuilder",
    "Workload",
    "chunked",
    "make_workload",
    "random_graph",
    "workload_category",
    "workload_names",
]
