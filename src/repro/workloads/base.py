"""Workload abstractions: managed allocations, kernels, and access waves.

A :class:`Workload` is the analogue of one CUDA Unified Memory benchmark:
it allocates data structures with ``cudaMallocManaged`` semantics and
launches a sequence of kernels.  Each :class:`KernelLaunch` yields
:class:`Wave` objects -- the page accesses of one batch of concurrently
scheduled warps between synchronization points.  Waves are what the UVM
driver consumes; their page arrays are *accesses*, so a page appearing
twice is touched twice.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

import numpy as np

from ..memory.allocation import ManagedAllocation
from ..memory.allocator import VirtualAddressSpace


class Category(enum.Enum):
    """The paper's workload taxonomy (Section III-B)."""

    REGULAR = "regular"
    IRREGULAR = "irregular"


_ONES_CACHE: dict[int, np.ndarray] = {}


def default_counts(length: int) -> np.ndarray:
    """Shared read-only all-ones counts array of ``length``.

    Most waves use the default one-access-per-entry counts; sharing one
    immutable array per length removes an allocation from every wave.
    Consumers must treat the result as read-only (enforced via the
    writeable flag).
    """
    ones = _ONES_CACHE.get(length)
    if ones is None:
        ones = np.ones(length, dtype=np.int64)
        ones.flags.writeable = False
        _ONES_CACHE[length] = ones
    return ones


@dataclass
class Wave:
    """Page accesses of one scheduling window of warps.

    ``counts`` gives the number of coalesced accesses (128B sectors) each
    entry represents, so a dense sweep that touches every sector of a
    page can be expressed as one entry with count 32 instead of 32
    duplicate entries.  ``counts`` defaults to one access per entry.
    """

    pages: np.ndarray
    is_write: np.ndarray
    counts: np.ndarray | None = None
    #: Optional override of the default compute-cycles estimate.
    compute_cycles: float | None = None

    def __post_init__(self) -> None:
        self.pages = np.asarray(self.pages, dtype=np.int64)
        self.is_write = np.asarray(self.is_write, dtype=bool)
        if self.pages.shape != self.is_write.shape:
            raise ValueError("pages and is_write must have identical shape")
        if self.counts is None:
            self.counts = (default_counts(self.pages.size)
                           if self.pages.ndim == 1
                           else np.ones(self.pages.shape, dtype=np.int64))
        else:
            self.counts = np.asarray(self.counts, dtype=np.int64)
            if self.counts.shape != self.pages.shape:
                raise ValueError("counts must match pages in shape")
            if self.counts.size and self.counts.min() < 1:
                raise ValueError("counts must be >= 1")

    @property
    def n_accesses(self) -> int:
        """Number of page accesses in this wave."""
        return int(self.counts.sum())

    @staticmethod
    def reads(pages: np.ndarray, counts: np.ndarray | int | None = None,
              compute_cycles: float | None = None) -> "Wave":
        """Build an all-read wave."""
        pages = np.asarray(pages, dtype=np.int64)
        return Wave(pages, np.zeros(pages.shape, dtype=bool),
                    _broadcast_counts(counts, pages), compute_cycles)

    @staticmethod
    def writes(pages: np.ndarray, counts: np.ndarray | int | None = None,
               compute_cycles: float | None = None) -> "Wave":
        """Build an all-write wave."""
        pages = np.asarray(pages, dtype=np.int64)
        return Wave(pages, np.ones(pages.shape, dtype=bool),
                    _broadcast_counts(counts, pages), compute_cycles)


def _broadcast_counts(counts: np.ndarray | int | None,
                      pages: np.ndarray) -> np.ndarray | None:
    """Expand a scalar count to match ``pages``; pass arrays through."""
    if counts is None:
        return None
    if np.isscalar(counts):
        return np.full(pages.shape, int(counts), dtype=np.int64)
    return np.asarray(counts, dtype=np.int64)


class WaveBuilder:
    """Accumulates read/write page sets into a single :class:`Wave`."""

    def __init__(self) -> None:
        self._pages: list[np.ndarray] = []
        self._writes: list[np.ndarray] = []
        self._counts: list[np.ndarray] = []

    def read(self, pages: np.ndarray,
             counts: np.ndarray | int | None = None) -> "WaveBuilder":
        """Append read accesses (``counts`` accesses per page entry)."""
        return self._append(pages, counts, write=False)

    def write(self, pages: np.ndarray,
              counts: np.ndarray | int | None = None) -> "WaveBuilder":
        """Append write accesses (``counts`` accesses per page entry)."""
        return self._append(pages, counts, write=True)

    def _append(self, pages: np.ndarray, counts: np.ndarray | int | None,
                write: bool) -> "WaveBuilder":
        pages = np.asarray(pages, dtype=np.int64)
        self._pages.append(pages)
        self._writes.append(np.ones(pages.shape, dtype=bool) if write
                            else np.zeros(pages.shape, dtype=bool))
        c = _broadcast_counts(counts, pages)
        self._counts.append(default_counts(pages.size) if c is None else c)
        return self

    def build(self, compute_cycles: float | None = None,
              compute_per_access: float | None = None) -> Wave:
        """Materialize the wave (empty builder yields an empty wave).

        ``compute_per_access`` derives the wave's compute time from its
        access count -- the workload's arithmetic intensity (a stencil
        burns far more ALU cycles per access than a pointer chase).
        Mutually exclusive with an absolute ``compute_cycles``.
        """
        if compute_cycles is not None and compute_per_access is not None:
            raise ValueError(
                "pass either compute_cycles or compute_per_access, not both")
        if not self._pages:
            return Wave(np.empty(0, dtype=np.int64), np.empty(0, dtype=bool),
                        None, compute_cycles)
        wave = Wave(np.concatenate(self._pages),
                    np.concatenate(self._writes),
                    np.concatenate(self._counts), compute_cycles)
        if compute_per_access is not None:
            wave.compute_cycles = compute_per_access * wave.n_accesses
        return wave


@dataclass
class KernelLaunch:
    """One kernel invocation: a named, lazily generated stream of waves."""

    name: str
    iteration: int
    wave_source: Callable[[], Iterable[Wave]] = field(repr=False)

    def waves(self) -> Iterator[Wave]:
        """Yield the kernel's waves in program order."""
        yield from self.wave_source()


class Workload(ABC):
    """One benchmark: allocations plus a kernel stream."""

    #: Benchmark name as used in the paper's figures (e.g. ``"sssp"``).
    name: str = "workload"
    #: Regular or irregular (Section III-B characterization).
    category: Category = Category.REGULAR

    def __init__(self) -> None:
        self._vas: VirtualAddressSpace | None = None
        self._allocations: dict[str, ManagedAllocation] = {}

    # -- construction ----------------------------------------------------

    def build(self, vas: VirtualAddressSpace, rng: np.random.Generator) -> None:
        """Allocate managed memory and precompute inputs."""
        self._vas = vas
        self._allocate(vas, rng)

    @abstractmethod
    def _allocate(self, vas: VirtualAddressSpace,
                  rng: np.random.Generator) -> None:
        """Subclass hook: perform the managed allocations."""

    def _register(self, alloc: ManagedAllocation) -> ManagedAllocation:
        """Track an allocation under its name for later lookup."""
        self._allocations[alloc.name] = alloc
        return alloc

    # -- queries ----------------------------------------------------------

    @property
    def allocations(self) -> dict[str, ManagedAllocation]:
        """Allocations by name (populated by :meth:`build`)."""
        return dict(self._allocations)

    @property
    def footprint_bytes(self) -> int:
        """Total rounded bytes of this workload's allocations."""
        return sum(a.rounded_bytes for a in self._allocations.values())

    # -- execution ---------------------------------------------------------

    @abstractmethod
    def kernels(self) -> Iterator[KernelLaunch]:
        """Yield kernel launches in program order."""


def chunked(indices: np.ndarray, size: int) -> Iterator[np.ndarray]:
    """Split an index array into consecutive waves of at most ``size``."""
    if size <= 0:
        raise ValueError("wave size must be positive")
    for start in range(0, indices.size, size):
        yield indices[start:start + size]
