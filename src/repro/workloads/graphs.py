"""Synthetic graph inputs for the irregular workloads (bfs, sssp).

The paper's irregular benchmarks come from Rodinia and LonestarGPU and
run on large sparse graphs.  We generate comparable inputs: a CSR graph
with either uniform-random or skewed (power-law-ish, R-MAT flavored)
destination distribution.  The skew matters: it concentrates accesses on
a few hot pages, the hot/cold split Figure 2b visualizes.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CsrGraph:
    """Compressed sparse row adjacency with edge weights."""

    ptr: np.ndarray     # int64, shape (n+1,)
    dst: np.ndarray     # int32, shape (m,)
    weights: np.ndarray  # float32, shape (m,)

    @property
    def num_nodes(self) -> int:
        """Number of vertices."""
        return self.ptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return self.dst.size

    def degrees(self) -> np.ndarray:
        """Out-degree per node."""
        return np.diff(self.ptr)

    def validate(self) -> None:
        """Check CSR structural invariants (used by tests)."""
        if self.ptr[0] != 0 or self.ptr[-1] != self.dst.size:
            raise AssertionError("CSR pointer array endpoints invalid")
        if np.any(np.diff(self.ptr) < 0):
            raise AssertionError("CSR pointers must be nondecreasing")
        if self.dst.size and (self.dst.min() < 0
                              or self.dst.max() >= self.num_nodes):
            raise AssertionError("edge destination out of range")
        if self.weights.shape != self.dst.shape:
            raise AssertionError("weights must parallel destinations")


def random_graph(num_nodes: int, avg_degree: float,
                 rng: np.random.Generator, skew: float = 0.0,
                 connect_chain: bool = True) -> CsrGraph:
    """Generate a random directed CSR graph.

    ``skew`` in [0, 1) biases destinations toward low node ids with a
    power-law-like distribution (0 = uniform), mimicking the hub
    structure of R-MAT/social graphs.  ``connect_chain`` threads a
    Hamiltonian-ish chain through the nodes so BFS/SSSP from node 0
    reaches everything regardless of the random part.
    """
    if num_nodes < 2:
        raise ValueError("graph needs at least two nodes")
    if avg_degree < 1.0:
        raise ValueError("average degree must be >= 1")
    if not 0.0 <= skew < 1.0:
        raise ValueError("skew must be in [0, 1)")

    # Random out-degrees with the requested mean (at least the chain edge).
    extra = rng.poisson(avg_degree - 1.0, size=num_nodes)
    degrees = 1 + extra
    m = int(degrees.sum())
    ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(degrees, out=ptr[1:])

    if skew > 0.0:
        # Inverse-CDF sampling of a truncated power law over node ids.
        u = rng.random(m)
        alpha = 1.0 - skew
        dst = (num_nodes * u ** (1.0 / alpha)).astype(np.int64)
        dst = np.minimum(dst, num_nodes - 1)
        # Scatter hubs across the id space so hot pages are not one run.
        dst = (dst * 2654435761) % num_nodes
    else:
        dst = rng.integers(0, num_nodes, size=m, dtype=np.int64)

    if connect_chain:
        # First edge of every node points to the next node id.
        dst[ptr[:-1]] = (np.arange(num_nodes, dtype=np.int64) + 1) % num_nodes

    weights = rng.random(m, dtype=np.float32) * 99.0 + 1.0
    return CsrGraph(ptr=ptr, dst=dst.astype(np.int32), weights=weights)


def rmat_graph(num_nodes: int, avg_degree: float,
               rng: np.random.Generator,
               a: float = 0.57, b: float = 0.19, c: float = 0.19,
               connect_chain: bool = True) -> CsrGraph:
    """Generate an R-MAT graph (the Graph500/Lonestar input family).

    Each edge endpoint is drawn by recursively descending a 2x2
    quadrant matrix with probabilities ``(a, b, c, 1-a-b-c)``; the
    result has the heavy-tailed degree distribution of social and web
    graphs.  ``num_nodes`` must be a power of two.
    """
    if num_nodes < 2 or num_nodes & (num_nodes - 1):
        raise ValueError("R-MAT needs a power-of-two node count")
    if min(a, b, c) < 0 or a + b + c >= 1.0:
        raise ValueError("quadrant probabilities must be in [0,1) and "
                         "sum below 1")
    levels = num_nodes.bit_length() - 1
    m = int(num_nodes * avg_degree)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _ in range(levels):
        r = rng.random(m)
        # Quadrants: a -> (0,0), b -> (0,1), c -> (1,0), d -> (1,1).
        right = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        down = r >= a + b
        src = (src << 1) | down.astype(np.int64)
        dst = (dst << 1) | right.astype(np.int64)

    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    ptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=ptr[1:])
    weights = rng.random(m, dtype=np.float32) * 99.0 + 1.0
    graph = CsrGraph(ptr=ptr, dst=dst.astype(np.int32), weights=weights)
    if connect_chain:
        graph = _with_chain(graph, rng)
    return graph


def grid_graph(width: int, height: int,
               rng: np.random.Generator) -> CsrGraph:
    """Generate a 4-neighbor lattice (road-network-like input).

    Grid graphs have O(width + height) diameter, so BFS/SSSP run many
    small frontiers -- the opposite regime from R-MAT's two giant
    levels.
    """
    if width < 2 or height < 2:
        raise ValueError("grid must be at least 2x2")
    n = width * height
    ids = np.arange(n, dtype=np.int64)
    x, y = ids % width, ids // width
    neighbors = []
    sources = []
    for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
        ok = ((0 <= x + dx) & (x + dx < width)
              & (0 <= y + dy) & (y + dy < height))
        sources.append(ids[ok])
        neighbors.append(ids[ok] + dx + dy * width)
    src = np.concatenate(sources)
    dst = np.concatenate(neighbors)
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=n), out=ptr[1:])
    weights = rng.random(src.size, dtype=np.float32) * 99.0 + 1.0
    return CsrGraph(ptr=ptr, dst=dst.astype(np.int32), weights=weights)


def _with_chain(graph: CsrGraph, rng: np.random.Generator) -> CsrGraph:
    """Overwrite each node's first edge with a chain edge (reachability).

    Nodes with no out-edges get one appended instead.
    """
    n = graph.num_nodes
    deg = graph.degrees()
    chain = (np.arange(n, dtype=np.int64) + 1) % n
    dst = graph.dst.copy()
    has_edges = deg > 0
    dst[graph.ptr[:-1][has_edges]] = chain[has_edges]
    if np.all(has_edges):
        return CsrGraph(ptr=graph.ptr, dst=dst, weights=graph.weights)
    # Append one edge for isolated nodes and rebuild CSR.
    extra_src = np.flatnonzero(~has_edges).astype(np.int64)
    src_full = np.repeat(np.arange(n, dtype=np.int64), deg)
    src_all = np.concatenate([src_full, extra_src])
    dst_all = np.concatenate([dst.astype(np.int64), chain[extra_src]])
    w_all = np.concatenate([
        graph.weights,
        rng.random(extra_src.size, dtype=np.float32) * 99.0 + 1.0])
    order = np.argsort(src_all, kind="stable")
    ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src_all, minlength=n), out=ptr[1:])
    return CsrGraph(ptr=ptr, dst=dst_all[order].astype(np.int32),
                    weights=w_all[order])


#: Process-wide memo of recently built graphs, keyed by the full build
#: recipe *including the generator state at call time*, so a hit is
#: guaranteed to be the graph the same call would have built.  Repeated
#: cells of a bench or sweep grid (same workload/scale/seed at many
#: oversubscription levels) rebuild identical multi-million-edge graphs;
#: the memo turns those rebuilds into one shared read-only instance.
_GRAPH_MEMO: "OrderedDict[tuple, tuple[CsrGraph, dict]]" = OrderedDict()
_GRAPH_MEMO_MAX = 4


def _state_key(rng: np.random.Generator) -> str:
    """Canonical string form of a generator's full state."""
    return json.dumps(rng.bit_generator.state, sort_keys=True,
                      default=lambda o: o.tolist())


def _build_graph(kind: str, num_nodes: int, avg_degree: float,
                 rng: np.random.Generator, skew: float) -> CsrGraph:
    if kind == "random":
        return random_graph(num_nodes, avg_degree, rng, skew=skew)
    if kind == "rmat":
        n = 1 << (num_nodes - 1).bit_length()
        return rmat_graph(n, avg_degree, rng)
    if kind == "grid":
        side = max(2, int(round(num_nodes ** 0.5)))
        return grid_graph(side, side, rng)
    raise ValueError(f"unknown graph kind {kind!r}")


def make_graph(kind: str, num_nodes: int, avg_degree: float,
               rng: np.random.Generator, skew: float = 0.25) -> CsrGraph:
    """Build a graph by family name: ``random``, ``rmat`` or ``grid``.

    For ``grid``, ``num_nodes`` is rounded to the nearest square and
    ``avg_degree`` is ignored (lattices have degree <= 4).

    Results are memoized: a second call with the same recipe *and* the
    same generator state returns the cached (read-only) graph and
    fast-forwards ``rng`` to the state the build would have left it in,
    so callers are bit-identical either way.
    """
    key = (kind, int(num_nodes), float(avg_degree), float(skew),
           _state_key(rng))
    hit = _GRAPH_MEMO.get(key)
    if hit is not None:
        graph, post_state = hit
        rng.bit_generator.state = post_state
        _GRAPH_MEMO.move_to_end(key)
        return graph
    graph = _build_graph(kind, num_nodes, avg_degree, rng, skew)
    for arr in (graph.ptr, graph.dst, graph.weights):
        arr.flags.writeable = False
    _GRAPH_MEMO[key] = (graph, rng.bit_generator.state)
    while len(_GRAPH_MEMO) > _GRAPH_MEMO_MAX:
        _GRAPH_MEMO.popitem(last=False)
    return graph
