"""fdtd-2d (PolyBench): 2-D finite-difference time-domain kernel.

The paper's canonical *regular* application (Figures 2a, 3a/3b): three
field arrays (``ex``, ``ey``, ``hz``) are swept linearly three times per
time step, with the same dense, sequential pattern in every iteration.
Every 128B sector of the touched rows is accessed, so per-page access
counts are uniform across each allocation -- the flat histogram of
Figure 2a.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..memory.layout import KB
from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import SECTORS_PER_PAGE


@dataclass(frozen=True)
class FdtdParams:
    """Problem dimensions for fdtd-2d."""

    ni: int = 1024          # rows
    nj: int = 2048          # columns (float32 each)
    iterations: int = 5
    wave_rows: int = 128    # rows of each array per wave
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 9.0

    @property
    def row_bytes(self) -> int:
        """Bytes of one array row."""
        return self.nj * 4

    @property
    def array_bytes(self) -> int:
        """Bytes of one field array."""
        return self.ni * self.row_bytes


PRESETS: dict[str, FdtdParams] = {
    "tiny": FdtdParams(ni=640, nj=2048, iterations=3, wave_rows=64),
    "small": FdtdParams(ni=1024, nj=2048, iterations=5, wave_rows=128),
    "medium": FdtdParams(ni=2048, nj=4096, iterations=5, wave_rows=128),
}


class Fdtd2d(Workload):
    """Three linear field sweeps per time step over ex/ey/hz."""

    name = "fdtd"
    category = Category.REGULAR

    def __init__(self, params: FdtdParams | None = None) -> None:
        super().__init__()
        self.params = params or FdtdParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.ex = self._register(vas.malloc_managed("fdtd.ex", p.array_bytes))
        self.ey = self._register(vas.malloc_managed("fdtd.ey", p.array_bytes))
        self.hz = self._register(vas.malloc_managed("fdtd.hz", p.array_bytes))
        self.fict = self._register(
            vas.malloc_managed("fdtd.fict",
                               max(p.iterations * 4, 4 * KB), read_only=True))

    def _sweep(self, reads, writes, with_fict: bool = False) -> Iterator[Wave]:
        """Linear row sweep: dense sector reads/writes per wave."""
        p = self.params
        for r0 in range(0, p.ni, p.wave_rows):
            r1 = min(r0 + p.wave_rows, p.ni)
            wb = WaveBuilder()
            for alloc in reads:
                pages = alloc.page_range(r0 * p.row_bytes, r1 * p.row_bytes)
                wb.read(pages, SECTORS_PER_PAGE)
            if with_fict:
                wb.read(self.fict.page_range(0, 4), 1)
            for alloc in writes:
                pages = alloc.page_range(r0 * p.row_bytes, r1 * p.row_bytes)
                wb.write(pages, SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        p = self.params
        for t in range(p.iterations):
            # kernel1: ey[i][j] = ey[i][j] - 0.5*(hz[i][j] - hz[i-1][j])
            yield KernelLaunch(
                "fdtd.update_ey", t,
                lambda: self._sweep(reads=[self.ey, self.hz],
                                    writes=[self.ey], with_fict=True))
            # kernel2: ex[i][j] = ex[i][j] - 0.5*(hz[i][j] - hz[i][j-1])
            yield KernelLaunch(
                "fdtd.update_ex", t,
                lambda: self._sweep(reads=[self.ex, self.hz],
                                    writes=[self.ex]))
            # kernel3: hz[i][j] -= 0.7*(ex[.] - ex[.] + ey[.] - ey[.])
            yield KernelLaunch(
                "fdtd.update_hz", t,
                lambda: self._sweep(reads=[self.ex, self.ey, self.hz],
                                    writes=[self.hz]))
