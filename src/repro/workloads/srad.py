"""srad (Rodinia): speckle-reducing anisotropic diffusion.

Regular workload with a larger allocation count: two kernels alternate
per iteration.  ``srad1`` reads the image ``J`` and writes the diffusion
coefficient ``c`` plus four directional derivative grids; ``srad2``
reads the coefficient and derivatives back and updates ``J`` in place.
All six grids are swept densely and sequentially every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import SECTORS_PER_PAGE


@dataclass(frozen=True)
class SradParams:
    """Problem dimensions for srad."""

    rows: int = 1024
    cols: int = 1536
    iterations: int = 4
    wave_rows: int = 128
    #: srad1 reads J with a 4-neighbor stencil (~2x sector traffic).
    stencil_read_factor: int = 2
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 7.0

    @property
    def row_bytes(self) -> int:
        """Bytes of one grid row (float32)."""
        return self.cols * 4

    @property
    def array_bytes(self) -> int:
        """Bytes of one grid."""
        return self.rows * self.row_bytes


PRESETS: dict[str, SradParams] = {
    "tiny": SradParams(rows=640, cols=1024, iterations=3, wave_rows=64),
    "small": SradParams(rows=1024, cols=1536, iterations=4, wave_rows=128),
    "medium": SradParams(rows=2048, cols=3072, iterations=4, wave_rows=128),
}


class Srad(Workload):
    """Two dense kernels per iteration over J, c and four derivative grids."""

    name = "srad"
    category = Category.REGULAR

    def __init__(self, params: SradParams | None = None) -> None:
        super().__init__()
        self.params = params or SradParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.J = self._register(vas.malloc_managed("srad.J", p.array_bytes))
        self.c = self._register(vas.malloc_managed("srad.c", p.array_bytes))
        self.dirs = [
            self._register(vas.malloc_managed(f"srad.d{d}", p.array_bytes))
            for d in ("N", "S", "E", "W")
        ]

    def _rows(self, r0: int, r1: int, alloc):
        p = self.params
        return alloc.page_range(r0 * p.row_bytes, r1 * p.row_bytes)

    def _srad1(self) -> Iterator[Wave]:
        """Read J (stencil), write c and the four derivative grids."""
        p = self.params
        for r0 in range(0, p.rows, p.wave_rows):
            r1 = min(r0 + p.wave_rows, p.rows)
            wb = WaveBuilder()
            wb.read(self._rows(r0, r1, self.J),
                    SECTORS_PER_PAGE * p.stencil_read_factor)
            wb.write(self._rows(r0, r1, self.c), SECTORS_PER_PAGE)
            for d in self.dirs:
                wb.write(self._rows(r0, r1, d), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def _srad2(self) -> Iterator[Wave]:
        """Read c (stencil) and derivatives, update J in place."""
        p = self.params
        for r0 in range(0, p.rows, p.wave_rows):
            r1 = min(r0 + p.wave_rows, p.rows)
            wb = WaveBuilder()
            wb.read(self._rows(r0, r1, self.c),
                    SECTORS_PER_PAGE * p.stencil_read_factor)
            for d in self.dirs:
                wb.read(self._rows(r0, r1, d), SECTORS_PER_PAGE)
            wb.read(self._rows(r0, r1, self.J), SECTORS_PER_PAGE)
            wb.write(self._rows(r0, r1, self.J), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        for t in range(self.params.iterations):
            yield KernelLaunch("srad.srad1", t, self._srad1)
            yield KernelLaunch("srad.srad2", t, self._srad2)
