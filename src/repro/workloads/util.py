"""Shared helpers for workload access-pattern generation."""

from __future__ import annotations

import numpy as np

from ..memory.layout import PAGE_SIZE

#: Coalesced 128B sectors per 4KB page -- a dense sweep touches each
#: sector of a page once, i.e. 32 accesses per page.
SECTORS_PER_PAGE: int = PAGE_SIZE // 128


def ragged_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+lengths[i])`` efficiently.

    The CSR neighbor-gather primitive: given per-node adjacency offsets
    and degrees, returns the edge indices of all nodes without a Python
    loop.  Zero-length entries are allowed.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have identical shape")
    if lengths.size and lengths.min() < 0:
        raise ValueError("lengths cannot be negative")
    nz = lengths > 0
    starts, lengths = starts[nz], lengths[nz]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    ends = np.cumsum(lengths)
    boundaries = ends[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


def dedupe_with_counts(pages: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate page entries into ``(unique_pages, counts)``.

    Sort-and-run-compress: identical output to ``np.unique`` with
    ``return_counts`` but without its hashing/indexing overhead, and the
    sort is skipped entirely for the already-sorted streams most
    generators produce.
    """
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size == 0:
        return pages, np.empty(0, dtype=np.int64)
    data = pages if _is_sorted(pages) else np.sort(pages)
    boundaries = np.flatnonzero(
        np.concatenate(([True], data[1:] != data[:-1])))
    counts = np.diff(np.concatenate((boundaries, [data.size])))
    return data[boundaries], counts


def _is_sorted(values: np.ndarray) -> bool:
    return bool(np.all(values[1:] >= values[:-1])) if values.size > 1 else True


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values (``np.unique`` minus the extras)."""
    values = np.asarray(values)
    if values.size == 0:
        return values
    data = values if _is_sorted(values) else np.sort(values)
    return data[np.concatenate(([True], data[1:] != data[:-1]))]


SECTOR_SHIFT: int = 7  # 128-byte coalescing sectors
#: log2(sectors per page): a sector's page offset is ``sector >> 5``.
_PAGE_SECTOR_SHIFT: int = SECTORS_PER_PAGE.bit_length() - 1


def coalesced_page_offsets(byte_offsets: np.ndarray,
                           accesses_per_sector: int = 1
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Allocation-relative page offsets and counts after 128B coalescing.

    Like :func:`coalesced_pages` but without binding to an allocation:
    returns page indices relative to the allocation start.  Callers that
    scatter the *same* element offsets into several parallel allocations
    of the same element size (e.g. a cost and a flags array indexed by
    node id) compute this once and add each allocation's ``first_page``.

    One fused sort/run-compress pass: byte offsets collapse to sorted
    unique sectors, and because a sorted sector stream maps monotonically
    to pages, the per-page sector counts fall out of a second run
    compression with no re-sort or sortedness re-check.
    """
    offs = np.asarray(byte_offsets, dtype=np.int64)
    if offs.size == 0:
        return offs, offs
    sectors = offs >> SECTOR_SHIFT
    if not _is_sorted(sectors):
        lo = int(sectors.min())
        width = int(sectors.max()) - ((lo >> _PAGE_SECTOR_SHIFT)
                                      << _PAGE_SECTOR_SHIFT) + 1
        if width <= 2 * sectors.size:
            # Dense offset range (e.g. node-indexed arrays): a boolean
            # scatter over the page-aligned sector window beats sorting.
            # Distinct sectors per page are the per-page row sums of the
            # occupancy mask; result is identical to the sorted path.
            base = (lo >> _PAGE_SECTOR_SHIFT) << _PAGE_SECTOR_SHIFT
            npages = ((width - 1) >> _PAGE_SECTOR_SHIFT) + 1
            mask = np.zeros(npages << _PAGE_SECTOR_SHIFT, dtype=bool)
            mask[sectors - base] = True
            per_page = mask.reshape(npages, SECTORS_PER_PAGE).sum(axis=1)
            nz = np.flatnonzero(per_page)
            counts = per_page[nz]
            if accesses_per_sector != 1:
                counts *= accesses_per_sector
            return (base >> _PAGE_SECTOR_SHIFT) + nz, counts
        sectors = np.sort(sectors)
    keep = np.empty(sectors.size, dtype=bool)
    keep[0] = True
    np.not_equal(sectors[1:], sectors[:-1], out=keep[1:])
    rel_pages = sectors[keep] >> _PAGE_SECTOR_SHIFT
    pkeep = np.empty(rel_pages.size, dtype=bool)
    pkeep[0] = True
    np.not_equal(rel_pages[1:], rel_pages[:-1], out=pkeep[1:])
    boundaries = np.flatnonzero(pkeep)
    counts = np.empty(boundaries.size, dtype=np.int64)
    np.subtract(boundaries[1:], boundaries[:-1], out=counts[:-1])
    counts[-1] = rel_pages.size - boundaries[-1]
    if accesses_per_sector != 1:
        counts *= accesses_per_sector
    return rel_pages[boundaries], counts


def coalesced_page_offsets_batch(byte_offsets: np.ndarray,
                                 wave_size: int,
                                 accesses_per_sector: int = 1
                                 ) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-wave :func:`coalesced_page_offsets` over a chunk of waves.

    Splits ``byte_offsets`` into consecutive waves of ``wave_size``
    elements (the last wave may be short) and coalesces every wave in
    one fused pass: a ``row | sector`` composite key keeps waves
    separated through a single global sort and two run compressions,
    so a 16-wave chunk costs one ``np.sort`` instead of 16.  Output is
    element-identical to calling :func:`coalesced_page_offsets` on each
    slice -- both of its branches produce the sorted-unique-page result
    this pass computes directly.
    """
    offs = np.asarray(byte_offsets, dtype=np.int64)
    if offs.size == 0:
        return []
    sectors = offs >> SECTOR_SHIFT
    nwaves = -(-offs.size // wave_size)
    shift = max(int(sectors.max()).bit_length(), _PAGE_SECTOR_SHIFT)
    if nwaves > 1 and shift + nwaves.bit_length() >= 63:
        # Composite key would overflow int64 (astronomical allocation
        # sizes only); fall back to the per-wave path.
        return [coalesced_page_offsets(offs[lo:lo + wave_size],
                                       accesses_per_sector)
                for lo in range(0, offs.size, wave_size)]
    rows = np.arange(offs.size, dtype=np.int64) // wave_size
    skey = np.sort((rows << shift) | sectors)
    keep = np.empty(skey.size, dtype=bool)
    keep[0] = True
    np.not_equal(skey[1:], skey[:-1], out=keep[1:])
    # Unique (row, sector) keys; shifting out the sector's in-page bits
    # yields (row, page) keys whose runs are the per-page sector counts.
    pkey = skey[keep] >> _PAGE_SECTOR_SHIFT
    pkeep = np.empty(pkey.size, dtype=bool)
    pkeep[0] = True
    np.not_equal(pkey[1:], pkey[:-1], out=pkeep[1:])
    boundaries = np.flatnonzero(pkeep)
    counts = np.empty(boundaries.size, dtype=np.int64)
    np.subtract(boundaries[1:], boundaries[:-1], out=counts[:-1])
    counts[-1] = pkey.size - boundaries[-1]
    if accesses_per_sector != 1:
        counts *= accesses_per_sector
    upages = pkey[boundaries]
    page_shift = shift - _PAGE_SECTOR_SHIFT
    rel_pages = upages & ((np.int64(1) << page_shift) - 1)
    row_of = upages >> page_shift
    row_bounds = np.searchsorted(row_of, np.arange(nwaves + 1))
    return [(rel_pages[row_bounds[w]:row_bounds[w + 1]],
             counts[row_bounds[w]:row_bounds[w + 1]])
            for w in range(nwaves)]


def coalesced_pages(alloc, byte_offsets: np.ndarray,
                    accesses_per_sector: int = 1
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Pages and access counts after 128B coalescing.

    The GMMU observes one TLB lookup per coalesced 128-byte transaction,
    not one per scalar load: a warp gathering eight consecutive 8-byte
    edge records issues a single access.  This maps element byte offsets
    to unique sectors, then aggregates sector counts per page -- the
    access stream the hardware access counters actually see.
    """
    rel_pages, counts = coalesced_page_offsets(
        byte_offsets, accesses_per_sector)
    if rel_pages.size == 0:
        return rel_pages, counts
    return alloc.first_page + rel_pages, counts
