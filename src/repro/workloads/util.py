"""Shared helpers for workload access-pattern generation."""

from __future__ import annotations

import numpy as np

from ..memory.layout import PAGE_SIZE

#: Coalesced 128B sectors per 4KB page -- a dense sweep touches each
#: sector of a page once, i.e. 32 accesses per page.
SECTORS_PER_PAGE: int = PAGE_SIZE // 128


def ragged_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(starts[i], starts[i]+lengths[i])`` efficiently.

    The CSR neighbor-gather primitive: given per-node adjacency offsets
    and degrees, returns the edge indices of all nodes without a Python
    loop.  Zero-length entries are allowed.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if starts.shape != lengths.shape:
        raise ValueError("starts and lengths must have identical shape")
    if lengths.size and lengths.min() < 0:
        raise ValueError("lengths cannot be negative")
    nz = lengths > 0
    starts, lengths = starts[nz], lengths[nz]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    ends = np.cumsum(lengths)
    boundaries = ends[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


def dedupe_with_counts(pages: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Collapse duplicate page entries into ``(unique_pages, counts)``.

    Sort-and-run-compress: identical output to ``np.unique`` with
    ``return_counts`` but without its hashing/indexing overhead, and the
    sort is skipped entirely for the already-sorted streams most
    generators produce.
    """
    pages = np.asarray(pages, dtype=np.int64)
    if pages.size == 0:
        return pages, np.empty(0, dtype=np.int64)
    data = pages if _is_sorted(pages) else np.sort(pages)
    boundaries = np.flatnonzero(
        np.concatenate(([True], data[1:] != data[:-1])))
    counts = np.diff(np.concatenate((boundaries, [data.size])))
    return data[boundaries], counts


def _is_sorted(values: np.ndarray) -> bool:
    return bool(np.all(values[1:] >= values[:-1])) if values.size > 1 else True


def sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted distinct values (``np.unique`` minus the extras)."""
    values = np.asarray(values)
    if values.size == 0:
        return values
    data = values if _is_sorted(values) else np.sort(values)
    return data[np.concatenate(([True], data[1:] != data[:-1]))]


SECTOR_SHIFT: int = 7  # 128-byte coalescing sectors


def coalesced_pages(alloc, byte_offsets: np.ndarray,
                    accesses_per_sector: int = 1
                    ) -> tuple[np.ndarray, np.ndarray]:
    """Pages and access counts after 128B coalescing.

    The GMMU observes one TLB lookup per coalesced 128-byte transaction,
    not one per scalar load: a warp gathering eight consecutive 8-byte
    edge records issues a single access.  This maps element byte offsets
    to unique sectors, then aggregates sector counts per page -- the
    access stream the hardware access counters actually see.
    """
    offs = np.asarray(byte_offsets, dtype=np.int64)
    if offs.size == 0:
        return offs, offs
    sectors = sorted_unique(offs >> SECTOR_SHIFT)
    pages = alloc.pages_of(sectors << SECTOR_SHIFT)
    upages, ucounts = dedupe_with_counts(pages)
    return upages, ucounts * accesses_per_sector
