"""Workload registry: the paper's application suite by name and scale."""

from __future__ import annotations

from .backprop import PRESETS as BACKPROP_PRESETS, Backprop
from .base import Category, Workload
from .bfs import PRESETS as BFS_PRESETS, Bfs
from .fdtd2d import PRESETS as FDTD_PRESETS, Fdtd2d
from .hotspot import PRESETS as HOTSPOT_PRESETS, Hotspot
from .nw import PRESETS as NW_PRESETS, NeedlemanWunsch
from .pagerank import PRESETS as PAGERANK_PRESETS, Pagerank
from .ra import PRESETS as RA_PRESETS, RandomAccess
from .spmv import PRESETS as SPMV_PRESETS, Spmv
from .srad import PRESETS as SRAD_PRESETS, Srad
from .sssp import PRESETS as SSSP_PRESETS, Sssp

_REGISTRY: dict[str, tuple[type[Workload], dict]] = {
    "backprop": (Backprop, BACKPROP_PRESETS),
    "fdtd": (Fdtd2d, FDTD_PRESETS),
    "hotspot": (Hotspot, HOTSPOT_PRESETS),
    "srad": (Srad, SRAD_PRESETS),
    "bfs": (Bfs, BFS_PRESETS),
    "nw": (NeedlemanWunsch, NW_PRESETS),
    "ra": (RandomAccess, RA_PRESETS),
    "sssp": (Sssp, SSSP_PRESETS),
    # Extended suite: beyond the paper's eight benchmarks.
    "pagerank": (Pagerank, PAGERANK_PRESETS),
    "spmv": (Spmv, SPMV_PRESETS),
}

#: Paper ordering: regular suite then irregular suite (Figure 1 et al.).
REGULAR_WORKLOADS: tuple[str, ...] = ("backprop", "fdtd", "hotspot", "srad")
IRREGULAR_WORKLOADS: tuple[str, ...] = ("bfs", "nw", "ra", "sssp")
ALL_WORKLOADS: tuple[str, ...] = REGULAR_WORKLOADS + IRREGULAR_WORKLOADS
#: Extra applications beyond the paper's suite (not part of the figures).
EXTENDED_WORKLOADS: tuple[str, ...] = ("pagerank", "spmv")

SCALES: tuple[str, ...] = ("tiny", "small", "medium")


def workload_names(extended: bool = False) -> tuple[str, ...]:
    """Benchmark names in paper order (optionally with the extended suite)."""
    return ALL_WORKLOADS + EXTENDED_WORKLOADS if extended else ALL_WORKLOADS


def workload_category(name: str) -> Category:
    """Regular/irregular classification of a benchmark."""
    cls, _ = _lookup(name)
    return cls.category


def make_workload(name: str, scale: str = "small", params=None) -> Workload:
    """Instantiate a benchmark by name.

    ``scale`` selects a preset parameter set (``tiny``/``small``/
    ``medium``); passing ``params`` overrides the preset entirely.
    """
    cls, presets = _lookup(name)
    if params is not None:
        return cls(params)
    if scale not in presets:
        raise KeyError(
            f"unknown scale {scale!r} for {name!r}; choose from {sorted(presets)}")
    return cls(presets[scale])


def _lookup(name: str) -> tuple[type[Workload], dict]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None
