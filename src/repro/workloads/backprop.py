"""backprop (Rodinia): neural-network layer training pass.

Regular workload with the paper's distinguishing property: it *scans
through its allocations sequentially without any data reuse across
iterations* (Section VI-C explains why backprop shows zero thrashing
under every scheme).  We model the two GPU kernels so that each large
array is streamed exactly once: ``layerforward`` reads the input units
and the input-to-hidden weight matrix while accumulating partial sums,
and ``adjust_weights`` streams the momentum weight matrix read-write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..memory.layout import KB
from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import SECTORS_PER_PAGE


@dataclass(frozen=True)
class BackpropParams:
    """Network dimensions for backprop."""

    input_units: int = 1 << 18
    hidden_units: int = 16
    wave_inputs: int = 16384   # input units per wave
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 3.0

    @property
    def weights_bytes(self) -> int:
        """Bytes of one (input x hidden+1) float32 weight matrix."""
        return self.input_units * (self.hidden_units + 1) * 4

    @property
    def input_bytes(self) -> int:
        """Bytes of the input-unit vector."""
        return self.input_units * 4

    @property
    def weight_row_bytes(self) -> int:
        """Bytes of one input unit's weight row."""
        return (self.hidden_units + 1) * 4


PRESETS: dict[str, BackpropParams] = {
    "tiny": BackpropParams(input_units=1 << 17, wave_inputs=8192),
    "small": BackpropParams(input_units=1 << 18, wave_inputs=16384),
    "medium": BackpropParams(input_units=1 << 20, wave_inputs=16384),
}


class Backprop(Workload):
    """Single forward + weight-adjust pass; pure streaming, zero reuse."""

    name = "backprop"
    category = Category.REGULAR

    def __init__(self, params: BackpropParams | None = None) -> None:
        super().__init__()
        self.params = params or BackpropParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.input = self._register(
            vas.malloc_managed("backprop.input_units", p.input_bytes,
                               read_only=True))
        self.w1 = self._register(
            vas.malloc_managed("backprop.input_weights", p.weights_bytes))
        self.w1_prev = self._register(
            vas.malloc_managed("backprop.prev_weights", p.weights_bytes))
        self.partial = self._register(
            vas.malloc_managed("backprop.partial_sum",
                               max(p.hidden_units * 1024 * 4, 64 * KB)))

    def _layerforward(self) -> Iterator[Wave]:
        """Stream input units and the weight matrix once, forward."""
        p = self.params
        for i0 in range(0, p.input_units, p.wave_inputs):
            i1 = min(i0 + p.wave_inputs, p.input_units)
            wb = WaveBuilder()
            wb.read(self.input.page_range(i0 * 4, i1 * 4), SECTORS_PER_PAGE)
            wb.read(self.w1.page_range(i0 * p.weight_row_bytes,
                                       i1 * p.weight_row_bytes),
                    SECTORS_PER_PAGE)
            wb.write(self.partial.page_range(), 4)
            yield wb.build(compute_per_access=p.compute_per_access)

    def _adjust_weights(self) -> Iterator[Wave]:
        """Stream the momentum weight matrix once, read-modify-write."""
        p = self.params
        for i0 in range(0, p.input_units, p.wave_inputs):
            i1 = min(i0 + p.wave_inputs, p.input_units)
            lo = i0 * p.weight_row_bytes
            hi = i1 * p.weight_row_bytes
            wb = WaveBuilder()
            wb.read(self.w1_prev.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.w1_prev.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.read(self.partial.page_range(), 4)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        yield KernelLaunch("backprop.layerforward", 0, self._layerforward)
        yield KernelLaunch("backprop.adjust_weights", 0, self._adjust_weights)
