"""nw (Rodinia): Needleman-Wunsch sequence alignment.

Irregular workload: the dynamic-programming matrix is processed in
16x16 tiles along anti-diagonals.  A tile reads its reference-matrix
tile and the boundary of previously computed neighbors, then fills its
own cells.  In row-major memory a tile's rows are 64-byte segments
strided a full matrix row apart, so one wave touches many pages with few
accesses each, and a given page is revisited across ~64 subsequent
diagonals -- large reuse distances with sparse per-visit traffic, which
is what thrashes under a strict memory budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import dedupe_with_counts


@dataclass(frozen=True)
class NwParams:
    """Alignment dimensions for nw."""

    #: Sequence length; the DP matrix is (n+1) x (n+1) int32.
    n: int = 2048
    tile: int = 16
    #: Anti-diagonals processed per wave (tiles of those diagonals).
    diagonals_per_wave: int = 1
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 2.0

    def __post_init__(self) -> None:
        if self.n % self.tile:
            raise ValueError("n must be a multiple of the tile size")

    @property
    def dim(self) -> int:
        """Matrix dimension (n + 1)."""
        return self.n + 1

    @property
    def matrix_bytes(self) -> int:
        """Bytes of one (n+1)^2 int32 matrix."""
        return self.dim * self.dim * 4


PRESETS: dict[str, NwParams] = {
    "tiny": NwParams(n=1152),
    "small": NwParams(n=2048),
    "medium": NwParams(n=4096),
}


class NeedlemanWunsch(Workload):
    """Anti-diagonal tile wavefront over the DP and reference matrices."""

    name = "nw"
    category = Category.IRREGULAR

    def __init__(self, params: NwParams | None = None) -> None:
        super().__init__()
        self.params = params or NwParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.matrix = self._register(
            vas.malloc_managed("nw.input_itemsets", p.matrix_bytes))
        self.reference = self._register(
            vas.malloc_managed("nw.reference", p.matrix_bytes,
                               read_only=True))

    def _tile_pages(self, tile_i: np.ndarray, tile_j: np.ndarray,
                    alloc) -> tuple[np.ndarray, np.ndarray]:
        """Deduped pages+counts of the 16-row x 64B segments of tiles."""
        p = self.params
        rows = (tile_i[:, None] * p.tile + 1 + np.arange(p.tile)).ravel()
        cols = np.repeat(tile_j * p.tile + 1, p.tile)
        offsets = (rows.astype(np.int64) * p.dim + cols) * 4
        return dedupe_with_counts(alloc.pages_of(offsets))

    def _diagonal_waves(self) -> Iterator[Wave]:
        p = self.params
        nb = p.n // p.tile
        for d0 in range(0, 2 * nb - 1, p.diagonals_per_wave):
            wb = WaveBuilder()
            for d in range(d0, min(d0 + p.diagonals_per_wave, 2 * nb - 1)):
                lo = max(0, d - nb + 1)
                hi = min(d, nb - 1)
                ti = np.arange(lo, hi + 1, dtype=np.int64)
                tj = d - ti
                rp, rc = self._tile_pages(ti, tj, self.reference)
                wb.read(rp, rc)
                mp, mc = self._tile_pages(ti, tj, self.matrix)
                # Each DP cell reads the left/top/diag neighbors (mostly
                # in-tile) and writes itself: ~2 reads + 1 write per
                # 64B segment.
                wb.read(mp, 2 * mc)
                wb.write(mp, mc)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        yield KernelLaunch("nw.needle", 0, self._diagonal_waves)
