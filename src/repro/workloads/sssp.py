"""sssp (LonestarGPU): worklist-based single-source shortest paths.

The paper's running irregular example (Figures 2b, 3c/3d).  Each round
launches two kernels:

* ``kernel1`` relaxes the outgoing edges of the current worklist --
  sparse, input-dependent reads of the large read-only CSR arrays and
  scattered writes into the distance array; the pages touched shift
  drastically between rounds (Figure 3c/3d, kernel1);
* ``kernel2`` densely sweeps the small distance/flag arrays to build the
  next worklist -- the hot, sequential, read-write component (kernel2 in
  the same figures).

This hot/cold split -- cold read-only edge data vs. hot read-write
distance data -- is exactly the structure Figure 2b visualizes.  The
relaxation is computed for real (Bellman-Ford with a worklist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .graphs import CsrGraph, make_graph
from .util import (SECTORS_PER_PAGE, coalesced_page_offsets,
                   coalesced_pages, ragged_ranges)


@dataclass(frozen=True)
class SsspParams:
    """Graph dimensions and round cap for sssp."""

    num_nodes: int = 1 << 18
    avg_degree: float = 8.0
    skew: float = 0.25
    #: Input family: ``random``, ``rmat`` (heavy-tailed) or ``grid``
    #: (road-like, long diameter).
    graph_kind: str = "random"
    worklist_per_wave: int = 1024
    #: LonestarGPU-style chunked worklist: at most this many nodes are
    #: relaxed per round; the remainder is deferred, so each round's
    #: kernel1 touches a bounded, scattered subset of the edge arrays.
    max_worklist: int = 8192
    #: Upper bound on relaxation rounds (the access pattern stabilizes
    #: long before convergence on these graphs).
    max_rounds: int = 48
    #: Arithmetic intensity: effective compute cycles per coalesced
    #: access (relaxation arithmetic plus atomic-min contention).
    compute_per_access: float = 3.0


PRESETS: dict[str, SsspParams] = {
    "tiny": SsspParams(num_nodes=1 << 16, worklist_per_wave=512,
                       max_rounds=6),
    "small": SsspParams(num_nodes=1 << 18),
    "medium": SsspParams(num_nodes=1 << 20),
}


class Sssp(Workload):
    """Two-kernel worklist Bellman-Ford over a synthetic CSR graph."""

    name = "sssp"
    category = Category.IRREGULAR

    def __init__(self, params: SsspParams | None = None) -> None:
        super().__init__()
        self.params = params or SsspParams()
        self.graph: CsrGraph | None = None

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.graph = make_graph(p.graph_kind, p.num_nodes, p.avg_degree,
                                rng, skew=p.skew)
        # Out-degrees are reused by every round of every launch; derive
        # them once instead of diffing the CSR pointers per kernel.
        self._deg = self.graph.degrees()
        self._rng = np.random.default_rng(rng.integers(0, 2**63))
        m = self.graph.num_edges
        self.nodes = self._register(
            vas.malloc_managed("sssp.nodes", p.num_nodes * 8, read_only=True))
        # LonestarGPU CSR uses 64-bit edge records and weights.
        self.edges = self._register(
            vas.malloc_managed("sssp.edges", m * 8, read_only=True))
        self.weights = self._register(
            vas.malloc_managed("sssp.weights", m * 8, read_only=True))
        self.dist = self._register(
            vas.malloc_managed("sssp.dist", p.num_nodes * 4))
        self.dist_old = self._register(
            vas.malloc_managed("sssp.dist_old", p.num_nodes * 4))
        self.wl_flags = self._register(
            vas.malloc_managed("sssp.flags", p.num_nodes * 4))

    # -- kernel 1: sparse relaxation --------------------------------------

    def _relax_waves(self, worklist: np.ndarray, all_eidx: np.ndarray,
                     all_nbrs: np.ndarray,
                     bounds: np.ndarray) -> Iterator[Wave]:
        """Accesses of one relaxation round, chunked into waves.

        ``all_eidx``/``all_nbrs`` are the round's full edge gather
        (computed once by :meth:`kernels`, which also needs it for the
        relaxation itself); ``bounds`` maps worklist positions to edge
        positions, so each wave's slice is exactly what a per-slice
        ``ragged_ranges`` would have produced.
        """
        p = self.params
        for c0 in range(0, worklist.size, p.worklist_per_wave):
            c1 = min(c0 + p.worklist_per_wave, worklist.size)
            # Both worklist-indexed reads coalesce the same node set at
            # different strides; pre-sorting once lets each call skip
            # its internal sort (the sector sets are unchanged).
            wl = np.sort(worklist[c0:c1])
            eidx = all_eidx[bounds[c0]:bounds[c1]]
            nbrs = all_nbrs[bounds[c0]:bounds[c1]]
            wb = WaveBuilder()
            npg, npc = coalesced_pages(self.nodes, wl * 8)
            wb.read(npg, npc)
            dpg, dpc = coalesced_pages(self.dist, wl * 4)
            wb.read(dpg, dpc)
            if eidx.size:
                # edges and weights are parallel 8-byte-per-edge arrays:
                # the gather hits the same page offsets in both, so
                # coalesce once and rebase per allocation.
                erel, epc = coalesced_page_offsets(eidx * 8)
                wb.read(self.edges.first_page + erel, epc)
                wb.read(self.weights.first_page + erel, epc)
                # Scattered relaxation: read old distance, maybe write new.
                tpg, tpc = coalesced_pages(self.dist, nbrs * 4)
                wb.read(tpg, tpc)
                wb.write(tpg, np.maximum(tpc // 2, 1))
            yield wb.build(compute_per_access=p.compute_per_access)

    # -- kernel 2: dense worklist rebuild ----------------------------------

    def _sweep_waves(self) -> Iterator[Wave]:
        p = self.params
        bytes_total = p.num_nodes * 4
        step = p.worklist_per_wave * 64  # bytes per wave
        for lo in range(0, bytes_total, step):
            hi = min(lo + step, bytes_total)
            wb = WaveBuilder()
            wb.read(self.dist.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.read(self.dist_old.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.dist_old.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.wl_flags.page_range(lo, hi), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        g, p = self.graph, self.params
        deg = self._deg
        dist = np.full(g.num_nodes, np.inf, dtype=np.float64)
        dist[0] = 0.0
        # Pending nodes awaiting relaxation; processed in bounded,
        # unordered chunks like a LonestarGPU worklist.
        pending = np.array([0], dtype=np.int64)
        for rnd in range(p.max_rounds):
            if pending.size == 0:
                break
            worklist = pending[:p.max_worklist]
            deferred = pending[p.max_worklist:]
            wdeg = deg[worklist]
            eidx = ragged_ranges(g.ptr[worklist], wdeg)
            all_nbrs = g.dst[eidx].astype(np.int64)
            bounds = np.zeros(worklist.size + 1, dtype=np.int64)
            np.cumsum(wdeg, out=bounds[1:])
            yield KernelLaunch(
                "sssp.kernel1", rnd,
                lambda wl=worklist.copy(), e=eidx, nb=all_nbrs, b=bounds:
                    self._relax_waves(wl, e, nb, b))
            # Perform the actual relaxation to derive the next worklist.
            # Next-worklist membership as one boolean scatter: nodes
            # whose distance improved, unioned with the deferred tail.
            # flatnonzero of the mask yields the same sorted unique ids
            # as the previous np.unique + np.union1d (which re-sorted
            # the whole edge gather every round).
            next_mask = np.zeros(g.num_nodes, dtype=bool)
            next_mask[deferred] = True
            if eidx.size:
                src = np.repeat(worklist, wdeg)
                cand = dist[src] + g.weights[eidx]
                dst = all_nbrs
                # An edge improves its target iff its candidate beats the
                # pre-update distance; flagging those targets is the same
                # set as re-gathering distances after the update, minus
                # one 64K gather and a copy.
                before = dist[dst]
                np.minimum.at(dist, dst, cand)
                next_mask[dst[cand < before]] = True
            yield KernelLaunch("sssp.kernel2", rnd, self._sweep_waves)
            # Worklists are unordered on the GPU: process in scattered
            # order (permutation draws depend only on the size, so this
            # is bit-identical to permuting the union1d result).
            pending = self._rng.permutation(
                np.flatnonzero(next_mask)).astype(np.int64)
