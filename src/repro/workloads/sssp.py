"""sssp (LonestarGPU): worklist-based single-source shortest paths.

The paper's running irregular example (Figures 2b, 3c/3d).  Each round
launches two kernels:

* ``kernel1`` relaxes the outgoing edges of the current worklist --
  sparse, input-dependent reads of the large read-only CSR arrays and
  scattered writes into the distance array; the pages touched shift
  drastically between rounds (Figure 3c/3d, kernel1);
* ``kernel2`` densely sweeps the small distance/flag arrays to build the
  next worklist -- the hot, sequential, read-write component (kernel2 in
  the same figures).

This hot/cold split -- cold read-only edge data vs. hot read-write
distance data -- is exactly the structure Figure 2b visualizes.  The
relaxation is computed for real (Bellman-Ford with a worklist).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .graphs import CsrGraph, make_graph
from .util import SECTORS_PER_PAGE, coalesced_pages, ragged_ranges


@dataclass(frozen=True)
class SsspParams:
    """Graph dimensions and round cap for sssp."""

    num_nodes: int = 1 << 18
    avg_degree: float = 8.0
    skew: float = 0.25
    #: Input family: ``random``, ``rmat`` (heavy-tailed) or ``grid``
    #: (road-like, long diameter).
    graph_kind: str = "random"
    worklist_per_wave: int = 1024
    #: LonestarGPU-style chunked worklist: at most this many nodes are
    #: relaxed per round; the remainder is deferred, so each round's
    #: kernel1 touches a bounded, scattered subset of the edge arrays.
    max_worklist: int = 8192
    #: Upper bound on relaxation rounds (the access pattern stabilizes
    #: long before convergence on these graphs).
    max_rounds: int = 48
    #: Arithmetic intensity: effective compute cycles per coalesced
    #: access (relaxation arithmetic plus atomic-min contention).
    compute_per_access: float = 3.0


PRESETS: dict[str, SsspParams] = {
    "tiny": SsspParams(num_nodes=1 << 16, worklist_per_wave=512,
                       max_rounds=6),
    "small": SsspParams(num_nodes=1 << 18),
    "medium": SsspParams(num_nodes=1 << 20),
}


class Sssp(Workload):
    """Two-kernel worklist Bellman-Ford over a synthetic CSR graph."""

    name = "sssp"
    category = Category.IRREGULAR

    def __init__(self, params: SsspParams | None = None) -> None:
        super().__init__()
        self.params = params or SsspParams()
        self.graph: CsrGraph | None = None

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.graph = make_graph(p.graph_kind, p.num_nodes, p.avg_degree,
                                rng, skew=p.skew)
        self._rng = np.random.default_rng(rng.integers(0, 2**63))
        m = self.graph.num_edges
        self.nodes = self._register(
            vas.malloc_managed("sssp.nodes", p.num_nodes * 8, read_only=True))
        # LonestarGPU CSR uses 64-bit edge records and weights.
        self.edges = self._register(
            vas.malloc_managed("sssp.edges", m * 8, read_only=True))
        self.weights = self._register(
            vas.malloc_managed("sssp.weights", m * 8, read_only=True))
        self.dist = self._register(
            vas.malloc_managed("sssp.dist", p.num_nodes * 4))
        self.dist_old = self._register(
            vas.malloc_managed("sssp.dist_old", p.num_nodes * 4))
        self.wl_flags = self._register(
            vas.malloc_managed("sssp.flags", p.num_nodes * 4))

    # -- kernel 1: sparse relaxation --------------------------------------

    def _relax_waves(self, worklist: np.ndarray,
                     touched_dst: list[np.ndarray]) -> Iterator[Wave]:
        g, p = self.graph, self.params
        deg = g.degrees()
        for c0 in range(0, worklist.size, p.worklist_per_wave):
            wl = worklist[c0:c0 + p.worklist_per_wave]
            eidx = ragged_ranges(g.ptr[wl], deg[wl])
            nbrs = g.dst[eidx].astype(np.int64)
            touched_dst.append(nbrs)
            wb = WaveBuilder()
            npg, npc = coalesced_pages(self.nodes, wl * 8)
            wb.read(npg, npc)
            dpg, dpc = coalesced_pages(self.dist, wl * 4)
            wb.read(dpg, dpc)
            if eidx.size:
                epg, epc = coalesced_pages(self.edges, eidx * 8)
                wb.read(epg, epc)
                wpg, wpc = coalesced_pages(self.weights, eidx * 8)
                wb.read(wpg, wpc)
                # Scattered relaxation: read old distance, maybe write new.
                tpg, tpc = coalesced_pages(self.dist, nbrs * 4)
                wb.read(tpg, tpc)
                wb.write(tpg, np.maximum(tpc // 2, 1))
            yield wb.build(compute_per_access=p.compute_per_access)

    # -- kernel 2: dense worklist rebuild ----------------------------------

    def _sweep_waves(self) -> Iterator[Wave]:
        p = self.params
        bytes_total = p.num_nodes * 4
        step = p.worklist_per_wave * 64  # bytes per wave
        for lo in range(0, bytes_total, step):
            hi = min(lo + step, bytes_total)
            wb = WaveBuilder()
            wb.read(self.dist.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.read(self.dist_old.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.dist_old.page_range(lo, hi), SECTORS_PER_PAGE)
            wb.write(self.wl_flags.page_range(lo, hi), SECTORS_PER_PAGE)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        g, p = self.graph, self.params
        deg = g.degrees()
        dist = np.full(g.num_nodes, np.inf, dtype=np.float64)
        dist[0] = 0.0
        # Pending nodes awaiting relaxation; processed in bounded,
        # unordered chunks like a LonestarGPU worklist.
        pending = np.array([0], dtype=np.int64)
        for rnd in range(p.max_rounds):
            if pending.size == 0:
                break
            worklist = pending[:p.max_worklist]
            deferred = pending[p.max_worklist:]
            touched: list[np.ndarray] = []
            yield KernelLaunch(
                "sssp.kernel1", rnd,
                lambda wl=worklist.copy(), t=touched: self._relax_waves(wl, t))
            # Perform the actual relaxation to derive the next worklist.
            eidx = ragged_ranges(g.ptr[worklist], deg[worklist])
            if eidx.size:
                src = np.repeat(worklist, deg[worklist])
                cand = dist[src] + g.weights[eidx]
                dst = g.dst[eidx].astype(np.int64)
                before = dist[dst].copy()
                np.minimum.at(dist, dst, cand)
                changed = np.unique(dst[dist[dst] < before])
            else:
                changed = np.empty(0, dtype=np.int64)
            yield KernelLaunch("sssp.kernel2", rnd, self._sweep_waves)
            # Merge newly changed nodes with the deferred tail; worklists
            # are unordered on the GPU, so process in scattered order.
            pending = self._rng.permutation(
                np.union1d(deferred, changed)).astype(np.int64)
