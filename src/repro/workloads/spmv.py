"""spmv (extended suite): sparse matrix-vector multiplication.

Not part of the paper's eight benchmarks -- included as the
scatter/gather archetype the Spatter suite (cited in related work)
characterizes.  Each iteration streams the CSR matrix (values + column
indices) sequentially -- a large, dense, read-once pattern -- while
gathering the input vector at the column positions (sparse, reused
across rows) and writing the output vector densely.  The interesting
tension: the *matrix* is huge but streaming (migration-friendly), the
*vector* is small but randomly gathered (counter-friendly); a good
policy treats them oppositely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .base import Category, KernelLaunch, Wave, WaveBuilder, Workload
from .util import SECTORS_PER_PAGE, coalesced_pages


@dataclass(frozen=True)
class SpmvParams:
    """Matrix dimensions for spmv."""

    rows: int = 1 << 17
    nnz_per_row: int = 24
    iterations: int = 3
    rows_per_wave: int = 1024
    #: Arithmetic intensity: compute cycles per coalesced access.
    compute_per_access: float = 2.0

    @property
    def nnz(self) -> int:
        """Total stored nonzeros."""
        return self.rows * self.nnz_per_row


PRESETS: dict[str, SpmvParams] = {
    "tiny": SpmvParams(rows=1 << 16, nnz_per_row=16, rows_per_wave=512),
    "small": SpmvParams(rows=1 << 17),
    "medium": SpmvParams(rows=1 << 19),
}


class Spmv(Workload):
    """CSR y = A·x with a streamed matrix and a gathered vector."""

    name = "spmv"
    category = Category.IRREGULAR

    def __init__(self, params: SpmvParams | None = None) -> None:
        super().__init__()
        self.params = params or SpmvParams()

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.values = self._register(vas.malloc_managed(
            "spmv.values", p.nnz * 8, read_only=True))
        self.colidx = self._register(vas.malloc_managed(
            "spmv.colidx", p.nnz * 4, read_only=True))
        self.x = self._register(vas.malloc_managed(
            "spmv.x", p.rows * 8, read_only=True))
        self.y = self._register(vas.malloc_managed(
            "spmv.y", p.rows * 8))
        # Column indices: banded plus random long-range entries, the
        # structure of discretization matrices with coupling terms.
        self._rng = np.random.default_rng(rng.integers(0, 2**63))

    def _row_columns(self, rows: np.ndarray) -> np.ndarray:
        """Column gather positions for a block of rows (computed live)."""
        p = self.params
        n = rows.size * p.nnz_per_row
        base = np.repeat(rows, p.nnz_per_row)
        local = self._rng.integers(-64, 65, size=n)
        longr = self._rng.integers(0, p.rows, size=n)
        take_long = self._rng.random(n) < 0.25
        cols = np.where(take_long, longr, np.clip(base + local, 0,
                                                  p.rows - 1))
        return cols.astype(np.int64)

    def _sweep(self) -> Iterator[Wave]:
        p = self.params
        for r0 in range(0, p.rows, p.rows_per_wave):
            rows = np.arange(r0, min(r0 + p.rows_per_wave, p.rows),
                             dtype=np.int64)
            lo = r0 * p.nnz_per_row
            hi = int(rows[-1] + 1) * p.nnz_per_row
            wb = WaveBuilder()
            wb.read(self.values.page_range(lo * 8, hi * 8),
                    SECTORS_PER_PAGE)
            wb.read(self.colidx.page_range(lo * 4, hi * 4),
                    SECTORS_PER_PAGE)
            cols = self._row_columns(rows)
            xpg, xpc = coalesced_pages(self.x, cols * 8)
            wb.read(xpg, xpc)
            ypg, ypc = coalesced_pages(self.y, rows * 8)
            wb.write(ypg, ypc)
            yield wb.build(compute_per_access=p.compute_per_access)

    def kernels(self) -> Iterator[KernelLaunch]:
        for it in range(self.params.iterations):
            yield KernelLaunch("spmv.csr_kernel", it, self._sweep)
