"""Host memory backing store bookkeeping.

In UVM the host holds the authoritative copy of every page that is not
resident on the device (Section III-C: a single physical copy exists at
any time).  The simulator does not move real data, so this module only
tracks the *protocol*: which basic blocks are currently host-backed,
which have a remote (zero-copy) mapping established by the device, and
cumulative traffic for statistics.
"""

from __future__ import annotations

import numpy as np


class HostMemory:
    """Host-side mapping state for every basic block in the VA space."""

    def __init__(self, total_blocks: int) -> None:
        if total_blocks <= 0:
            raise ValueError("VA space must contain at least one block")
        #: True while the host holds the valid copy (i.e. block not on device).
        self.valid = np.ones(total_blocks, dtype=bool)
        #: True when the device has established a remote zero-copy mapping
        #: to the host copy (so further remote accesses need no fault).
        self.remote_mapped = np.zeros(total_blocks, dtype=bool)

    @property
    def total_blocks(self) -> int:
        """Number of basic blocks tracked."""
        return self.valid.size

    def migrate_to_device(self, blocks: np.ndarray) -> None:
        """Invalidate host copies when blocks migrate to the device.

        Migration tears down any remote mapping (the host PTE is
        invalidated and the device gets a local mapping instead).
        """
        self.valid[blocks] = False
        self.remote_mapped[blocks] = False

    def accept_eviction(self, blocks: np.ndarray) -> None:
        """Re-validate host copies when blocks are evicted from the device."""
        self.valid[blocks] = True

    def map_remote(self, blocks: np.ndarray) -> None:
        """Establish device->host zero-copy mappings for host-valid blocks."""
        if not np.all(self.valid[blocks]):
            raise RuntimeError("cannot remote-map a block resident on device")
        self.remote_mapped[blocks] = True
