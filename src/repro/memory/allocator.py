"""Flat virtual address space and managed-memory allocator.

Models the UVM single-pointer virtual address space shared by the host and
the device (Section III-C).  Allocations are laid out contiguously, each
aligned to a 2MB chunk boundary so that one prefetch tree never spans two
allocations (true of the real driver because trees are built per
allocation).

The allocator is deliberately simple -- there is no free list because the
simulated workloads allocate up front and run to completion, exactly like
the benchmarks in the paper.
"""

from __future__ import annotations

import numpy as np

from . import layout
from .advice import Advice
from .allocation import ChunkSpan, ManagedAllocation


class VirtualAddressSpace:
    """Assigns page ranges and chunk decompositions to managed allocations."""

    def __init__(self) -> None:
        self._allocations: list[ManagedAllocation] = []
        self._next_page: int = 0
        self._next_chunk_id: int = 0
        self._chunks: list[ChunkSpan] = []

    def malloc_managed(self, name: str, size_bytes: int,
                       read_only: bool = False,
                       advice: Advice = Advice.NONE) -> ManagedAllocation:
        """Allocate a managed region (``cudaMallocManaged`` analogue).

        The requested size is rounded up to full 2MB chunks plus one
        power-of-two remainder chunk (Section II-B), and the allocation is
        placed at the next chunk-aligned virtual address.  ``advice``
        attaches a programmer placement hint (Section III-C).
        """
        if size_bytes <= 0:
            raise ValueError(f"allocation {name!r}: size must be positive")
        chunk_sizes = layout.split_into_chunks(size_bytes)
        rounded = sum(chunk_sizes)

        first_page = self._next_page
        chunks: list[ChunkSpan] = []
        block_cursor = layout.page_to_block(first_page)
        for csize in chunk_sizes:
            nblocks = csize // layout.BASIC_BLOCK_SIZE
            span = ChunkSpan(chunk_id=self._next_chunk_id,
                             first_block=block_cursor, num_blocks=nblocks)
            chunks.append(span)
            self._chunks.append(span)
            self._next_chunk_id += 1
            block_cursor += nblocks

        num_pages = rounded // layout.PAGE_SIZE
        alloc = ManagedAllocation(
            alloc_id=len(self._allocations), name=name,
            requested_bytes=size_bytes, rounded_bytes=rounded,
            first_page=first_page, num_pages=num_pages,
            read_only=read_only, chunks=tuple(chunks), advice=advice,
        )
        self._allocations.append(alloc)
        # Advance to the next 2MB boundary so the following allocation
        # starts a fresh chunk.
        end_page = first_page + num_pages
        rem = end_page % layout.PAGES_PER_CHUNK
        self._next_page = end_page + (layout.PAGES_PER_CHUNK - rem if rem else 0)
        return alloc

    @property
    def allocations(self) -> tuple[ManagedAllocation, ...]:
        """All allocations in creation order."""
        return tuple(self._allocations)

    @property
    def chunks(self) -> tuple[ChunkSpan, ...]:
        """All chunk spans in global chunk-id order."""
        return tuple(self._chunks)

    @property
    def total_pages(self) -> int:
        """Pages spanned by the VA space (including alignment gaps)."""
        return self._next_page

    @property
    def total_blocks(self) -> int:
        """Basic blocks spanned by the VA space."""
        return self._next_page // layout.PAGES_PER_BLOCK

    @property
    def footprint_bytes(self) -> int:
        """Sum of rounded allocation sizes (the device working set)."""
        return sum(a.rounded_bytes for a in self._allocations)

    def find_allocation(self, page_index: int) -> ManagedAllocation:
        """Return the allocation owning ``page_index``.

        Raises ``KeyError`` for pages in alignment gaps or out of range.
        """
        for alloc in self._allocations:
            if alloc.first_page <= page_index < alloc.last_page:
                return alloc
        raise KeyError(f"page {page_index} not part of any managed allocation")

    def block_alloc_ids(self) -> np.ndarray:
        """Per-basic-block owning allocation id (-1 for alignment gaps)."""
        ids = np.full(self.total_blocks, -1, dtype=np.int32)
        for alloc in self._allocations:
            ids[alloc.first_block:alloc.first_block + alloc.num_blocks] = alloc.alloc_id
        return ids

    def block_chunk_ids(self) -> np.ndarray:
        """Per-basic-block owning chunk id (-1 for alignment gaps)."""
        ids = np.full(self.total_blocks, -1, dtype=np.int32)
        for span in self._chunks:
            ids[span.first_block:span.last_block] = span.chunk_id
        return ids

    def block_read_only(self) -> np.ndarray:
        """Per-basic-block read-only advice flags."""
        ro = np.zeros(self.total_blocks, dtype=bool)
        for alloc in self._allocations:
            if alloc.read_only:
                ro[alloc.first_block:alloc.first_block + alloc.num_blocks] = True
        return ro

    def block_advice(self, advice: Advice) -> np.ndarray:
        """Per-basic-block mask of blocks carrying the given hint."""
        mask = np.zeros(self.total_blocks, dtype=bool)
        for alloc in self._allocations:
            if alloc.advice is advice:
                mask[alloc.first_block:
                     alloc.first_block + alloc.num_blocks] = True
        return mask
