"""Memory substrate: geometry, VA allocator, device and host memory."""

from . import layout
from .advice import Advice
from .allocation import ChunkSpan, ManagedAllocation
from .allocator import VirtualAddressSpace
from .device import DeviceMemory
from .host import HostMemory

__all__ = [
    "Advice",
    "layout",
    "ChunkSpan",
    "ManagedAllocation",
    "VirtualAddressSpace",
    "DeviceMemory",
    "HostMemory",
]
