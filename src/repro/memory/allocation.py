"""Managed allocation handles (the ``cudaMallocManaged`` analogue).

A :class:`ManagedAllocation` is the object a workload receives when it
allocates a data structure.  It records the allocation's position in the
flat virtual page space, its logical chunk decomposition (Section II-B),
and bookkeeping the statistics layer uses to attribute accesses to data
structures (Figure 2 groups access histograms per managed allocation).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from . import layout
from .advice import Advice


@dataclass(frozen=True)
class ChunkSpan:
    """One logical chunk of an allocation: a prefetch-tree domain."""

    #: Global chunk id assigned by the VA space.
    chunk_id: int
    #: First global basic-block index of the chunk.
    first_block: int
    #: Number of basic blocks in the chunk (power of two, <= 32).
    num_blocks: int

    @property
    def last_block(self) -> int:
        """One past the chunk's final basic-block index."""
        return self.first_block + self.num_blocks

    @property
    def size_bytes(self) -> int:
        """Chunk size in bytes."""
        return self.num_blocks * layout.BASIC_BLOCK_SIZE


@dataclass(frozen=True)
class ManagedAllocation:
    """A single managed (UVM) allocation visible to both host and device."""

    #: Monotonic id assigned by the VA space.
    alloc_id: int
    #: Human-readable data-structure name (e.g. ``"graph.edges"``).
    name: str
    #: Byte size requested by the workload.
    requested_bytes: int
    #: Byte size after the 2^i*64KB round-up.
    rounded_bytes: int
    #: First global page index.
    first_page: int
    #: Number of pages (rounded size / 4KB).
    num_pages: int
    #: Workload advice: the data structure is only ever read by the GPU.
    #: Used by Figure 2's read-only/read-write split and by the LFU
    #: replacement's read-only victim preference.
    read_only: bool
    #: Logical chunks covering the allocation.
    chunks: tuple[ChunkSpan, ...] = field(repr=False)
    #: Programmer placement hint (Section III-C); default: none.
    advice: Advice = Advice.NONE

    @property
    def first_block(self) -> int:
        """First global basic-block index."""
        return layout.page_to_block(self.first_page)

    @property
    def num_blocks(self) -> int:
        """Number of basic blocks spanned."""
        return self.num_pages // layout.PAGES_PER_BLOCK

    @property
    def last_page(self) -> int:
        """One past the final page index."""
        return self.first_page + self.num_pages

    def page(self, element_offset_bytes: int) -> int:
        """Global page index holding byte offset ``element_offset_bytes``."""
        if not 0 <= element_offset_bytes < self.rounded_bytes:
            raise IndexError(
                f"offset {element_offset_bytes} outside allocation "
                f"{self.name!r} of {self.rounded_bytes} bytes"
            )
        return self.first_page + (element_offset_bytes >> layout.PAGE_SHIFT)

    def pages_of(self, byte_offsets: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`page` for an array of byte offsets."""
        offs = np.asarray(byte_offsets, dtype=np.int64)
        if offs.size and (offs.min() < 0 or offs.max() >= self.rounded_bytes):
            raise IndexError(f"offsets outside allocation {self.name!r}")
        return self.first_page + (offs >> layout.PAGE_SHIFT)

    def page_range(self, start_byte: int = 0, end_byte: int | None = None) -> np.ndarray:
        """All page indices covering ``[start_byte, end_byte)``."""
        end_byte = self.requested_bytes if end_byte is None else end_byte
        if not 0 <= start_byte < end_byte <= self.rounded_bytes:
            raise IndexError(
                f"range [{start_byte}, {end_byte}) invalid for {self.name!r}"
            )
        first = start_byte >> layout.PAGE_SHIFT
        last = (end_byte - 1 >> layout.PAGE_SHIFT) + 1
        return np.arange(self.first_page + first, self.first_page + last,
                         dtype=np.int64)
