"""Page and address geometry for the simulated CPU-GPU memory system.

The Unified Memory subsystem described in the paper operates on three
granularities (Section II-B):

* 4KB **small pages** -- the unit of GMMU address translation and the
  granularity at which the workload issues memory accesses;
* 64KB **basic blocks** -- the unit of fault-driven migration, prefetching
  and (in this work) access counting;
* 2MB **large chunks** -- the unit of page replacement and the span of one
  tree-based-prefetcher full binary tree.

All sizes are powers of two, so conversions are shifts.  Throughout the
code base, addresses are *page indices* in a flat virtual address space
managed by :class:`repro.memory.allocator.VirtualAddressSpace`; byte
addresses appear only at API boundaries.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB

#: Size of a small page in bytes (GMMU translation granularity).
PAGE_SIZE: int = 4 * KB

#: Size of a basic block in bytes (migration / prefetch / counter unit).
BASIC_BLOCK_SIZE: int = 64 * KB

#: Size of a large chunk in bytes (eviction unit, one prefetch tree).
CHUNK_SIZE: int = 2 * MB

#: Pages per basic block (16).
PAGES_PER_BLOCK: int = BASIC_BLOCK_SIZE // PAGE_SIZE

#: Basic blocks per full 2MB chunk (32).
BLOCKS_PER_CHUNK: int = CHUNK_SIZE // BASIC_BLOCK_SIZE

#: Pages per full 2MB chunk (512).
PAGES_PER_CHUNK: int = CHUNK_SIZE // PAGE_SIZE

#: log2 helpers for shift-based conversions.
PAGE_SHIFT: int = PAGE_SIZE.bit_length() - 1
BLOCK_SHIFT: int = (PAGES_PER_BLOCK).bit_length() - 1        # pages -> blocks
CHUNK_BLOCK_SHIFT: int = (BLOCKS_PER_CHUNK).bit_length() - 1  # blocks -> chunks


def pages_to_bytes(n_pages: int) -> int:
    """Return the byte size of ``n_pages`` small pages."""
    return n_pages * PAGE_SIZE


def bytes_to_pages(n_bytes: int) -> int:
    """Return the number of whole pages covering ``n_bytes`` (round up)."""
    return -(-n_bytes // PAGE_SIZE)


def blocks_to_bytes(n_blocks: int) -> int:
    """Return the byte size of ``n_blocks`` basic blocks."""
    return n_blocks * BASIC_BLOCK_SIZE


def bytes_to_blocks(n_bytes: int) -> int:
    """Return the number of whole basic blocks covering ``n_bytes``."""
    return -(-n_bytes // BASIC_BLOCK_SIZE)


def page_to_block(page_index: int) -> int:
    """Map a global page index to its basic-block index."""
    return page_index >> BLOCK_SHIFT


def block_to_first_page(block_index: int) -> int:
    """Return the first page index of a basic block."""
    return block_index << BLOCK_SHIFT


def round_up_pow2_blocks(n_bytes: int) -> int:
    """Round an allocation size up to the next ``2**i * 64KB`` bytes.

    This is the CUDA runtime's managed-allocation rounding described in
    Section II-B of the paper: a user-specified size is rounded to the
    next power-of-two multiple of the 64KB basic block before the chunk
    trees are built.
    """
    if n_bytes <= 0:
        raise ValueError(f"allocation size must be positive, got {n_bytes}")
    blocks = bytes_to_blocks(n_bytes)
    pow2 = 1 << (blocks - 1).bit_length() if blocks > 1 else 1
    return pow2 * BASIC_BLOCK_SIZE


def split_into_chunks(n_bytes: int) -> list[int]:
    """Split a (rounded) allocation into logical chunk sizes in bytes.

    Per the paper's example, ``4MB + 168KB`` becomes two 2MB chunks plus
    one 256KB chunk: full 2MB chunks are carved off first and the
    remainder is rounded up to the next power-of-two multiple of 64KB so
    that every chunk hosts a *full* binary tree.

    Returns a list of chunk byte sizes, each either ``CHUNK_SIZE`` or a
    smaller power-of-two multiple of ``BASIC_BLOCK_SIZE``.
    """
    if n_bytes <= 0:
        raise ValueError(f"allocation size must be positive, got {n_bytes}")
    chunks = [CHUNK_SIZE] * (n_bytes // CHUNK_SIZE)
    remainder = n_bytes % CHUNK_SIZE
    if remainder:
        chunks.append(round_up_pow2_blocks(remainder))
    return chunks
