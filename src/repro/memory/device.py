"""Device memory frame accounting.

Tracks how many 64KB basic blocks are resident in the device-local DRAM
and whether the device has crossed into oversubscription.  Residency of
*which* blocks is owned by :class:`repro.uvm.residency.ResidencyMap`; this
class only owns capacity arithmetic, mirroring the split between the
physical memory manager and the virtual/page-table layer in the real
driver.
"""

from __future__ import annotations

from . import layout


class DeviceMemory:
    """Capacity ledger for device-local memory at 64KB granularity."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < layout.CHUNK_SIZE:
            raise ValueError("device capacity below one 2MB chunk")
        self._capacity_blocks = capacity_bytes // layout.BASIC_BLOCK_SIZE
        self._used_blocks = 0
        #: Set permanently once the first migration could not be satisfied
        #: without evicting -- the paper's Equation 1 switches branches on
        #: this condition.
        self.oversubscribed = False
        #: High-water mark, for statistics.
        self.peak_used_blocks = 0

    @property
    def capacity_blocks(self) -> int:
        """Total 64KB frames in device memory."""
        return self._capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes."""
        return self._capacity_blocks * layout.BASIC_BLOCK_SIZE

    @property
    def used_blocks(self) -> int:
        """Currently resident 64KB frames."""
        return self._used_blocks

    @property
    def free_blocks(self) -> int:
        """Unoccupied 64KB frames."""
        return self._capacity_blocks - self._used_blocks

    @property
    def occupancy(self) -> float:
        """Fraction of device memory in use (Equation 1's allocated/total)."""
        return self._used_blocks / self._capacity_blocks

    def can_fit(self, n_blocks: int) -> bool:
        """Whether ``n_blocks`` frames can be allocated without eviction."""
        return self._used_blocks + n_blocks <= self._capacity_blocks

    def allocate(self, n_blocks: int) -> None:
        """Claim ``n_blocks`` frames.  Caller must have made room first."""
        if n_blocks < 0:
            raise ValueError("cannot allocate a negative number of blocks")
        if not self.can_fit(n_blocks):
            raise RuntimeError(
                f"device memory overflow: {self._used_blocks}+{n_blocks} "
                f"> {self._capacity_blocks} blocks"
            )
        self._used_blocks += n_blocks
        self.peak_used_blocks = max(self.peak_used_blocks, self._used_blocks)

    def release(self, n_blocks: int) -> None:
        """Return ``n_blocks`` frames to the free pool (eviction)."""
        if n_blocks < 0 or n_blocks > self._used_blocks:
            raise ValueError(
                f"cannot release {n_blocks} of {self._used_blocks} used blocks"
            )
        self._used_blocks -= n_blocks

    def note_pressure(self) -> None:
        """Record that a migration required eviction (enters oversubscription)."""
        self.oversubscribed = True
