"""Programmer memory-usage hints (Section III-C).

The paper motivates its programmer-agnostic runtime by contrast with
the hint APIs CUDA/OpenCL offer today, all of which require intrusive
profiling to use well.  This module models those hints so they can be
compared against the adaptive scheme:

* :attr:`Advice.NONE` -- default managed behaviour (fault-driven
  migration under whatever policy the driver runs).
* :attr:`Advice.PREFERRED_HOST` -- the
  ``cudaMemAdviseSetPreferredLocation(host)`` soft pin: first touch
  does not migrate; pages migrate only after the static access-counter
  threshold, exactly like the Volta delayed-migration path.
* :attr:`Advice.PINNED_HOST` -- the ``cudaHostRegister`` /
  ``CL_MEM_ALLOC_HOST_PTR`` hard pin: the allocation is permanently
  host-resident and every device access is a remote zero-copy
  transaction.

Read-mostly advice (``cudaMemAdviseSetReadMostly``) is carried by the
allocation's ``read_only`` flag, which the LFU replacement already
consults.
"""

from __future__ import annotations

import enum


class Advice(enum.Enum):
    """Placement advice attached to a managed allocation."""

    NONE = "none"
    PREFERRED_HOST = "preferred_host"
    PINNED_HOST = "pinned_host"

    @property
    def host_resident_bias(self) -> bool:
        """Whether the hint biases the data toward host memory."""
        return self is not Advice.NONE
