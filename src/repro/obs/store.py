"""Content-addressed run archive: ``.repro/runs/<run_id>/``.

A single run's observability artifacts (``--events``, ``--metrics``)
answer "what happened in *this* run"; the paper's claims are
comparative, so the archive makes runs durable and addressable:
``repro run --archive`` persists a manifest (config hash, git SHA,
seed, workload, oversubscription, host), the final
:class:`~repro.sim.results.RunResult`, a metrics snapshot, and a
gzip-compressed event log, all under a **content-addressed** run id --
the id is a hash of what the run *is* (workload, config, seed, commit),
so re-running the same experiment lands in the same slot instead of
accumulating duplicates, and two archived ids are comparable by
construction (``repro diff``).

Layout of one archived run::

    .repro/runs/<run_id>/
        manifest.json     # written last: presence marks a committed run
        result.json       # checkpoint-codec RunResult (bit-exact floats)
        metrics.json      # MetricsRegistry snapshot (optional)
        events.jsonl.gz   # structured event log (optional)

Grid sweeps archive each cell as a ``grid-cell`` run sharing a
``sweep_id`` (itself content-addressed from the cell set), so a whole
figure's grid is one queryable family.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import dataclass

from ..analysis.checkpoint import decode_result, encode_result
from ..sim.results import RunResult

#: Archive root when neither the CLI ``--runs`` flag nor the
#: ``REPRO_RUNS_DIR`` environment variable names one.
DEFAULT_ROOT = os.path.join(".repro", "runs")

#: Hex digits kept of the sha256 identity digest (48 bits: ample for
#: the thousands of runs a repository realistically archives).
_ID_LEN = 12


def _digest(payload) -> str:
    """Short hex digest of a canonical-JSON encoding of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:_ID_LEN]


def config_fingerprint(config: dict) -> str:
    """Content hash of a JSON-encoded simulation config (or cell spec)."""
    return _digest(config)


def git_info(cwd=None) -> dict | None:
    """``{"sha": ..., "dirty": ...}`` of the enclosing git checkout.

    Returns ``None`` when git is unavailable or ``cwd`` is not a
    repository -- archives stay usable from exported tarballs.
    """
    def _git(*argv):
        return subprocess.run(
            ("git",) + argv, cwd=cwd, capture_output=True, text=True,
            timeout=10, check=True).stdout.strip()

    try:
        sha = _git("rev-parse", "HEAD")
        dirty = bool(_git("status", "--porcelain"))
    except (OSError, subprocess.SubprocessError):
        return None
    return {"sha": sha, "dirty": dirty}


def host_info() -> dict:
    """The host fingerprint stored in manifests and bench history."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }


@dataclass(frozen=True)
class RunManifest:
    """What an archived run *is*: identity plus provenance.

    The identity fields (everything except ``created``, ``host`` and
    the git ``dirty`` flag) determine :attr:`run_id`; provenance fields
    record when/where without perturbing the address.
    """

    run_id: str
    #: ``"run"`` (a ``repro run``/``trace replay``) or ``"grid-cell"``
    #: (one cell of an archived figure/sweep grid).
    kind: str
    workload: str
    policy: str
    scale: str
    seed: int
    oversubscription: float | None
    #: Short hash of :attr:`config` (indexable without the full dict).
    config_hash: str
    #: Full JSON-encoded :class:`~repro.config.SimulationConfig` (for
    #: ``kind="run"``) or the grid-cell spec (for ``kind="grid-cell"``).
    config: dict
    git: dict | None
    host: dict
    #: Unix timestamp of archiving (provenance; not part of the id).
    created: float
    #: Shared id grouping the cells of one archived grid.
    sweep_id: str | None = None
    #: Name of the scenario config the run was compiled from
    #: (``repro run --config`` / ``repro sweep --config-dir``), or
    #: ``None`` for flag-driven runs.  Part of the identity when set,
    #: so the same cell archived via a scenario and via flags occupies
    #: distinct slots (their ``config`` payloads differ anyway: the
    #: scenario one embeds the resolved YAML).
    scenario: str | None = None

    @classmethod
    def create(cls, kind: str, workload: str, policy: str, scale: str,
               seed: int, oversubscription: float | None, config: dict,
               git: dict | None = None, host: dict | None = None,
               sweep_id: str | None = None,
               scenario: str | None = None) -> "RunManifest":
        """Build a manifest, deriving ``run_id`` from the content."""
        identity = {
            "kind": kind,
            "workload": workload,
            "policy": policy,
            "scale": scale,
            "seed": seed,
            "oversubscription": oversubscription,
            "config": config,
            "sweep_id": sweep_id,
            "git_sha": git["sha"] if git else None,
        }
        if scenario is not None:
            # Only when set, so pre-existing flag-driven archives keep
            # their content addresses.
            identity["scenario"] = scenario
        return cls(run_id=_digest(identity), kind=kind, workload=workload,
                   policy=policy, scale=scale, seed=seed,
                   oversubscription=oversubscription,
                   config_hash=config_fingerprint(config), config=config,
                   git=git, host=host if host is not None else host_info(),
                   created=time.time(), sweep_id=sweep_id,
                   scenario=scenario)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class ArchivedRun:
    """One loaded archive entry: manifest, result, optional artifacts."""

    manifest: RunManifest
    result: RunResult
    metrics: dict | None = None
    #: Path of the archived event log, or ``None`` if none was kept.
    events_path: str | None = None

    @property
    def run_id(self) -> str:
        return self.manifest.run_id


class RunWriter:
    """An open (uncommitted) archive slot for a run about to execute.

    Created *before* the simulation starts so the event log can stream
    straight into the archive directory (:attr:`events_path`); the
    manifest is written only by :meth:`commit`, so a crashed run leaves
    an uncommitted directory the store ignores and a re-run overwrites.
    """

    def __init__(self, store: "RunStore", manifest: RunManifest) -> None:
        self.store = store
        self.manifest = manifest
        self.dir = store.run_dir(manifest.run_id)
        os.makedirs(self.dir, exist_ok=True)
        # A re-archive of the same content-address must not inherit a
        # previous incarnation's artifacts.
        for name in ("manifest.json", "result.json", "metrics.json",
                     "events.jsonl.gz"):
            try:
                os.remove(os.path.join(self.dir, name))
            except FileNotFoundError:
                pass

    @property
    def events_path(self) -> str:
        """Where the run's event log belongs (gzip-compressed JSONL)."""
        return os.path.join(self.dir, "events.jsonl.gz")

    def commit(self, result: RunResult, metrics: dict | None = None) -> str:
        """Persist the finished run; returns its run id."""
        return self.commit_dict(encode_result(result), metrics=metrics)

    def commit_dict(self, result: dict, metrics: dict | None = None) -> str:
        """Persist a run whose result is already a JSON-safe dict.

        Serve runs (``kind="serve"``) archive their
        :class:`~repro.serve.session.ServeResult` this way; their
        ``result.json`` is not checkpoint-codec decodable, so ``repro
        diff`` does not apply to them (``repro runs`` lists them fine).
        """
        _write_json(os.path.join(self.dir, "result.json"), result)
        if metrics is not None:
            _write_json(os.path.join(self.dir, "metrics.json"), metrics)
        # Manifest last: its presence is the commit marker.
        _write_json(os.path.join(self.dir, "manifest.json"),
                    self.manifest.as_dict())
        return self.manifest.run_id


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


class RunStore:
    """The archive of runs under one root directory."""

    def __init__(self, root: str | os.PathLike | None = None) -> None:
        self.root = os.fspath(root or os.environ.get("REPRO_RUNS_DIR")
                              or DEFAULT_ROOT)

    def run_dir(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    # -- writing -----------------------------------------------------------

    def open_run(self, manifest: RunManifest) -> RunWriter:
        """Open an archive slot for a run that is about to execute."""
        return RunWriter(self, manifest)

    def archive(self, manifest: RunManifest, result: RunResult,
                metrics: dict | None = None) -> str:
        """One-shot archive of an already-finished run (grid cells)."""
        return self.open_run(manifest).commit(result, metrics=metrics)

    # -- reading -----------------------------------------------------------

    def list(self) -> list[RunManifest]:
        """Every committed manifest, oldest first."""
        manifests = []
        try:
            entries = sorted(os.listdir(self.root))
        except FileNotFoundError:
            return []
        for name in entries:
            path = os.path.join(self.root, name, "manifest.json")
            try:
                with open(path, encoding="utf-8") as fh:
                    manifests.append(RunManifest.from_dict(json.load(fh)))
            except (OSError, json.JSONDecodeError, TypeError):
                continue  # uncommitted or foreign directory
        manifests.sort(key=lambda m: (m.created, m.run_id))
        return manifests

    def resolve(self, run_id: str) -> str:
        """Expand a unique run-id prefix to the full id.

        Raises ``KeyError`` when the prefix matches no committed run or
        more than one.
        """
        exact = os.path.join(self.root, run_id, "manifest.json")
        if os.path.exists(exact):
            return run_id
        try:
            entries = sorted(os.listdir(self.root))
        except FileNotFoundError:
            entries = []
        hits = [name for name in entries
                if name.startswith(run_id)
                and os.path.exists(os.path.join(self.root, name,
                                                "manifest.json"))]
        if not hits:
            raise KeyError(f"no archived run matches {run_id!r} "
                           f"under {self.root}")
        if len(hits) > 1:
            raise KeyError(f"run id prefix {run_id!r} is ambiguous: "
                           f"{', '.join(hits)}")
        return hits[0]

    def load(self, run_id: str) -> ArchivedRun:
        """Load one archived run (``run_id`` may be a unique prefix)."""
        run_id = self.resolve(run_id)
        run = self.run_dir(run_id)
        with open(os.path.join(run, "manifest.json"),
                  encoding="utf-8") as fh:
            manifest = RunManifest.from_dict(json.load(fh))
        with open(os.path.join(run, "result.json"), encoding="utf-8") as fh:
            result = decode_result(json.load(fh))
        metrics = None
        metrics_path = os.path.join(run, "metrics.json")
        if os.path.exists(metrics_path):
            with open(metrics_path, encoding="utf-8") as fh:
                metrics = json.load(fh)
        events = os.path.join(run, "events.jsonl.gz")
        return ArchivedRun(manifest=manifest, result=result, metrics=metrics,
                           events_path=events if os.path.exists(events)
                           else None)

    def __contains__(self, run_id: str) -> bool:
        try:
            self.resolve(run_id)
        except KeyError:
            return False
        return True


def derive_sweep_id(cells) -> str:
    """Content-addressed id of a grid: a hash over its cell specs."""
    from ..analysis.checkpoint import cell_key
    return _digest(sorted(cell_key(c) for c in cells))
