"""Cross-run comparison: the ``repro diff`` engine.

Takes two :class:`~repro.obs.store.ArchivedRun` entries and reports
what actually changed between them, at three depths:

* **result metrics** -- kernel cycles, migrations, evictions, faults,
  remote accesses, thrashing -- as per-metric deltas with
  significance-aware formatting (changes below a noise tolerance are
  marked as such instead of shouting 0.02%);
* **configuration** -- the flattened set of config fields that differ,
  so a surprising metric delta is attributable at a glance;
* **event-level structure** (when both runs archived their event logs)
  -- round-trip histograms by quantile, the symmetric difference of
  the top-thrashing-block sets, and each allocation's ``t_d``
  trajectory endpoints (Equation 1's adaptive threshold over time).

``diff_runs`` builds a :class:`RunDiff`; ``render_diff`` formats it for
humans and :meth:`RunDiff.as_dict` backs ``repro diff --json``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .inspect import LogSummary, summarize
from .metrics import Histogram

#: Result-summary metrics compared by ``repro diff``:
#: name -> direction ("lower" / "higher" is better, None = neutral).
SUMMARY_METRICS: tuple[tuple[str, str | None], ...] = (
    ("cycles", "lower"),
    ("runtime_ms", "lower"),
    ("accesses", None),
    ("local", "higher"),
    ("remote", "lower"),
    ("faults", "lower"),
    ("migrated_blocks", None),
    ("prefetched_blocks", None),
    ("evicted_blocks", "lower"),
    ("writeback_blocks", "lower"),
    ("thrash_migrations", "lower"),
    ("retried_transfers", "lower"),
    ("degraded_accesses", "lower"),
)


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between run A and run B."""

    name: str
    a: float
    b: float
    #: Better-direction hint ("lower"/"higher"), None when neutral.
    direction: str | None
    #: Relative change (b - a) / a, or None when a == 0 and b != 0.
    pct: float | None
    #: False when the change is within the noise tolerance.
    significant: bool

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def verdict(self) -> str:
        """``same`` / ``changed`` / ``better`` / ``worse`` (A -> B)."""
        if not self.significant:
            return "same"
        if self.direction is None:
            return "changed"
        improved = (self.delta < 0) == (self.direction == "lower")
        return "better" if improved else "worse"

    def as_dict(self) -> dict:
        return {"name": self.name, "a": self.a, "b": self.b,
                "delta": self.delta, "pct": self.pct,
                "verdict": self.verdict}


def metric_delta(name: str, a: float, b: float,
                 direction: str | None = None,
                 tolerance: float = 0.01) -> MetricDelta:
    """Build one delta; ``tolerance`` is the relative noise floor."""
    if a == 0:
        pct = 0.0 if b == 0 else None
        significant = b != 0
    else:
        pct = (b - a) / a
        significant = abs(pct) >= tolerance
    return MetricDelta(name=name, a=a, b=b, direction=direction,
                       pct=pct, significant=significant)


def _quantile_row(hist: Histogram) -> dict:
    """Compact distribution sketch: count plus p50/p90/max."""
    return {
        "count": hist.count,
        "p50": hist.quantile(0.5),
        "p90": hist.quantile(0.9),
        "max": hist.max if hist.count else None,
    }


@dataclass(frozen=True)
class TrajectoryDelta:
    """One allocation's ``t_d`` trajectory in both runs."""

    allocation: str
    decisions_a: int
    decisions_b: int
    td_first_a: float | None
    td_last_a: float | None
    td_first_b: float | None
    td_last_b: float | None
    td_max_a: int
    td_max_b: int

    def as_dict(self) -> dict:
        return {
            "allocation": self.allocation,
            "a": {"decisions": self.decisions_a, "td_first": self.td_first_a,
                  "td_last": self.td_last_a, "td_max": self.td_max_a},
            "b": {"decisions": self.decisions_b, "td_first": self.td_first_b,
                  "td_last": self.td_last_b, "td_max": self.td_max_b},
        }


@dataclass(frozen=True)
class EventDiff:
    """Event-log-derived comparison (present when both logs archived)."""

    roundtrips_a: dict
    roundtrips_b: dict
    #: Top-thrashing block ids seen in exactly one of the runs.
    thrash_only_a: tuple[int, ...]
    thrash_only_b: tuple[int, ...]
    thrash_shared: int
    trajectories: tuple[TrajectoryDelta, ...]

    def as_dict(self) -> dict:
        return {
            "roundtrips": {"a": self.roundtrips_a, "b": self.roundtrips_b},
            "top_thrashing": {"only_a": list(self.thrash_only_a),
                              "only_b": list(self.thrash_only_b),
                              "shared": self.thrash_shared},
            "td_trajectories": [t.as_dict() for t in self.trajectories],
        }


@dataclass(frozen=True)
class RunDiff:
    """Everything ``repro diff`` knows about a pair of archived runs."""

    a: "object"  # RunManifest (kept untyped to avoid a store import cycle)
    b: "object"
    metrics: tuple[MetricDelta, ...]
    config_changes: dict = field(default_factory=dict)
    events: EventDiff | None = None

    def as_dict(self) -> dict:
        return {
            "run_a": self.a.as_dict(),
            "run_b": self.b.as_dict(),
            "metrics": [m.as_dict() for m in self.metrics],
            "config_changes": {k: {"a": va, "b": vb}
                               for k, (va, vb) in self.config_changes.items()},
            "events": self.events.as_dict() if self.events else None,
        }


def flatten_config(config: dict, prefix: str = "") -> dict:
    """Nested config dict -> ``{"gpu.clock_hz": ..., ...}``."""
    flat = {}
    for key, value in config.items():
        path = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            flat.update(flatten_config(value, path))
        else:
            flat[path] = value
    return flat


def _config_changes(a: dict, b: dict) -> dict:
    fa, fb = flatten_config(a), flatten_config(b)
    changes = {}
    for key in sorted(set(fa) | set(fb)):
        va, vb = fa.get(key), fb.get(key)
        if va != vb:
            changes[key] = (va, vb)
    return changes


def _trajectories(sa: LogSummary, sb: LogSummary) -> tuple:
    by_name_a = {t.name: t for t in sa.allocations}
    by_name_b = {t.name: t for t in sb.allocations}
    rows = []
    for name in sorted(set(by_name_a) | set(by_name_b)):
        ta, tb = by_name_a.get(name), by_name_b.get(name)
        if (ta is None or not ta.decisions) and (tb is None
                                                 or not tb.decisions):
            continue
        traj_a = ta.trajectory() if ta else []
        traj_b = tb.trajectory() if tb else []
        rows.append(TrajectoryDelta(
            allocation=name,
            decisions_a=ta.decisions if ta else 0,
            decisions_b=tb.decisions if tb else 0,
            td_first_a=traj_a[0] if traj_a else None,
            td_last_a=traj_a[-1] if traj_a else None,
            td_first_b=traj_b[0] if traj_b else None,
            td_last_b=traj_b[-1] if traj_b else None,
            td_max_a=ta.max_threshold if ta else 0,
            td_max_b=tb.max_threshold if tb else 0))
    return tuple(rows)


def diff_events(sa: LogSummary, sb: LogSummary, top: int = 10) -> EventDiff:
    """Compare two event-log summaries (see :func:`summarize`)."""
    set_a = {r["block"] for r in sa.top_thrashing_blocks(top)}
    set_b = {r["block"] for r in sb.top_thrashing_blocks(top)}
    return EventDiff(
        roundtrips_a=_quantile_row(sa.roundtrip_histogram()),
        roundtrips_b=_quantile_row(sb.roundtrip_histogram()),
        thrash_only_a=tuple(sorted(set_a - set_b)),
        thrash_only_b=tuple(sorted(set_b - set_a)),
        thrash_shared=len(set_a & set_b),
        trajectories=_trajectories(sa, sb))


def diff_runs(a, b, tolerance: float = 0.01, top: int = 10) -> RunDiff:
    """Diff two :class:`~repro.obs.store.ArchivedRun` entries.

    ``tolerance`` is the relative change below which a metric is
    reported as noise; ``top`` bounds the thrashing-block sets.
    """
    sum_a = a.result.summary()
    sum_b = b.result.summary()
    metrics = tuple(
        metric_delta(name, float(sum_a[name]), float(sum_b[name]),
                     direction=direction, tolerance=tolerance)
        for name, direction in SUMMARY_METRICS)
    events = None
    if a.events_path and b.events_path:
        events = diff_events(summarize(a.events_path),
                             summarize(b.events_path), top=top)
    return RunDiff(a=a.manifest, b=b.manifest, metrics=metrics,
                   config_changes=_config_changes(a.manifest.config,
                                                  b.manifest.config),
                   events=events)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:,.1f}" if abs(value) >= 10 else f"{value:.3g}"
    return f"{value:,}"


def _fmt_pct(delta: MetricDelta) -> str:
    if delta.pct is None:
        return "new"  # a == 0, b != 0: relative change undefined
    if not delta.significant:
        return "~0%"
    return f"{delta.pct:+.1%}"


def _table(headers, rows) -> str:
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]

    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()

    return "\n".join([fmt(headers), fmt(["-" * w for w in widths])]
                     + [fmt(r) for r in cells])


def _describe(manifest) -> str:
    git = manifest.git or {}
    sha = (git.get("sha") or "?")[:10]
    dirty = "+dirty" if git.get("dirty") else ""
    return (f"{manifest.run_id}  {manifest.workload}/{manifest.policy} "
            f"seed {manifest.seed} oversub {manifest.oversubscription} "
            f"@ {sha}{dirty}")


def render_diff(diff: RunDiff) -> str:
    """Human-readable report of a :func:`diff_runs` result."""
    lines = ["== run diff ==",
             f"A: {_describe(diff.a)}",
             f"B: {_describe(diff.b)}",
             ""]
    if diff.config_changes:
        lines.append("-- config changes (A -> B)")
        lines.append(_table(
            ["field", "a", "b"],
            [[k, _fmt(va), _fmt(vb)]
             for k, (va, vb) in diff.config_changes.items()]))
        lines.append("")

    lines.append("-- result metrics (changes under the noise tolerance "
                 "shown as ~0%)")
    lines.append(_table(
        ["metric", "a", "b", "delta", "change", "verdict"],
        [[m.name, _fmt(m.a), _fmt(m.b), _fmt(m.delta), _fmt_pct(m),
          m.verdict] for m in diff.metrics]))

    ev = diff.events
    if ev is not None:
        lines.append("")
        lines.append("-- round trips per thrashing block (from event logs)")
        lines.append(_table(
            ["run", "thrashing blocks", "p50", "p90", "max"],
            [["a", ev.roundtrips_a["count"], _fmt(ev.roundtrips_a["p50"]),
              _fmt(ev.roundtrips_a["p90"]), _fmt(ev.roundtrips_a["max"])],
             ["b", ev.roundtrips_b["count"], _fmt(ev.roundtrips_b["p50"]),
              _fmt(ev.roundtrips_b["p90"]), _fmt(ev.roundtrips_b["max"])]]))
        lines.append("")
        lines.append(f"-- top-thrashing blocks: {ev.thrash_shared} shared, "
                     f"{len(ev.thrash_only_a)} only in A, "
                     f"{len(ev.thrash_only_b)} only in B")
        if ev.thrash_only_a:
            lines.append("   only A: "
                         + ", ".join(map(str, ev.thrash_only_a)))
        if ev.thrash_only_b:
            lines.append("   only B: "
                         + ", ".join(map(str, ev.thrash_only_b)))
        if ev.trajectories:
            lines.append("")
            lines.append("-- td trajectory per allocation "
                         "(adaptive threshold, first -> last wave)")
            lines.append(_table(
                ["allocation", "decisions a/b", "td a", "td b",
                 "td max a/b"],
                [[t.allocation,
                  f"{t.decisions_a}/{t.decisions_b}",
                  f"{_fmt(t.td_first_a)} -> {_fmt(t.td_last_a)}",
                  f"{_fmt(t.td_first_b)} -> {_fmt(t.td_last_b)}",
                  f"{t.td_max_a}/{t.td_max_b}"]
                 for t in ev.trajectories]))
    else:
        lines.append("")
        lines.append("(no event logs archived for both runs; "
                     "td trajectories and thrash sets unavailable)")
    return "\n".join(lines)
