"""Rollup metrics: counters, gauges, histograms, and time series.

The registry is the aggregate view of a run: where the event bus keeps
the *sequence* of decisions, the registry keeps distributions and
totals cheap enough to stay attached on long sweeps (a histogram
observation is two array updates; nothing grows with run length except
the decimated time series).

All metric types serialize through ``as_dict()`` into plain JSON types,
and :meth:`MetricsRegistry.write_json` dumps the whole registry -- the
``--metrics out.json`` CLI artifact.

Names are dotted ``component.metric`` paths: ``engine.*`` (wave loop),
``pcie.*`` / ``device.*`` (interconnect and memory pressure series),
``grid.*`` (sweep orchestration), and ``driver.*`` for driver rollups
-- e.g. ``driver.fast_path_hit_rate``, the end-of-run gauge giving the
fraction of waves the resident fast path absorbed (see
``docs/observability.md``).
"""

from __future__ import annotations

import json
import math


class Counter:
    """Monotonically increasing integer total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only count up; use a Gauge")
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Power-of-two bucketed distribution of non-negative samples.

    Buckets are ``[0]``, ``[1]``, ``(1, 2]``, ``(2, 4]``, ... -- the
    exponential layout suits the quantities the simulator produces
    (thresholds, blocks per eviction, cycles per wave), whose
    interesting structure is the order of magnitude.  Tracks exact
    count/sum/min/max alongside, so means are exact even though the
    shape is bucketed.
    """

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        #: bucket index -> samples; index 0 is the value 0, index i >= 1
        #: covers (2**(i-2), 2**(i-1)] (so index 1 is exactly 1).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError("histogram samples must be non-negative")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        idx = 0 if value == 0 else 1 + max(0, math.ceil(math.log2(value)))
        self.buckets[idx] = self.buckets.get(idx, 0) + 1

    @property
    def mean(self) -> float:
        """Exact mean of all observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    @staticmethod
    def bucket_label(idx: int) -> str:
        """Human-readable range of bucket ``idx``."""
        if idx == 0:
            return "0"
        if idx == 1:
            return "1"
        return f"({2 ** (idx - 2):g}, {2 ** (idx - 1):g}]"

    @staticmethod
    def bucket_bounds(idx: int) -> tuple[float, float]:
        """``(lo, hi]`` value range of bucket ``idx`` (degenerate for 0/1)."""
        if idx == 0:
            return 0.0, 0.0
        if idx == 1:
            return 1.0, 1.0
        return float(2 ** (idx - 2)), float(2 ** (idx - 1))

    def quantile(self, q: float) -> float | None:
        """Estimated ``q``-quantile from the power-of-two buckets.

        Exact for the degenerate buckets (0 and 1); linearly
        interpolated within wider buckets and clamped to the exact
        observed ``[min, max]``, so tails never over-shoot.  Returns
        ``None`` when the histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        for idx in sorted(self.buckets):
            n = self.buckets[idx]
            cumulative += n
            if cumulative >= target:
                lo, hi = self.bucket_bounds(idx)
                frac = 1.0 - (cumulative - target) / n
                value = lo + frac * (hi - lo)
                return min(max(value, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "buckets": {self.bucket_label(i): n
                        for i, n in sorted(self.buckets.items())},
        }


class Series:
    """Bounded ``(x, y)`` time series with stride-doubling decimation.

    Appends are O(1); when the series exceeds ``capacity`` points it
    drops every second retained point and doubles the sampling stride,
    so arbitrarily long runs keep a uniformly-spaced sketch of at most
    ``capacity`` points (e.g. PCIe queue depth over the whole run).
    """

    __slots__ = ("capacity", "points", "_stride", "_skip")

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.capacity = capacity
        self.points: list[tuple[float, float]] = []
        self._stride = 1
        self._skip = 0

    def append(self, x: float, y: float) -> None:
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.points.append((x, y))
        if len(self.points) > self.capacity:
            self.points = self.points[::2]
            self._stride *= 2

    def as_dict(self) -> dict:
        return {
            "type": "series",
            "stride": self._stride,
            "points": [[x, y] for x, y in self.points],
        }


class MetricsRegistry:
    """Named metrics, get-or-create per type.

    Asking for an existing name with a different type raises, so two
    subsystems cannot silently alias one metric.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(*args)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def series(self, name: str, capacity: int = 2048) -> Series:
        return self._get(name, Series, capacity)

    def reset(self) -> None:
        """Drop every registered metric.

        Lets one registry be reused across back-to-back runs in a
        process without accumulating stale series.  Caution: objects
        handed out by the getters are *orphaned*, not zeroed -- a
        holder of a cached metric object (e.g. a
        :class:`~repro.obs.sinks.MetricsSink`, which caches its
        ``driver.*`` metrics at construction) keeps updating the
        orphan.  Prefer :meth:`reset_prefix` scoped to names nobody
        caches, or rebuild the sinks after a full reset.
        """
        self._metrics.clear()

    def reset_prefix(self, prefix: str) -> None:
        """Drop every metric whose name starts with ``prefix``.

        The serving layer calls ``reset_prefix("serve.")`` at the start
        of each session so repeated serves against one registry report
        per-run values instead of accumulating counters across runs.
        The same orphaning caveat as :meth:`reset` applies.
        """
        for name in [n for n in self._metrics if n.startswith(prefix)]:
            del self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def as_dict(self) -> dict:
        """JSON-serializable snapshot of every metric, name-sorted."""
        return {name: self._metrics[name].as_dict()
                for name in self.names()}

    def write_json(self, path) -> None:
        """Dump the registry snapshot to ``path`` (the ``--metrics`` file)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.as_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
