"""Timeline export: Chrome Trace Event Format for Perfetto.

``repro run --timeline out.trace.json`` exports the run's temporal
structure as a standard trace loadable in https://ui.perfetto.dev or
``chrome://tracing``:

* **phase spans** -- the :class:`~repro.obs.profiling.PhaseProfiler`
  span sites (wave loop, migrate drain, eviction, prefetch tree) as
  nested ``B``/``E`` duration events on one track;
* **driver events** -- migrations, evictions, fault retries, prefetch
  expansions, counter halvings as instant events on a second track;
* **wave boundaries** -- a process-scoped instant marker at the end of
  every wave, so Perfetto shows the run's wave cadence as frames.

Timestamps are host wall-clock microseconds relative to recorder
creation (``perf_counter``-based and clamped monotonic), because the
export answers "where does the *simulator* spend its time" -- simulated
GPU cycles stay in the timing model.  Recording is strictly read-only
over simulation state: the identity suite pins that a run with a
timeline attached is bit-identical to one without.

:func:`validate_trace` checks the structural contract (monotonic
timestamps, matched ``B``/``E`` nesting) and backs the property tests.
"""

from __future__ import annotations

import json
import time

from .events import (
    AlertFired,
    CounterHalving,
    Event,
    Eviction,
    FaultRetry,
    MigrationDecision,
    PrefetchExpand,
    RunMeta,
    SloViolation,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantShed,
    TenantThrottled,
)
from .profiling import PhaseProfiler

#: Track (thread) ids inside the single trace process.
TID_PHASES = 1
TID_DRIVER = 2
TID_WAVES = 3
TID_SERVE = 4

_TRACK_NAMES = {
    TID_PHASES: "phases (host wall clock)",
    TID_DRIVER: "driver events",
    TID_WAVES: "waves",
    TID_SERVE: "serve (tenants, SLOs, alerts)",
}


class TimelineRecorder:
    """Accumulates Chrome trace events; ``write()`` emits the JSON file.

    ``time_fn`` is injectable for tests; timestamps are clamped
    non-decreasing so a platform clock hiccup can never produce an
    unloadable trace.
    """

    def __init__(self, time_fn=time.perf_counter) -> None:
        self._time = time_fn
        self._t0 = time_fn()
        self._last_ts = 0.0
        self.events: list[dict] = []
        self.meta: dict = {}
        self._wave = 0
        for tid, name in _TRACK_NAMES.items():
            self.events.append({
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": name}})

    def _ts(self) -> float:
        """Microseconds since recorder creation, clamped monotonic."""
        ts = (self._time() - self._t0) * 1e6
        if ts < self._last_ts:
            ts = self._last_ts
        self._last_ts = ts
        return ts

    def set_run_meta(self, meta: dict) -> None:
        """Label the trace process with the run's identity."""
        self.meta = dict(meta)
        name = f"{meta.get('workload', '?')} / {meta.get('policy', '?')}"
        self.events.append({
            "ph": "M", "pid": 1, "tid": TID_PHASES, "name": "process_name",
            "args": {"name": f"repro {name}"}})

    def begin(self, name: str, tid: int = TID_PHASES,
              args: dict | None = None) -> None:
        ev = {"ph": "B", "pid": 1, "tid": tid,
              "cat": "phase", "name": name, "ts": self._ts()}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def end(self, name: str, tid: int = TID_PHASES) -> None:
        self.events.append({"ph": "E", "pid": 1, "tid": tid,
                            "cat": "phase", "name": name, "ts": self._ts()})

    def instant(self, name: str, args: dict | None = None,
                tid: int = TID_DRIVER, scope: str = "t") -> None:
        ev = {"ph": "i", "pid": 1, "tid": tid, "cat": "driver",
              "name": name, "ts": self._ts(), "s": scope}
        if args:
            ev["args"] = args
        self.events.append(ev)

    def frame(self) -> None:
        """Mark a wave boundary (process-scoped instant: a frame line)."""
        self._wave += 1
        self.instant(f"wave {self._wave}", tid=TID_WAVES, scope="p")

    @property
    def waves(self) -> int:
        """Wave boundaries marked so far."""
        return self._wave

    def trace(self) -> dict:
        """The complete trace object (Chrome Trace Event Format)."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": dict(self.meta),
        }

    def write(self, path) -> None:
        """Dump the trace to ``path`` (open it in Perfetto)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.trace(), fh, separators=(",", ":"))
            fh.write("\n")


class _TimelineSpan:
    """Span context manager: trace B/E pair plus profiler accounting."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "TimelineProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_TimelineSpan":
        self._profiler.recorder.begin(self._name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        prof = self._profiler
        prof.add(self._name, time.perf_counter() - self._t0)
        prof.recorder.end(self._name)
        if self._name == "wave":
            prof.recorder.frame()


class TimelineProfiler(PhaseProfiler):
    """A :class:`PhaseProfiler` that also records spans into a trace.

    Every ``span()``/``wrap()`` site keeps feeding the per-phase
    accumulators (so ``--profile`` output is unchanged) while emitting
    matched ``B``/``E`` events; the end of each ``"wave"`` span marks a
    wave boundary on the frame track.
    """

    def __init__(self, recorder: TimelineRecorder) -> None:
        super().__init__()
        self.recorder = recorder

    def span(self, name: str) -> _TimelineSpan:
        return _TimelineSpan(self, name)

    def wrap(self, name: str, fn):
        # Routed through span() so traced calls keep strict B/E nesting
        # (an X event stamped at call start would break the monotonic
        # append order the recorder guarantees).
        def timed(*args, **kwargs):
            with self.span(name):
                return fn(*args, **kwargs)

        return timed


class TimelineSink:
    """Event-bus sink mapping driver events onto the trace's tracks.

    Migration decisions are recorded only when they migrated (remote
    verdicts dominate event counts and carry no temporal structure);
    evictions, fault retries, prefetch expansions, and counter halvings
    are always recorded.
    """

    def __init__(self, recorder: TimelineRecorder) -> None:
        self.recorder = recorder

    def write(self, event: Event) -> None:
        rec = self.recorder
        t = type(event)
        if t is MigrationDecision:
            if event.migrated:
                rec.instant("migrate", {"block": event.block,
                                        "td": event.threshold,
                                        "wave": event.wave})
        elif t is Eviction:
            rec.instant("eviction", {"chunk": event.chunk,
                                     "blocks": event.blocks,
                                     "dirty": event.dirty_blocks,
                                     "wave": event.wave})
        elif t is FaultRetry:
            rec.instant("fault_retry", {"block": event.block,
                                        "failures": event.failures,
                                        "degraded": event.degraded,
                                        "wave": event.wave})
        elif t is PrefetchExpand:
            rec.instant("prefetch", {"chunk": event.chunk,
                                     "blocks": event.blocks,
                                     "wave": event.wave})
        elif t is CounterHalving:
            rec.instant("counter_halving", {"field": event.field,
                                            "halvings": event.halvings,
                                            "wave": event.wave})
        elif t is TenantArrival:
            rec.instant("arrival", {"span": f"t{event.tenant}",
                                    "tenant": event.tenant,
                                    "workload": event.workload},
                        tid=TID_SERVE)
        elif t is TenantAdmitted:
            rec.instant("admit", {"span": f"t{event.tenant}",
                                  "tenant": event.tenant,
                                  "queued_us": event.queued_us},
                        tid=TID_SERVE)
        elif t is TenantShed:
            rec.instant("shed", {"span": f"t{event.tenant}",
                                 "tenant": event.tenant,
                                 "reason": event.reason}, tid=TID_SERVE)
        elif t is TenantThrottled:
            rec.instant("throttle", {"span": f"t{event.tenant}",
                                     "tenant": event.tenant,
                                     "rounds": event.rounds},
                        tid=TID_SERVE)
        elif t is TenantComplete:
            rec.instant("complete", {"span": f"t{event.tenant}",
                                     "tenant": event.tenant,
                                     "waves": event.waves}, tid=TID_SERVE)
        elif t is SloViolation:
            rec.instant("slo_violation",
                        {"span": f"t{event.tenant}",
                         "tenant": event.tenant,
                         "objective": event.objective}, tid=TID_SERVE)
        elif t is AlertFired:
            rec.instant(f"alert:{event.name}",
                        {"span": f"t{event.tenant}",
                         "tenant": event.tenant,
                         "state": event.state}, tid=TID_SERVE)
        elif t is RunMeta:
            rec.set_run_meta(event.as_dict())

    def close(self) -> None:
        """Nothing to flush: the CLI writes the recorder explicitly."""


def validate_trace(trace) -> list[str]:
    """Structural problems of a trace object (empty list = valid).

    Checks the contract Perfetto/chrome://tracing rely on: the envelope
    shape, JSON-serializability, non-negative timestamps appended in
    non-decreasing order per track, and matched LIFO ``B``/``E`` pairs.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        return ["trace must be a dict with a 'traceEvents' list"]
    events = trace["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"trace is not JSON-serializable: {exc}")
    last_ts: dict[tuple, float] = {}
    stacks: dict[tuple, list[str]] = {}
    for n, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            problems.append(f"event {n}: not a dict with 'ph'")
            continue
        ph = ev["ph"]
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {n}: bad ts {ts!r}")
            continue
        if ts < last_ts.get(track, 0.0):
            problems.append(f"event {n}: ts {ts} decreases on "
                            f"track {track}")
        last_ts[track] = ts
        if ph == "B":
            stacks.setdefault(track, []).append(ev.get("name"))
        elif ph == "E":
            stack = stacks.setdefault(track, [])
            if not stack:
                problems.append(f"event {n}: E {ev.get('name')!r} "
                                f"without matching B")
            elif stack[-1] != ev.get("name"):
                problems.append(f"event {n}: E {ev.get('name')!r} "
                                f"closes B {stack[-1]!r}")
            else:
                stack.pop()
        elif ph not in ("i", "I", "X", "C"):
            problems.append(f"event {n}: unsupported phase {ph!r}")
    for track, stack in stacks.items():
        if stack:
            problems.append(f"track {track}: unclosed B events {stack}")
    return problems
