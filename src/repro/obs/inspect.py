"""Post-mortem analysis of a JSONL event log (``repro inspect``).

Reads a log written by :class:`~repro.obs.sinks.JsonlSink` and distills
the questions the paper's mechanism raises in practice:

* **Which blocks thrash?**  Blocks re-migrated after eviction are the
  pathology the adaptive threshold exists to stop; the summary ranks
  them and attributes each to its managed allocation.
* **How did the threshold move?**  Per allocation, the trajectory of
  the mean ``td`` far accesses were judged against -- flat 1 means
  first-touch behaviour, a rising curve shows Equation 1 progressively
  pinning an allocation to host memory.
* **What did eviction and fault handling cost?**  Totals per event
  kind, eviction write-back volume, injected-fault retry outcomes.

Everything works from the log alone (the :class:`~repro.obs.events.RunMeta`
header makes logs self-describing); no simulator state is needed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .events import (
    AlertFired,
    CounterHalving,
    Event,
    Eviction,
    FaultRetry,
    MigrationDecision,
    PrefetchExpand,
    RunMeta,
    SloAttainment,
    SloViolation,
    TelemetryWindow,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantSched,
    TenantShed,
    TenantThrottled,
    from_dict,
)
from .metrics import Histogram
from .sinks import open_text

#: Sparkline glyphs, lowest to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def iter_events(path):
    """Yield events from a JSONL log, skipping blank and torn lines.

    ``*.jsonl.gz`` logs are read through gzip transparently.  A log cut
    short by a killed run may end mid-line; such torn tails are
    ignored, matching the checkpoint journal's reader semantics.
    """
    with open_text(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue
            yield from_dict(row)


@dataclass
class AllocationTrend:
    """Per-allocation migrate-vs-remote and threshold statistics."""

    name: str
    first_block: int
    last_block: int
    decisions: int = 0
    migrated: int = 0
    max_threshold: int = 0
    #: wave -> [threshold sum, decision count]
    _by_wave: dict = field(default_factory=dict, repr=False)

    def observe(self, ev: MigrationDecision) -> None:
        self.decisions += 1
        if ev.migrated:
            self.migrated += 1
        if ev.threshold > self.max_threshold:
            self.max_threshold = ev.threshold
        entry = self._by_wave.get(ev.wave)
        if entry is None:
            self._by_wave[ev.wave] = [ev.threshold, 1]
        else:
            entry[0] += ev.threshold
            entry[1] += 1

    def trajectory(self, buckets: int = 32) -> list[float]:
        """Mean threshold over time, compressed to <= ``buckets`` points."""
        if not self._by_wave:
            return []
        waves = sorted(self._by_wave)
        lo, hi = waves[0], waves[-1]
        span = max(hi - lo + 1, 1)
        sums = [0.0] * min(buckets, span)
        counts = [0] * len(sums)
        for w in waves:
            i = min((w - lo) * len(sums) // span, len(sums) - 1)
            s, n = self._by_wave[w]
            sums[i] += s
            counts[i] += n
        return [s / n for s, n in zip(sums, counts) if n]

    def sparkline(self, buckets: int = 32) -> str:
        """ASCII sketch of the threshold trajectory."""
        traj = self.trajectory(buckets)
        if not traj:
            return ""
        lo, hi = min(traj), max(traj)
        if hi - lo < 1e-12:
            return _SPARK[0] * len(traj)
        return "".join(
            _SPARK[int((v - lo) / (hi - lo) * (len(_SPARK) - 1))]
            for v in traj)


@dataclass
class TenantSummary:
    """Lifecycle of one tenant in a ``repro serve`` event log."""

    tenant: int
    workload: str = "?"
    arrived_us: float = 0.0
    admits: int = 0
    queued_us: float = 0.0
    sheds: int = 0
    shed_reason: str = ""
    throttles: int = 0
    throttle_rounds: int = 0
    waves: int = 0
    p99_wave_latency_us: float = 0.0
    thrash_migrations: int = 0
    cross_evictions: int = 0
    completed: bool = False
    #: Closed telemetry windows seen for this tenant (live logs only).
    windows: int = 0
    #: Latest streaming estimates from the last TelemetryWindow.
    ewma_latency_us: float = 0.0
    thrash_rate: float = 0.0
    #: SLO bookkeeping: violation transitions, worst final attainment
    #: across objectives (None until an SloAttainment arrives), and
    #: whether every objective's verdict was met.
    slo_violations: int = 0
    slo_attainment: float | None = None
    slo_met: bool | None = None
    #: Alert ``firing`` transitions scoped to this tenant.
    alerts: int = 0
    #: Fair-scheduler accounting from TenantSched (non-default
    #: schedulers / wave batching only; ``sched_seen`` gates display).
    sched_seen: bool = False
    weight: float = 1.0
    deficit: float = 0.0
    batched_waves: int = 0

    @property
    def state(self) -> str:
        if self.completed:
            return "complete"
        if self.sheds:
            return f"shed:{self.shed_reason}"
        if self.admits:
            return "admitted"
        return "arrived"

    @property
    def interference(self) -> int:
        """Cross-tenant pressure felt and caused: evictions suffered
        from other tenants plus thrash charged to this tenant's data."""
        return self.cross_evictions + self.thrash_migrations


@dataclass
class LogSummary:
    """Aggregated view of one event log."""

    meta: RunMeta | None = None
    #: event kind -> count
    event_counts: dict = field(default_factory=dict)
    #: block -> number of migrations (MigrationDecision.migrated)
    migrations_per_block: dict = field(default_factory=dict)
    #: block -> last threshold it was judged against
    last_threshold: dict = field(default_factory=dict)
    allocations: list[AllocationTrend] = field(default_factory=list)
    evicted_blocks: int = 0
    writeback_blocks: int = 0
    prefetched_blocks: int = 0
    fault_retries: int = 0
    degraded_migrations: int = 0
    halvings: dict = field(default_factory=dict)
    last_wave: int = 0
    #: tenant id -> TenantSummary (serve logs only; empty otherwise)
    tenants: dict = field(default_factory=dict)
    #: alert rule name -> ``firing`` transition count (live logs only).
    alert_counts: dict = field(default_factory=dict)
    #: Service-level (tenant -1) SLO violation transitions.
    service_slo_violations: int = 0
    #: objective -> (attainment, met) for service-level objectives.
    service_attainment: dict = field(default_factory=dict)

    def tenant(self, tid: int) -> TenantSummary:
        """The (auto-created) summary row for tenant ``tid``."""
        row = self.tenants.get(tid)
        if row is None:
            row = self.tenants[tid] = TenantSummary(tenant=tid)
        return row

    def allocation_of(self, block: int) -> str:
        """Allocation name owning ``block`` (from the RunMeta header)."""
        for a in self.allocations:
            if a.first_block <= block < a.last_block:
                return a.name
        return "?"

    def top_thrashing_blocks(self, n: int = 10) -> list[dict]:
        """Blocks migrated more than once, worst first.

        A block that migrated k times was evicted and pulled back
        k - 1 times -- the round trips Figure 7 counts.
        """
        rows = [
            {"block": b, "allocation": self.allocation_of(b),
             "migrations": m, "round_trips": m - 1,
             "last_threshold": self.last_threshold.get(b, 0)}
            for b, m in self.migrations_per_block.items() if m > 1
        ]
        rows.sort(key=lambda r: (-r["migrations"], r["block"]))
        return rows[:n]

    def roundtrip_histogram(self) -> Histogram:
        """Round trips per thrashing block as a quantile-able histogram.

        One sample per block that migrated more than once, valued at
        its eviction->re-migration round trips (migrations - 1) -- the
        distribution behind Figure 7, summarized by
        :meth:`~repro.obs.metrics.Histogram.quantile` instead of raw
        bucket dumps.
        """
        hist = Histogram()
        for migrations in self.migrations_per_block.values():
            if migrations > 1:
                hist.observe(migrations - 1)
        return hist


def summarize(path_or_events) -> LogSummary:
    """Build a :class:`LogSummary` from a JSONL path or event iterable."""
    events = (iter_events(path_or_events)
              if isinstance(path_or_events, (str, bytes)) or hasattr(
                  path_or_events, "__fspath__")
              else path_or_events)
    s = LogSummary()
    for ev in events:
        s.event_counts[ev.kind] = s.event_counts.get(ev.kind, 0) + 1
        if type(ev) is MigrationDecision:
            s.last_wave = max(s.last_wave, ev.wave)
            s.last_threshold[ev.block] = ev.threshold
            if ev.migrated:
                s.migrations_per_block[ev.block] = (
                    s.migrations_per_block.get(ev.block, 0) + 1)
            for trend in s.allocations:
                if trend.first_block <= ev.block < trend.last_block:
                    trend.observe(ev)
                    break
        elif type(ev) is Eviction:
            s.last_wave = max(s.last_wave, ev.wave)
            s.evicted_blocks += ev.blocks
            s.writeback_blocks += ev.dirty_blocks
        elif type(ev) is PrefetchExpand:
            s.prefetched_blocks += ev.blocks
        elif type(ev) is FaultRetry:
            s.fault_retries += ev.failures
            if ev.degraded:
                s.degraded_migrations += 1
        elif type(ev) is CounterHalving:
            s.halvings[ev.field] = max(
                s.halvings.get(ev.field, 0), ev.halvings)
        elif type(ev) is RunMeta:
            s.meta = ev
            s.allocations = [
                AllocationTrend(name, first, last)
                for name, first, last in ev.allocations]
        elif type(ev) is TenantArrival:
            row = s.tenant(ev.tenant)
            row.workload = ev.workload
            row.arrived_us = ev.at_us
        elif type(ev) is TenantAdmitted:
            row = s.tenant(ev.tenant)
            row.admits += 1
            row.queued_us = ev.queued_us
        elif type(ev) is TenantShed:
            row = s.tenant(ev.tenant)
            row.sheds += 1
            row.shed_reason = ev.reason
        elif type(ev) is TenantThrottled:
            row = s.tenant(ev.tenant)
            row.throttles += 1
            row.throttle_rounds += ev.rounds
        elif type(ev) is TenantComplete:
            row = s.tenant(ev.tenant)
            row.completed = True
            row.waves = ev.waves
            row.p99_wave_latency_us = ev.p99_wave_latency_us
            row.thrash_migrations = ev.thrash_migrations
            row.cross_evictions = ev.cross_evictions
        elif type(ev) is TenantSched:
            row = s.tenant(ev.tenant)
            row.sched_seen = True
            row.weight = ev.weight
            row.deficit = ev.deficit
            row.batched_waves = ev.batched_waves
        elif type(ev) is TelemetryWindow:
            row = s.tenant(ev.tenant)
            row.windows += 1
            row.ewma_latency_us = ev.ewma_latency_us
            row.thrash_rate = ev.thrash_rate
        elif type(ev) is SloViolation:
            if ev.tenant < 0:
                s.service_slo_violations += 1
            else:
                s.tenant(ev.tenant).slo_violations += 1
        elif type(ev) is SloAttainment:
            if ev.tenant < 0:
                s.service_attainment[ev.objective] = (ev.attainment,
                                                      ev.met)
            else:
                row = s.tenant(ev.tenant)
                if (row.slo_attainment is None
                        or ev.attainment < row.slo_attainment):
                    row.slo_attainment = ev.attainment
                row.slo_met = ev.met if row.slo_met is None \
                    else (row.slo_met and ev.met)
        elif type(ev) is AlertFired:
            if ev.state == "firing":
                s.alert_counts[ev.name] = (
                    s.alert_counts.get(ev.name, 0) + 1)
                if ev.tenant >= 0:
                    s.tenant(ev.tenant).alerts += 1
    return s


def _table(headers: list[str], rows: list[list]) -> str:
    """Minimal aligned table (kept local to avoid importing analysis)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    def fmt(row):
        return "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in cells]
    return "\n".join(lines)


def render_summary(summary: LogSummary, top: int = 10) -> str:
    """Human-readable report of a :func:`summarize` result."""
    lines: list[str] = []
    meta = summary.meta
    if meta is not None:
        sharded = f", {meta.shards} shards" if meta.shards > 1 else ""
        lines.append(
            f"== event log: {meta.workload} / {meta.policy} "
            f"(seed {meta.seed}, {meta.total_blocks} blocks, "
            f"capacity {meta.capacity_blocks} blocks, "
            f"backend {meta.backend}{sharded}) ==")
    else:
        lines.append("== event log (no run_meta header) ==")
    lines.append("")
    lines.append(_table(
        ["event", "count"],
        [[k, n] for k, n in sorted(summary.event_counts.items())]))

    lines.append("")
    lines.append(f"evicted blocks:      {summary.evicted_blocks}")
    lines.append(f"write-back blocks:   {summary.writeback_blocks}")
    lines.append(f"prefetched blocks:   {summary.prefetched_blocks}")
    if summary.fault_retries or summary.degraded_migrations:
        lines.append(f"fault retries:       {summary.fault_retries}")
        lines.append(f"degraded migrations: {summary.degraded_migrations}")
    for fname, n in sorted(summary.halvings.items()):
        lines.append(f"counter halvings ({fname}): {n}")

    thrash = summary.top_thrashing_blocks(top)
    lines.append("")
    if thrash:
        rt = summary.roundtrip_histogram()
        lines.append(f"round trips per thrashing block: "
                     f"p50 {rt.quantile(0.5):g}  p90 {rt.quantile(0.9):g}  "
                     f"max {rt.max:g}  ({rt.count} blocks)")
        lines.append("")
        lines.append(f"-- top thrashing blocks (of "
                     f"{sum(1 for m in summary.migrations_per_block.values() if m > 1)} "
                     f"with round trips)")
        lines.append(_table(
            ["block", "allocation", "migrations", "round trips", "last td"],
            [[r["block"], r["allocation"], r["migrations"],
              r["round_trips"], r["last_threshold"]] for r in thrash]))
    else:
        lines.append("-- no thrashing blocks (no block migrated twice)")

    if summary.tenants:
        lines.append("")
        lines.append("-- tenants (serve log): lifecycle, latency, "
                     "interference, SLOs")
        rows = []
        for tid in sorted(summary.tenants):
            t = summary.tenants[tid]
            if t.slo_attainment is None:
                slo_cell = "-"
            else:
                verdict = "" if t.slo_met is None \
                    else (" ok" if t.slo_met else " MISS")
                slo_cell = f"{t.slo_attainment:.3f}{verdict}"
            rows.append([
                t.tenant, t.workload, t.state, t.admits, t.sheds,
                f"{t.queued_us / 1e3:.2f}", t.throttles, t.waves,
                f"{t.p99_wave_latency_us:.1f}" if t.completed else "-",
                t.interference, slo_cell, t.alerts])
        lines.append(_table(
            ["tenant", "workload", "state", "admits", "sheds",
             "queued ms", "throttles", "waves", "p99 us", "interference",
             "slo att", "alerts"],
            rows))
        sched = [summary.tenants[tid] for tid in sorted(summary.tenants)
                 if summary.tenants[tid].sched_seen]
        if sched:
            lines.append("")
            lines.append("-- fair scheduler: weights, carried deficit, "
                         "fused-batch share")
            lines.append(_table(
                ["tenant", "weight", "deficit", "waves", "batched",
                 "batched %"],
                [[t.tenant, f"{t.weight:g}", f"{t.deficit:.3f}", t.waves,
                  t.batched_waves,
                  f"{t.batched_waves / t.waves:.0%}" if t.waves else "-"]
                 for t in sched]))
        if summary.alert_counts or summary.service_attainment \
                or summary.service_slo_violations:
            lines.append("")
            lines.append("-- live telemetry: alerts and service SLOs")
            if summary.alert_counts:
                fired = "  ".join(
                    f"{name}x{n}" for name, n
                    in sorted(summary.alert_counts.items()))
                lines.append(f"alerts fired:        {fired}")
            for objective, (attainment, met) in sorted(
                    summary.service_attainment.items()):
                lines.append(
                    f"service {objective}: attainment "
                    f"{attainment:.3f} ({'met' if met else 'MISSED'})")
            if summary.service_slo_violations:
                lines.append(f"service SLO violations: "
                             f"{summary.service_slo_violations}")

    trends = [t for t in summary.allocations if t.decisions]
    if trends:
        lines.append("")
        lines.append("-- threshold trajectory per allocation "
                     "(mean td over time, first -> last wave)")
        rows = []
        for t in trends:
            traj = t.trajectory()
            rows.append([
                t.name, t.decisions,
                f"{100 * t.migrated / t.decisions:.0f}%",
                f"{traj[0]:.1f}" if traj else "-",
                f"{traj[-1]:.1f}" if traj else "-",
                t.max_threshold, t.sparkline()])
        lines.append(_table(
            ["allocation", "decisions", "migrated", "td first", "td last",
             "td max", "trajectory"], rows))
    return "\n".join(lines)
