"""Lightweight phase profiling: wall-clock span timers.

``PhaseProfiler`` accumulates ``perf_counter`` time per named phase.
It measures *host* wall time of the Python simulator (where does a slow
sweep actually spend its seconds: migrate-drain? eviction? prefetch
trees?), not simulated GPU cycles -- the timing model owns those.

Spans never touch simulation state, so profiling cannot perturb
results; the only cost is the clock reads, which is why the driver
guards every span site on ``profiler is not None`` and the default run
carries no profiler at all.
"""

from __future__ import annotations

import time


class _Span:
    """Context manager timing one phase entry (re-entrant safe)."""

    __slots__ = ("_profiler", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._profiler.add(self._name, time.perf_counter() - self._t0)


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase name."""

    def __init__(self) -> None:
        #: phase name -> [seconds, calls]
        self.phases: dict[str, list] = {}

    def span(self, name: str) -> _Span:
        """Context manager charging its elapsed wall time to ``name``."""
        return _Span(self, name)

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Charge ``seconds`` (and ``calls`` entries) to phase ``name``."""
        entry = self.phases.get(name)
        if entry is None:
            self.phases[name] = [seconds, calls]
        else:
            entry[0] += seconds
            entry[1] += calls

    def wrap(self, name: str, fn):
        """Return ``fn`` wrapped so every call is charged to ``name``.

        Used on hot callables (the per-fault prefetch-tree update) so
        the un-profiled path keeps calling the bare function.
        """
        perf = time.perf_counter
        add = self.add

        def timed(*args, **kwargs):
            t0 = perf()
            try:
                return fn(*args, **kwargs)
            finally:
                add(name, perf() - t0)

        return timed

    def report(self) -> list[dict]:
        """Per-phase totals, heaviest first."""
        rows = [{"phase": name, "seconds": sec, "calls": calls,
                 "mean_us": (sec / calls) * 1e6 if calls else 0.0}
                for name, (sec, calls) in self.phases.items()]
        rows.sort(key=lambda r: r["seconds"], reverse=True)
        return rows

    def render(self) -> str:
        """ASCII per-phase breakdown (the ``--profile`` output)."""
        rows = self.report()
        if not rows:
            return "(no profiled phases)"
        # Phases nest (waves contain drains contain evictions), so
        # normalize against the heaviest phase, not the sum.
        top = rows[0]["seconds"] or 1.0
        lines = ["-- profile: wall-clock time per phase (phases nest; "
                 "percentages are of the heaviest phase)",
                 f"{'phase':<20} {'seconds':>10} {'calls':>10} "
                 f"{'mean us':>10} {'share':>7}"]
        for r in rows:
            lines.append(
                f"{r['phase']:<20} {r['seconds']:>10.4f} {r['calls']:>10} "
                f"{r['mean_us']:>10.1f} {100 * r['seconds'] / top:>6.1f}%")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-serializable phase totals."""
        return {name: {"seconds": sec, "calls": calls}
                for name, (sec, calls) in sorted(self.phases.items())}
