"""Observability: structured events, rollup metrics, phase profiling.

The package is the simulator's measurement plane.  One
:class:`Observability` handle bundles the three independent facilities
and is threaded through :class:`~repro.sim.simulator.Simulator` into
the driver and engine:

* an :class:`~repro.obs.bus.EventBus` of typed per-decision events
  (:mod:`repro.obs.events`) fanned out to pluggable sinks
  (:mod:`repro.obs.sinks`);
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges,
  histograms and time series;
* a :class:`~repro.obs.profiling.PhaseProfiler` of wall-clock span
  timers around the driver's hot phases.

Everything is off by default: a run constructed without a handle pays
nothing (instrumented sites guard on a single attribute check), and a
run with only a :class:`~repro.obs.sinks.NullSink` attached is
bit-identical to an uninstrumented one.  See ``docs/observability.md``
for the schema and CLI workflow (``--events``, ``--metrics``,
``--profile``, ``repro inspect``).

>>> from repro.obs import Observability, RingBufferSink
>>> obs = Observability()
>>> ring = RingBufferSink(capacity=64)
>>> obs.bus.attach(ring)
>>> obs.enabled
True
"""

from __future__ import annotations

from .bus import EventBus
from .events import (
    EVENT_TYPES,
    AlertFired,
    CounterHalving,
    Event,
    Eviction,
    FaultRetry,
    MigrationDecision,
    PrefetchExpand,
    RunMeta,
    SloAttainment,
    SloViolation,
    TelemetryWindow,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantSched,
    TenantShed,
    TenantThrottled,
    from_dict,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .profiling import PhaseProfiler
from .sinks import (
    JsonlSink,
    MetricsSink,
    NullSink,
    RingBufferSink,
    Sink,
    open_text,
)
from .timeline import (
    TimelineProfiler,
    TimelineRecorder,
    TimelineSink,
    validate_trace,
)


class Observability:
    """Bundle of the event bus, metrics registry, and profiler.

    All three parts are optional-by-construction: the bus always
    exists (attach sinks to activate it); ``metrics`` and ``profiler``
    are created on demand by the factory arguments or assigned
    directly.  Pass a handle to ``Simulator.run(..., obs=...)``.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 profiler: PhaseProfiler | None = None) -> None:
        self.bus = EventBus()
        self.metrics = metrics
        self.profiler = profiler
        #: Optional :class:`~repro.obs.timeline.TimelineRecorder` (the
        #: ``--timeline`` Chrome-trace export); assigned by ``create``.
        self.timeline = None

    @property
    def enabled(self) -> bool:
        """True when any facility would actually record something."""
        return (self.bus.enabled or self.metrics is not None
                or self.profiler is not None)

    @classmethod
    def create(cls, events_path=None, metrics: bool = False,
               profile: bool = False,
               ring_capacity: int | None = None,
               timeline: bool = False,
               events_flush: int | None = None) -> "Observability":
        """Assemble a handle from the CLI-style knobs.

        ``events_path`` attaches a :class:`JsonlSink`; ``metrics``
        creates a registry and routes events into it through a
        :class:`MetricsSink`; ``profile`` attaches a profiler;
        ``ring_capacity`` attaches an in-memory ring buffer;
        ``timeline`` attaches a :class:`TimelineRecorder` (Chrome-trace
        export) fed by both the profiler's spans and a bus sink, and
        implies a profiler (a :class:`TimelineProfiler`);
        ``events_flush`` makes the event log tailable by flushing it
        every N events (``--flush-events``; rejected for ``.gz`` logs).
        """
        obs = cls()
        if metrics:
            obs.metrics = MetricsRegistry()
            obs.bus.attach(MetricsSink(obs.metrics))
        if events_path is not None:
            obs.bus.attach(JsonlSink(events_path,
                                     flush_every=events_flush))
        if ring_capacity is not None:
            obs.bus.attach(RingBufferSink(ring_capacity))
        if timeline:
            obs.timeline = TimelineRecorder()
            obs.profiler = TimelineProfiler(obs.timeline)
            obs.bus.attach(TimelineSink(obs.timeline))
        elif profile:
            obs.profiler = PhaseProfiler()
        return obs

    def close(self) -> None:
        """Flush and close every sink (safe to call more than once)."""
        self.bus.close()


__all__ = [
    "AlertFired",
    "Counter",
    "CounterHalving",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "Eviction",
    "FaultRetry",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSink",
    "MigrationDecision",
    "NullSink",
    "Observability",
    "PhaseProfiler",
    "PrefetchExpand",
    "RingBufferSink",
    "RunMeta",
    "Series",
    "Sink",
    "SloAttainment",
    "SloViolation",
    "TelemetryWindow",
    "TenantAdmitted",
    "TenantArrival",
    "TenantComplete",
    "TenantSched",
    "TenantShed",
    "TenantThrottled",
    "TimelineProfiler",
    "TimelineRecorder",
    "TimelineSink",
    "from_dict",
    "open_text",
    "validate_trace",
]
