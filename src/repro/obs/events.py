"""Typed structured events emitted by the instrumented simulator.

Every event is a small frozen dataclass with a class-level ``kind`` tag
and flat, JSON-serializable fields.  The driver constructs events only
when at least one sink is attached to the :class:`~repro.obs.bus.EventBus`
(the default run has none), so the schema can afford to be explicit:
each event captures one *decision* the paper's mechanism made, not one
array mutation.

Schema stability contract: fields are only ever added, never renamed or
re-typed, so archived JSONL logs keep replaying through
:mod:`repro.obs.inspect`.  The serialized form is
``{"event": <kind>, **fields}`` (see :meth:`Event.as_dict`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: a tagged, flatly-serializable simulator event."""

    #: Event-type tag used in serialized form; overridden per subclass.
    kind = "event"

    def as_dict(self) -> dict:
        """Flat dict form, ``{"event": kind, **fields}`` (JSONL row)."""
        d = {"event": self.kind}
        for f in dataclasses.fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(frozen=True, slots=True)
class RunMeta(Event):
    """Run header: emitted once so logs are self-describing.

    ``allocations`` maps the block address space back to the workload's
    managed allocations as ``(name, first_block, last_block)`` tuples
    (half-open range), which lets :mod:`repro.obs.inspect` attribute
    per-block events to allocations.
    """

    kind = "run_meta"

    workload: str
    policy: str
    seed: int
    total_blocks: int
    capacity_blocks: int
    allocations: tuple[tuple[str, int, int], ...]
    #: Active hot-loop kernel backend (``repro.accel``); defaulted so
    #: logs archived before the field existed keep replaying.
    backend: str = "python"
    #: Address-space shard count the decision phase ran over.
    shards: int = 1


@dataclass(frozen=True, slots=True)
class MigrationDecision(Event):
    """One far-accessed block's migrate-vs-remote verdict (per wave).

    ``counter`` is the pre-wave counter baseline the policy judged
    against and ``threshold`` the ``td`` it had to reach; ``accesses``
    is the wave's coalesced access count for the block.  ``migrated``
    is the final verdict *after* programmer hints and injected-fault
    degradation.
    """

    kind = "migration_decision"

    wave: int
    block: int
    threshold: int
    counter: int
    accesses: int
    migrated: bool


@dataclass(frozen=True, slots=True)
class Eviction(Event):
    """One eviction of ``blocks`` 64KB blocks from chunk ``chunk``.

    ``whole_chunk`` distinguishes 2MB chunk-granular eviction from the
    64KB block-granular mode; ``dirty_blocks`` counts device->host
    write-backs the eviction forced.
    """

    kind = "eviction"

    wave: int
    chunk: int
    blocks: int
    dirty_blocks: int
    whole_chunk: bool


@dataclass(frozen=True, slots=True)
class CounterHalving(Event):
    """A global halving of one access-counter field on saturation.

    ``field`` is ``"counts"`` (27-bit access field) or ``"roundtrips"``
    (5-bit round-trip field); ``halvings`` is the cumulative halving
    count for that field after this event.
    """

    kind = "counter_halving"

    wave: int
    field: str
    halvings: int


@dataclass(frozen=True, slots=True)
class FaultRetry(Event):
    """Injected transient-fault handling on one block's migration.

    ``failures`` failed attempts were re-tried (each charged a backoff
    wait); ``degraded`` is True when the retry budget ran out and the
    access fell back to the remote zero-copy path.
    """

    kind = "fault_retry"

    wave: int
    block: int
    failures: int
    degraded: bool


@dataclass(frozen=True, slots=True)
class PrefetchExpand(Event):
    """A fault's tree-prefetch expansion that actually installed blocks.

    ``fault_block`` is the faulting block that triggered the prefetcher
    and ``blocks`` the number of extra 64KB blocks pulled in alongside
    it (the fault block itself is not counted).
    """

    kind = "prefetch_expand"

    wave: int
    chunk: int
    fault_block: int
    blocks: int


#: kind tag -> event class, for deserializing JSONL logs.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (RunMeta, MigrationDecision, Eviction, CounterHalving,
                FaultRetry, PrefetchExpand)
}


def from_dict(row: dict) -> Event:
    """Rebuild an event from its :meth:`Event.as_dict` form.

    Unknown keys are ignored (forward compatibility: newer writers may
    add fields), unknown kinds raise ``ValueError``.
    """
    kind = row["event"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}; "
                         f"known: {', '.join(sorted(EVENT_TYPES))}")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in row.items() if k in names}
    if cls is RunMeta and "allocations" in kwargs:
        kwargs["allocations"] = tuple(
            tuple(a) for a in kwargs["allocations"])
    return cls(**kwargs)
