"""Typed structured events emitted by the instrumented simulator.

Every event is a small frozen dataclass with a class-level ``kind`` tag
and flat, JSON-serializable fields.  The driver constructs events only
when at least one sink is attached to the :class:`~repro.obs.bus.EventBus`
(the default run has none), so the schema can afford to be explicit:
each event captures one *decision* the paper's mechanism made, not one
array mutation.

Schema stability contract: fields are only ever added, never renamed or
re-typed, so archived JSONL logs keep replaying through
:mod:`repro.obs.inspect`.  The serialized form is
``{"event": <kind>, **fields}`` (see :meth:`Event.as_dict`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: a tagged, flatly-serializable simulator event."""

    #: Event-type tag used in serialized form; overridden per subclass.
    kind = "event"

    def as_dict(self) -> dict:
        """Flat dict form, ``{"event": kind, **fields}`` (JSONL row)."""
        d = {"event": self.kind}
        for f in dataclasses.fields(self):
            d[f.name] = getattr(self, f.name)
        return d


@dataclass(frozen=True, slots=True)
class RunMeta(Event):
    """Run header: emitted once so logs are self-describing.

    ``allocations`` maps the block address space back to the workload's
    managed allocations as ``(name, first_block, last_block)`` tuples
    (half-open range), which lets :mod:`repro.obs.inspect` attribute
    per-block events to allocations.
    """

    kind = "run_meta"

    workload: str
    policy: str
    seed: int
    total_blocks: int
    capacity_blocks: int
    allocations: tuple[tuple[str, int, int], ...]
    #: Active hot-loop kernel backend (``repro.accel``); defaulted so
    #: logs archived before the field existed keep replaying.
    backend: str = "python"
    #: Address-space shard count the decision phase ran over.
    shards: int = 1


@dataclass(frozen=True, slots=True)
class MigrationDecision(Event):
    """One far-accessed block's migrate-vs-remote verdict (per wave).

    ``counter`` is the pre-wave counter baseline the policy judged
    against and ``threshold`` the ``td`` it had to reach; ``accesses``
    is the wave's coalesced access count for the block.  ``migrated``
    is the final verdict *after* programmer hints and injected-fault
    degradation.
    """

    kind = "migration_decision"

    wave: int
    block: int
    threshold: int
    counter: int
    accesses: int
    migrated: bool


@dataclass(frozen=True, slots=True)
class Eviction(Event):
    """One eviction of ``blocks`` 64KB blocks from chunk ``chunk``.

    ``whole_chunk`` distinguishes 2MB chunk-granular eviction from the
    64KB block-granular mode; ``dirty_blocks`` counts device->host
    write-backs the eviction forced.
    """

    kind = "eviction"

    wave: int
    chunk: int
    blocks: int
    dirty_blocks: int
    whole_chunk: bool


@dataclass(frozen=True, slots=True)
class CounterHalving(Event):
    """A global halving of one access-counter field on saturation.

    ``field`` is ``"counts"`` (27-bit access field) or ``"roundtrips"``
    (5-bit round-trip field); ``halvings`` is the cumulative halving
    count for that field after this event.
    """

    kind = "counter_halving"

    wave: int
    field: str
    halvings: int


@dataclass(frozen=True, slots=True)
class FaultRetry(Event):
    """Injected transient-fault handling on one block's migration.

    ``failures`` failed attempts were re-tried (each charged a backoff
    wait); ``degraded`` is True when the retry budget ran out and the
    access fell back to the remote zero-copy path.
    """

    kind = "fault_retry"

    wave: int
    block: int
    failures: int
    degraded: bool


@dataclass(frozen=True, slots=True)
class PrefetchExpand(Event):
    """A fault's tree-prefetch expansion that actually installed blocks.

    ``fault_block`` is the faulting block that triggered the prefetcher
    and ``blocks`` the number of extra 64KB blocks pulled in alongside
    it (the fault block itself is not counted).
    """

    kind = "prefetch_expand"

    wave: int
    chunk: int
    fault_block: int
    blocks: int


@dataclass(frozen=True, slots=True)
class TenantArrival(Event):
    """A tenant entered the open-loop serving system (``repro serve``).

    ``at_us`` is the arrival time on the serving clock, ``footprint_mb``
    the tenant's managed-allocation footprint.
    """

    kind = "tenant_arrival"

    tenant: int
    workload: str
    at_us: float
    footprint_mb: float


@dataclass(frozen=True, slots=True)
class TenantAdmitted(Event):
    """The admission controller admitted a tenant onto the device.

    ``queued_us`` is the time spent waiting in the admission queue
    (0.0 for immediate admission); ``live_oversubscription`` is the
    aggregate live-footprint/capacity ratio *after* the admit.
    """

    kind = "tenant_admitted"

    tenant: int
    at_us: float
    queued_us: float
    live_oversubscription: float


@dataclass(frozen=True, slots=True)
class TenantShed(Event):
    """The admission controller deterministically shed a tenant.

    ``reason`` is ``"watermark"`` (projected oversubscription past the
    shed watermark) or ``"queue_full"`` (bounded queue at capacity).
    """

    kind = "tenant_shed"

    tenant: int
    at_us: float
    reason: str
    live_oversubscription: float


@dataclass(frozen=True, slots=True)
class TenantThrottled(Event):
    """Graceful degradation suspended a tenant's wave stream.

    The heaviest-thrashing tenant is paused for ``rounds`` scheduler
    rounds when live oversubscription crosses the throttle watermark
    (the paper's Section VIII proposal); ``thrash_migrations`` is the
    thrash attributed to the tenant at suspension time.
    """

    kind = "tenant_throttled"

    tenant: int
    at_us: float
    rounds: int
    thrash_migrations: int


@dataclass(frozen=True, slots=True)
class TenantComplete(Event):
    """A tenant drained its last wave and released its footprint.

    ``freed_blocks``/``writeback_blocks`` account the teardown;
    ``p99_wave_latency_us`` summarizes the tenant's wave-latency
    histogram; ``thrash_migrations``/``cross_evictions`` carry the
    per-tenant attribution (thrash charged to the tenant's data, blocks
    it lost to other tenants' pressure).
    """

    kind = "tenant_complete"

    tenant: int
    at_us: float
    waves: int
    freed_blocks: int
    writeback_blocks: int
    p99_wave_latency_us: float
    thrash_migrations: int = 0
    cross_evictions: int = 0


@dataclass(frozen=True, slots=True)
class TenantSched(Event):
    """A completing tenant's fair-scheduler accounting (``repro serve``).

    Emitted alongside :class:`TenantComplete` when the serve session
    runs a non-default scheduler or wave batching (never on the default
    round-robin path, whose event stream stays byte-identical to the
    pre-scheduler serving layer).  ``weight`` is the tenant's configured
    fair share and ``deficit`` the fractional wave credit carried at
    completion (DRR invariant: always in ``[0, 1)``); ``batched_waves``
    counts the tenant's waves that ran inside fused multi-tenant batch
    dispatches rather than lone ``process_wave`` calls.
    """

    kind = "tenant_sched"

    tenant: int
    at_us: float
    weight: float
    deficit: float
    waves: int
    batched_waves: int


@dataclass(frozen=True, slots=True)
class TelemetryWindow(Event):
    """One closed tumbling window of a tenant's live wave telemetry.

    Emitted by :class:`repro.obs.live.LiveTelemetry` every time a
    per-tenant latency window closes on the serving clock.  ``start_us``
    is the window's left edge and ``window_us`` its width; ``bad_waves``
    counts waves whose latency exceeded the SLO latency target (0 when
    no SLO is configured).  The EWMA fields are the streaming estimates
    *after* folding this window in.
    """

    kind = "telemetry_window"

    tenant: int
    start_us: float
    window_us: float
    waves: int
    accesses: int
    mean_latency_us: float
    max_latency_us: float
    bad_waves: int
    ewma_latency_us: float
    thrash_rate: float


@dataclass(frozen=True, slots=True)
class SloViolation(Event):
    """A per-tenant SLO objective started burning its error budget.

    Emitted on the *transition* into violation (multi-window burn-rate
    rule: both the fast and slow window burn rates exceed the configured
    threshold), not on every evaluation tick, so transcripts stay small
    and deterministic.  ``tenant`` is ``-1`` for service-level
    objectives (shed rate).
    """

    kind = "slo_violation"

    tenant: int
    at_us: float
    objective: str
    burn_fast: float
    burn_slow: float
    value: float
    target: float


@dataclass(frozen=True, slots=True)
class SloAttainment(Event):
    """Final attainment verdict for one (tenant, objective) pair.

    Emitted when a tenant completes (or at end of run for service-level
    objectives): ``attainment`` is the achieved good fraction over the
    whole run, ``target`` the configured requirement, ``met`` the
    verdict.
    """

    kind = "slo_attainment"

    tenant: int
    at_us: float
    objective: str
    attainment: float
    target: float
    met: bool


@dataclass(frozen=True, slots=True)
class AlertFired(Event):
    """A deterministic alert rule changed state (firing or resolved).

    Rules evaluate in declaration order against the live telemetry
    sample each scheduler round; ``state`` is ``"firing"`` on the
    transition into breach (after the rule's ``for_ticks`` consecutive
    breaching evaluations) and ``"resolved"`` on the first
    non-breaching evaluation afterwards.  ``tenant`` is ``-1`` for
    serve-scoped rules.
    """

    kind = "alert_fired"

    name: str
    at_us: float
    tenant: int
    metric: str
    value: float
    threshold: float
    state: str


#: kind tag -> event class, for deserializing JSONL logs.
EVENT_TYPES: dict[str, type[Event]] = {
    cls.kind: cls
    for cls in (RunMeta, MigrationDecision, Eviction, CounterHalving,
                FaultRetry, PrefetchExpand, TenantArrival, TenantAdmitted,
                TenantShed, TenantThrottled, TenantComplete, TenantSched,
                TelemetryWindow, SloViolation, SloAttainment, AlertFired)
}


def from_dict(row: dict) -> Event:
    """Rebuild an event from its :meth:`Event.as_dict` form.

    Unknown keys are ignored (forward compatibility: newer writers may
    add fields), unknown kinds raise ``ValueError``.
    """
    kind = row["event"]
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}; "
                         f"known: {', '.join(sorted(EVENT_TYPES))}")
    names = {f.name for f in dataclasses.fields(cls)}
    kwargs = {k: v for k, v in row.items() if k in names}
    if cls is RunMeta and "allocations" in kwargs:
        kwargs["allocations"] = tuple(
            tuple(a) for a in kwargs["allocations"])
    return cls(**kwargs)
