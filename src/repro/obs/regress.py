"""Perf-regression detection over the bench history.

``benchmarks/bench_perf.py`` appends every report to
``BENCH_history.jsonl`` (one JSON object per line, newest last).  This
module turns that series into a gate: the newest point is compared
against a **trailing-window baseline** -- the median of the last
``window`` *comparable* points (same workload scale, same host
fingerprint; perf numbers do not transfer across machines) -- and each
gated metric must stay within a relative tolerance of that baseline.

``tools/check_regression.py`` is the CLI wrapper CI runs: exit status 0
when every gated metric holds, non-zero on regression.  A history too
short to form a baseline *passes* with ``skipped`` findings -- a fresh
host must be able to seed its own baseline.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass

#: Gated metrics: dotted path into a bench report -> better direction.
#: Wall-clock numbers are deliberately absent (shared boxes make them
#: too noisy to gate on); CPU time and throughput are the contract.
GATED_METRICS: dict[str, str] = {
    "throughput.accesses_per_second": "higher",
    "sweep_grid.serial_cpu_seconds": "lower",
    "batched_vs_scalar.drain_speedup": "higher",
    # Resident fast path (steady-state all-resident waves): both the
    # microbench throughput and the hit rate the throughput cells see.
    # Absent from pre-fast-path history entries, so those skip cleanly.
    "fast_path.steady_state_accesses_per_second": "higher",
    "fast_path.hit_rate": "higher",
    # Live (non-replay) single-cell wave generation + simulation
    # throughput: the number the compiled-backend work drives toward
    # the replay ceiling.  Absent from older history entries.
    "throughput.live_accesses_per_second": "higher",
    # Multi-tenant serving scenario (deterministic simulated-clock
    # quantities: behavioral regressions, not host noise).  Absent
    # from pre-serve history entries, so those skip cleanly.
    "serve.accesses_per_second": "higher",
    "serve.p99_wave_latency_us": "lower",
    "serve.shed_rate": "lower",
    # Fused multi-tenant batch dispatch on the 8-tenant ra cell: host
    # throughput of the batched serve path.  Wall-derived, but like
    # telemetry.overhead_pct the companion ``fused_speedup`` ratio is
    # measured interleaved against the sequential path on the same box,
    # so gating throughput here catches fused-path-specific rot while
    # the tolerance absorbs host drift.  Absent from pre-batching
    # history entries, so those skip cleanly.
    "serve_fused.fused_accesses_per_second": "higher",
    "serve_fused.fused_speedup": "higher",
    # Wall-clock tax of the live telemetry stack on the serve scenario.
    # The one deliberate wall-time gate: overhead is a *ratio* of two
    # walls measured back to back on the same box, so host noise mostly
    # cancels.  Absent from pre-telemetry history entries (skips), and
    # a zero-median baseline also skips rather than divides.
    "telemetry.overhead_pct": "lower",
}

#: Default trailing-window length and relative tolerance.
DEFAULT_WINDOW = 5
DEFAULT_TOLERANCE = 0.20


def lookup(report: dict, path: str):
    """Resolve a dotted ``path`` in a bench report (None when absent)."""
    node = report
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def fingerprint(report: dict) -> tuple:
    """What makes two bench reports comparable: scale + host + backend.

    The *active* kernel backend is part of comparability: numba-compiled
    and pure-python numbers differ by design, so one must never baseline
    the other.  Reports predating the backend field default to
    ``python`` (the only backend that existed then).
    """
    host = report.get("host") or {}
    return (lookup(report, "throughput.scale"),
            host.get("machine"), host.get("cpus"),
            lookup(report, "backend.active") or "python")


def load_history(path) -> list[dict]:
    """Parse a ``BENCH_history.jsonl`` file, skipping torn lines."""
    entries = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(entry, dict):
                entries.append(entry)
    return entries


def append_history(path, report: dict) -> None:
    """Append one bench report to the history (flushed, single line)."""
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(report, sort_keys=True) + "\n")
        fh.flush()


@dataclass(frozen=True)
class Finding:
    """One gated metric's verdict for the candidate report."""

    metric: str
    direction: str
    value: float | None
    #: Median of the baseline window (None when no baseline exists).
    baseline: float | None
    #: value / baseline (None when unavailable).
    ratio: float | None
    #: ``ok`` | ``improved`` | ``regression`` | ``skipped``
    status: str

    def as_dict(self) -> dict:
        return {"metric": self.metric, "direction": self.direction,
                "value": self.value, "baseline": self.baseline,
                "ratio": self.ratio, "status": self.status}


@dataclass(frozen=True)
class RegressionReport:
    """All findings for one candidate, plus the baseline's size."""

    findings: tuple[Finding, ...]
    baseline_points: int
    window: int
    tolerance: float

    @property
    def ok(self) -> bool:
        return not any(f.status == "regression" for f in self.findings)

    @property
    def regressions(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.status == "regression")

    def as_dict(self) -> dict:
        return {"ok": self.ok, "baseline_points": self.baseline_points,
                "window": self.window, "tolerance": self.tolerance,
                "findings": [f.as_dict() for f in self.findings]}

    def render(self) -> str:
        lines = [f"-- perf regression check (baseline: median of "
                 f"{self.baseline_points} comparable point(s), "
                 f"tolerance {self.tolerance:.0%})"]
        width = max((len(f.metric) for f in self.findings), default=10)
        for f in self.findings:
            if f.status == "skipped":
                lines.append(f"{f.metric:<{width}}  skipped "
                             f"(no comparable baseline)")
                continue
            lines.append(
                f"{f.metric:<{width}}  {f.value:,.4g} vs baseline "
                f"{f.baseline:,.4g} ({f.ratio:,.3f}x, "
                f"{f.direction} is better): {f.status}")
        lines.append("PASS" if self.ok
                     else f"FAIL: {len(self.regressions)} metric(s) "
                          f"regressed")
        return "\n".join(lines)


def _judge(metric: str, direction: str, value, baseline_values,
           tolerance: float) -> Finding:
    values = [v for v in baseline_values if isinstance(v, (int, float))]
    if value is None or not values:
        return Finding(metric=metric, direction=direction,
                       value=value, baseline=None, ratio=None,
                       status="skipped")
    baseline = float(statistics.median(values))
    if baseline == 0:
        return Finding(metric=metric, direction=direction, value=value,
                       baseline=baseline, ratio=None, status="skipped")
    ratio = value / baseline
    if direction == "higher":
        status = ("regression" if ratio < 1 - tolerance
                  else "improved" if ratio > 1 + tolerance else "ok")
    else:
        status = ("regression" if ratio > 1 + tolerance
                  else "improved" if ratio < 1 - tolerance else "ok")
    return Finding(metric=metric, direction=direction, value=float(value),
                   baseline=baseline, ratio=ratio, status=status)


def check_regression(history: list[dict], candidate: dict | None = None,
                     window: int = DEFAULT_WINDOW,
                     tolerance: float = DEFAULT_TOLERANCE,
                     metrics: dict[str, str] | None = None
                     ) -> RegressionReport:
    """Judge ``candidate`` (default: the newest history entry) against
    the trailing-window baseline of comparable history points.

    Raises ``ValueError`` when there is no candidate at all; an empty
    *baseline* is not an error (every finding is ``skipped`` and the
    report passes).
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    metrics = metrics if metrics is not None else GATED_METRICS
    pool = list(history)
    if candidate is None:
        if not pool:
            raise ValueError("empty history and no candidate report")
        candidate = pool[-1]
        pool = pool[:-1]
    want = fingerprint(candidate)
    comparable = [e for e in pool if fingerprint(e) == want]
    baseline_window = comparable[-window:]
    findings = tuple(
        _judge(metric, direction, lookup(candidate, metric),
               [lookup(e, metric) for e in baseline_window], tolerance)
        for metric, direction in sorted(metrics.items()))
    return RegressionReport(findings=findings,
                            baseline_points=len(baseline_window),
                            window=window, tolerance=tolerance)
