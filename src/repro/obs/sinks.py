"""Event sinks: where the bus delivers structured events.

Any object with a ``write(event)`` method is a valid sink; the classes
here cover the three shipped destinations plus the no-op used by the
bit-identity property test:

* :class:`NullSink` -- accepts and discards everything.  A bus with only
  a ``NullSink`` attached exercises the full emission path (events are
  constructed and dispatched) without observable effect; the property
  suite pins that such a run is bit-identical to one with no
  observability wired at all.
* :class:`RingBufferSink` -- keeps the most recent N events in memory,
  for tests and interactive post-mortems.
* :class:`JsonlSink` -- appends one JSON object per event to a file;
  the durable format ``repro inspect`` consumes.
* :class:`MetricsSink` -- rolls events up into a
  :class:`~repro.obs.metrics.MetricsRegistry` instead of storing them.
"""

from __future__ import annotations

import gzip
import json
from collections import deque

from .events import (
    CounterHalving,
    Eviction,
    Event,
    FaultRetry,
    MigrationDecision,
    PrefetchExpand,
)
from .metrics import MetricsRegistry


class Sink:
    """Base sink: interface documentation plus default no-op close."""

    def write(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; called by ``EventBus.close()``."""


class NullSink(Sink):
    """Discards every event (keeps the bus enabled, output disabled)."""

    def write(self, event: Event) -> None:
        pass


class RingBufferSink(Sink):
    """Keeps the ``capacity`` most recent events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._buf: deque[Event] = deque(maxlen=capacity)
        #: Total events ever written (>= len(self) once the ring wraps).
        self.total_written = 0

    def write(self, event: Event) -> None:
        self._buf.append(event)
        self.total_written += 1

    @property
    def events(self) -> list[Event]:
        """The retained events, oldest first."""
        return list(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(self._buf)

    def clear(self) -> None:
        """Drop the retained events (the write counter keeps counting)."""
        self._buf.clear()


def open_text(path, mode: str):
    """Open a text log, transparently gzipped for ``*.gz`` paths.

    Shared by :class:`JsonlSink` (writing) and
    :mod:`repro.obs.inspect` (reading), so a ``--events out.jsonl.gz``
    log round-trips through ``repro inspect`` unchanged.
    """
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


class JsonlSink(Sink):
    """Appends one compact JSON object per event to ``path``.

    The file is opened eagerly (fail fast on an unwritable path) and
    buffered; ``close()`` flushes.  A path ending in ``.gz`` (the
    ``.jsonl.gz`` convention) is written gzip-compressed -- event logs
    for large sweeps are highly redundant JSON and compress ~20x.
    Rows are ``Event.as_dict()`` with an ``"event"`` kind tag, parse
    back via :func:`repro.obs.events.from_dict`.

    ``flush_every`` makes the log *tailable*: flush the OS buffer every
    N events so ``repro top`` and external tailers see rows promptly
    instead of only at close (``--flush-events`` on the CLI; serve runs
    typically use the wave-boundary cadence of 1).  Gzip logs cannot be
    tailed -- the compressed stream only terminates at close -- so
    combining ``flush_every`` with a ``.gz`` path raises.
    """

    def __init__(self, path, flush_every: int | None = None) -> None:
        if flush_every is not None:
            if flush_every < 1:
                raise ValueError(
                    f"flush_every must be >= 1, got {flush_every}")
            if str(path).endswith(".gz"):
                raise ValueError(
                    f"flush_every on a gzip log is useless ({path}): "
                    "gzip members only terminate at close, so tailers "
                    "never see complete rows; use an uncompressed "
                    ".jsonl path")
        self.path = path
        self.flush_every = flush_every
        self._since_flush = 0
        self._fh = open_text(path, "w")

    def write(self, event: Event) -> None:
        json.dump(event.as_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        if self.flush_every is not None:
            self._since_flush += 1
            if self._since_flush >= self.flush_every:
                self._fh.flush()
                self._since_flush = 0

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class MetricsSink(Sink):
    """Rolls events up into counters/histograms as they are emitted.

    Metrics maintained (all under the ``driver.`` prefix):

    * ``driver.decisions.migrate`` / ``driver.decisions.remote``
      (counters) -- migrate-vs-remote verdicts;
    * ``driver.threshold`` (histogram) -- distribution of the ``td``
      values far accesses were judged against;
    * ``driver.evictions`` / ``driver.evicted_blocks`` /
      ``driver.writeback_blocks`` (counters) and
      ``driver.eviction_blocks`` (histogram of blocks per eviction);
    * ``driver.counter_halvings.counts`` /
      ``driver.counter_halvings.roundtrips`` (counters);
    * ``driver.fault_retries`` / ``driver.degraded_migrations``
      (counters) -- injected-fault outcomes;
    * ``driver.prefetch_expansions`` / ``driver.prefetched_blocks``
      (counters) and ``driver.prefetch_width`` (histogram).
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        r = registry
        self._migrate = r.counter("driver.decisions.migrate")
        self._remote = r.counter("driver.decisions.remote")
        self._threshold = r.histogram("driver.threshold")
        self._evictions = r.counter("driver.evictions")
        self._evicted_blocks = r.counter("driver.evicted_blocks")
        self._writeback_blocks = r.counter("driver.writeback_blocks")
        self._eviction_blocks = r.histogram("driver.eviction_blocks")
        self._halvings_counts = r.counter("driver.counter_halvings.counts")
        self._halvings_rt = r.counter("driver.counter_halvings.roundtrips")
        self._fault_retries = r.counter("driver.fault_retries")
        self._degraded = r.counter("driver.degraded_migrations")
        self._pf_events = r.counter("driver.prefetch_expansions")
        self._pf_blocks = r.counter("driver.prefetched_blocks")
        self._pf_width = r.histogram("driver.prefetch_width")

    def write(self, event: Event) -> None:
        if type(event) is MigrationDecision:
            (self._migrate if event.migrated else self._remote).inc()
            self._threshold.observe(event.threshold)
        elif type(event) is Eviction:
            self._evictions.inc()
            self._evicted_blocks.inc(event.blocks)
            self._writeback_blocks.inc(event.dirty_blocks)
            self._eviction_blocks.observe(event.blocks)
        elif type(event) is PrefetchExpand:
            self._pf_events.inc()
            self._pf_blocks.inc(event.blocks)
            self._pf_width.observe(event.blocks)
        elif type(event) is CounterHalving:
            (self._halvings_counts if event.field == "counts"
             else self._halvings_rt).inc()
        elif type(event) is FaultRetry:
            self._fault_retries.inc(event.failures)
            if event.degraded:
                self._degraded.inc()
