"""The structured event bus: fan-out of simulator events to sinks.

Design goals, in priority order:

1. **Zero overhead when disabled.**  A simulator built without an
   :class:`~repro.obs.Observability` handle never constructs an event
   object; instrumented call sites guard on a plain attribute check.
   With a bus attached but no sinks, :attr:`EventBus.enabled` is False
   and the guards still skip event construction.
2. **No feedback into the simulation.**  Emission never touches driver
   state or any RNG stream, so a run with sinks attached is
   bit-identical to one without (pinned by
   ``tests/property/test_obs_identity.py``).
3. **Pluggable sinks.**  Ring buffer for tests/interactive inspection,
   JSONL for durable logs, metrics rollup for aggregates -- any object
   with ``write(event)`` works (see :mod:`repro.obs.sinks`).
"""

from __future__ import annotations

from .events import Event


class EventBus:
    """Fans emitted events out to every attached sink.

    The bus also carries the *wave context*: the driver sets
    :attr:`wave` at the start of every wave so deeper layers (counter
    file, eviction path) can stamp their events without threading a
    wave index through every call.
    """

    __slots__ = ("sinks", "enabled", "wave")

    def __init__(self) -> None:
        self.sinks: list = []
        #: True as soon as any sink is attached; instrumented hot paths
        #: check this single attribute before building an event.
        self.enabled = False
        #: Index of the wave currently being processed (0-based).
        self.wave = 0

    def attach(self, sink) -> None:
        """Attach ``sink`` (any object with ``write(event)``)."""
        self.sinks.append(sink)
        self.enabled = True

    def detach(self, sink) -> None:
        """Remove a previously attached sink (missing sinks are ignored)."""
        try:
            self.sinks.remove(sink)
        except ValueError:
            pass
        self.enabled = bool(self.sinks)

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to every sink, in attachment order."""
        for sink in self.sinks:
            sink.write(event)

    def close(self) -> None:
        """Close every sink that supports it (JSONL files flush here)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
