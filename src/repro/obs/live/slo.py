"""Declarative per-tenant SLOs with multi-window burn-rate evaluation.

An :class:`SloConfig` states objectives the serving layer should meet
-- a per-wave latency target with an attainment fraction, a ceiling on
the service-level shed rate, a per-tenant throughput floor -- and the
:class:`SloEngine` evaluates them continuously against the closed
tumbling windows the telemetry hub maintains.

Evaluation follows the multi-window, multi-burn-rate pattern from SRE
practice: an objective is *violating* only when both a fast window
(recent ``fast_windows`` closed windows) and a slow window
(``slow_windows``) burn the error budget faster than
``burn_threshold``.  The fast window makes alerts responsive, the slow
window keeps one bad wave from paging; requiring both keeps transcripts
deterministic and small.  :class:`~repro.obs.events.SloViolation` is
emitted on the transition into violation, and a final
:class:`~repro.obs.events.SloAttainment` verdict per (tenant,
objective) when the tenant completes.

All math here is pure float arithmetic over simulated-clock windows:
identical inputs yield identical transcripts on every backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..events import SloAttainment, SloViolation
from .windows import WindowAggregate

#: Objective names used in events, metrics, and the inspect table.
LATENCY = "p99_latency"
SHED_RATE = "shed_rate"
THROUGHPUT = "throughput"

#: Sentinel tenant id for service-level objectives.
SERVICE = -1


def burn_rate(bad: int, total: int, budget: float) -> float:
    """Error-budget burn rate of one window.

    ``budget`` is the allowed bad fraction (``1 - attainment``); a burn
    rate of 1.0 spends the budget exactly, >1 overspends.  An empty
    window burns nothing; a zero budget burns infinitely fast the
    moment anything goes bad.
    """
    if total <= 0 or bad <= 0:
        return 0.0
    if budget <= 0.0:
        return math.inf
    return (bad / total) / budget


@dataclass(frozen=True)
class SloConfig:
    """Declarative serving objectives (all optional, validated).

    ``None`` disables an objective.  ``latency_attainment`` is the
    required good fraction for the latency objective (e.g. 0.99 means
    "99% of waves complete under ``p99_latency_us``").  ``max_shed_rate``
    bounds the service-level fraction of arrivals shed;
    ``min_throughput`` is a per-tenant accesses-per-second floor
    evaluated over the merged fast/slow windows.
    """

    p99_latency_us: float | None = None
    latency_attainment: float = 0.99
    max_shed_rate: float | None = None
    min_throughput: float | None = None
    fast_windows: int = 3
    slow_windows: int = 12
    burn_threshold: float = 2.0

    @property
    def enabled(self) -> bool:
        return (self.p99_latency_us is not None
                or self.max_shed_rate is not None
                or self.min_throughput is not None)

    def validate(self) -> None:
        errors = []
        if self.p99_latency_us is not None and self.p99_latency_us <= 0:
            errors.append(f"p99_latency_us must be positive: "
                          f"{self.p99_latency_us}")
        if not 0.0 < self.latency_attainment < 1.0:
            errors.append(f"latency_attainment must be in (0, 1): "
                          f"{self.latency_attainment}")
        if self.max_shed_rate is not None \
                and not 0.0 <= self.max_shed_rate < 1.0:
            errors.append(f"max_shed_rate must be in [0, 1): "
                          f"{self.max_shed_rate}")
        if self.min_throughput is not None and self.min_throughput <= 0:
            errors.append(f"min_throughput must be positive: "
                          f"{self.min_throughput}")
        if self.fast_windows < 1:
            errors.append(f"fast_windows must be >= 1: {self.fast_windows}")
        if self.slow_windows < self.fast_windows:
            errors.append(f"slow_windows ({self.slow_windows}) must be >= "
                          f"fast_windows ({self.fast_windows})")
        if self.burn_threshold <= 0:
            errors.append(f"burn_threshold must be positive: "
                          f"{self.burn_threshold}")
        if errors:
            raise ValueError("invalid SLO config:\n  " +
                             "\n  ".join(errors))

    @classmethod
    def from_dict(cls, data: dict) -> "SloConfig":
        """Build from a flat mapping (``slo.*`` scenario keys).

        Accepts either bare names (``p99_latency_us``) or dotted
        scenario paths (``slo.p99_latency_us``); unknown keys raise so
        config typos fail loudly.
        """
        names = {f.name for f in
                 cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        kwargs = {}
        for key, value in data.items():
            name = key.split(".", 1)[1] if key.startswith("slo.") else key
            if name not in names:
                raise ValueError(f"unknown SLO key {key!r}; known: "
                                 f"{', '.join(sorted(names))}")
            if value is not None:
                kwargs[name] = value
        config = cls(**kwargs)
        config.validate()
        return config

    def as_dict(self) -> dict:
        return {"p99_latency_us": self.p99_latency_us,
                "latency_attainment": self.latency_attainment,
                "max_shed_rate": self.max_shed_rate,
                "min_throughput": self.min_throughput,
                "fast_windows": self.fast_windows,
                "slow_windows": self.slow_windows,
                "burn_threshold": self.burn_threshold}


@dataclass
class _ObjectiveState:
    """Per-(tenant, objective) running state."""

    violating: bool = False
    violations: int = 0
    good: int = 0
    total: int = 0

    @property
    def attainment(self) -> float:
        return self.good / self.total if self.total else 1.0


@dataclass
class SloEngine:
    """Evaluates one :class:`SloConfig` against closed windows.

    The engine owns no windows -- the telemetry hub feeds it merged
    fast/slow aggregates at each evaluation tick -- only the
    per-(tenant, objective) state machines and cumulative attainment
    counters.  ``emit`` is the event-bus hook (may be ``None``:
    attainment is still tracked for the result/inspect path).
    """

    config: SloConfig
    emit: object = None
    _states: dict = field(default_factory=dict)

    def _state(self, tenant: int, objective: str) -> _ObjectiveState:
        key = (tenant, objective)
        state = self._states.get(key)
        if state is None:
            state = _ObjectiveState()
            self._states[key] = state
        return state

    def _emit(self, event) -> None:
        if self.emit is not None:
            self.emit(event)

    def _transition(self, state: _ObjectiveState, tenant: int, at_us: float,
                    objective: str, violating: bool, fast: float,
                    slow: float, value: float, target: float) -> None:
        if violating and not state.violating:
            state.violations += 1
            self._emit(SloViolation(
                tenant=tenant, at_us=float(at_us), objective=objective,
                burn_fast=float(fast), burn_slow=float(slow),
                value=float(value), target=float(target)))
        state.violating = violating

    # -- per-objective evaluation hooks (called by the telemetry hub) --

    def evaluate_latency(self, tenant: int, at_us: float,
                         fast: WindowAggregate,
                         slow: WindowAggregate) -> None:
        cfg = self.config
        if cfg.p99_latency_us is None:
            return
        budget = 1.0 - cfg.latency_attainment
        state = self._state(tenant, LATENCY)
        bf = burn_rate(fast.bad, fast.count, budget)
        bs = burn_rate(slow.bad, slow.count, budget)
        violating = (bf >= cfg.burn_threshold and bs >= cfg.burn_threshold)
        self._transition(state, tenant, at_us, LATENCY, violating,
                         bf, bs, fast.maximum, cfg.p99_latency_us)

    def evaluate_shed(self, at_us: float, fast: WindowAggregate,
                      slow: WindowAggregate) -> None:
        cfg = self.config
        if cfg.max_shed_rate is None:
            return
        # Budget is the allowed shed fraction itself; a max_shed_rate
        # of 0 means any shed at all starts burning infinitely fast.
        budget = cfg.max_shed_rate
        state = self._state(SERVICE, SHED_RATE)
        bf = burn_rate(fast.bad, fast.count, budget) \
            if budget > 0 else (math.inf if fast.bad else 0.0)
        bs = burn_rate(slow.bad, slow.count, budget) \
            if budget > 0 else (math.inf if slow.bad else 0.0)
        violating = (bf >= cfg.burn_threshold and bs >= cfg.burn_threshold)
        self._transition(state, SERVICE, at_us, SHED_RATE, violating,
                         bf, bs, fast.bad_fraction, cfg.max_shed_rate)

    def evaluate_throughput(self, tenant: int, at_us: float,
                            fast: WindowAggregate, slow: WindowAggregate,
                            fast_span_us: float,
                            slow_span_us: float) -> None:
        """Throughput floor over merged windows (``total`` = accesses).

        A window below the floor counts as fully bad (burn rate =
        floor / actual), so the same two-window AND rule applies.
        """
        cfg = self.config
        if cfg.min_throughput is None:
            return
        floor = cfg.min_throughput

        def rate(agg: WindowAggregate, span_us: float) -> float:
            return agg.total / (span_us / 1e6) if span_us > 0 else 0.0

        def burn(actual: float) -> float:
            if actual >= floor:
                return 0.0
            return floor / actual if actual > 0 else math.inf

        fast_rate = rate(fast, fast_span_us)
        slow_rate = rate(slow, slow_span_us)
        bf, bs = burn(fast_rate), burn(slow_rate)
        state = self._state(tenant, THROUGHPUT)
        state.total += 1
        if fast_rate >= floor:
            state.good += 1
        violating = (bf >= cfg.burn_threshold and bs >= cfg.burn_threshold)
        self._transition(state, tenant, at_us, THROUGHPUT, violating,
                         bf, bs, fast_rate, floor)

    # -- cumulative attainment bookkeeping --

    def record_latency_window(self, tenant: int,
                              agg: WindowAggregate) -> None:
        if self.config.p99_latency_us is None or agg.count == 0:
            return
        state = self._state(tenant, LATENCY)
        state.total += agg.count
        state.good += agg.count - agg.bad

    def record_shed_window(self, agg: WindowAggregate) -> None:
        if self.config.max_shed_rate is None or agg.count == 0:
            return
        state = self._state(SERVICE, SHED_RATE)
        state.total += agg.count
        state.good += agg.count - agg.bad

    # -- results --

    def total_violations(self) -> int:
        return sum(state.violations for state in self._states.values())

    def violations_of(self, tenant: int) -> int:
        return sum(state.violations for (tid, _), state
                   in self._states.items() if tid == tenant)

    def attainment_of(self, tenant: int) -> float | None:
        """Worst attainment across the tenant's objectives, or None."""
        values = [state.attainment for (tid, _), state
                  in self._states.items() if tid == tenant and state.total]
        return min(values) if values else None

    def _target_of(self, objective: str) -> float:
        cfg = self.config
        if objective == LATENCY:
            return cfg.latency_attainment
        if objective == SHED_RATE:
            return 1.0 - (cfg.max_shed_rate or 0.0)
        return cfg.latency_attainment  # throughput reuses the fraction

    def finish_tenant(self, tenant: int, at_us: float) -> None:
        """Emit final :class:`SloAttainment` verdicts for ``tenant``."""
        for (tid, objective), state in self._states.items():
            if tid != tenant or not state.total:
                continue
            target = self._target_of(objective)
            self._emit(SloAttainment(
                tenant=tenant, at_us=float(at_us), objective=objective,
                attainment=state.attainment, target=target,
                met=state.attainment >= target and not state.violating))

    def finish(self, at_us: float) -> None:
        """End of run: emit the service-level verdicts."""
        self.finish_tenant(SERVICE, at_us)
