"""Deterministic alert rules over live telemetry samples.

An :class:`AlertRule` is a threshold comparison against one named
metric in the sample dict the telemetry hub assembles each scheduler
round (e.g. ``serve.live_oversubscription`` or ``tenant.ewma_latency_us``).
Rules evaluate in declaration order; each keeps a per-scope
consecutive-breach counter so a rule can require ``for_ticks``
breaching evaluations before firing (hysteresis against one-round
spikes).  State transitions emit typed
:class:`~repro.obs.events.AlertFired` events -- ``firing`` on the way
up, ``resolved`` on the first clean evaluation -- and invoke the
rule's pluggable ``action`` callback, which is how ``--live-admission``
lets degradation react to live signals.

Evaluation is pure: comparisons over floats the simulator computed, no
host time, no RNG.  The transcript (ordered list of fired events) is
therefore seed-stable and backend-independent, which CI asserts.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field

from ..events import AlertFired

_OPS = {">": operator.gt, ">=": operator.ge,
        "<": operator.lt, "<=": operator.le}


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold rule.

    ``metric`` names a key in the evaluation sample; samples missing
    the key skip the rule (no state change).  ``scope`` is ``"serve"``
    for service-wide samples or ``"tenant"`` for per-tenant samples --
    a tenant-scoped rule keeps independent state per tenant.
    ``action``, when set, is called as ``action(event)`` on every state
    transition; actions must not mutate simulator state unless the
    caller opted in (the live-admission flag).
    """

    name: str
    metric: str
    op: str
    threshold: float
    for_ticks: int = 1
    scope: str = "serve"
    action: object = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown alert op {self.op!r}; "
                             f"known: {', '.join(sorted(_OPS))}")
        if self.for_ticks < 1:
            raise ValueError(f"for_ticks must be >= 1: {self.for_ticks}")
        if self.scope not in ("serve", "tenant"):
            raise ValueError(f"unknown alert scope {self.scope!r}")


@dataclass
class _RuleState:
    streak: int = 0
    firing: bool = False


@dataclass
class AlertEngine:
    """Evaluates an ordered rule list and records the transcript."""

    rules: tuple
    emit: object = None
    _states: dict = field(default_factory=dict)
    #: Ordered, seed-stable list of every AlertFired emitted.
    transcript: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rules = tuple(self.rules)
        names = [r.name for r in self.rules]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate alert rule names: {names}")

    def evaluate(self, at_us: float, sample: dict,
                 tenant: int = -1) -> list:
        """Evaluate every rule matching the sample's scope, in order.

        ``tenant`` is -1 for serve-scoped samples.  Returns the events
        fired by this evaluation (also appended to :attr:`transcript`
        and pushed through ``emit``).
        """
        scope = "serve" if tenant < 0 else "tenant"
        fired = []
        for rule in self.rules:
            if rule.scope != scope:
                continue
            value = sample.get(rule.metric)
            if value is None:
                continue
            key = (rule.name, tenant)
            state = self._states.get(key)
            if state is None:
                state = _RuleState()
                self._states[key] = state
            breach = _OPS[rule.op](value, rule.threshold)
            event = None
            if breach:
                state.streak += 1
                if not state.firing and state.streak >= rule.for_ticks:
                    state.firing = True
                    event = AlertFired(
                        name=rule.name, at_us=float(at_us), tenant=tenant,
                        metric=rule.metric, value=float(value),
                        threshold=rule.threshold, state="firing")
            else:
                state.streak = 0
                if state.firing:
                    state.firing = False
                    event = AlertFired(
                        name=rule.name, at_us=float(at_us), tenant=tenant,
                        metric=rule.metric, value=float(value),
                        threshold=rule.threshold, state="resolved")
            if event is not None:
                fired.append(event)
                self.transcript.append(event)
                if self.emit is not None:
                    self.emit(event)
                if rule.action is not None:
                    rule.action(event)
        return fired

    def firing(self) -> list:
        """Names of rules currently firing (sorted for determinism)."""
        return sorted({name for (name, _), state in self._states.items()
                       if state.firing})

    def count_for(self, tenant: int) -> int:
        """Number of ``firing`` transitions recorded for ``tenant``."""
        return sum(1 for ev in self.transcript
                   if ev.tenant == tenant and ev.state == "firing")
