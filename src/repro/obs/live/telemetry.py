"""The live telemetry hub: windows + SLOs + alerts for one serve run.

:class:`LiveTelemetry` is owned by :class:`~repro.serve.session.ServeSession`
and is only constructed when something consumes live signals -- an
attached observability stack, an SLO config, or ``--live-admission``.
With none of those the session carries ``self._telemetry = None`` and
the hot path never branches past one attribute check, preserving the
zero-overhead-off contract.

The session feeds the hub three kinds of input, all already-computed
simulated quantities:

* per-wave observations (``on_wave``) land in per-tenant tumbling
  latency/work windows;
* admission lifecycle hooks (``on_arrival``/``on_admit``/
  ``on_complete``) feed the service-level shed window and the SLO
  attainment bookkeeping;
* a per-scheduler-round ``tick`` carrying the live oversubscription and
  the attribution arrays, from which the hub derives windowed
  interference rates (EWMA thrash migrations per wave) and runs SLO
  burn-rate plus alert-rule evaluation.

Everything downstream of the hooks is pure float bookkeeping over the
simulated clock: transcripts are bit-identical across replays and
backends, which the CI telemetry smoke asserts.
"""

from __future__ import annotations

import numpy as np

from ..events import TelemetryWindow
from .alerts import AlertEngine, AlertRule
from .slo import SloConfig, SloEngine
from .windows import Ewma, KeyedWindows, TumblingWindow

#: EWMA smoothing for per-tenant latency and interference rates.
_EWMA_ALPHA = 0.3


def default_rules(config, slo: SloConfig | None) -> tuple:
    """The built-in deterministic rule set for a serve run.

    Derived from the run's own watermarks and SLOs so the alerts mean
    something in every scenario: oversubscription approaching the shed
    watermark, interference pressure past the live-throttle threshold,
    plus shed-rate / tenant-latency rules when the SLO config states
    those objectives.
    """
    rules = [
        AlertRule(name="live_oversubscription",
                  metric="serve.live_oversubscription", op=">=",
                  threshold=config.shed_watermark, for_ticks=2),
        AlertRule(name="thrash_pressure", metric="serve.thrash_per_wave",
                  op=">=", threshold=config.live_thrash_threshold,
                  for_ticks=2),
    ]
    if slo is not None and slo.max_shed_rate is not None:
        rules.append(AlertRule(
            name="shed_rate", metric="serve.shed_rate", op=">",
            threshold=slo.max_shed_rate))
    if slo is not None and slo.p99_latency_us is not None:
        rules.append(AlertRule(
            name="tenant_latency", metric="tenant.ewma_latency_us",
            op=">", threshold=slo.p99_latency_us, for_ticks=3,
            scope="tenant"))
    return tuple(rules)


class LiveTelemetry:
    """Streaming per-tenant telemetry for one :class:`ServeSession`."""

    def __init__(self, config, slo: SloConfig | None = None,
                 rules=None, bus=None, metrics=None) -> None:
        self.config = config
        self.window_us = config.window_ms * 1e3
        self._bus = bus
        self._metrics = metrics
        self.slo_config = slo if slo is not None and slo.enabled else None
        self.slo = SloEngine(self.slo_config, emit=self._emit) \
            if self.slo_config is not None else None
        if rules is None:
            rules = default_rules(config, self.slo_config)
        self.alerts = AlertEngine(rules, emit=self._emit)
        #: Per-tenant wave latency windows (bad = over the SLO target).
        self.latency = KeyedWindows(self.window_us)
        #: Per-tenant per-wave access counts (throughput floor).
        self.work = KeyedWindows(self.window_us)
        #: Service-level arrivals window (bad = shed).
        self.arrivals = TumblingWindow(self.window_us)
        self._lat_ewma: dict[int, Ewma] = {}
        self._thrash_ewma: dict[int, Ewma] = {}
        self._pressure = Ewma(_EWMA_ALPHA)
        self._last_thrash: np.ndarray | None = None
        self._last_waves: dict[int, int] = {}
        self._active: list[int] = []

    # -- event plumbing --------------------------------------------------

    def _emit(self, event) -> None:
        if self._bus is not None and self._bus.enabled:
            self._bus.emit(event)

    # -- session hooks ---------------------------------------------------

    def on_arrival(self, tenant: int, at_us: float, shed: bool) -> None:
        self.arrivals.observe(at_us, 1.0, bad=shed)

    def on_admit(self, tenant: int) -> None:
        if tenant not in self._active:
            self._active.append(tenant)

    def on_complete(self, tenant: int, at_us: float) -> None:
        if tenant in self._active:
            self._active.remove(tenant)
        if self.slo is not None:
            # Fold the tenant's still-open windows in before the final
            # attainment verdict.
            win = self.latency.window(tenant)
            win.roll(at_us + self.window_us)
            self._drain_tenant(tenant, at_us)
            self.slo.finish_tenant(tenant, at_us)

    def on_wave(self, tenant: int, at_us: float, latency_us: float,
                accesses: int) -> None:
        slo = self.slo_config
        bad = (slo is not None and slo.p99_latency_us is not None
               and latency_us > slo.p99_latency_us)
        self.latency.observe(tenant, at_us, latency_us, bad=bad)
        self.work.observe(tenant, at_us, float(accesses))
        ewma = self._lat_ewma.get(tenant)
        if ewma is None:
            ewma = self._lat_ewma[tenant] = Ewma(_EWMA_ALPHA)
        ewma.update(latency_us)

    # -- live signals consumed by --live-admission -----------------------

    def thrash_rate(self, tenant: int) -> float:
        """Windowed thrash migrations per wave attributed to ``tenant``."""
        ewma = self._thrash_ewma.get(tenant)
        return ewma.get() if ewma is not None else 0.0

    def interference(self) -> float:
        """Service-wide EWMA of thrash migrations per executed wave."""
        return self._pressure.get()

    # -- per-round evaluation --------------------------------------------

    def _drain_tenant(self, tenant: int, now: float) -> None:
        """Emit TelemetryWindow events for freshly-closed windows."""
        lat_win = self.latency.window(tenant)
        work_win = self.work.window(tenant)
        work_win.roll(lat_win.open_start_us)
        fresh_work = {start: agg for start, agg in work_win.drain()}
        for start_us, agg in lat_win.drain():
            if self.slo is not None:
                self.slo.record_latency_window(tenant, agg)
            work = fresh_work.get(start_us)
            self._emit(TelemetryWindow(
                tenant=tenant, start_us=start_us,
                window_us=self.window_us, waves=agg.count,
                accesses=int(work.total) if work is not None else 0,
                mean_latency_us=agg.mean, max_latency_us=agg.maximum,
                bad_waves=agg.bad,
                ewma_latency_us=self._lat_ewma[tenant].get()
                if tenant in self._lat_ewma else 0.0,
                thrash_rate=self.thrash_rate(tenant)))

    def tick(self, now: float, oversubscription: float,
             live, thrash: np.ndarray) -> None:
        """One evaluation round, called at each scheduler-round boundary.

        ``live`` is the session's live tenant list (objects with ``id``
        and ``waves``); ``thrash`` the attribution's cumulative
        per-tenant thrash-migration array.  The hub differences both
        against its previous snapshot to derive windowed rates.
        """
        # Interference rates from attribution deltas.
        if self._last_thrash is None:
            self._last_thrash = np.zeros_like(thrash)
        delta = thrash - self._last_thrash
        self._last_thrash = thrash.copy()
        total_dwaves = 0
        for tenant in live:
            dwaves = tenant.waves - self._last_waves.get(tenant.id, 0)
            self._last_waves[tenant.id] = tenant.waves
            total_dwaves += dwaves
            if dwaves > 0:
                ewma = self._thrash_ewma.get(tenant.id)
                if ewma is None:
                    ewma = self._thrash_ewma[tenant.id] = Ewma(_EWMA_ALPHA)
                ewma.update(float(delta[tenant.id]) / dwaves)
        if total_dwaves > 0:
            self._pressure.update(float(delta.sum()) / total_dwaves)

        # Roll + drain windows, then evaluate SLOs on merged horizons.
        slo, slo_cfg = self.slo, self.slo_config
        for tenant_id, win in self.latency.items():
            win.roll(now)
            self._drain_tenant(tenant_id, now)
            if slo is not None and tenant_id in self._active:
                fast = win.merged(slo_cfg.fast_windows)
                slow = win.merged(slo_cfg.slow_windows)
                slo.evaluate_latency(tenant_id, now, fast, slow)
        if slo is not None and slo_cfg.min_throughput is not None:
            for tenant in live:
                win = self.work.window(tenant.id)
                fast = win.merged(slo_cfg.fast_windows)
                slow = win.merged(slo_cfg.slow_windows)
                slo.evaluate_throughput(
                    tenant.id, now, fast, slow,
                    slo_cfg.fast_windows * self.window_us,
                    slo_cfg.slow_windows * self.window_us)
        self.arrivals.roll(now)
        for _, agg in self.arrivals.drain():
            if slo is not None:
                slo.record_shed_window(agg)
        if slo is not None and slo_cfg.max_shed_rate is not None:
            slo.evaluate_shed(
                now, self.arrivals.merged(slo_cfg.fast_windows),
                self.arrivals.merged(slo_cfg.slow_windows))

        # Alert rules: serve scope first, then tenants in id order.
        shed_window = self.arrivals.merged(
            slo_cfg.slow_windows if slo_cfg is not None else 12)
        sample = {
            "serve.live_oversubscription": oversubscription,
            "serve.thrash_per_wave": self._pressure.get(),
            "serve.shed_rate": shed_window.bad_fraction,
        }
        self.alerts.evaluate(now, sample)
        for tenant_id in sorted(t.id for t in live):
            ewma = self._lat_ewma.get(tenant_id)
            tenant_sample = {
                "tenant.ewma_latency_us":
                    ewma.get() if ewma is not None else None,
                "tenant.thrash_rate": self.thrash_rate(tenant_id),
            }
            self.alerts.evaluate(now, tenant_sample, tenant=tenant_id)

        # Decimated per-run series for the archived metrics snapshot.
        metrics = self._metrics
        if metrics is not None:
            metrics.series("serve.live.oversubscription").append(
                now, oversubscription)
            metrics.series("serve.live.thrash_per_wave").append(
                now, self._pressure.get())
            for tenant_id, ewma in self._lat_ewma.items():
                metrics.series(
                    f"serve.tenant.{tenant_id}.ewma_latency_us").append(
                        now, ewma.get())

    def finish(self, now: float) -> None:
        """End of run: close service-level SLO state and snapshot."""
        self.arrivals.roll(now + self.window_us)
        for _, agg in self.arrivals.drain():
            if self.slo is not None:
                self.slo.record_shed_window(agg)
        if self.slo is not None:
            self.slo.finish(now)
        metrics = self._metrics
        if metrics is not None:
            for name in self.alerts.firing():
                metrics.counter(f"serve.alert.{name}.unresolved").inc()
            metrics.counter("serve.alerts_fired").inc(
                sum(1 for ev in self.alerts.transcript
                    if ev.state == "firing"))
            if self.slo is not None:
                for tenant_id in list(self._lat_ewma):
                    attainment = self.slo.attainment_of(tenant_id)
                    if attainment is not None:
                        metrics.gauge(
                            f"serve.tenant.{tenant_id}.slo_attainment"
                        ).set(attainment)
