"""Prometheus/OpenMetrics text exposition of a metrics snapshot.

:func:`to_openmetrics` renders a :class:`~repro.obs.metrics.MetricsRegistry`
(or an already-serialized ``--metrics`` JSON snapshot -- the two are
interchangeable here) into the OpenMetrics text format, so a serve
run's registry can be scraped or diffed with standard tooling:
``repro serve --prom out.prom`` writes one snapshot at end of run.

Mapping choices:

* dotted metric names sanitize to underscores (``serve.shed_rate`` ->
  ``serve_shed_rate``); counters get the conventional ``_total`` suffix;
* histograms export cumulative ``_bucket{le="..."}`` rows derived from
  the registry's power-of-two layout, plus ``_sum``/``_count``;
* series export their last point as a gauge (the decimated history
  stays in the JSON snapshot; exposition formats are instantaneous).

The output is deterministic: name-sorted metrics, ``# EOF``-terminated.
"""

from __future__ import annotations

import re

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


def _bucket_upper(label: str) -> float:
    """Upper bound of a histogram bucket from its human label.

    Labels come from :meth:`Histogram.bucket_label`: ``"0"``, ``"1"``,
    or ``"(lo, hi]"``.
    """
    if "," not in label:
        return float(label)
    return float(label.rsplit(",", 1)[1].rstrip("]").strip())


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value) == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def to_openmetrics(snapshot) -> str:
    """Render a registry or registry snapshot as OpenMetrics text."""
    if hasattr(snapshot, "as_dict"):
        snapshot = snapshot.as_dict()
    lines: list[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind = data.get("type")
        metric = _sanitize(name)
        if kind == "counter":
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric}_total {_fmt(data['value'])}")
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(data['value'])}")
        elif kind == "series":
            lines.append(f"# TYPE {metric} gauge")
            points = data.get("points") or []
            last = points[-1][1] if points else 0.0
            lines.append(f"{metric} {_fmt(last)}")
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            buckets = sorted(data.get("buckets", {}).items(),
                             key=lambda kv: _bucket_upper(kv[0]))
            for label, count in buckets:
                cumulative += count
                le = _fmt(_bucket_upper(label))
                lines.append(
                    f'{metric}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f'{metric}_bucket{{le="+Inf"}} {data["count"]}')
            lines.append(f"{metric}_sum {_fmt(data['sum'])}")
            lines.append(f"{metric}_count {data['count']}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(snapshot, path) -> None:
    """Write :func:`to_openmetrics` output to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(to_openmetrics(snapshot))
