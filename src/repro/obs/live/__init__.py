"""Streaming telemetry: windows, SLOs, alerts, and live exporters.

This package is the *live* half of the observability layer.  Where
:mod:`repro.obs.metrics` aggregates a whole run and :mod:`repro.obs.inspect`
analyses it afterwards, ``repro.obs.live`` evaluates signals while a
serve run is still in flight:

* :mod:`~repro.obs.live.windows` -- tumbling-window and EWMA
  aggregators over the simulated clock (mergeable, deterministic);
* :mod:`~repro.obs.live.slo` -- declarative per-tenant SLOs with
  multi-window burn-rate evaluation;
* :mod:`~repro.obs.live.alerts` -- ordered threshold rules with
  hysteresis and pluggable actions;
* :mod:`~repro.obs.live.telemetry` -- the hub a
  :class:`~repro.serve.session.ServeSession` feeds, which also powers
  ``--live-admission``;
* :mod:`~repro.obs.live.export` -- OpenMetrics text exposition;
* :mod:`~repro.obs.live.top` -- the ``repro top`` terminal dashboard.

The package inherits the observability contract: nothing here runs
unless explicitly enabled, and when enabled it only reads values the
simulator already computed -- live telemetry attached to a serve run
never perturbs its results unless ``--live-admission`` opts the
admission policy into consuming the signals.
"""

from .alerts import AlertEngine, AlertRule
from .export import to_openmetrics, write_openmetrics
from .slo import SloConfig, SloEngine, burn_rate
from .telemetry import LiveTelemetry, default_rules
from .top import render_top, run_top
from .windows import Ewma, KeyedWindows, TumblingWindow, WindowAggregate

__all__ = [
    "AlertEngine",
    "AlertRule",
    "Ewma",
    "KeyedWindows",
    "LiveTelemetry",
    "SloConfig",
    "SloEngine",
    "TumblingWindow",
    "WindowAggregate",
    "burn_rate",
    "default_rules",
    "render_top",
    "run_top",
    "to_openmetrics",
    "write_openmetrics",
]
