"""``repro top``: a terminal dashboard over a (live) serve event log.

Tails a :class:`~repro.obs.sinks.JsonlSink` log written by ``repro
serve --events run.jsonl --flush-events 1`` and renders the per-tenant
table -- lifecycle state, latest windowed latency/thrash estimates,
SLO attainment, alert counts -- refreshed in place.  One-shot mode
(the default, and what CI exercises) renders a single frame and exits;
``--follow`` re-reads and re-renders until the log stops growing or
``--frames`` is exhausted.

Re-summarizing the whole log per frame is deliberate: serve logs are
tens of thousands of events at smoke scale, a full pass is
milliseconds, and it keeps the dashboard a pure function of the log
prefix (same prefix, same frame -- trivially testable).  Gzipped logs
(``.jsonl.gz``) are rejected: gzip members only terminate at close, so
there is nothing to tail (see ``docs/observability.md``).
"""

from __future__ import annotations

import time

from ..inspect import LogSummary, _table, summarize

#: ANSI clear-screen + home, prefixed in follow mode.
_CLEAR = "\x1b[2J\x1b[H"


def render_top(summary: LogSummary, path: str = "") -> str:
    """One dashboard frame for a serve log summary."""
    lines: list[str] = []
    meta = summary.meta
    header = "repro top"
    if path:
        header += f" -- {path}"
    if meta is not None:
        header += (f" [{meta.workload} seed {meta.seed} "
                   f"backend {meta.backend}]")
    lines.append(header)
    counts = summary.event_counts
    lines.append(
        f"events: {sum(counts.values())}  "
        f"windows: {counts.get('telemetry_window', 0)}  "
        f"violations: {counts.get('slo_violation', 0)}  "
        f"alerts: {counts.get('alert_fired', 0)}")
    if summary.alert_counts:
        fired = "  ".join(f"{name}x{n}" for name, n
                          in sorted(summary.alert_counts.items()))
        lines.append(f"alerts fired: {fired}")
    lines.append("")
    if not summary.tenants:
        lines.append("(no tenant events yet)")
        return "\n".join(lines)
    rows = []
    for tid in sorted(summary.tenants):
        t = summary.tenants[tid]
        if t.slo_attainment is None:
            slo_cell = "-"
        else:
            verdict = "" if t.slo_met is None \
                else (" ok" if t.slo_met else " MISS")
            slo_cell = f"{t.slo_attainment:.3f}{verdict}"
        rows.append([
            t.tenant, t.workload, t.state, t.waves, t.windows,
            f"{t.ewma_latency_us:.1f}" if t.windows else "-",
            f"{t.thrash_rate:.2f}" if t.windows else "-",
            t.slo_violations, slo_cell, t.alerts])
    lines.append(_table(
        ["tenant", "workload", "state", "waves", "windows",
         "ewma us", "thrash/wave", "violations", "slo att", "alerts"],
        rows))
    for objective, (attainment, met) in sorted(
            summary.service_attainment.items()):
        lines.append(f"service {objective}: {attainment:.3f} "
                     f"({'met' if met else 'MISSED'})")
    return "\n".join(lines)


def run_top(path, follow: bool = False, interval: float = 0.5,
            frames: int | None = None, out=None) -> int:
    """Render the dashboard; returns a process exit code.

    ``frames`` bounds the number of re-renders in follow mode (tests
    and CI use small bounds); unbounded follow stops once the log stops
    growing between frames after the first render.
    """
    import sys

    out = out if out is not None else sys.stdout
    if str(path).endswith(".gz"):
        print(f"repro top: cannot tail {path}: gzip logs only "
              f"terminate at close (use an uncompressed .jsonl)",
              file=sys.stderr)
        return 2
    if not follow:
        print(render_top(summarize(path), str(path)), file=out)
        return 0
    rendered = 0
    last_size = -1
    while frames is None or rendered < frames:
        summary = summarize(path)
        size = sum(summary.event_counts.values())
        print(_CLEAR + render_top(summary, str(path)), file=out,
              flush=True)
        rendered += 1
        if size == last_size and frames is None:
            break
        last_size = size
        if frames is None or rendered < frames:
            time.sleep(interval)
    return 0
