"""Windowed streaming aggregators for the live telemetry plane.

The serving layer needs *recent* signals -- latency over the last few
milliseconds, thrash per wave right now -- where the end-of-run
:class:`~repro.obs.metrics.MetricsRegistry` only offers whole-run
aggregates.  This module provides the three primitives the live plane
is built from:

* :class:`WindowAggregate` -- a mergeable summary of one window
  (count/total/min/max plus a ``bad`` counter for SLO bookkeeping).
  ``merge`` is associative and commutative, which is what lets
  multi-window burn-rate evaluation reuse the same closed windows at
  different horizons; the property suite pins this.
* :class:`TumblingWindow` -- fixed-width, non-overlapping windows over
  the *simulated* serving clock.  Window boundaries depend only on
  observation timestamps, never on host time, so closed-window
  sequences are bit-identical across replays and backends.
* :class:`Ewma` -- a deterministic exponentially-weighted moving
  average (plain float recurrence, no host state).

Everything here is pure bookkeeping over values the caller already
computed: nothing reads driver state, touches RNG streams, or consults
wall clocks, preserving the observability layer's bit-identical-on
guarantee.
"""

from __future__ import annotations

import math
from collections import deque


class WindowAggregate:
    """Mergeable summary of observations inside one window.

    ``bad`` counts observations flagged by the caller (e.g. waves whose
    latency exceeded the SLO target); ``bad_fraction`` is the ratio the
    burn-rate math consumes.  The empty aggregate is the identity
    element of :meth:`merge`.
    """

    __slots__ = ("count", "total", "vmin", "vmax", "bad")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.bad = 0

    def observe(self, value: float, bad: bool = False) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if bad:
            self.bad += 1

    def merge(self, other: "WindowAggregate") -> "WindowAggregate":
        """Combined aggregate; ``self`` and ``other`` are untouched."""
        out = WindowAggregate()
        out.count = self.count + other.count
        out.total = self.total + other.total
        out.vmin = min(self.vmin, other.vmin)
        out.vmax = max(self.vmax, other.vmax)
        out.bad = self.bad + other.bad
        return out

    @classmethod
    def merge_all(cls, aggregates) -> "WindowAggregate":
        out = cls()
        for agg in aggregates:
            out = out.merge(agg)
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self.vmax if self.count else 0.0

    @property
    def bad_fraction(self) -> float:
        return self.bad / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.vmin if self.count else 0.0,
                "max": self.maximum, "bad": self.bad}

    def __eq__(self, other) -> bool:
        if not isinstance(other, WindowAggregate):
            return NotImplemented
        return (self.count == other.count and self.total == other.total
                and self.vmin == other.vmin and self.vmax == other.vmax
                and self.bad == other.bad)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WindowAggregate(count={self.count}, total={self.total}, "
                f"bad={self.bad})")


class TumblingWindow:
    """Fixed-width tumbling windows over a monotonic simulated clock.

    Observations land in the window ``int(at_us // width_us)``; moving
    past a boundary closes every window up to the new one.  Closed
    windows are retained in a bounded history (``keep`` most recent) so
    multi-horizon burn rates can merge the last N without unbounded
    memory; freshly-closed windows are additionally staged for
    :meth:`drain` so the telemetry hub can emit one event per close.

    Time gaps produce explicitly *empty* closed windows (capped at the
    history bound) -- an idle tenant genuinely served zero waves in
    those windows, and burn-rate math must see that.
    """

    __slots__ = ("width_us", "keep", "closed", "_fresh", "_index",
                 "_current")

    def __init__(self, width_us: float, keep: int = 64) -> None:
        if width_us <= 0:
            raise ValueError(f"window width must be positive: {width_us}")
        self.width_us = float(width_us)
        self.keep = int(keep)
        #: (start_us, aggregate) pairs, oldest first, bounded.
        self.closed: deque = deque(maxlen=self.keep)
        self._fresh: list = []
        self._index = 0
        self._current = WindowAggregate()

    def _advance(self, index: int) -> None:
        # Close [self._index, index); large gaps only materialize the
        # last ``keep`` empty windows (older ones would be evicted from
        # the bounded history anyway).
        first = max(self._index, index - self.keep)
        if first > self._index:
            self._current = WindowAggregate()
            self._index = first
        while self._index < index:
            item = (self._index * self.width_us, self._current)
            self.closed.append(item)
            self._fresh.append(item)
            self._current = WindowAggregate()
            self._index += 1

    def observe(self, at_us: float, value: float, bad: bool = False) -> None:
        index = int(at_us // self.width_us)
        if index > self._index:
            self._advance(index)
        self._current.observe(value, bad)

    def roll(self, at_us: float) -> None:
        """Close every window strictly before ``at_us``'s window."""
        index = int(at_us // self.width_us)
        if index > self._index:
            self._advance(index)

    def drain(self) -> list:
        """``(start_us, aggregate)`` pairs closed since the last drain."""
        fresh, self._fresh = self._fresh, []
        return fresh

    @property
    def open_start_us(self) -> float:
        """Left edge of the currently-open window."""
        return self._index * self.width_us

    def recent(self, n: int) -> list:
        """The most recent ``n`` closed aggregates, oldest first."""
        if n <= 0:
            return []
        return [agg for _, agg in list(self.closed)[-n:]]

    def merged(self, n: int) -> WindowAggregate:
        """Merge of the most recent ``n`` closed windows."""
        return WindowAggregate.merge_all(self.recent(n))


class Ewma:
    """Deterministic exponentially-weighted moving average.

    ``value`` is ``None`` until the first update (so callers can
    distinguish "no signal yet" from a genuine zero), then follows the
    standard recurrence ``v <- alpha * x + (1 - alpha) * v``.  Pure
    float arithmetic: feeding the same sequence always yields the same
    value, on any backend.
    """

    __slots__ = ("alpha", "value")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self.alpha = float(alpha)
        self.value: float | None = None

    def update(self, sample: float) -> float:
        if self.value is None:
            self.value = float(sample)
        else:
            self.value = self.alpha * float(sample) \
                + (1.0 - self.alpha) * self.value
        return self.value

    def get(self, default: float = 0.0) -> float:
        return self.value if self.value is not None else default


class KeyedWindows:
    """Per-key (per-tenant) family of :class:`TumblingWindow`.

    Windows are created on first observation; iteration order is
    insertion order, which in the serving layer is deterministic tenant
    arrival order.
    """

    __slots__ = ("width_us", "keep", "_windows")

    def __init__(self, width_us: float, keep: int = 64) -> None:
        self.width_us = float(width_us)
        self.keep = int(keep)
        self._windows: dict = {}

    def window(self, key) -> TumblingWindow:
        win = self._windows.get(key)
        if win is None:
            win = TumblingWindow(self.width_us, keep=self.keep)
            self._windows[key] = win
        return win

    def observe(self, key, at_us: float, value: float,
                bad: bool = False) -> None:
        self.window(key).observe(at_us, value, bad)

    def roll(self, at_us: float) -> None:
        for win in self._windows.values():
            win.roll(at_us)

    def keys(self):
        return self._windows.keys()

    def items(self):
        return self._windows.items()

    def __contains__(self, key) -> bool:
        return key in self._windows

    def __len__(self) -> int:
        return len(self._windows)
