"""Simulation configuration (Table I of the paper).

Every row of Table I ("Configuration parameters of the simulated system")
maps to a field below; bold (default) values in the table are the dataclass
defaults.  A handful of additional calibration constants parameterize the
trace-driven timing model (documented in DESIGN.md) -- these have no
counterpart in the paper because the paper inherits them from GPGPU-Sim.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from dataclasses import dataclass, field

from .memory.layout import BASIC_BLOCK_SIZE, CHUNK_SIZE, GB, MB, PAGE_SIZE

#: Backends the driver's hot-loop kernels can run on (see repro.accel).
KNOWN_BACKENDS: tuple[str, ...] = ("python", "numba")

#: Threshold growth functions accepted by PolicyConfig.threshold_variant
#: (Equation 1 plus the design-space variants of repro.core.variants).
KNOWN_THRESHOLD_VARIANTS: tuple[str, ...] = (
    "multiplicative", "linear", "exponential", "occupancy-only")


def default_backend() -> str:
    """Backend selected by ``REPRO_BACKEND`` (``python`` when unset).

    This is the dataclass default of :class:`SimulationConfig.backend`,
    so the environment variable reaches every config built without an
    explicit backend -- including the whole test suite, which is how CI
    runs the same tests under both backends.  Values are not validated
    here; :meth:`SimulationConfig.validate` rejects unknown names with
    an actionable message.
    """
    return os.environ.get("REPRO_BACKEND", "").strip().lower() or "python"


class MigrationPolicy(enum.Enum):
    """Far-access handling schemes compared in the evaluation (Section VI).

    * ``DISABLED`` -- the state-of-the-art baseline: remote access is not
      enabled and data migrates at first touch (with the tree prefetcher
      and 2MB LRU replacement).
    * ``ALWAYS`` -- static access-counter threshold delayed migration from
      the start of execution (Volta-style access counters).
    * ``OVERSUB`` -- static-threshold delayed migration enabled only after
      the device memory becomes oversubscribed.
    * ``ADAPTIVE`` -- the paper's contribution: dynamic access-counter
      threshold (Equation 1) with LFU replacement.
    """

    DISABLED = "disabled"
    ALWAYS = "always"
    OVERSUB = "oversub"
    ADAPTIVE = "adaptive"

    @property
    def uses_access_counters(self) -> bool:
        """Whether the scheme consults access counters to delay migration."""
        return self is not MigrationPolicy.DISABLED


class ReplacementPolicy(enum.Enum):
    """Page replacement policy (Table I: LRU default, LFU for the framework)."""

    LRU = "lru"
    LFU = "lfu"


class EvictionGranularity(enum.Enum):
    """Eviction unit (Table I: 2MB default, 64KB optional)."""

    CHUNK_2MB = CHUNK_SIZE
    BLOCK_64KB = BASIC_BLOCK_SIZE


class PrefetcherKind(enum.Enum):
    """Hardware prefetcher selection (Table I: tree-based default)."""

    TREE = "tree"
    NONE = "none"
    SEQUENTIAL = "sequential"
    RANDOM = "random"


@dataclass(frozen=True)
class GpuConfig:
    """GPU core organization (Table I, GeForce GTX 1080 Ti, Pascal-like)."""

    num_sms: int = 28
    cores_per_sm: int = 128
    clock_mhz: float = 1481.0
    max_ctas_per_sm: int = 32
    max_warps_per_sm: int = 64
    warp_size: int = 32
    #: Device-local DRAM bandwidth in bytes/s (GTX 1080 Ti: 484 GB/s).
    dram_bandwidth: float = 484.0e9
    #: Device DRAM access latency in core cycles (Table I).
    dram_latency_cycles: int = 100
    #: Page table walk latency in core cycles (Table I).
    page_walk_latency_cycles: int = 100

    @property
    def clock_hz(self) -> float:
        """Core clock in Hz."""
        return self.clock_mhz * 1.0e6

    def us_to_cycles(self, micros: float) -> int:
        """Convert microseconds to (rounded) core cycles."""
        return int(round(micros * self.clock_mhz))

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.cores_per_sm <= 0:
            raise ValueError("GPU must have positive SM/core counts")
        if self.clock_mhz <= 0:
            raise ValueError("clock must be positive")


@dataclass(frozen=True)
class InterconnectConfig:
    """CPU-GPU interconnect (Table I: PCIe 3.0 16x, 8 GT/s per lane/direction)."""

    #: Effective per-direction bandwidth in bytes/s.  PCIe 3.0 x16 has a
    #: 15.75 GB/s payload ceiling; 16 GB/s is the figure the paper's
    #: simulator uses (8 GT/s * 16 lanes * 128b/130b).
    bandwidth: float = 16.0e9
    #: One-way interconnect latency in GPU core cycles (Table I).
    latency_cycles: int = 100
    #: Latency of a remote zero-copy access in GPU core cycles (Table I).
    remote_access_latency_cycles: int = 200
    #: Far-fault handling latency in microseconds (Table I: 45us on Pascal).
    fault_handling_us: float = 45.0
    #: Number of far-faults the driver resolves per handling batch.  The
    #: real UVM fault buffer is drained in batches (default 256 entries);
    #: all faults in one batch share one handling round trip.
    fault_batch_size: int = 256
    #: Payload bytes moved by one remote zero-copy transaction (a warp's
    #: coalesced 128B sector).
    remote_transaction_bytes: int = 128
    #: Multiplicative protocol/fragmentation overhead for small remote
    #: transactions relative to streaming DMA efficiency (a sparse 4-8B
    #: access still burns a full transaction plus protocol overhead).
    remote_overhead: float = 4.0
    #: Number of remote transactions that can overlap in flight (limits
    #: how much TLP hides the 200-cycle remote latency; sparse dependent
    #: accesses cannot keep many requests outstanding).
    remote_concurrency: int = 4

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.fault_batch_size <= 0:
            raise ValueError("fault_batch_size must be positive")
        if self.remote_concurrency <= 0:
            raise ValueError("remote_concurrency must be positive")


@dataclass(frozen=True)
class MemoryConfig:
    """Device memory capacity and management granularities."""

    #: Device memory capacity in bytes available to managed allocations.
    #: Experiments set this from the workload footprint and the desired
    #: oversubscription percentage (the paper controls free space with
    #: pinned dummy allocations rather than scaling working sets).
    device_capacity: int = 2 * GB
    page_size: int = PAGE_SIZE
    eviction_granularity: EvictionGranularity = EvictionGranularity.CHUNK_2MB
    replacement: ReplacementPolicy = ReplacementPolicy.LRU
    #: Enable the hardware prefetcher (Table I).
    prefetcher_enabled: bool = True
    #: Which prefetcher to run when enabled (tree-based by default).
    prefetcher: PrefetcherKind = PrefetcherKind.TREE
    #: Blocks pulled per fault by the sequential/random prefetchers.
    prefetch_degree: int = 4

    def __post_init__(self) -> None:
        if self.device_capacity < CHUNK_SIZE:
            raise ValueError(
                f"device capacity {self.device_capacity} smaller than one 2MB chunk"
            )
        if self.page_size != PAGE_SIZE:
            raise ValueError("only 4KB pages are supported")
        if self.prefetch_degree < 1:
            raise ValueError("prefetch_degree must be >= 1")


@dataclass(frozen=True)
class PolicyConfig:
    """Migration policy knobs (Section IV / Table I)."""

    policy: MigrationPolicy = MigrationPolicy.ADAPTIVE
    #: Static access counter threshold ts (Table I: 8, 16, 32; default 8).
    static_threshold: int = 8
    #: Multiplicative migration penalty p (Table I: 2, 4, 8, 1048576).
    migration_penalty: int = 8
    #: Bits of the 32-bit counter register used for the access count.
    counter_bits: int = 27
    #: Bits used for the round-trip (eviction) count.
    roundtrip_bits: int = 5
    #: Judge the adaptive threshold against the paper's historic
    #: counters (local + remote, never reset).  Setting this to False is
    #: the ablation of Section IV's "Access Counter Maintenance": the
    #: dynamic threshold is then compared against plain Volta hardware
    #: counters (remote-only, reset on migration).
    historic_counters: bool = True
    #: Threshold growth function for the ADAPTIVE scheme:
    #: ``multiplicative`` is the paper's Equation 1; ``linear``,
    #: ``exponential`` and ``occupancy-only`` are the design-space
    #: variants of :mod:`repro.core.variants`.
    threshold_variant: str = "multiplicative"

    def __post_init__(self) -> None:
        if self.static_threshold < 1:
            raise ValueError("static threshold must be >= 1")
        if self.migration_penalty < 1:
            raise ValueError("migration penalty must be >= 1")
        if self.counter_bits + self.roundtrip_bits != 32:
            raise ValueError("counter register must total 32 bits")
        if self.threshold_variant not in KNOWN_THRESHOLD_VARIANTS:
            raise ValueError(
                f"unknown threshold variant {self.threshold_variant!r}; "
                f"choose from {KNOWN_THRESHOLD_VARIANTS}")

    @property
    def counter_max(self) -> int:
        """Saturation value of the access-count field."""
        return (1 << self.counter_bits) - 1

    @property
    def roundtrip_max(self) -> int:
        """Saturation value of the round-trip field."""
        return (1 << self.roundtrip_bits) - 1


@dataclass(frozen=True)
class TimingConfig:
    """Calibration constants of the wave-based cost model (DESIGN.md)."""

    #: Fallback compute cycles charged per memory access when a wave does
    #: not carry its own estimate (workloads set per-kernel arithmetic
    #: intensity themselves; see ``compute_per_access`` in their params).
    compute_cycles_per_access: float = 1.0
    #: Bytes touched by one coalesced access (one 128B sector).
    bytes_per_access: int = 128
    #: Fixed per-wave scheduling overhead in cycles.
    wave_overhead_cycles: int = 200

    def __post_init__(self) -> None:
        if self.bytes_per_access <= 0:
            raise ValueError("bytes_per_access must be positive")


@dataclass(frozen=True)
class FaultConfig:
    """Transient-fault model of the simulated UVM transfer path.

    Real UVM stacks treat transfer failure and retry as first-class
    (GPUVM, arXiv:2411.05309): a DMA can be dropped or a device frame
    allocation can transiently fail under pressure.  The driver retries a
    failed migration with exponential backoff and, once the retry budget
    is exhausted, degrades the access to the remote zero-copy path
    instead of crashing the run.

    Both rates default to 0.0, which disables injection entirely: no
    randomness is consumed and results are bit-identical to a simulator
    without the fault model.
    """

    #: Probability that one block migration's PCIe transfer fails.
    transfer_fault_rate: float = 0.0
    #: Probability that one migration's device frame allocation fails.
    migration_fault_rate: float = 0.0
    #: Re-attempts after a failed migration before degrading to remote.
    max_retries: int = 3
    #: Backoff wait before the first retry, in microseconds.
    retry_backoff_us: float = 5.0
    #: Growth factor of the backoff wait per successive retry.
    backoff_multiplier: float = 2.0
    #: Correlated fault storms: a two-state Markov chain (calm/storm)
    #: stepped once per migration site.  ``burst_on_prob`` is the
    #: calm->storm transition probability per step (0.0 disables the
    #: chain entirely: no extra randomness is consumed and behavior is
    #: bit-identical to the uncorrelated model).
    burst_on_prob: float = 0.0
    #: Storm->calm transition probability per step.
    burst_off_prob: float = 0.25
    #: Multiplier applied to both fault rates while the storm is on.
    burst_multiplier: float = 8.0

    def __post_init__(self) -> None:
        for name in ("transfer_fault_rate", "migration_fault_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(
                    f"{name} must lie in [0.0, 1.0), got {rate!r} "
                    "(1.0 would make every migration fail forever)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_us < 0.0:
            raise ValueError("retry_backoff_us must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        for name in ("burst_on_prob", "burst_off_prob"):
            prob = getattr(self, name)
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{name} must lie in [0.0, 1.0], "
                                 f"got {prob!r}")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1.0 "
                             "(storms intensify faults, never mask them)")
        if self.burst_enabled:
            for name in ("transfer_fault_rate", "migration_fault_rate"):
                boosted = getattr(self, name) * self.burst_multiplier
                if boosted >= 1.0:
                    raise ValueError(
                        f"{name} * burst_multiplier = {boosted:g} reaches "
                        "1.0; a storm must not make every attempt fail")

    @property
    def enabled(self) -> bool:
        """Whether any fault class can actually fire."""
        return (self.transfer_fault_rate > 0.0
                or self.migration_fault_rate > 0.0)

    @property
    def burst_enabled(self) -> bool:
        """Whether the Markov storm chain modulates the fault rates."""
        return self.burst_on_prob > 0.0

    def total_backoff_us(self, n_failures: int) -> float:
        """Cumulative backoff wait after ``n_failures`` failed attempts."""
        if n_failures <= 0:
            return 0.0
        m = self.backoff_multiplier
        if m == 1.0:
            return self.retry_backoff_us * n_failures
        return self.retry_backoff_us * (m ** n_failures - 1.0) / (m - 1.0)


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level configuration bundle handed to :class:`repro.sim.Simulator`."""

    gpu: GpuConfig = field(default_factory=GpuConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    timing: TimingConfig = field(default_factory=TimingConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Capture per-page access histograms (Figure 2) -- adds overhead.
    collect_page_histogram: bool = False
    #: Capture (cycle, page, is_write) access samples (Figure 3).
    collect_access_trace: bool = False
    #: Capture per-wave memory-pressure samples (occupancy timeline).
    collect_timeline: bool = False
    #: Re-verify driver accounting invariants after every wave (slow;
    #: catches residency/device-ledger drift at the wave that caused it).
    debug_invariants: bool = False
    seed: int = 0
    #: Hot-loop kernel backend: ``python`` (numpy reference, the
    #: bit-identity baseline) or ``numba`` (compiled loop kernels from
    #: :mod:`repro.accel`, falling back to python with a warning when
    #: numba is not installed).  Defaults to ``$REPRO_BACKEND``.
    backend: str = field(default_factory=default_backend)
    #: Contiguous chunk-aligned shards the per-wave decision phase is
    #: partitioned into (1 = unsharded).  Results are bit-identical for
    #: any shard count; see :mod:`repro.accel.sharding`.
    shards: int = 1

    def replace(self, **kwargs) -> "SimulationConfig":
        """Return a copy with top-level fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> "SimulationConfig":
        """Check every sub-config plus cross-field invariants.

        Dataclass construction already rejects locally-invalid fields;
        this re-checks them (guarding against ``object.__setattr__``
        mutation) and adds the cross-config invariants no single
        ``__post_init__`` can see.  All problems are reported at once in
        a single ``ValueError`` with actionable, field-qualified
        messages.  Returns ``self`` so calls chain.
        """
        errors: list[str] = []
        for name in ("gpu", "interconnect", "memory", "policy", "timing",
                     "faults"):
            try:
                getattr(self, name).__post_init__()
            except ValueError as exc:
                errors.append(f"{name}: {exc}")
        if self.policy.static_threshold > self.policy.counter_max:
            errors.append(
                f"policy: static_threshold {self.policy.static_threshold} "
                f"exceeds what a {self.policy.counter_bits}-bit access "
                f"counter can count ({self.policy.counter_max}); lower the "
                "threshold or widen counter_bits")
        min_capacity = self.memory.eviction_granularity.value
        if self.memory.device_capacity < min_capacity:
            errors.append(
                f"memory: device_capacity {self.memory.device_capacity} is "
                f"below one eviction unit ({min_capacity}); nothing could "
                "ever be resident")
        if self.backend not in KNOWN_BACKENDS:
            errors.append(
                f"backend: unknown backend {self.backend!r}; choose from "
                f"{KNOWN_BACKENDS} (set via --backend or REPRO_BACKEND)")
        if self.shards < 1:
            errors.append(f"shards: must be >= 1, got {self.shards}")
        if errors:
            raise ValueError(
                "invalid SimulationConfig:\n  - " + "\n  - ".join(errors))
        return self

    def with_policy(self, policy: MigrationPolicy, **policy_kwargs) -> "SimulationConfig":
        """Return a copy running under ``policy``.

        The baseline keeps LRU replacement; every counter-based scheme uses
        the framework's simplified LFU (Section VI), matching the paper's
        experimental setup.
        """
        pol = dataclasses.replace(self.policy, policy=policy, **policy_kwargs)
        repl = (
            ReplacementPolicy.LRU
            if policy is MigrationPolicy.DISABLED
            else ReplacementPolicy.LFU
        )
        mem = dataclasses.replace(self.memory, replacement=repl)
        return dataclasses.replace(self, policy=pol, memory=mem)

    def with_device_capacity(self, capacity_bytes: int) -> "SimulationConfig":
        """Return a copy with the device memory capacity changed."""
        mem = dataclasses.replace(self.memory, device_capacity=int(capacity_bytes))
        return dataclasses.replace(self, memory=mem)

    def with_eviction_granularity(
            self, granularity: EvictionGranularity) -> "SimulationConfig":
        """Return a copy evicting at the given granularity (Table I)."""
        mem = dataclasses.replace(self.memory,
                                  eviction_granularity=granularity)
        return dataclasses.replace(self, memory=mem)

    def with_prefetcher(self, kind: PrefetcherKind,
                        degree: int | None = None) -> "SimulationConfig":
        """Return a copy running the given prefetcher strategy."""
        kwargs = {"prefetcher": kind,
                  "prefetcher_enabled": kind is not PrefetcherKind.NONE}
        if degree is not None:
            kwargs["prefetch_degree"] = degree
        mem = dataclasses.replace(self.memory, **kwargs)
        return dataclasses.replace(self, memory=mem)

    def with_faults(self, **fault_kwargs) -> "SimulationConfig":
        """Return a copy with fault-injection fields replaced."""
        return dataclasses.replace(
            self, faults=dataclasses.replace(self.faults, **fault_kwargs))


#: Arrival processes the serving layer's traffic generator supports.
KNOWN_ARRIVAL_PROCESSES: tuple[str, ...] = ("poisson", "bursty")

#: Wave schedulers the serving layer supports (``serve.scheduler``).
KNOWN_SCHEDULERS: tuple[str, ...] = ("round_robin", "drr")


@dataclass(frozen=True)
class ServeConfig:
    """Multi-tenant serving-layer knobs (``repro serve``).

    The serving layer (:mod:`repro.serve`) spawns workload instances as
    *tenants* from a seeded open-loop arrival process, admits them
    against the shared device capacity, and interleaves their wave
    streams onto one driver.  Three watermarks express graceful
    degradation, engaged in escalation order as aggregate
    oversubscription rises:

    1. ``throttle_watermark`` -- suspend the heaviest-thrashing
       tenant's stream (the paper's Section VIII throttling proposal);
    2. ``admit_watermark`` -- stop admitting, queue new arrivals
       (bounded queue);
    3. ``shed_watermark`` -- shed arrivals outright (deterministically,
       never by timeout), also engaged whenever the queue is full.

    Every decision is a pure function of ``(seed, arrival trace,
    capacity)``: a serve run replays bit-identically for a fixed seed.
    """

    #: Tenant arrivals per second of *simulated* time (open loop: the
    #: generator never waits for completions).
    arrival_rate: float = 400.0
    #: Maximum number of tenant arrivals to generate.
    tenants: int = 12
    #: Optional arrival window in simulated milliseconds; arrivals past
    #: it are not generated (None: cut by ``tenants`` alone).
    duration_ms: float | None = None
    #: Arrival process: ``poisson`` (memoryless) or ``bursty`` (two-state
    #: Markov-modulated Poisson: calm/burst sojourns with the burst
    #: state multiplying the arrival rate).
    process: str = "poisson"
    #: Arrival-rate multiplier inside a burst (bursty process only).
    burst_factor: float = 8.0
    #: Mean burst-state sojourn in simulated milliseconds.
    burst_len_ms: float = 2.0
    #: Mean calm-state sojourn in simulated milliseconds.
    calm_len_ms: float = 10.0
    #: Workloads tenants are drawn from (seeded uniform choice).
    workload_mix: tuple[str, ...] = ("ra", "sssp", "bfs", "fdtd")
    #: Preset scale every tenant runs at.
    scale: str = "tiny"
    #: Shared device memory capacity in MB (tenants oversubscribe it).
    capacity_mb: int = 32
    #: Live-footprint oversubscription (live blocks / capacity blocks)
    #: up to which new arrivals are admitted immediately.
    admit_watermark: float = 1.5
    #: Projected oversubscription past which an arrival is shed outright.
    shed_watermark: float = 2.5
    #: Live oversubscription at which the throttle engages (suspends the
    #: heaviest-thrashing tenant's wave stream).
    throttle_watermark: float = 1.2
    #: Bounded admission queue depth; a full queue sheds.
    queue_depth: int = 8
    #: Waves each runnable tenant contributes per scheduler round.
    quantum: int = 4
    #: Scheduler rounds a throttled tenant sits out.
    throttle_rounds: int = 8
    #: Drive the throttle from *live* windowed interference telemetry
    #: (EWMA thrash migrations per wave) instead of the static
    #: oversubscription watermark alone.  Off by default: the watermark
    #: path stays bit-identical to runs without telemetry attached.
    live_admission: bool = False
    #: EWMA thrash-migrations-per-wave level at which live admission
    #: engages the throttle (only read when ``live_admission`` is on).
    live_thrash_threshold: float = 0.25
    #: Tumbling-window width for live telemetry, simulated milliseconds.
    window_ms: float = 5.0
    #: Wave scheduler: ``round_robin`` (legacy quantum interleaving,
    #: the reference path) or ``drr`` (deficit-weighted fair queuing:
    #: each round a tenant accrues ``weight * quantum`` deficit and
    #: runs ``floor(deficit)`` waves; throttling decays the weight by
    #: ``throttle_decay`` instead of suspending the stream).
    scheduler: str = "round_robin"
    #: Fuse each scheduler sub-round's waves (one per distinct tenant)
    #: into a single segmented driver dispatch.  A pure perf hint like
    #: ``--shards``: results are bit-identical either way.
    batch_waves: bool = False
    #: Configured per-tenant shares for the ``drr`` scheduler; tenant
    #: ``i`` gets ``weights[i % len(weights)]``.  Empty: every tenant
    #: weighs 1.0.  Ignored by ``round_robin``.
    weights: tuple[float, ...] = ()
    #: Weight multiplier applied to a throttled tenant under ``drr``
    #: (graceful slowdown instead of the round_robin full suspension).
    throttle_decay: float = 0.25
    seed: int = 0

    def replace(self, **kwargs) -> "ServeConfig":
        """Return a copy with fields replaced."""
        return dataclasses.replace(self, **kwargs)

    def validate(self) -> "ServeConfig":
        """Check field and cross-field invariants; returns ``self``."""
        errors: list[str] = []
        if self.arrival_rate <= 0.0:
            errors.append(f"arrival_rate must be positive, got "
                          f"{self.arrival_rate!r}")
        if self.tenants < 1:
            errors.append(f"tenants must be >= 1, got {self.tenants}")
        if self.duration_ms is not None and self.duration_ms <= 0.0:
            errors.append(f"duration_ms must be positive, got "
                          f"{self.duration_ms!r}")
        if self.process not in KNOWN_ARRIVAL_PROCESSES:
            errors.append(f"unknown arrival process {self.process!r}; "
                          f"choose from {KNOWN_ARRIVAL_PROCESSES}")
        if self.burst_factor < 1.0:
            errors.append(f"burst_factor must be >= 1.0, got "
                          f"{self.burst_factor!r}")
        if self.burst_len_ms <= 0.0 or self.calm_len_ms <= 0.0:
            errors.append("burst_len_ms and calm_len_ms must be positive")
        if not self.workload_mix:
            errors.append("workload_mix must name at least one workload")
        if self.capacity_mb * MB < CHUNK_SIZE:
            errors.append(f"capacity_mb {self.capacity_mb} is below one "
                          "2MB chunk")
        if self.throttle_watermark <= 0.0:
            errors.append("throttle_watermark must be positive")
        if not (self.throttle_watermark <= self.admit_watermark
                <= self.shed_watermark):
            errors.append(
                f"watermarks must escalate: throttle "
                f"({self.throttle_watermark}) <= admit "
                f"({self.admit_watermark}) <= shed ({self.shed_watermark}) "
                "-- degradation engages throttle, then queue, then shed")
        if self.queue_depth < 1:
            errors.append(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.quantum < 1:
            errors.append(f"quantum must be >= 1, got {self.quantum}")
        if self.throttle_rounds < 1:
            errors.append(f"throttle_rounds must be >= 1, got "
                          f"{self.throttle_rounds}")
        if self.live_thrash_threshold < 0.0:
            errors.append(f"live_thrash_threshold must be >= 0, got "
                          f"{self.live_thrash_threshold!r}")
        if self.window_ms <= 0.0:
            errors.append(f"window_ms must be positive, got "
                          f"{self.window_ms!r}")
        if self.scheduler not in KNOWN_SCHEDULERS:
            errors.append(f"unknown scheduler {self.scheduler!r}; "
                          f"choose from {KNOWN_SCHEDULERS}")
        if any(w <= 0.0 for w in self.weights):
            errors.append(f"weights must all be positive, got "
                          f"{self.weights!r}")
        if not (0.0 < self.throttle_decay <= 1.0):
            errors.append(f"throttle_decay must be in (0, 1], got "
                          f"{self.throttle_decay!r}")
        if errors:
            raise ValueError(
                "invalid ServeConfig:\n  - " + "\n  - ".join(errors))
        return self

    @property
    def capacity_bytes(self) -> int:
        """Shared device capacity in bytes."""
        return self.capacity_mb * MB

    @property
    def duration_us(self) -> float | None:
        """Arrival window in simulated microseconds (None: unbounded)."""
        return None if self.duration_ms is None else self.duration_ms * 1e3

    def as_dict(self) -> dict:
        """Flat JSON-safe encoding (archived in serve-run manifests)."""
        d = dataclasses.asdict(self)
        d["workload_mix"] = list(self.workload_mix)
        d["weights"] = list(self.weights)
        return d


def capacity_for_oversubscription(footprint_bytes: int, oversubscription: float = 1.0) -> int:
    """Device capacity that makes ``footprint_bytes`` oversubscribe it.

    The paper emulates N% oversubscription by shrinking the free device
    space so that the working set is N% of it: at 125% oversubscription the
    capacity is ``footprint / 1.25``.  Factors below 1.0 model working
    sets that fit with slack (e.g. 0.8 leaves 20% headroom -- the
    "no oversubscription" regime of Figures 4 and 5).  The result is
    rounded *up* to a whole 2MB chunk so a factor of exactly 1.0 never
    spuriously evicts.
    """
    if oversubscription <= 0.0:
        raise ValueError(
            f"oversubscription factor must be positive, got "
            f"{oversubscription!r} (1.25 means the working set is 125% of "
            "device capacity)")
    if oversubscription > 64.0:
        raise ValueError(
            f"oversubscription factor {oversubscription!r} is implausibly "
            "high (> 64x); levels are fractions, not percentages -- pass "
            "1.25, not 125")
    cap = int(footprint_bytes / oversubscription)
    # Round up to a whole 2MB chunk so oversubscription == 1.0 never
    # spuriously evicts (capacity must cover the full working set).
    cap += (-cap) % CHUNK_SIZE
    return max(cap, CHUNK_SIZE)
