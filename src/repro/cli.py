"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``
    Simulate one workload under one configuration and print the result
    summary (optionally with per-allocation access histograms).
``compare``
    Run all four migration policies on one workload at one
    oversubscription level and print normalized runtimes.
``figure``
    Regenerate one of the paper's tables/figures and print the
    paper-vs-measured comparison (``--jobs N`` fans the experiment
    grid out over worker processes).
``sweep``
    Map a workload's runtime across oversubscription levels and
    policies (also ``--jobs``-parallel).
``trace``
    Record a workload's access trace to a file, or replay a trace file
    under a chosen configuration.
``inspect``
    Summarize a structured event log recorded with ``--events``:
    top-thrashing blocks and the threshold trajectory per allocation.
``serve``
    Multi-tenant open-loop serving run: seeded tenant arrivals admitted
    against a shared device capacity, wave streams interleaved onto one
    driver, graceful throttle/queue/shed degradation under overload.
``runs``
    List the archived runs under the run store.
``diff``
    Compare two archived runs: per-metric deltas, config changes, and
    (when both event logs were archived) round-trip quantiles,
    thrashing-set differences and ``t_d`` trajectories.
``config``
    Validate declarative scenario configs (``repro config validate``)
    or print one fully resolved (``repro config show``); the scenario
    format is documented in ``docs/scenarios.md``.
``list``
    Show available workloads, scales, policies and figures.

``run``, ``sweep`` and ``serve`` also accept declarative YAML scenario
configs (``--config scenario.yaml``; for ``sweep`` additionally
``--config-dir configs/``) in place of flags -- see the ``configs/``
library and ``docs/scenarios.md``.  Archived config-driven runs embed
the fully resolved scenario in their manifest, so ``repro diff``
explains them by scenario-key deltas.

The simulation commands (``run``, ``trace replay``) accept the
observability flags ``--events out.jsonl[.gz]`` (structured event
log), ``--metrics out.json`` (counter/histogram rollup), ``--profile``
(per-phase wall-clock breakdown), ``--timeline out.trace.json``
(Chrome-trace export for Perfetto), and ``--archive`` (persist the run
under ``.repro/runs/<run_id>/`` for later ``repro diff``); the grid
commands (``figure``, ``sweep``) accept ``--metrics`` for per-cell
timing and retry rollups, ``--archive`` to file every grid cell under
a shared sweep id, and ``--trace-cache DIR`` to record each access
stream once and replay it memory-mapped across all cells.  All of them
are off by default and cost nothing when off.
"""

from __future__ import annotations

import argparse
import sys

from . import analysis
from .config import (
    EvictionGranularity,
    MigrationPolicy,
    PrefetcherKind,
    SimulationConfig,
)
from .analysis.tables import format_table
from .sim.simulator import Simulator
from .workloads import SCALES, make_workload, workload_names


def _apply_backend(cfg: SimulationConfig, args) -> SimulationConfig:
    """Fold the ``--backend`` / ``--shards`` flags into ``cfg``.

    Both default to ``None`` meaning *inherit*: the config's own
    defaults already honour the ``REPRO_BACKEND`` environment variable,
    so only an explicit flag overrides.
    """
    backend = getattr(args, "backend", None)
    if backend is not None:
        cfg = cfg.replace(backend=backend)
    shards = getattr(args, "shards", None)
    if shards is not None:
        cfg = cfg.replace(shards=shards)
    return cfg


def _build_config(args) -> SimulationConfig:
    cfg = SimulationConfig(
        seed=args.seed,
        collect_page_histogram=getattr(args, "histogram", False),
        debug_invariants=getattr(args, "debug_invariants", False),
    )
    cfg = _apply_backend(cfg, args)
    cfg = cfg.with_policy(MigrationPolicy(args.policy),
                          static_threshold=args.ts,
                          migration_penalty=args.penalty)
    if getattr(args, "evict", "2mb") == "64kb":
        cfg = cfg.with_eviction_granularity(EvictionGranularity.BLOCK_64KB)
    if getattr(args, "prefetcher", "tree") != "tree":
        cfg = cfg.with_prefetcher(PrefetcherKind(args.prefetcher),
                                  degree=args.prefetch_degree)
    if getattr(args, "fault_rate", 0.0) or getattr(args,
                                                   "migration_fault_rate",
                                                   0.0):
        try:
            cfg = cfg.with_faults(
                transfer_fault_rate=args.fault_rate,
                migration_fault_rate=args.migration_fault_rate,
                max_retries=args.fault_retries,
                burst_on_prob=getattr(args, "fault_burst_on", 0.0),
                burst_off_prob=getattr(args, "fault_burst_off", 0.25),
                burst_multiplier=getattr(args, "fault_burst_mult", 8.0))
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}") from None
    return cfg


def _make_workload(name: str, scale: str):
    """Instantiate a workload, turning registry KeyErrors into CLI errors."""
    try:
        return make_workload(name, scale)
    except KeyError as exc:
        raise SystemExit(f"repro: {exc.args[0]}") from None


def _grid_options(args):
    """Build GridOptions from the resilience flags (figure/sweep)."""
    from .analysis import GridOptions
    registry = None
    if getattr(args, "metrics", None):
        from .obs import MetricsRegistry
        registry = MetricsRegistry()
    store = None
    if getattr(args, "archive", False):
        from .obs.store import RunStore
        store = RunStore(getattr(args, "runs", None))
    try:
        return GridOptions(retries=args.retries,
                           cell_timeout=args.cell_timeout,
                           checkpoint=args.checkpoint,
                           resume=args.resume,
                           metrics=registry,
                           archive=store,
                           trace_cache=getattr(args, "trace_cache", None),
                           backend=getattr(args, "backend", None),
                           shards=getattr(args, "shards", None))
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}") from None


def _finish_grid_metrics(grid, args) -> None:
    """Write the grid runner's metric rollup after a figure/sweep."""
    if grid.metrics is not None:
        grid.metrics.write_json(args.metrics)
        print(f"[grid metrics written to {args.metrics}]")
    if grid.archive is not None:
        print(f"[grid cells archived under {grid.archive.root}; list with "
              f"`repro runs`, compare with `repro diff`]")


def _make_obs(args):
    """Build an Observability handle from the simulation obs flags.

    Returns ``None`` when every flag (``--events``, ``--metrics``,
    ``--profile``, ``--timeline``, ``--archive``) is off, which keeps
    the simulation on the zero-overhead uninstrumented path.
    """
    events = getattr(args, "events", None)
    metrics = getattr(args, "metrics", None)
    profile = getattr(args, "profile", False)
    timeline = getattr(args, "timeline", None)
    archive = getattr(args, "archive", False)
    prom = getattr(args, "prom", None)
    if not (events or metrics or profile or timeline or archive or prom):
        return None
    from .obs import Observability
    try:
        return Observability.create(
            events_path=events, metrics=bool(metrics) or bool(prom),
            profile=profile, timeline=bool(timeline),
            events_flush=getattr(args, "flush_events", None))
    except ValueError as exc:  # e.g. --flush-events on a .gz log
        raise SystemExit(f"repro: {exc}")


def _begin_archive(args, cfg, workload_name: str, obs,
                   scenario: dict | None = None,
                   scale: str | None = None,
                   oversub: float | None = None):
    """Open a run-archive slot and stream the event log into it.

    Returns the open :class:`~repro.obs.store.RunWriter` (or ``None``
    when ``--archive`` is off).  The manifest -- and with it the
    content-addressed run id -- is derived *before* the simulation
    runs, so the archived event log can be written in place rather
    than copied afterwards.  ``scenario`` (a fully resolved scenario
    mapping) is embedded in the manifest config and named in
    ``manifest.scenario`` for config-driven runs, so ``repro diff``
    can explain two runs by their scenario deltas.
    """
    if not getattr(args, "archive", False):
        return None
    from .analysis.checkpoint import encode_config
    from .obs import JsonlSink
    from .obs.store import RunManifest, RunStore, git_info
    store = RunStore(getattr(args, "runs", None))
    config = encode_config(cfg)
    if scenario is not None:
        config = {"sim": config, "scenario": scenario}
    manifest = RunManifest.create(
        kind="run", workload=workload_name,
        policy=cfg.policy.policy.value,
        scale=scale if scale is not None else getattr(args, "scale", "-"),
        seed=cfg.seed,
        oversubscription=(oversub if oversub is not None
                          else getattr(args, "oversub", None)),
        config=config, git=git_info(),
        scenario=scenario.get("name") if scenario is not None else None)
    writer = store.open_run(manifest)
    obs.bus.attach(JsonlSink(writer.events_path))
    return writer


def _finish_archive(writer, result, obs) -> None:
    """Commit an archived run after its sinks have been flushed."""
    if writer is None:
        return
    metrics = obs.metrics.as_dict() if obs.metrics is not None else None
    run_id = writer.commit(result, metrics=metrics)
    print(f"[archived as {run_id}; list with `repro runs`, compare with "
          f"`repro diff {run_id} <other-run>`]")


def _finish_obs(obs, args) -> None:
    """Flush observability outputs after a simulation command."""
    if obs is None:
        return
    obs.close()
    # Artifact notes are status, not results: stderr keeps --json
    # stdout a clean machine-readable document.
    def note(msg):
        print(msg, file=sys.stderr)

    if getattr(args, "metrics", None):
        obs.metrics.write_json(args.metrics)
        note(f"[metrics written to {args.metrics}]")
    if getattr(args, "events", None):
        note(f"[events written to {args.events}; summarize with "
             f"`repro inspect {args.events}`]")
    if getattr(args, "timeline", None):
        obs.timeline.write(args.timeline)
        note(f"[timeline written to {args.timeline}; open it in Perfetto "
             f"(ui.perfetto.dev) or chrome://tracing]")
    if getattr(args, "prom", None):
        from .obs.live.export import write_openmetrics
        write_openmetrics(obs.metrics, args.prom)
        note(f"[OpenMetrics exposition written to {args.prom}]")
    if getattr(args, "profile", False):
        print()
        print(obs.profiler.render())


def _print_summary(result) -> None:
    rows = [[k, v if not isinstance(v, float) else round(v, 3)]
            for k, v in result.summary().items()]
    print(format_table(["metric", "value"], rows,
                       title=f"== {result.workload} =="))
    t = result.timing
    rows = [[comp, f"{getattr(t, comp):,.0f}",
             f"{100 * getattr(t, comp) / max(t.total, 1e-9):.1f}%"]
            for comp in ("compute", "local", "remote", "fault_handling",
                         "migration", "writeback")]
    print()
    print(format_table(["component", "cycles", "of total"], rows,
                       title="-- cycle breakdown (components overlap; "
                             "sum may exceed total)"))


def _load_scenario_file(path: str, command: str) -> dict:
    """Load + validate one scenario file, mapping errors to CLI exits."""
    from .scenario import ScenarioError, load_scenario
    try:
        return load_scenario(path)
    except ScenarioError as exc:
        raise SystemExit(f"repro {command}: {exc}") from None


def _run_scenario_batch(args, scenarios, command: str, jobs: int = 1,
                        grid=None) -> int:
    """Execute scenarios through the batch runner; print per-scenario
    tables."""
    from .scenario import ScenarioError, run_scenarios
    store = None
    if grid is None and getattr(args, "archive", False):
        from .obs.store import RunStore
        store = RunStore(getattr(args, "runs", None))
    try:
        outcomes = run_scenarios(scenarios, jobs=jobs, options=grid,
                                 store=store)
    except (ScenarioError, ValueError) as exc:
        raise SystemExit(f"repro {command}: {exc}") from None
    print("\n\n".join(o.render() for o in outcomes))
    return 0


def _cmd_run_config(args) -> int:
    """``repro run --config scenario.yaml``."""
    scenario = _load_scenario_file(args.config, "run")
    if scenario.get("mode", "run") != "run":
        # Sweeps, serve and multigpu scenarios still run (batch path,
        # compact output); the detailed single-run report below only
        # makes sense for one simulation.
        return _run_scenario_batch(args, [scenario], "run")
    from .scenario import ScenarioError, build_sim_config
    from .scenario.schema import flatten
    try:
        cfg = build_sim_config(scenario)
    except (ScenarioError, ValueError) as exc:
        raise SystemExit(f"repro run: {exc}") from None
    # CLI-only observability overlays compose with any config.
    if getattr(args, "histogram", False):
        cfg = cfg.replace(collect_page_histogram=True)
    if getattr(args, "debug_invariants", False):
        cfg = cfg.replace(debug_invariants=True)
    flat = flatten(scenario)
    scale = flat.get("scale") or "small"
    oversub = float(flat["oversubscription"]
                    if flat.get("oversubscription") is not None else 1.25)
    wl = _make_workload(flat["workload"], scale)
    obs = _make_obs(args)
    archive = _begin_archive(args, cfg, wl.name, obs, scenario=scenario,
                             scale=scale, oversub=oversub)
    result = Simulator(cfg).run(wl, oversubscription=oversub, obs=obs)
    _print_summary(result)
    _finish_obs(obs, args)
    _finish_archive(archive, result, obs)
    if args.histogram:
        _print_histogram(result)
    return 0


def cmd_run(args) -> int:
    if args.config:
        if args.workload is not None:
            raise SystemExit("repro run: give either a workload or "
                             "--config, not both")
        return _cmd_run_config(args)
    if args.workload is None:
        raise SystemExit("repro run: a workload name or --config "
                         "scenario.yaml is required")
    cfg = _build_config(args)
    wl = _make_workload(args.workload, args.scale)
    obs = _make_obs(args)
    archive = _begin_archive(args, cfg, wl.name, obs)
    result = Simulator(cfg).run(wl, oversubscription=args.oversub, obs=obs)
    _print_summary(result)
    _finish_obs(obs, args)
    _finish_archive(archive, result, obs)
    if args.histogram:
        _print_histogram(result)
    return 0


def _print_histogram(result) -> None:
    rows = [[s["name"], s["pages"], s["reads"], s["writes"],
             round(s["accesses_per_page"], 1),
             "RO" if s["read_only"] else "RW"]
            for s in result.stats.allocation_summary()]
    print()
    print(format_table(
        ["allocation", "pages", "reads", "writes", "acc/page", "type"],
        rows, title="-- access histogram per allocation"))


def cmd_compare(args) -> int:
    results = {}
    for pol in MigrationPolicy:
        cfg = _apply_backend(SimulationConfig(seed=args.seed), args)
        cfg = cfg.with_policy(
            pol, static_threshold=args.ts, migration_penalty=args.penalty)
        wl = _make_workload(args.workload, args.scale)
        results[pol] = Simulator(cfg).run(wl, oversubscription=args.oversub)
    base = results[MigrationPolicy.DISABLED]
    rows = []
    for pol, r in results.items():
        rows.append([pol.value,
                     f"{r.runtime_seconds * 1e3:.2f}",
                     f"{r.normalized_runtime(base) * 100:.1f}%",
                     r.fault_count, r.events.n_remote,
                     r.events.thrash_migrations])
    print(format_table(
        ["policy", "runtime (ms)", "vs baseline", "faults", "remote",
         "thrash"],
        rows, title=f"== {args.workload} @ {args.oversub:.0%} "
                    f"of device memory =="))
    return 0


#: Figures whose data is a SeriesResult (CSV-exportable).
_FIGURE_SERIES = {
    "fig1": lambda scale, jobs, grid: analysis.figure1(scale, jobs=jobs,
                                                       grid=grid),
    "fig4": lambda scale, jobs, grid: analysis.figure4(scale, jobs=jobs,
                                                       grid=grid),
    "fig5": lambda scale, jobs, grid: analysis.figure5(scale, jobs=jobs,
                                                       grid=grid),
    "fig6": lambda scale, jobs, grid: analysis.figure6_7(scale, jobs=jobs,
                                                         grid=grid)[0],
    "fig7": lambda scale, jobs, grid: analysis.figure6_7(scale, jobs=jobs,
                                                         grid=grid)[1],
    "fig8": lambda scale, jobs, grid: analysis.figure8(scale, jobs=jobs,
                                                       grid=grid),
}

_FIGURES = {
    "table1": lambda scale, jobs, grid: analysis.table1(),
    "fig2": lambda scale, jobs, grid: analysis.render_figure2(
        analysis.figure2(scale, jobs=jobs, grid=grid)),
    "fig3": lambda scale, jobs, grid: analysis.render_figure3(
        analysis.figure3(scale, jobs=jobs, grid=grid)),
}
_FIGURES.update({
    fid: (lambda scale, jobs, grid, _s=series: _s(scale, jobs, grid).render())
    for fid, series in _FIGURE_SERIES.items()
})


def cmd_figure(args) -> int:
    ids = sorted(_FIGURES) if args.id == "all" else [args.id]
    grid = _grid_options(args)
    chunks = []
    for fid in ids:
        if args.csv:
            series = _FIGURE_SERIES.get(fid)
            if series is None:
                raise SystemExit(
                    f"--csv is only available for bar figures, not {fid!r}")
            chunks.append(series(args.scale, args.jobs, grid).to_csv())
        else:
            chunks.append(_FIGURES[fid](args.scale, args.jobs, grid))
    text = "\n\n".join(chunks) if not args.csv else "".join(chunks)
    print(text)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"[saved to {args.out}]")
    _finish_grid_metrics(grid, args)
    return 0


def _cmd_sweep_config(args) -> int:
    """``repro sweep --config-dir DIR`` / ``--config scenario.yaml``."""
    from .scenario import ScenarioError, load_directory
    if args.config_dir:
        try:
            scenarios = load_directory(args.config_dir)
        except ScenarioError as exc:
            raise SystemExit(f"repro sweep: {exc}") from None
    else:
        scenarios = [_load_scenario_file(args.config, "sweep")]
    grid = _grid_options(args)
    status = _run_scenario_batch(args, scenarios, "sweep", jobs=args.jobs,
                                 grid=grid)
    _finish_grid_metrics(grid, args)
    return status


def cmd_sweep(args) -> int:
    if args.config or args.config_dir:
        if args.config and args.config_dir:
            raise SystemExit("repro sweep: give either --config or "
                             "--config-dir, not both")
        if args.workload is not None:
            raise SystemExit("repro sweep: give either a workload or "
                             "--config/--config-dir, not both")
        return _cmd_sweep_config(args)
    if args.workload is None:
        raise SystemExit("repro sweep: a workload name or "
                         "--config/--config-dir is required")
    grid = _grid_options(args)
    if args.fault_rates:
        try:
            rates = tuple(float(r) for r in args.fault_rates.split(","))
            policy = MigrationPolicy(args.policies.split(",")[0])
        except ValueError as exc:
            raise SystemExit(f"repro sweep: {exc}") from None
        res = analysis.fault_rate_sweep(
            args.workload, policy=policy, rates=rates, scale=args.scale,
            seed=args.seed, jobs=args.jobs, grid=grid)
        print(res.render())
        _finish_grid_metrics(grid, args)
        return 0
    try:
        policies = tuple(MigrationPolicy(p)
                         for p in args.policies.split(","))
        levels = tuple(float(l) for l in args.levels.split(","))
    except ValueError as exc:
        raise SystemExit(f"repro sweep: {exc}") from None
    res = analysis.oversubscription_sweep(
        args.workload, policies=policies, levels=levels, scale=args.scale,
        seed=args.seed, jobs=args.jobs, grid=grid)
    print(res.render())
    _finish_grid_metrics(grid, args)
    return 0


def cmd_trace(args) -> int:
    from .trace import TraceWorkload, record_trace, save_trace
    if args.trace_cmd == "record":
        data = record_trace(_make_workload(args.workload, args.scale),
                            seed=args.seed)
        path = save_trace(data, args.output)
        print(f"recorded {data.num_waves} waves / "
              f"{data.num_accesses} accesses to {path}")
        return 0
    # replay
    cfg = _build_config(args)
    obs = _make_obs(args)
    wl = TraceWorkload(args.input)
    archive = _begin_archive(args, cfg, wl.name, obs)
    result = Simulator(cfg).run(wl, oversubscription=args.oversub, obs=obs)
    _print_summary(result)
    _finish_obs(obs, args)
    _finish_archive(archive, result, obs)
    return 0


def _begin_serve_archive(args, serve_cfg, sim_cfg, obs,
                         scenario: dict | None = None):
    """Open a ``kind="serve"`` archive slot (or ``None``)."""
    if not getattr(args, "archive", False):
        return None
    from .analysis.checkpoint import encode_config
    from .obs import JsonlSink
    from .obs.store import RunManifest, RunStore, git_info
    store = RunStore(getattr(args, "runs", None))
    config = {"serve": serve_cfg.as_dict(), "sim": encode_config(sim_cfg)}
    if scenario is not None:
        config["scenario"] = scenario
    manifest = RunManifest.create(
        kind="serve", workload="+".join(serve_cfg.workload_mix),
        policy=sim_cfg.policy.policy.value, scale=serve_cfg.scale,
        seed=serve_cfg.seed, oversubscription=None,
        config=config, git=git_info(),
        scenario=scenario.get("name") if scenario is not None else None)
    writer = store.open_run(manifest)
    obs.bus.attach(JsonlSink(writer.events_path))
    return writer


def _print_serve_summary(result) -> None:
    fmt_us = lambda v: "-" if v is None else f"{v / 1e3:.2f}"  # noqa: E731
    rows = [
        ["arrivals", result.arrivals],
        ["admitted", result.admitted],
        ["queued", result.queued],
        ["shed", result.shed],
        ["completed", result.completed],
        ["shed rate", f"{result.shed_rate:.1%}"],
        ["peak live oversubscription",
         f"{result.peak_live_oversubscription:.2f}x"],
        ["throttle events", result.throttle_events],
        ["duration (ms)", fmt_us(result.duration_us)],
        ["waves", result.total_waves],
        ["accesses/s", f"{result.accesses_per_second:,.0f}"],
        ["p50 wave latency (us)",
         "-" if result.p50_wave_latency_us is None
         else f"{result.p50_wave_latency_us:.1f}"],
        ["p99 wave latency (us)",
         "-" if result.p99_wave_latency_us is None
         else f"{result.p99_wave_latency_us:.1f}"],
        ["first throttle (ms)", fmt_us(result.first_throttle_us)],
        ["first queue (ms)", fmt_us(result.first_queue_us)],
        ["first shed (ms)", fmt_us(result.first_shed_us)],
        ["slo violations", result.slo_violations],
        ["alerts fired", result.alerts_fired],
        ["scheduler", result.scheduler],
    ]
    if result.batches:
        rows.append(["fused batches", result.batches])
        rows.append(["batch occupancy", f"{result.batch_occupancy:.2f}"])
    print(format_table(["metric", "value"], rows,
                       title=f"== serve: {result.arrivals} tenants @ "
                             f"{result.config.capacity_mb}MB "
                             f"({result.backend}) =="))
    rows = []
    for t in result.tenants:
        if t.shed:
            state = f"shed ({t.shed_reason})"
        elif t.complete_us is not None:
            state = "complete"
        else:
            state = "admitted"
        rows.append([
            t.tenant, t.workload, f"{t.footprint_mb:.1f}",
            f"{t.arrival_us / 1e3:.2f}", f"{t.queued_us / 1e3:.2f}",
            state, t.waves,
            "-" if t.p99_wave_latency_us is None
            else f"{t.p99_wave_latency_us:.1f}",
            t.throttled_rounds, t.thrash_migrations, t.cross_evictions])
    print()
    print(format_table(
        ["tenant", "workload", "MB", "arrive ms", "queued ms", "state",
         "waves", "p99 us", "thr rounds", "thrash", "x-evict"],
        rows, title="-- per-tenant lifecycle"))


def _load_slo_config(args):
    """Parse ``--slo-config FILE`` into an :class:`SloConfig` or None.

    The file is a YAML mapping of ``slo.*`` keys, either flat
    (``slo.p99_latency_us: 300``), bare (``p99_latency_us: 300``), or
    nested under a ``slo:`` section -- the same keys a ``mode: serve``
    scenario accepts.
    """
    path = getattr(args, "slo_config", None)
    if path is None:
        return None
    from pathlib import Path
    from .obs.live.slo import SloConfig
    from .scenario.loader import _load_yaml
    from .scenario.schema import ScenarioError
    try:
        data = _load_yaml(Path(path))
    except ScenarioError as exc:
        raise SystemExit(f"repro serve: --slo-config: {exc}") from None
    if isinstance(data.get("slo"), dict):
        data = data["slo"]
    try:
        config = SloConfig.from_dict(data)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"repro serve: --slo-config {path}: "
                         f"{exc}") from None
    if not config.enabled:
        raise SystemExit(f"repro serve: --slo-config {path} sets no "
                         "objective (need at least one of p99_latency_us, "
                         "max_shed_rate, min_throughput)")
    return config


def _parse_weights(spec):
    """Parse a ``--weights`` comma list into a float tuple."""
    try:
        weights = tuple(float(w.strip())
                        for w in spec.split(",") if w.strip())
    except ValueError:
        raise SystemExit(
            f"repro serve: --weights expects comma-separated numbers, "
            f"got {spec!r}") from None
    return weights


def _apply_live_flags(args, serve_cfg):
    """Overlay explicitly-passed serve flags onto a scenario config
    (``--live-admission`` / ``--window-ms`` / scheduler family)."""
    import dataclasses
    updates = {}
    if getattr(args, "live_admission", False):
        updates["live_admission"] = True
    if getattr(args, "live_thrash_threshold", None) is not None:
        updates["live_thrash_threshold"] = args.live_thrash_threshold
    if getattr(args, "window_ms", None) is not None:
        updates["window_ms"] = args.window_ms
    if getattr(args, "scheduler", None) is not None:
        updates["scheduler"] = args.scheduler
    if getattr(args, "batch_waves", False):
        updates["batch_waves"] = True
    if getattr(args, "weights", None) is not None:
        updates["weights"] = _parse_weights(args.weights)
    if getattr(args, "throttle_decay", None) is not None:
        updates["throttle_decay"] = args.throttle_decay
    if not updates:
        return serve_cfg
    return dataclasses.replace(serve_cfg, **updates).validate()


def _cmd_serve_config(args) -> int:
    """``repro serve --config scenario.yaml``."""
    from .serve import ServeSession
    from .scenario import (ScenarioError, build_serve_config,
                           build_sim_config, expand)
    scenario = _load_scenario_file(args.config, "serve")
    if scenario.get("mode", "run") != "serve":
        raise SystemExit(
            f"repro serve: {scenario.get('name')} has mode "
            f"{scenario.get('mode', 'run')!r}; `repro serve --config` "
            "needs mode: serve (other modes run via `repro run --config` "
            "or `repro sweep --config-dir`)")
    variants = expand(scenario)
    if len(variants) > 1:
        # A swept serve scenario: batch path with one row per variant.
        return _run_scenario_batch(args, [scenario], "serve")
    from .scenario import build_slo_config
    try:
        serve_cfg = build_serve_config(variants[0].data)
        sim_cfg = build_sim_config(variants[0].data)
        slo = build_slo_config(variants[0].data)
    except (ScenarioError, ValueError) as exc:
        raise SystemExit(f"repro serve: {exc}") from None
    serve_cfg = _apply_live_flags(args, serve_cfg)
    # --slo-config on the command line overrides the scenario's slo:
    # section wholesale (objectives are not merged key-by-key).
    flag_slo = _load_slo_config(args)
    if flag_slo is not None:
        slo = flag_slo
    obs = _make_obs(args)
    archive = _begin_serve_archive(args, serve_cfg, sim_cfg, obs,
                                   scenario=scenario)
    try:
        result = ServeSession(serve_cfg, sim_config=sim_cfg, obs=obs,
                              scenario=scenario.get("name"),
                              slo=slo).run()
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}") from None
    if args.json:
        import json as _json
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        _print_serve_summary(result)
    _finish_obs(obs, args)
    if archive is not None:
        metrics = obs.metrics.as_dict() if obs.metrics is not None else None
        run_id = archive.commit_dict(result.as_dict(), metrics=metrics)
        print(f"[archived as {run_id}; list with `repro runs`]")
    return 0


def cmd_serve(args) -> int:
    from .config import ServeConfig
    from .serve import ServeSession
    if args.config:
        return _cmd_serve_config(args)
    sim_cfg = _build_config(args)
    mix = tuple(w.strip() for w in args.mix.split(",") if w.strip())
    known = workload_names(extended=True)
    for name in mix:
        if name not in known:
            raise SystemExit(f"repro serve: unknown workload {name!r} in "
                             f"--mix; available: {', '.join(known)}")
    try:
        serve_cfg = ServeConfig(
            arrival_rate=args.arrival_rate, tenants=args.tenants,
            duration_ms=args.duration, process=args.process,
            burst_factor=args.burst_factor, burst_len_ms=args.burst_len,
            calm_len_ms=args.calm_len, workload_mix=mix, scale=args.scale,
            capacity_mb=args.capacity_mb,
            admit_watermark=args.admit_watermark,
            shed_watermark=args.shed_watermark,
            throttle_watermark=args.throttle_watermark,
            queue_depth=args.queue_depth, quantum=args.quantum,
            throttle_rounds=args.throttle_rounds,
            live_admission=args.live_admission,
            live_thrash_threshold=(args.live_thrash_threshold
                                   if args.live_thrash_threshold is not None
                                   else 0.25),
            window_ms=(args.window_ms if args.window_ms is not None
                       else 5.0),
            scheduler=(args.scheduler if args.scheduler is not None
                       else "round_robin"),
            batch_waves=args.batch_waves,
            weights=(_parse_weights(args.weights)
                     if args.weights is not None else ()),
            throttle_decay=(args.throttle_decay
                            if args.throttle_decay is not None else 0.25),
            seed=args.seed).validate()
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}") from None
    slo = _load_slo_config(args)
    obs = _make_obs(args)
    archive = _begin_serve_archive(args, serve_cfg, sim_cfg, obs)
    try:
        result = ServeSession(serve_cfg, sim_config=sim_cfg, obs=obs,
                              slo=slo).run()
    except ValueError as exc:
        raise SystemExit(f"repro serve: {exc}") from None
    if args.json:
        import json as _json
        print(_json.dumps(result.as_dict(), indent=2, sort_keys=True))
    else:
        _print_serve_summary(result)
    _finish_obs(obs, args)
    if archive is not None:
        metrics = obs.metrics.as_dict() if obs.metrics is not None else None
        run_id = archive.commit_dict(result.as_dict(), metrics=metrics)
        print(f"[archived as {run_id}; list with `repro runs`]")
    return 0


def cmd_inspect(args) -> int:
    from .obs.inspect import render_summary, summarize
    try:
        summary = summarize(args.events)
    except OSError as exc:
        raise SystemExit(f"repro inspect: {exc}") from None
    print(render_summary(summary, top=args.top))
    return 0


def cmd_top(args) -> int:
    from .obs.live.top import run_top
    return run_top(args.events, follow=args.follow,
                   interval=args.interval, frames=args.frames)


def cmd_runs(args) -> int:
    from .obs.store import RunStore
    store = RunStore(args.runs)
    manifests = store.list()
    if not manifests:
        print(f"no archived runs under {store.root} "
              f"(create some with `repro run <workload> --archive`)")
        return 0
    import datetime
    rows = []
    for m in manifests:
        when = datetime.datetime.fromtimestamp(
            m.created).strftime("%Y-%m-%d %H:%M")
        sha = (m.git or {}).get("sha") or "-"
        rows.append([m.run_id, m.kind, m.workload, m.policy,
                     m.oversubscription if m.oversubscription is not None
                     else "-",
                     m.seed, (m.sweep_id or "-")[:8], sha[:8], when])
    print(format_table(
        ["run id", "kind", "workload", "policy", "oversub", "seed",
         "sweep", "commit", "archived"],
        rows, title=f"== archived runs ({store.root}) =="))
    return 0


def cmd_diff(args) -> int:
    import json as _json
    from .obs.compare import diff_runs, render_diff
    from .obs.store import RunStore
    store = RunStore(args.runs)
    try:
        run_a = store.load(args.run_a)
        run_b = store.load(args.run_b)
    except (KeyError, OSError, ValueError) as exc:
        msg = exc.args[0] if exc.args else exc
        raise SystemExit(f"repro diff: {msg}") from None
    diff = diff_runs(run_a, run_b, tolerance=args.tolerance / 100.0,
                     top=args.top)
    if args.json:
        print(_json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(render_diff(diff))
    return 0


def _collect_scenario_paths(paths, command: str):
    """Expand files/directories into runnable scenario file paths."""
    import os
    from .scenario import ScenarioError, scenario_files
    collected = []
    for path in paths:
        if os.path.isdir(path):
            try:
                collected.extend(scenario_files(path))
            except ScenarioError as exc:
                raise SystemExit(f"repro {command}: {exc}") from None
        else:
            collected.append(path)
    return collected


def cmd_config(args) -> int:
    from .scenario import ScenarioError, compile_check, load_scenario
    if args.config_cmd == "show":
        import json as _json
        scenario = _load_scenario_file(args.path, "config")
        try:
            labels = compile_check(scenario)
        except ScenarioError as exc:
            raise SystemExit(f"repro config: {exc}") from None
        print(_json.dumps(scenario, indent=2, sort_keys=True))
        if len(labels) > 1 or "sweep" in scenario:
            print(f"\n# expands to {len(labels)} variant(s):")
            for label in labels:
                print(f"#   {label}")
        return 0
    # validate
    failures = 0
    for path in _collect_scenario_paths(args.paths, "config"):
        try:
            scenario = load_scenario(path)
            labels = compile_check(scenario)
        except ScenarioError as exc:
            print(f"FAIL {path}\n  {exc}")
            failures += 1
            continue
        suffix = (f" ({len(labels)} variants)" if len(labels) > 1 else "")
        print(f"ok   {path} [{scenario.get('mode', 'run')}]{suffix}")
    if failures:
        print(f"\n{failures} scenario(s) failed validation")
        return 1
    return 0


def cmd_list(args) -> int:
    print("workloads:", ", ".join(workload_names(extended=True)))
    print("scales:   ", ", ".join(SCALES))
    print("policies: ", ", ".join(p.value for p in MigrationPolicy))
    print("figures:  ", ", ".join(_FIGURES))
    return 0


def _jobs_arg(text: str) -> int:
    """Parse ``--jobs``: non-negative int, 0 meaning one worker per CPU."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 0 (0 = one worker per CPU), got {value}")
    return value


def _workload_arg(name: str) -> str:
    """Validate a workload name at parse time, listing the registry."""
    known = workload_names(extended=True)
    if name not in known:
        raise argparse.ArgumentTypeError(
            f"unknown workload {name!r}; available: {', '.join(known)}")
    return name


def _add_sim_args(p, with_oversub=True) -> None:
    p.add_argument("--policy", default="adaptive",
                   choices=[m.value for m in MigrationPolicy])
    p.add_argument("--ts", type=int, default=8,
                   help="static access counter threshold")
    p.add_argument("--penalty", type=int, default=8,
                   help="multiplicative migration penalty p")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--evict", choices=("2mb", "64kb"), default="2mb",
                   help="eviction granularity")
    p.add_argument("--prefetcher", default="tree",
                   choices=[k.value for k in PrefetcherKind])
    p.add_argument("--prefetch-degree", type=int, default=4)
    p.add_argument("--fault-rate", type=float, default=0.0,
                   help="probability of an injected transient PCIe "
                        "transfer fault per migration attempt")
    p.add_argument("--migration-fault-rate", type=float, default=0.0,
                   help="probability of an injected device allocation "
                        "fault per migration attempt")
    p.add_argument("--fault-retries", type=int, default=3,
                   help="driver retries before degrading a faulted "
                        "migration to remote zero-copy access")
    p.add_argument("--fault-burst-on", type=float, default=0.0,
                   metavar="PROB",
                   help="per-migration probability of entering a "
                        "correlated fault storm that multiplies both "
                        "fault rates (0 = uncorrelated faults only)")
    p.add_argument("--fault-burst-off", type=float, default=0.25,
                   metavar="PROB",
                   help="per-migration probability of a fault storm "
                        "ending")
    p.add_argument("--fault-burst-mult", type=float, default=8.0,
                   metavar="X",
                   help="fault-rate multiplier while a storm is active")
    p.add_argument("--debug-invariants", action="store_true",
                   help="check residency/capacity accounting after "
                        "every wave (slow; for debugging)")
    _add_backend_args(p)
    if with_oversub:
        p.add_argument("--oversub", type=float, default=1.25,
                       help="working set as a fraction of device memory "
                            "(1.25 = 125%% oversubscription)")


def _add_backend_args(p) -> None:
    """Kernel-backend flags shared by simulation and grid commands."""
    from .config import KNOWN_BACKENDS
    p.add_argument("--backend", default=None, choices=KNOWN_BACKENDS,
                   help="hot-loop kernel backend (default: $REPRO_BACKEND "
                        "or python; 'numba' falls back to python with a "
                        "warning when numba is not installed)")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="partition the block address space into N "
                        "contiguous shards for the per-wave decision "
                        "phase (bit-identical for any N; default 1)")


def _add_obs_args(p) -> None:
    """Observability flags for the simulation commands (run, replay)."""
    p.add_argument("--events", default=None, metavar="PATH",
                   help="write structured driver events (migration "
                        "decisions, evictions, counter halvings) to this "
                        "JSONL file (gzipped when the path ends in .gz); "
                        "summarize with `repro inspect`")
    p.add_argument("--flush-events", type=int, default=None, metavar="N",
                   help="flush the --events log every N events so it can "
                        "be tailed live (`repro top --follow`); rejected "
                        "for .gz logs, which only become readable at "
                        "close")
    p.add_argument("--prom", default=None, metavar="PATH",
                   help="write the metric rollup as a Prometheus/"
                        "OpenMetrics text exposition after the run "
                        "(implies a metrics registry)")
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write the metric rollup (decision counters, "
                        "threshold histogram, PCIe queue depth series) "
                        "to this JSON file")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase wall-clock time breakdown "
                        "(wave loop, migrate drain, eviction, prefetch "
                        "tree) after the run")
    p.add_argument("--timeline", default=None, metavar="PATH",
                   help="export phase spans, driver events and wave "
                        "boundaries as a Chrome-trace JSON file "
                        "(open in Perfetto or chrome://tracing)")
    p.add_argument("--archive", action="store_true",
                   help="persist the run (manifest, result, metrics, "
                        "compressed event log) under the run store for "
                        "`repro diff`")
    _add_runs_arg(p)


def _add_runs_arg(p) -> None:
    p.add_argument("--runs", default=None, metavar="DIR",
                   help="run-store root (default: $REPRO_RUNS_DIR or "
                        ".repro/runs)")


def _add_grid_args(p) -> None:
    """Resilience flags for the grid-running commands (figure, sweep)."""
    p.add_argument("--metrics", default=None, metavar="PATH",
                   help="write grid-runner metrics (per-cell wall time, "
                        "retries, pool rebuilds) to this JSON file")
    p.add_argument("--retries", type=int, default=2,
                   help="extra attempts per grid cell after a failure")
    p.add_argument("--cell-timeout", type=float, default=None,
                   metavar="SECONDS",
                   help="declare the worker pool hung when no cell "
                        "completes for this long, then rebuild it")
    p.add_argument("--checkpoint", default=None, metavar="PATH",
                   help="append completed cells to this JSONL journal")
    p.add_argument("--resume", action="store_true",
                   help="serve cells already in the --checkpoint journal "
                        "instead of re-simulating them")
    p.add_argument("--archive", action="store_true",
                   help="archive every grid cell's result under the run "
                        "store, grouped by a shared sweep id")
    p.add_argument("--trace-cache", default=None, metavar="DIR",
                   help="record each (workload, scale, seed) access "
                        "stream once into this shared trace cache and "
                        "replay it memory-mapped in every grid cell "
                        "(bit-identical results, much less per-cell "
                        "generation work)")
    _add_backend_args(p)
    _add_runs_arg(p)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive page migration under GPU memory "
                    "oversubscription (IPDPS 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("run", help="simulate one workload")
    p.add_argument("workload", type=_workload_arg, nargs="?", default=None,
                   help="workload name (see `repro list`); omit when "
                        "using --config")
    p.add_argument("--config", default=None, metavar="YAML",
                   help="run a declarative scenario config instead of "
                        "flags (see docs/scenarios.md; flags other than "
                        "the observability ones are ignored)")
    p.add_argument("--scale", default="small", choices=SCALES)
    p.add_argument("--histogram", action="store_true",
                   help="collect per-allocation access histograms")
    _add_sim_args(p)
    _add_obs_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("compare", help="all four policies on one workload")
    p.add_argument("workload", type=_workload_arg,
                   help="workload name (see `repro list`)")
    p.add_argument("--scale", default="small", choices=SCALES)
    _add_sim_args(p)
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser("figure", help="regenerate a paper table/figure")
    p.add_argument("id", choices=sorted(_FIGURES) + ["all"])
    p.add_argument("--scale", default="small", choices=SCALES)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes for the experiment grid "
                        "(0 = one per CPU, 1 = serial)")
    p.add_argument("--out", default=None, help="also save to this file")
    p.add_argument("--csv", action="store_true",
                   help="emit CSV instead of the rendered table "
                        "(bar figures only)")
    _add_grid_args(p)
    p.set_defaults(func=cmd_figure)

    p = sub.add_parser("sweep", help="oversubscription sweep on one workload")
    p.add_argument("workload", type=_workload_arg, nargs="?", default=None,
                   help="workload name (see `repro list`); omit when "
                        "using --config/--config-dir")
    p.add_argument("--config", default=None, metavar="YAML",
                   help="run one declarative scenario config "
                        "(sweep axes expand to the experiment grid)")
    p.add_argument("--config-dir", default=None, metavar="DIR",
                   help="run every scenario in a config directory "
                        "(files starting with '_' are inheritance "
                        "bases and are skipped); all grid cells share "
                        "one worker pool")
    p.add_argument("--scale", default="small", choices=SCALES)
    p.add_argument("--levels",
                   default=",".join(str(l) for l in analysis.DEFAULT_LEVELS),
                   help="comma-separated oversubscription levels")
    p.add_argument("--policies", default="disabled,adaptive",
                   help="comma-separated migration policies to sweep")
    p.add_argument("--fault-rates", default=None,
                   help="sweep injected transient-fault rates instead of "
                        "oversubscription levels (comma-separated; uses "
                        "the first --policies entry)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jobs", type=_jobs_arg, default=1,
                   help="worker processes for the sweep grid "
                        "(0 = one per CPU, 1 = serial)")
    _add_grid_args(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser("trace", help="record or replay access traces")
    tsub = p.add_subparsers(dest="trace_cmd", required=True)
    pr = tsub.add_parser("record")
    pr.add_argument("workload", type=_workload_arg,
                    help="workload name (see `repro list`)")
    pr.add_argument("--scale", default="small", choices=SCALES)
    pr.add_argument("--seed", type=int, default=0)
    pr.add_argument("-o", "--output", required=True)
    pr.set_defaults(func=cmd_trace)
    pp = tsub.add_parser("replay")
    pp.add_argument("-i", "--input", required=True)
    _add_sim_args(pp)
    _add_obs_args(pp)
    pp.set_defaults(func=cmd_trace)

    p = sub.add_parser("serve", help="multi-tenant open-loop serving run")
    from .config import KNOWN_ARRIVAL_PROCESSES, KNOWN_SCHEDULERS
    p.add_argument("--config", default=None, metavar="YAML",
                   help="run a mode: serve scenario config instead of "
                        "flags (see docs/scenarios.md)")
    p.add_argument("--arrival-rate", type=float, default=400.0,
                   metavar="PER_S",
                   help="tenant arrivals per second of simulated time "
                        "(open loop: arrivals never wait for service)")
    p.add_argument("--tenants", type=int, default=12,
                   help="number of tenant arrivals to generate")
    p.add_argument("--duration", type=float, default=None, metavar="MS",
                   help="arrival window in simulated milliseconds "
                        "(default: cut by --tenants alone)")
    p.add_argument("--process", default="poisson",
                   choices=KNOWN_ARRIVAL_PROCESSES,
                   help="arrival process (bursty = Markov-modulated "
                        "Poisson with calm/burst sojourns)")
    p.add_argument("--burst-factor", type=float, default=8.0,
                   help="arrival-rate multiplier inside a burst "
                        "(bursty process only)")
    p.add_argument("--burst-len", type=float, default=2.0, metavar="MS",
                   help="mean burst-state sojourn in simulated ms")
    p.add_argument("--calm-len", type=float, default=10.0, metavar="MS",
                   help="mean calm-state sojourn in simulated ms")
    p.add_argument("--mix", default="ra,sssp,bfs,fdtd",
                   help="comma-separated workloads tenants are drawn "
                        "from (seeded uniform choice)")
    p.add_argument("--scale", default="tiny", choices=SCALES)
    p.add_argument("--capacity-mb", type=int, default=32,
                   help="shared device memory capacity in MB")
    p.add_argument("--admit-watermark", type=float, default=1.5,
                   help="projected live oversubscription up to which "
                        "arrivals are admitted immediately")
    p.add_argument("--shed-watermark", type=float, default=2.5,
                   help="projected oversubscription past which an "
                        "arrival is shed outright")
    p.add_argument("--throttle-watermark", type=float, default=1.2,
                   help="live oversubscription at which the heaviest-"
                        "thrashing tenant's stream is suspended")
    p.add_argument("--queue-depth", type=int, default=8,
                   help="bounded admission queue depth (full = shed)")
    p.add_argument("--quantum", type=int, default=4,
                   help="waves per runnable tenant per scheduler round")
    p.add_argument("--throttle-rounds", type=int, default=8,
                   help="scheduler rounds a throttled tenant sits out")
    p.add_argument("--scheduler", default=None,
                   choices=KNOWN_SCHEDULERS,
                   help="wave scheduler: round_robin (legacy quantum "
                        "rotation, the default) or drr (deficit-"
                        "weighted fair queuing; throttling decays the "
                        "weight instead of suspending the stream)")
    p.add_argument("--batch-waves", action="store_true",
                   help="fuse each multi-tenant scheduler slot into one "
                        "driver dispatch (pure perf hint: results are "
                        "bit-identical to sequential execution)")
    p.add_argument("--weights", default=None, metavar="W1,W2,...",
                   help="comma-separated drr fair-share weights; tenant "
                        "i gets weight i mod len (default: equal "
                        "shares)")
    p.add_argument("--throttle-decay", type=float, default=None,
                   metavar="FACTOR",
                   help="drr weight multiplier while a tenant is "
                        "throttled (default 0.25)")
    p.add_argument("--json", action="store_true",
                   help="print the full serve result as JSON")
    p.add_argument("--slo-config", default=None, metavar="YAML",
                   help="per-tenant serving objectives (slo.* keys: "
                        "p99_latency_us, max_shed_rate, min_throughput, "
                        "...); enables the streaming SLO engine and "
                        "alerting (overrides a scenario's slo: section)")
    p.add_argument("--live-admission", action="store_true",
                   help="let the degradation ladder consume live "
                        "windowed interference telemetry (EWMA thrash "
                        "pressure) instead of cumulative attribution "
                        "alone; off by default (off = bit-identical to "
                        "the telemetry-free path)")
    p.add_argument("--live-thrash-threshold", type=float, default=None,
                   metavar="RATE",
                   help="EWMA thrash migrations per wave at which "
                        "--live-admission engages the throttle "
                        "(default 0.25)")
    p.add_argument("--window-ms", type=float, default=None,
                   help="tumbling telemetry window width in simulated "
                        "milliseconds (default 5.0)")
    _add_sim_args(p, with_oversub=False)
    _add_obs_args(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("top", help="terminal dashboard over a serve "
                                   "event log (per-tenant SLO table)")
    p.add_argument("events", help="JSONL event log written by "
                                  "`repro serve --events` (plain .jsonl "
                                  "only; .gz logs are not tailable)")
    p.add_argument("--follow", action="store_true",
                   help="refresh while the log grows (pair with "
                        "`--flush-events 1` on the serve side)")
    p.add_argument("--interval", type=float, default=0.5,
                   metavar="SECONDS",
                   help="refresh interval in --follow mode (default 0.5)")
    p.add_argument("--frames", type=int, default=None, metavar="N",
                   help="stop after N refreshes (default: until the log "
                        "stops growing)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("inspect", help="summarize a structured event log")
    p.add_argument("events", help="JSONL event log written by --events "
                                  "(plain or .jsonl.gz)")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="thrashing blocks to show (default 10)")
    p.set_defaults(func=cmd_inspect)

    p = sub.add_parser("runs", help="list archived runs")
    _add_runs_arg(p)
    p.set_defaults(func=cmd_runs)

    p = sub.add_parser("diff", help="compare two archived runs")
    p.add_argument("run_a", help="archived run id (unique prefix ok)")
    p.add_argument("run_b", help="archived run id (unique prefix ok)")
    p.add_argument("--json", action="store_true",
                   help="emit the full delta report as JSON")
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="thrashing blocks compared per run (default 10)")
    p.add_argument("--tolerance", type=float, default=1.0, metavar="PCT",
                   help="relative change (percent) below which a metric "
                        "delta is reported as noise (default 1.0)")
    _add_runs_arg(p)
    p.set_defaults(func=cmd_diff)

    p = sub.add_parser("config",
                       help="validate or show declarative scenario configs")
    csub = p.add_subparsers(dest="config_cmd", required=True)
    pv = csub.add_parser("validate",
                         help="resolve, schema-check and dry-compile "
                              "scenario files or config directories")
    pv.add_argument("paths", nargs="+", metavar="PATH",
                    help="scenario YAML files and/or config directories")
    pv.set_defaults(func=cmd_config)
    ps = csub.add_parser("show",
                         help="print one scenario fully resolved "
                              "(post-inheritance) plus its sweep variants")
    ps.add_argument("path", metavar="YAML", help="scenario file")
    ps.set_defaults(func=cmd_config)

    p = sub.add_parser("list", help="show available names")
    p.set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
