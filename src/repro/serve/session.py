"""The serving session: tenants interleaved onto one shared driver.

:class:`ServeSession` ties the serving layer together.  It generates
the arrival trace (:mod:`repro.serve.traffic`), pre-builds every
tenant's allocations into one shared virtual address space under a
per-tenant namespace (``t<id>/<name>`` -- the allocator is append-only,
so the full VA space must exist before the driver is constructed), and
then drives the run loop on the simulated clock:

* arrivals are offered to the admission controller
  (:mod:`repro.serve.admission`) as the clock passes them;
* admitted tenants' wave streams are interleaved by a pluggable
  scheduler (:mod:`repro.serve.scheduler`): ``round_robin`` gives each
  runnable tenant ``quantum`` contiguous waves per round (the legacy
  reference path), ``drr`` interleaves tenants one wave at a time under
  deficit-weighted fair queuing.  With ``batch_waves`` each multi-tenant
  scheduler slot executes as one fused
  :meth:`~repro.uvm.driver.UvmDriver.process_wave_batch` dispatch -- a
  pure perf hint: outcomes are bit-identical to sequential execution;
* graceful degradation engages in watermark escalation order: at the
  throttle watermark the heaviest-thrashing tenant's stream is
  suspended for ``throttle_rounds`` rounds (the paper's Section VIII
  throttling proposal, driven by the per-tenant
  :class:`~repro.uvm.attribution.TenantAttribution`), at the admit
  watermark arrivals queue, and past the shed watermark (or a full
  queue) they are shed;
* a completing tenant releases its chunks through
  :meth:`~repro.uvm.driver.UvmDriver.release_chunks` (write-backs
  charged to the clock, no round-trip pollution) and the freed
  footprint drains the admission queue FIFO.

Determinism contract: arrival trace, tenant builds, and driver faults
each own a separate seeded RNG stream; the scheduler is a deterministic
function of the trace and wave timing; nothing reads the wall clock.
A serve run is therefore a pure function of ``(ServeConfig,
SimulationConfig)`` and replays bit-identically -- including across
``--backend python|numba`` (the driver backends are bit-identical by
construction).  Shed tenants' allocations still occupy VA space but
never touch the device.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..config import MB, ServeConfig, SimulationConfig
from ..gpu.timing import TimingModel
from ..interconnect.pcie import PcieModel
from ..memory.allocator import VirtualAddressSpace
from ..obs.events import (
    RunMeta,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantSched,
    TenantShed,
    TenantThrottled,
)
from ..obs.live.telemetry import LiveTelemetry
from ..obs.metrics import Histogram
from ..obs.timeline import TID_SERVE
from ..uvm.attribution import TenantAttribution
from ..uvm.driver import UvmDriver
from ..workloads.registry import make_workload
from .admission import AdmissionController
from .scheduler import make_scheduler
from .traffic import Arrival, generate_arrivals

#: SeedSequence stream key for per-tenant workload builds; combined
#: with the tenant id so every tenant gets an independent stream.
_TENANT_STREAM = 0x7E4A47


@dataclass(frozen=True)
class TenantRecord:
    """Per-tenant lifecycle summary, one per arrival (shed ones too)."""

    tenant: int
    workload: str
    footprint_mb: float
    arrival_us: float
    #: Admission time; None when the tenant was shed.
    admitted_us: float | None
    #: Time spent between arrival and admission (0.0 when shed).
    queued_us: float
    shed: bool
    #: ``"watermark"``/``"queue_full"`` when shed, else ``""``.
    shed_reason: str
    #: Completion time; None when shed.
    complete_us: float | None
    waves: int
    accesses: int
    p50_wave_latency_us: float | None
    p99_wave_latency_us: float | None
    #: Scheduler rounds this tenant sat out under throttling.
    throttled_rounds: int
    #: Times the throttle picked this tenant as the heaviest thrasher.
    throttle_events: int
    #: Thrash migrations attributed to this tenant's data.
    thrash_migrations: int
    #: Blocks this tenant lost to eviction while another tenant's wave
    #: drove the pressure (eviction interference).
    cross_evictions: int
    #: Total blocks this tenant lost to eviction.
    evicted_blocks: int
    freed_blocks: int
    writeback_blocks: int
    #: Configured fair share under the active scheduler (1.0 = equal).
    weight: float = 1.0
    #: Fractional DRR wave credit carried at end of run (always in
    #: ``[0, 1)``; 0.0 under round robin).
    deficit: float = 0.0
    #: Waves executed inside fused multi-tenant batch dispatches.
    batched_waves: int = 0

    def as_dict(self) -> dict:
        """Flat JSON-safe encoding."""
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ServeResult:
    """Outcome of one serve run (JSON-safe via :meth:`as_dict`)."""

    config: ServeConfig
    #: Active driver kernel backend (after any numba fallback).
    backend: str
    arrivals: int
    admitted: int
    queued: int
    shed: int
    completed: int
    #: Admission verdicts in decision order: (tenant, action, reason).
    decisions: tuple[tuple[int, str, str], ...]
    tenants: tuple[TenantRecord, ...]
    #: Final simulated clock, microseconds.
    duration_us: float
    total_waves: int
    total_accesses: int
    accesses_per_second: float
    p50_wave_latency_us: float | None
    p99_wave_latency_us: float | None
    shed_rate: float
    throttle_events: int
    peak_live_oversubscription: float
    #: First engagement time of each degradation stage (None: never).
    first_throttle_us: float | None
    first_queue_us: float | None
    first_shed_us: float | None
    #: Cumulative driver event counts across the whole run.
    driver_totals: dict
    #: Name of the scenario config the run was launched from (``repro
    #: serve --config``), or ``None`` for a flag-driven run.
    scenario: str | None = None
    #: Live-telemetry rollups (0 when no telemetry hub was attached).
    slo_violations: int = 0
    alerts_fired: int = 0
    #: Active wave scheduler (``serve.scheduler``).
    scheduler: str = "round_robin"
    #: Fused multi-tenant driver dispatches issued (0 without
    #: ``batch_waves``) and the mean waves fused per dispatch.
    batches: int = 0
    batch_occupancy: float = 0.0

    def as_dict(self) -> dict:
        """Flat JSON-safe encoding (archived / printed by the CLI)."""
        d = dataclasses.asdict(self)
        d["config"] = self.config.as_dict()
        d["decisions"] = [list(t) for t in self.decisions]
        d["tenants"] = [t.as_dict() for t in self.tenants]
        return d


class _Tenant:
    """Mutable per-tenant lifecycle state inside the session."""

    __slots__ = ("id", "workload_name", "arrival_us", "blocks",
                 "footprint_mb", "chunk_ids", "workload", "stream",
                 "admitted_us", "queued_us", "shed_reason", "complete_us",
                 "waves", "batched_waves", "accesses", "latency",
                 "throttle_left", "throttled_rounds", "throttle_events",
                 "freed_blocks", "writeback_blocks")

    def __init__(self, tid: int, workload_name: str, arrival_us: float,
                 blocks: int, footprint_mb: float,
                 chunk_ids: list[int], workload) -> None:
        self.id = tid
        self.workload_name = workload_name
        self.arrival_us = arrival_us
        self.blocks = blocks
        self.footprint_mb = footprint_mb
        self.chunk_ids = chunk_ids
        #: Built workload, held until admission; the wave stream is
        #: materialized lazily on admit so queued/shed tenants never pay
        #: generation cost (and shed tenants free the workload early).
        self.workload = workload
        self.stream = None
        self.admitted_us: float | None = None
        self.queued_us = 0.0
        self.shed_reason = ""
        self.complete_us: float | None = None
        self.waves = 0
        self.batched_waves = 0
        self.accesses = 0
        self.latency = Histogram()
        self.throttle_left = 0
        self.throttled_rounds = 0
        self.throttle_events = 0
        self.freed_blocks = 0
        self.writeback_blocks = 0


def _wave_stream(workload):
    """Flatten a workload's kernel launches into one wave iterator."""
    for launch in workload.kernels():
        yield from launch.waves()


class ServeSession:
    """One multi-tenant serve run over one shared driver."""

    def __init__(self, config: ServeConfig,
                 sim_config: SimulationConfig | None = None,
                 obs=None, scenario: str | None = None,
                 slo=None, alert_rules=None) -> None:
        self.config = config.validate()
        #: Optional :class:`~repro.obs.live.slo.SloConfig` and explicit
        #: alert-rule tuple; either one forces the live telemetry hub
        #: on even without observability sinks attached.
        self.slo = slo
        if slo is not None:
            slo.validate()
        self.alert_rules = alert_rules
        #: Scenario name stamped onto the result (purely provenance:
        #: it never affects execution).
        self.scenario = scenario
        base = sim_config if sim_config is not None else SimulationConfig()
        #: Driver-level configuration: the serve capacity and seed
        #: override whatever the base carries; policy/backend/faults
        #: flow through from the caller's flags.
        self.sim_config = dataclasses.replace(
            base.with_device_capacity(config.capacity_bytes),
            seed=config.seed).validate()
        self.obs = obs
        self._bus = obs.bus if obs is not None else None

    # -- construction ----------------------------------------------------

    def _build(self, arrivals: tuple[Arrival, ...]):
        """Pre-build every tenant's allocations into one shared VAS.

        The allocator is append-only and the driver sizes its arrays at
        construction, so the whole trace's allocations must exist before
        the first wave; admission then gates only wave-stream flow.
        """
        cfg = self.config
        vas = VirtualAddressSpace()
        tenants: list[_Tenant] = []
        for a in arrivals:
            workload = make_workload(a.workload, cfg.scale)
            rng = np.random.default_rng(np.random.SeedSequence(
                entropy=(cfg.seed, _TENANT_STREAM, a.tenant)))
            workload.build(vas, rng)
            allocs = list(workload.allocations.values())
            for alloc in allocs:
                # Per-tenant allocation namespace; ManagedAllocation is
                # frozen, and the instances are shared with the VAS.
                object.__setattr__(alloc, "name",
                                   f"t{a.tenant}/{alloc.name}")
            blocks = sum(al.num_blocks for al in allocs)
            chunk_ids = [span.chunk_id
                         for al in allocs for span in al.chunks]
            tenants.append(_Tenant(
                a.tenant, a.workload, a.at_us, blocks,
                sum(al.rounded_bytes for al in allocs) / MB,
                chunk_ids, workload))
        return vas, tenants

    # -- run loop --------------------------------------------------------

    def run(self) -> ServeResult:
        """Execute the serve run to completion."""
        cfg = self.config
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            # Back-to-back sessions against one registry must not
            # accumulate each other's serve.* counters and series.
            obs.metrics.reset_prefix("serve.")
        arrivals = generate_arrivals(cfg)
        if not arrivals:
            raise ValueError(
                "arrival trace is empty: duration_ms cut every arrival; "
                "raise duration_ms or arrival_rate")
        vas, tenants = self._build(arrivals)
        self._tenants = tenants
        driver = UvmDriver(vas, self.sim_config, obs=self.obs)
        block_owner = np.full(vas.total_blocks, -1, dtype=np.int32)
        for t in tenants:
            for cid in t.chunk_ids:
                span = vas.chunks[cid]
                block_owner[span.first_block:span.last_block] = t.id
        driver.attribution = TenantAttribution(block_owner, len(tenants))
        self._driver = driver
        # Self-describing log header: the per-tenant allocation
        # namespace (t<id>/<name>) lets `repro inspect` attribute
        # thrashing blocks back to tenants.
        self._emit(RunMeta(
            workload="serve:" + "+".join(cfg.workload_mix),
            policy=self.sim_config.policy.policy.value,
            seed=cfg.seed,
            total_blocks=vas.total_blocks,
            capacity_blocks=driver.device.capacity_blocks,
            allocations=tuple(
                (a.name, a.first_block, a.first_block + a.num_blocks)
                for a in vas.allocations),
            backend=driver.backend_name,
            shards=driver.shards))
        self._pcie = PcieModel(self.sim_config.interconnect,
                               self.sim_config.gpu)
        self._timing = TimingModel(self.sim_config, self._pcie)
        self._clock_mhz = self.sim_config.gpu.clock_mhz
        self._controller = AdmissionController(
            driver.device.capacity_blocks, cfg.admit_watermark,
            cfg.shed_watermark, cfg.queue_depth)
        self._live: list[_Tenant] = []
        self._scheduler = make_scheduler(cfg)
        self._batch = cfg.batch_waves
        self._batches = 0
        self._batched_waves = 0
        self._latency = Histogram()
        self._completed = 0
        self._throttle_events = 0
        self._peak_oversub = 0.0
        self._first_throttle_us: float | None = None
        self._first_queue_us: float | None = None
        self._first_shed_us: float | None = None
        # The live telemetry hub only exists when something consumes
        # it: live admission, an SLO config, explicit alert rules, or
        # an attached observability stack.  With none of those the hot
        # path stays one attribute check, exactly as before.
        self._telemetry = None
        if (cfg.live_admission or self.slo is not None
                or self.alert_rules is not None
                or (obs is not None and obs.enabled)):
            self._telemetry = LiveTelemetry(
                cfg, slo=self.slo, rules=self.alert_rules,
                bus=self._bus,
                metrics=obs.metrics if obs is not None else None)
        self._tl = obs.timeline if obs is not None else None

        now = 0.0
        pending = deque(arrivals)
        while pending or self._live or self._controller.queue:
            while pending and pending[0].at_us <= now:
                self._offer(pending.popleft(), now)
            if not self._live:
                if self._controller.queue:
                    # Anti-livelock: an idle device force-admits the
                    # queue head even past the admit watermark.
                    self._admit_from_queue(now, force=True)
                    continue
                if pending:
                    now = pending[0].at_us
                    continue
                break
            now = self._run_round(now)
        if self._telemetry is not None:
            self._telemetry.finish(now)
        return self._result(now)

    # -- admission -------------------------------------------------------

    def _offer(self, arrival: Arrival, now: float) -> None:
        tenant = self._tenants[arrival.tenant]
        self._emit(TenantArrival(
            tenant=tenant.id, workload=tenant.workload_name,
            at_us=arrival.at_us, footprint_mb=tenant.footprint_mb))
        decision = self._controller.offer(tenant.id, tenant.blocks, now)
        if self._telemetry is not None:
            self._telemetry.on_arrival(tenant.id, now,
                                       shed=decision.action == "shed")
        if decision.action == "admit":
            self._admit(tenant, now, queued_us=now - tenant.arrival_us)
        elif decision.action == "queue":
            if self._first_queue_us is None:
                self._first_queue_us = now
        else:
            tenant.shed_reason = decision.reason
            tenant.workload = None  # shed: free the built arrays early
            if self._first_shed_us is None:
                self._first_shed_us = now
            self._emit(TenantShed(
                tenant=tenant.id, at_us=now, reason=decision.reason,
                live_oversubscription=decision.live_oversubscription))

    def _admit(self, tenant: _Tenant, now: float, queued_us: float) -> None:
        tenant.admitted_us = now
        tenant.queued_us = queued_us
        # Lazy stream materialization: the wave iterator (and the
        # workload arrays it closes over) only come alive on admission.
        tenant.stream = _wave_stream(tenant.workload)
        tenant.workload = None  # the generator keeps the needed refs
        self._live.append(tenant)
        if self._telemetry is not None:
            self._telemetry.on_admit(tenant.id)
        oversub = self._controller.oversubscription
        self._peak_oversub = max(self._peak_oversub, oversub)
        self._emit(TenantAdmitted(
            tenant=tenant.id, at_us=now, queued_us=queued_us,
            live_oversubscription=oversub))
        # Footprint only grows through admits, so checking here (not
        # just per round) guarantees the throttle watermark is seen
        # before the higher admit/shed watermarks engage.
        self._maybe_throttle(now)

    def _admit_from_queue(self, now: float, force: bool = False) -> bool:
        popped = self._controller.pop_admittable(force=force)
        if popped is None:
            return False
        tid, enqueued_at = popped
        self._admit(self._tenants[tid], now, queued_us=now - enqueued_at)
        return True

    # -- scheduling ------------------------------------------------------

    def _run_round(self, now: float) -> float:
        """One scheduler round: execute the plan's groups in order."""
        for group in self._scheduler.plan_round(list(self._live)):
            if len(group) == 1:
                # Singleton groups run the contiguous quantum loop --
                # the round-robin plan replays the legacy serve path
                # (and its output) exactly, batched or not.
                tenant, n = group[0]
                if (tenant.complete_us is None
                        and self._scheduler.runnable(tenant)):
                    now = self._run_quantum(tenant, n, now)
            elif self._batch:
                now = self._run_group_batched(group, now)
            else:
                now = self._run_group(group, now)
        for tenant in self._live:
            if tenant.throttle_left > 0:
                tenant.throttle_left -= 1
                tenant.throttled_rounds += 1
        if self._telemetry is not None:
            # Evaluate windows/SLOs/alerts before the throttle check so
            # live admission sees this round's interference estimates.
            self._telemetry.tick(
                now, self._controller.oversubscription, self._live,
                self._driver.attribution.thrash_migrations)
        self._maybe_throttle(now)
        return now

    def _observe_wave(self, tenant: _Tenant, outcome, compute_cycles,
                      now: float) -> float:
        """Charge one executed wave to the clocks and histograms."""
        wave_us = (self._timing.wave_total_cycles(outcome, compute_cycles)
                   / self._clock_mhz)
        now += wave_us
        tenant.waves += 1
        tenant.accesses += outcome.n_accesses
        tenant.latency.observe(wave_us)
        self._latency.observe(wave_us)
        if self._telemetry is not None:
            self._telemetry.on_wave(tenant.id, now, wave_us,
                                    outcome.n_accesses)
        return now

    def _run_quantum(self, tenant: _Tenant, n: int, now: float) -> float:
        """Run up to ``n`` contiguous waves for one tenant."""
        driver = self._driver
        attribution = driver.attribution
        # Hoisted out of the wave loop: the timing closure, clock rate,
        # per-tenant histogram bound method, and telemetry hub were all
        # attribute lookups per wave in the pre-scheduler loop.
        process_wave = driver.process_wave
        stream = tenant.stream
        wave_cycles = self._timing.wave_total_cycles
        clock_mhz = self._clock_mhz
        observe_t = tenant.latency.observe
        observe_all = self._latency.observe
        telemetry = self._telemetry
        tl = self._tl
        attribution.current = tenant.id
        if tl is not None:
            tl.begin(f"quantum t{tenant.id}", tid=TID_SERVE,
                     args={"span": f"t{tenant.id}", "tenant": tenant.id})
        try:
            for _ in range(n):
                wave = next(stream, None)
                if wave is None:
                    now = self._complete(tenant, now)
                    break
                outcome = process_wave(wave.pages, wave.is_write,
                                       wave.counts)
                wave_us = (wave_cycles(outcome, wave.compute_cycles)
                           / clock_mhz)
                now += wave_us
                tenant.waves += 1
                tenant.accesses += outcome.n_accesses
                observe_t(wave_us)
                observe_all(wave_us)
                if telemetry is not None:
                    telemetry.on_wave(tenant.id, now, wave_us,
                                      outcome.n_accesses)
        finally:
            attribution.current = -1
            if tl is not None:
                tl.end(f"quantum t{tenant.id}", tid=TID_SERVE)
        return now

    def _run_group(self, group, now: float) -> float:
        """Execute a multi-tenant group slot-major, one wave at a time."""
        maxn = max(n for _, n in group)
        scheduler = self._scheduler
        for slot in range(maxn):
            for tenant, n in group:
                if (n <= slot or tenant.complete_us is not None
                        or not scheduler.runnable(tenant)):
                    continue
                now = self._run_quantum(tenant, 1, now)
        return now

    def _run_group_batched(self, group, now: float) -> float:
        """Execute a multi-tenant group as fused batch dispatches.

        Each wave slot gathers one pending wave per still-running tenant
        and hands the whole set to
        :meth:`~repro.uvm.driver.UvmDriver.process_wave_batch` as one
        driver dispatch; per-wave bookkeeping then replays in the same
        order sequential execution would have used.  A drained stream
        flushes the slot's batch *before* the completion runs, because
        completion mutates global state (releases chunks, drains the
        admission queue) that later waves in the batch must not see
        early.  Results are bit-identical to :meth:`_run_group` -- the
        driver's batch path guarantees it per wave, and the bookkeeping
        order here matches by construction.
        """
        scheduler = self._scheduler
        maxn = max(n for _, n in group)
        for slot in range(maxn):
            batch: list[tuple[_Tenant, object]] = []
            for tenant, n in group:
                if (n <= slot or tenant.complete_us is not None
                        or not scheduler.runnable(tenant)):
                    continue
                wave = next(tenant.stream, None)
                if wave is None:
                    # Flush first: the completion below must observe
                    # exactly the post-batch driver state.
                    now = self._dispatch(batch, now)
                    batch = []
                    now = self._complete(tenant, now)
                    continue
                batch.append((tenant, wave))
            now = self._dispatch(batch, now)
        return now

    def _dispatch(self, batch, now: float) -> float:
        """Run one gathered slot through the fused driver entry point."""
        if not batch:
            return now
        driver = self._driver
        tl = self._tl
        if tl is not None:
            tl.begin("batch", tid=TID_SERVE,
                     args={"span": "batch", "waves": len(batch)})
        outcomes = driver.process_wave_batch(
            [(w.pages, w.is_write, w.counts) for _, w in batch],
            tenants=[t.id for t, _ in batch])
        if tl is not None:
            tl.end("batch", tid=TID_SERVE)
        self._batches += 1
        self._batched_waves += len(batch)
        for (tenant, wave), outcome in zip(batch, outcomes):
            tenant.batched_waves += 1
            now = self._observe_wave(tenant, outcome,
                                     wave.compute_cycles, now)
        return now

    def _maybe_throttle(self, now: float) -> None:
        """Suspend the heaviest-thrashing tenant past the watermark.

        With ``live_admission`` the trigger and the victim choice both
        consult the live telemetry hub: the throttle engages when the
        *windowed* interference estimate (EWMA thrash migrations per
        wave) crosses ``live_thrash_threshold`` -- even below the
        static oversubscription watermark -- and suspends the tenant
        with the highest windowed thrash rate (ties broken by
        cumulative attribution, then lowest id) instead of the highest
        all-time total.
        """
        cfg = self.config
        telemetry = self._telemetry
        live = cfg.live_admission and telemetry is not None
        if live:
            if (self._controller.oversubscription < cfg.throttle_watermark
                    and telemetry.interference()
                    < cfg.live_thrash_threshold):
                return
        elif self._controller.oversubscription < cfg.throttle_watermark:
            return
        if any(t.throttle_left > 0 for t in self._live):
            return  # one suspension at a time
        runnable = [t for t in self._live if t.throttle_left == 0]
        if len(runnable) < 2:
            return  # never suspend the last runnable stream
        attribution = self._driver.attribution
        if live:
            victim = max(runnable,
                         key=lambda t: (telemetry.thrash_rate(t.id),
                                        attribution.thrash_of(t.id),
                                        -t.id))
        else:
            victim = max(runnable,
                         key=lambda t: (attribution.thrash_of(t.id),
                                        -t.id))
        victim.throttle_left = cfg.throttle_rounds
        victim.throttle_events += 1
        self._throttle_events += 1
        if self._first_throttle_us is None:
            self._first_throttle_us = now
        self._emit(TenantThrottled(
            tenant=victim.id, at_us=now, rounds=cfg.throttle_rounds,
            thrash_migrations=attribution.thrash_of(victim.id)))

    def _complete(self, tenant: _Tenant, now: float) -> float:
        """Tear down a drained tenant and drain the admission queue."""
        freed, writebacks = self._driver.release_chunks(tenant.chunk_ids)
        tenant.freed_blocks = freed
        tenant.writeback_blocks = writebacks
        if writebacks:
            # Dirty blocks cross PCIe before the frames are reusable.
            now += self._pcie.writeback_cycles(writebacks) / self._clock_mhz
        tenant.complete_us = now
        tenant.throttle_left = 0
        tenant.stream = None  # free the drained generator + workload
        self._live.remove(tenant)
        self._controller.release(tenant.blocks)
        self._completed += 1
        attribution = self._driver.attribution
        if self._telemetry is not None:
            self._telemetry.on_complete(tenant.id, now)
        self._emit(TenantComplete(
            tenant=tenant.id, at_us=now, waves=tenant.waves,
            freed_blocks=freed, writeback_blocks=writebacks,
            p99_wave_latency_us=tenant.latency.quantile(0.99) or 0.0,
            thrash_migrations=attribution.thrash_of(tenant.id),
            cross_evictions=int(attribution.cross_evictions[tenant.id])))
        cfg = self.config
        if cfg.scheduler != "round_robin" or cfg.batch_waves:
            # Scheduler accounting rides along only off the default
            # path, keeping the legacy round-robin event stream
            # byte-identical to the pre-scheduler serving layer.
            self._emit(TenantSched(
                tenant=tenant.id, at_us=now,
                weight=self._scheduler.weight_of(tenant.id),
                deficit=self._scheduler.deficit_of(tenant.id),
                waves=tenant.waves,
                batched_waves=tenant.batched_waves))
        # Freed footprint drains the queue FIFO.
        while self._admit_from_queue(now):
            pass
        return now

    # -- reporting -------------------------------------------------------

    def _emit(self, event) -> None:
        if self._bus is not None and self._bus.enabled:
            self._bus.emit(event)

    def _result(self, now: float) -> ServeResult:
        controller = self._controller
        attribution = self._driver.attribution
        scheduler = self._scheduler
        records = []
        for t in self._tenants:
            records.append(TenantRecord(
                tenant=t.id, workload=t.workload_name,
                footprint_mb=t.footprint_mb, arrival_us=t.arrival_us,
                admitted_us=t.admitted_us, queued_us=t.queued_us,
                shed=bool(t.shed_reason), shed_reason=t.shed_reason,
                complete_us=t.complete_us, waves=t.waves,
                accesses=t.accesses,
                p50_wave_latency_us=t.latency.quantile(0.5),
                p99_wave_latency_us=t.latency.quantile(0.99),
                throttled_rounds=t.throttled_rounds,
                throttle_events=t.throttle_events,
                thrash_migrations=attribution.thrash_of(t.id),
                cross_evictions=int(attribution.cross_evictions[t.id]),
                evicted_blocks=int(attribution.evicted_blocks[t.id]),
                freed_blocks=t.freed_blocks,
                writeback_blocks=t.writeback_blocks,
                weight=scheduler.weight_of(t.id),
                deficit=scheduler.deficit_of(t.id),
                batched_waves=t.batched_waves))
        total_waves = sum(t.waves for t in self._tenants)
        total_accesses = sum(t.accesses for t in self._tenants)
        shed_rate = controller.sheds / len(self._tenants)
        aps = (total_accesses / (now / 1e6)) if now > 0 else 0.0
        p99 = self._latency.quantile(0.99)
        telemetry = self._telemetry
        slo_violations = 0
        alerts_fired = 0
        if telemetry is not None:
            alerts_fired = sum(1 for ev in telemetry.alerts.transcript
                               if ev.state == "firing")
            if telemetry.slo is not None:
                slo_violations = telemetry.slo.total_violations()
        result = ServeResult(
            config=self.config,
            backend=self._driver.backend_name,
            arrivals=len(self._tenants),
            admitted=controller.admits,
            queued=controller.queued,
            shed=controller.sheds,
            completed=self._completed,
            decisions=tuple((d.tenant, d.action, d.reason)
                            for d in controller.decisions),
            tenants=tuple(records),
            duration_us=now,
            total_waves=total_waves,
            total_accesses=total_accesses,
            accesses_per_second=aps,
            p50_wave_latency_us=self._latency.quantile(0.5),
            p99_wave_latency_us=p99,
            shed_rate=shed_rate,
            throttle_events=self._throttle_events,
            peak_live_oversubscription=self._peak_oversub,
            first_throttle_us=self._first_throttle_us,
            first_queue_us=self._first_queue_us,
            first_shed_us=self._first_shed_us,
            driver_totals=dataclasses.asdict(self._driver.stats.totals),
            scenario=self.scenario,
            slo_violations=slo_violations,
            alerts_fired=alerts_fired,
            scheduler=scheduler.name,
            batches=self._batches,
            batch_occupancy=(self._batched_waves / self._batches
                             if self._batches else 0.0))
        obs = self.obs
        if obs is not None and obs.metrics is not None:
            m = obs.metrics
            m.gauge("serve.accesses_per_second").set(aps)
            m.gauge("serve.p99_wave_latency_us").set(p99 or 0.0)
            m.gauge("serve.shed_rate").set(shed_rate)
            m.gauge("serve.peak_live_oversubscription").set(
                self._peak_oversub)
            m.counter("serve.admits").inc(controller.admits)
            m.counter("serve.queued").inc(controller.queued)
            m.counter("serve.sheds").inc(controller.sheds)
            m.counter("serve.throttle_events").inc(self._throttle_events)
            m.counter("serve.waves").inc(total_waves)
            if self._batches:
                m.counter("serve.batches").inc(self._batches)
                m.gauge("serve.batch_occupancy").set(
                    self._batched_waves / self._batches)
        return result
