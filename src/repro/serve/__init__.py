"""Multi-tenant UVM serving layer (``repro serve``).

The paper evaluates adaptive migration with one workload owning the
whole device; this package stresses the same mechanisms in a serving
regime: a seeded open-loop traffic generator (:mod:`repro.serve.traffic`)
spawns workload instances from the registry as *tenants*, a
capacity-aware admission controller (:mod:`repro.serve.admission`)
admits, queues or sheds them against the shared device capacity, and a
wave-stream interleaver (:mod:`repro.serve.session`) schedules admitted
tenants' waves onto one shared :class:`~repro.uvm.driver.UvmDriver`
under a pluggable scheduler (:mod:`repro.serve.scheduler`: legacy round
robin or deficit-weighted fair queuing, optionally with fused
multi-tenant wave batching).  Graceful degradation engages in
watermark escalation order -- throttle the heaviest-thrashing tenant
(the paper's Section VIII proposal), then queue, then shed -- and every
decision is a pure function of ``(seed, arrival trace, capacity)``, so
serve runs replay bit-identically.  See ``docs/serving.md``.
"""

from __future__ import annotations

from .admission import AdmissionController, Decision, tenant_weight
from .scheduler import (DeficitRoundRobinScheduler, RoundRobinScheduler,
                        WaveScheduler, make_scheduler)
from .session import ServeResult, ServeSession, TenantRecord
from .traffic import Arrival, generate_arrivals

__all__ = [
    "AdmissionController",
    "Arrival",
    "Decision",
    "DeficitRoundRobinScheduler",
    "RoundRobinScheduler",
    "ServeResult",
    "ServeSession",
    "TenantRecord",
    "WaveScheduler",
    "generate_arrivals",
    "make_scheduler",
    "tenant_weight",
]
