"""Capacity-aware admission control for the serving layer.

The controller tracks the *live footprint* -- the summed allocation
footprint of every admitted, not-yet-complete tenant -- against the
shared device capacity and decides each arrival's fate:

* **admit** when the queue is empty and the projected oversubscription
  (live + arrival footprint, over capacity) stays at or below the admit
  watermark;
* **queue** (bounded FIFO) when the arrival does not fit right now but
  its projected oversubscription stays at or below the shed watermark;
* **shed** deterministically -- never by timeout -- when the projected
  oversubscription exceeds the shed watermark (``"watermark"``) or the
  queue is at capacity (``"queue_full"``).

Queued tenants are admitted strictly in FIFO order as completions
release footprint; an arrival is never admitted past a non-empty queue.
The anti-livelock rule: when the device goes idle (live footprint zero)
with a non-empty queue, the head is force-admitted even if it exceeds
the admit watermark (reason ``"idle"``), so a large tenant at the head
can never stall the system forever.

Every decision is recorded in order; the decision list is a pure
function of ``(capacity, watermarks, the offer/release call sequence)``,
which the serving session in turn derives purely from ``(seed, arrival
trace, capacity)`` -- the purity the property tests pin.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


def tenant_weight(weights: tuple[float, ...], tenant_id: int) -> float:
    """Map the configured share vector onto one tenant's fair weight.

    Tenant ``i`` gets ``weights[i % len(weights)]``; an empty vector
    means equal shares (1.0).  This lives with admission because the
    share vector is QoS policy -- the natural seam where an
    SLO-class-to-weight mapping would plug in -- while the scheduler
    (:mod:`repro.serve.scheduler`) just consumes the resolved weight.
    """
    return weights[tenant_id % len(weights)] if weights else 1.0


@dataclass(frozen=True)
class Decision:
    """One admission-control verdict, in decision order."""

    tenant: int
    #: ``"admit"``, ``"queue"``, or ``"shed"``.
    action: str
    #: ``""`` for plain admits/queues; ``"watermark"``/``"queue_full"``
    #: for sheds; ``"idle"`` for anti-livelock force-admits.
    reason: str
    #: Live-footprint oversubscription *after* the decision applied.
    live_oversubscription: float


class AdmissionController:
    """Admit/queue/shed tenants against the shared device capacity."""

    def __init__(self, capacity_blocks: int, admit_watermark: float,
                 shed_watermark: float, queue_depth: int) -> None:
        if capacity_blocks < 1:
            raise ValueError("capacity_blocks must be >= 1")
        if not admit_watermark <= shed_watermark:
            raise ValueError("watermarks must escalate: admit <= shed")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.capacity_blocks = capacity_blocks
        self.admit_watermark = admit_watermark
        self.shed_watermark = shed_watermark
        self.queue_depth = queue_depth
        #: Summed footprint blocks of admitted, not-yet-complete tenants.
        self.live_blocks = 0
        #: Bounded FIFO of ``(tenant, blocks, enqueued_at_us)``.
        self.queue: deque[tuple[int, int, float]] = deque()
        #: Every verdict, in decision order (the purity surface).
        self.decisions: list[Decision] = []
        self.admits = 0
        self.queued = 0
        self.sheds = 0

    @property
    def oversubscription(self) -> float:
        """Current live-footprint oversubscription ratio."""
        return self.live_blocks / self.capacity_blocks

    def projected(self, blocks: int) -> float:
        """Oversubscription ratio if ``blocks`` more were admitted."""
        return (self.live_blocks + blocks) / self.capacity_blocks

    def offer(self, tenant: int, blocks: int, at_us: float) -> Decision:
        """Decide one arrival's fate; returns the recorded decision."""
        projected = self.projected(blocks)
        if not self.queue and projected <= self.admit_watermark:
            self.live_blocks += blocks
            self.admits += 1
            d = Decision(tenant, "admit", "", self.oversubscription)
        elif projected > self.shed_watermark:
            self.sheds += 1
            d = Decision(tenant, "shed", "watermark", self.oversubscription)
        elif len(self.queue) >= self.queue_depth:
            self.sheds += 1
            d = Decision(tenant, "shed", "queue_full", self.oversubscription)
        else:
            self.queue.append((tenant, blocks, at_us))
            self.queued += 1
            d = Decision(tenant, "queue", "", self.oversubscription)
        self.decisions.append(d)
        return d

    def pop_admittable(self, force: bool = False
                       ) -> tuple[int, float] | None:
        """Admit the queue head if it fits (or unconditionally).

        Returns ``(tenant, enqueued_at_us)`` on admission, ``None`` when
        the queue is empty or the head still does not fit.  ``force`` is
        the anti-livelock path: the caller asserts the device is idle,
        so the head is admitted regardless of the admit watermark.
        """
        if not self.queue:
            return None
        tenant, blocks, enqueued_at = self.queue[0]
        fits = self.projected(blocks) <= self.admit_watermark
        if not fits and not force:
            return None
        self.queue.popleft()
        self.live_blocks += blocks
        self.admits += 1
        self.decisions.append(Decision(
            tenant, "admit", "" if fits else "idle", self.oversubscription))
        return tenant, enqueued_at

    def release(self, blocks: int) -> None:
        """Return a completed tenant's footprint to the live budget."""
        if blocks > self.live_blocks:
            raise ValueError(
                f"releasing {blocks} blocks but only {self.live_blocks} live")
        self.live_blocks -= blocks
