"""Seeded open-loop tenant traffic: Poisson and bursty MMPP arrivals.

The generator produces the whole arrival trace up front -- tenant ids,
arrival times on the simulated clock, and per-tenant workload choices --
from its own seeded RNG stream.  *Open loop* means arrival times never
depend on service: the trace is fixed before the first wave runs, which
is both the realistic serving model (clients do not pace themselves to
the device) and what makes admission decisions a pure function of
``(seed, arrival trace, capacity)``.

Two processes are supported:

* ``poisson`` -- memoryless: exponential inter-arrival times at
  ``arrival_rate`` per second.
* ``bursty`` -- a two-state Markov-modulated Poisson process: the
  modulating chain alternates exponential *calm* and *burst* sojourns
  (means ``calm_len_ms``/``burst_len_ms``), and the burst state
  multiplies the arrival rate by ``burst_factor``.  Simulated by
  competing exponentials: at every step the next arrival races the next
  state flip, and memorylessness makes redrawing after a flip exact.

Determinism contract: the generator owns its own
:class:`numpy.random.Generator` seeded from ``(seed, stream constant)``,
so it never perturbs tenant-build or driver RNG streams, and the trace
is a pure function of the :class:`~repro.config.ServeConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ServeConfig

#: SeedSequence stream key separating arrival-trace draws from every
#: other consumer of the serve seed (tenant builds, driver faults).
_ARRIVAL_STREAM = 0xA221FE


@dataclass(frozen=True)
class Arrival:
    """One tenant arrival: who, when, and which workload it runs."""

    #: Dense tenant id (0-based, in arrival order).
    tenant: int
    #: Arrival time on the simulated clock, microseconds.
    at_us: float
    #: Registry name of the workload this tenant runs.
    workload: str


def generate_arrivals(config: ServeConfig) -> tuple[Arrival, ...]:
    """Generate the full arrival trace for one serve run.

    The trace is cut by ``config.tenants`` arrivals or, when
    ``duration_ms`` is set, by the arrival window -- whichever comes
    first.  Workloads are drawn per arrival, uniformly from
    ``workload_mix``, from the same stream (so the trace including
    workload choices replays bit-identically for a fixed seed).
    """
    config.validate()
    rng = np.random.default_rng(
        np.random.SeedSequence(entropy=(config.seed, _ARRIVAL_STREAM)))
    rate_per_us = config.arrival_rate / 1e6
    burst_mean_us = config.burst_len_ms * 1e3
    calm_mean_us = config.calm_len_ms * 1e3
    duration_us = config.duration_us
    bursty = config.process == "bursty"
    mix = config.workload_mix

    arrivals: list[Arrival] = []
    t = 0.0
    in_burst = False
    while len(arrivals) < config.tenants:
        if bursty:
            rate = rate_per_us * (config.burst_factor if in_burst else 1.0)
            sojourn = burst_mean_us if in_burst else calm_mean_us
            t_arrival = rng.exponential(1.0 / rate)
            t_flip = rng.exponential(sojourn)
            if t_flip < t_arrival:
                # The modulating chain flips before the next arrival;
                # memorylessness lets the arrival draw restart cleanly.
                t += t_flip
                in_burst = not in_burst
                if duration_us is not None and t > duration_us:
                    break
                continue
            t += t_arrival
        else:
            t += rng.exponential(1.0 / rate_per_us)
        if duration_us is not None and t > duration_us:
            break
        workload = mix[int(rng.integers(len(mix)))]
        arrivals.append(Arrival(tenant=len(arrivals), at_us=t,
                                workload=workload))
    return tuple(arrivals)
