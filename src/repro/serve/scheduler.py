"""Wave schedulers for the serving layer (``serve.scheduler``).

A scheduler decides, per round, which live tenants run how many waves
and in what interleaving.  :meth:`WaveScheduler.plan_round` returns the
round's *groups*: an ordered list where each group is an ordered list
of ``(tenant, waves)`` entries over distinct tenants.  Groups execute
in order; a multi-tenant group executes wave-slot-major (slot ``k``
runs one wave for every tenant whose allowance exceeds ``k``, in entry
order).  That slot structure is what makes a group *batchable*: each
slot's waves come from distinct tenants with disjoint block namespaces,
so with ``serve.batch_waves`` the session hands the whole slot to
:meth:`repro.uvm.driver.UvmDriver.process_wave_batch` as one fused
dispatch.  Batching never changes results -- the executor runs the
same plan either way, and the driver's batch path is bit-identical to
sequential waves by contract.

Two schedulers ship:

* ``round_robin`` -- the legacy reference: each runnable tenant runs a
  full ``quantum`` in admission order, and a throttled tenant sits the
  round out entirely.  Byte-identical to the pre-scheduler serve path.
* ``drr`` -- deficit round robin (deficit-weighted fair queuing): each
  round a tenant accrues ``weight * quantum`` deficit and is allotted
  ``floor(deficit)`` waves, carrying the fraction forward, so over time
  every tenant's wave share converges to its weight share regardless
  of integer quantum granularity.  Throttling decays the weight by
  ``throttle_decay`` instead of suspending the stream -- the paper's
  Section VIII throttle as a graceful slowdown.

Weights come from the configured share vector ``serve.weights`` (tenant
``i`` gets ``weights[i % len(weights)]``; empty means 1.0 for all) --
the hook where an SLO-class-to-share mapping would plug in.

Determinism: scheduling is a pure function of the tenant states it is
handed; neither scheduler draws randomness or reads the wall clock.
"""

from __future__ import annotations

from ..config import ServeConfig
from .admission import tenant_weight


class WaveScheduler:
    """Strategy interface: plan each round's tenant/wave interleaving."""

    #: Config name (``serve.scheduler`` value) this scheduler answers to.
    name = "?"

    def plan_round(self, live) -> list[list[tuple]]:
        """Groups of ``(tenant, waves)`` entries for one round.

        Called once per scheduler round with the live-tenant list (in
        admission order).  Entry tenants are distinct within a group.
        """
        raise NotImplementedError

    def runnable(self, tenant) -> bool:
        """Whether a planned tenant may still run at execution time.

        Re-checked when the tenant's turn arrives, because a completion
        earlier in the round can engage the throttle mid-round.
        """
        raise NotImplementedError

    def weight_of(self, tenant_id: int) -> float:
        """The tenant's configured fair share (1.0 = equal share)."""
        return 1.0

    def deficit_of(self, tenant_id: int) -> float:
        """The tenant's carried fractional deficit (0.0 outside drr)."""
        return 0.0


class RoundRobinScheduler(WaveScheduler):
    """Legacy round robin: a full quantum per runnable tenant.

    Kept as the reference path: its plans replay the pre-scheduler
    serve loop exactly (throttled tenants are filtered at plan time
    *and* re-checked at execution, matching the old per-turn check),
    so ``scheduler=round_robin`` output is byte-identical per seed.
    """

    name = "round_robin"

    def __init__(self, config: ServeConfig) -> None:
        self._quantum = config.quantum

    def plan_round(self, live):
        quantum = self._quantum
        return [[(t, quantum)] for t in live if t.throttle_left == 0]

    def runnable(self, tenant) -> bool:
        return tenant.throttle_left == 0


class DeficitRoundRobinScheduler(WaveScheduler):
    """Deficit-weighted fair queuing over wave quanta (DRR).

    Each round every live tenant accrues ``weight * quantum`` deficit
    (decayed by ``throttle_decay`` while throttled) and is planned for
    ``floor(deficit)`` waves; the fractional remainder carries to the
    next round.  Invariant (property-tested): the carried deficit is
    always in ``[0, 1)`` -- no tenant can bank more than one wave of
    credit, which bounds short-term unfairness by one wave per round.

    The whole round is one group, so execution interleaves tenants one
    wave at a time (slot-major) -- exactly the shape the fused batch
    dispatch wants.
    """

    name = "drr"

    def __init__(self, config: ServeConfig) -> None:
        self._quantum = config.quantum
        self._weights = config.weights
        self._decay = config.throttle_decay
        self._deficit: dict[int, float] = {}

    def weight_of(self, tenant_id: int) -> float:
        return tenant_weight(self._weights, tenant_id)

    def deficit_of(self, tenant_id: int) -> float:
        return self._deficit.get(tenant_id, 0.0)

    def runnable(self, tenant) -> bool:  # noqa: ARG002 - uniform API
        # Throttling under drr decays the accrual rate instead of
        # suspending the stream, so a planned tenant always runs.
        return True

    def plan_round(self, live):
        group = []
        quantum = self._quantum
        for tenant in live:
            weight = self.weight_of(tenant.id)
            if tenant.throttle_left > 0:
                weight *= self._decay
            deficit = self._deficit.get(tenant.id, 0.0) + weight * quantum
            allot = int(deficit)
            self._deficit[tenant.id] = deficit - allot
            if allot > 0:
                group.append((tenant, allot))
        return [group] if group else []


def make_scheduler(config: ServeConfig) -> WaveScheduler:
    """Instantiate the scheduler ``config.scheduler`` names."""
    if config.scheduler == "drr":
        return DeficitRoundRobinScheduler(config)
    return RoundRobinScheduler(config)
