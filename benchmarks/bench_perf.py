"""Tracked performance harness for the simulator's hot path.

Measures (1) the simulator's throughput in simulated accesses per
second on a fixed workload set, run over a pre-recorded shared trace
cache (the grid fan-out configuration; live wave generation is timed
alongside for the ``replay_speedup`` ratio), (2) wall time of the
``bench_sweep`` grid serially and with ``--jobs`` worker processes,
(3) the speedup of the batched migration drain over the in-tree scalar
reference path, and (4) a steady-state resident-wave microbench that
isolates the driver's all-resident fast path.
Results are written to ``BENCH_driver.json`` at the repository root
(latest snapshot) and appended to ``BENCH_history.jsonl`` (one report
per line, tagged with the git commit) so every later change has a perf
trajectory to compare against — ``tools/check_regression.py`` gates on
that history::

    PYTHONPATH=src python benchmarks/bench_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_perf.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --jobs 0   # all cores
    PYTHONPATH=src python benchmarks/bench_perf.py --no-history

Wall-clock numbers are min-of-``--repeats`` to shave scheduler noise;
CPU time (``time.process_time``) is reported alongside because shared
boxes make wall time alone unreliable.  Numbers are testbed-specific:
compare ratios across commits on the same machine, not across hosts.
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import platform
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

import numpy as np  # noqa: E402

from repro.accel import NUMBA_VERSION, resolve_backend  # noqa: E402
from repro.analysis import (  # noqa: E402
    GridCell,
    GridOptions,
    default_jobs,
    oversubscription_sweep,
    run_grid,
)
from repro.config import (  # noqa: E402
    KNOWN_BACKENDS,
    MigrationPolicy,
    SimulationConfig,
    default_backend,
)
from repro.memory.allocator import VirtualAddressSpace  # noqa: E402
from repro.memory.layout import MB  # noqa: E402
from repro.obs.store import git_info  # noqa: E402
from repro.trace import TraceCache  # noqa: E402
import repro.uvm.driver as uvm_driver  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DEFAULT_OUT = REPO_ROOT / "BENCH_driver.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: The bench_sweep grid: the acceptance workload for driver speedups.
SWEEP_LEVELS = (0.8, 1.0, 1.25, 1.5)
SWEEP_WORKLOADS = ("ra", "fdtd")
SWEEP_POLICIES = (MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE)

#: Driver-throughput cells: one irregular and one regular workload per
#: pressure regime, adaptive policy (the paper's operating points).
THROUGHPUT_CELLS = tuple(
    (w, level) for w in ("ra", "sssp", "fdtd", "bfs") for level in (1.25,))


def _timed(fn, repeats: int) -> tuple[float, float, object]:
    """(best wall seconds, best CPU seconds, last result) over repeats."""
    best_wall = best_cpu = float("inf")
    result = None
    for _ in range(repeats):
        w0, c0 = time.perf_counter(), time.process_time()
        result = fn()
        best_wall = min(best_wall, time.perf_counter() - w0)
        best_cpu = min(best_cpu, time.process_time() - c0)
    return best_wall, best_cpu, result


def measure_throughput(scale: str, repeats: int,
                       backend: str | None = None) -> dict:
    """Simulated accesses/second over the fixed throughput cells.

    The headline ``accesses_per_second`` runs the grid over a shared
    trace cache (``GridOptions.trace_cache``): each cell replays its
    workload's memory-mapped access stream instead of regenerating the
    waves, exactly as sweep fan-outs do.  Recording happens outside the
    timed region.  The ``live_*`` numbers keep the regenerate-per-cell
    semantics for comparison, and ``replay_speedup`` is the ratio.
    """
    cells = [GridCell(w, MigrationPolicy.ADAPTIVE, level, scale,
                      backend=backend)
             for w, level in THROUGHPUT_CELLS]
    live_wall, live_cpu, live_results = _timed(lambda: run_grid(cells),
                                               repeats)
    accesses = sum(r.events.n_accesses for r in live_results)
    with tempfile.TemporaryDirectory(prefix="bench-trace-cache-") as tmp:
        cache = TraceCache(tmp)
        for cell in cells:  # pre-warm: recording is not the timed path
            cache.get_or_record(cell.workload, cell.scale, cell.seed)
        opts = GridOptions(trace_cache=tmp)
        wall, cpu, results = _timed(lambda: run_grid(cells, options=opts),
                                    repeats)
    if sum(r.events.n_accesses for r in results) != accesses:
        raise RuntimeError("trace replay diverged from live generation")
    return {
        "cells": [f"{w}@{level}" for w, level in THROUGHPUT_CELLS],
        "scale": scale,
        "simulated_accesses": accesses,
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "accesses_per_second": round(accesses / wall, 1),
        "live_wall_seconds": round(live_wall, 4),
        "live_cpu_seconds": round(live_cpu, 4),
        "live_accesses_per_second": round(accesses / live_wall, 1),
        "replay_speedup": round(live_wall / wall, 3),
    }


def measure_fast_path(repeats: int, backend: str | None = None) -> dict:
    """Steady-state resident-wave microbench: the fast path's home regime.

    Builds a driver whose capacity covers the whole footprint, warms the
    working set in via first-touch migration, then times passes of pure
    all-resident waves -- the steady state the resident fast path short
    circuits.  ``hit_rate`` is measured over the timed section (1.0 when
    warm-up fully migrated the working set), and the same section is
    re-timed with ``resident_fast_path`` off for the speedup ratio.
    """
    size_mb, n_waves, wave_pages, passes = 32, 64, 512, 8
    vas = VirtualAddressSpace()
    data = vas.malloc_managed("bench.fastpath", size_mb * MB)
    cfg = SimulationConfig().with_policy(MigrationPolicy.DISABLED)
    cfg = cfg.with_device_capacity(2 * size_mb * MB)
    if backend is not None:
        cfg = cfg.replace(backend=backend)
    rng = np.random.default_rng(7)
    waves = []
    for _ in range(n_waves):
        pages = np.unique(rng.integers(data.first_page, data.last_page,
                                       size=wave_pages, dtype=np.int64))
        is_write = np.zeros(pages.size, dtype=bool)
        is_write[::4] = True
        waves.append((pages, is_write))
    accesses_per_pass = sum(p.size for p, _ in waves)

    driver = uvm_driver.UvmDriver(vas, cfg)
    for pages, w in waves:  # warm pass: first touch migrates everything
        driver.process_wave(pages, w)

    def steady() -> None:
        process = driver.process_wave
        for _ in range(passes):
            for pages, w in waves:
                process(pages, w)

    base_waves = driver.stats.waves
    base_hits = driver.stats.fast_path_waves
    wall, cpu, _ = _timed(steady, repeats)
    timed_waves = driver.stats.waves - base_waves
    hit_rate = ((driver.stats.fast_path_waves - base_hits) / timed_waves
                if timed_waves else 0.0)
    driver.resident_fast_path = False
    off_wall, _, _ = _timed(steady, repeats)
    return {
        "waves_per_pass": n_waves,
        "passes": passes,
        "accesses_per_pass": accesses_per_pass,
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "steady_state_accesses_per_second":
            round(accesses_per_pass * passes / wall, 1),
        "hit_rate": round(hit_rate, 4),
        "off_wall_seconds": round(off_wall, 4),
        "fast_path_speedup": round(off_wall / wall, 3),
    }


def _sweep_grid(scale: str, jobs: int) -> None:
    for w in SWEEP_WORKLOADS:
        oversubscription_sweep(w, levels=SWEEP_LEVELS, scale=scale,
                               policies=SWEEP_POLICIES, jobs=jobs)


def measure_sweep(scale: str, repeats: int, jobs: int) -> dict:
    """bench_sweep grid wall time, serial and parallel."""
    serial_wall, serial_cpu, _ = _timed(
        lambda: _sweep_grid(scale, 1), repeats)
    out = {
        "scale": scale,
        "levels": list(SWEEP_LEVELS),
        "workloads": list(SWEEP_WORKLOADS),
        "serial_wall_seconds": round(serial_wall, 4),
        "serial_cpu_seconds": round(serial_cpu, 4),
    }
    if jobs != 1:
        par_wall, _, _ = _timed(lambda: _sweep_grid(scale, jobs), repeats)
        out["jobs"] = jobs if jobs else default_jobs()
        out["parallel_wall_seconds"] = round(par_wall, 4)
        out["parallel_speedup"] = round(serial_wall / par_wall, 3)
    return out


def measure_batched_vs_scalar(scale: str, repeats: int) -> dict:
    """Batched drain vs the in-tree scalar reference on the same grid.

    The scalar path is the seed implementation kept as an equivalence
    reference (``UvmDriver.batched_migrations``); the two produce
    bit-identical event counts (enforced by the property suite), so the
    ratio isolates the tentpole's driver-hot-path speedup.
    """
    def with_flag(batched: bool) -> tuple[float, float]:
        orig = uvm_driver.UvmDriver.__init__

        def patched(self, *a, **kw):
            orig(self, *a, **kw)
            self.batched_migrations = batched

        uvm_driver.UvmDriver.__init__ = patched
        try:
            wall, cpu, _ = _timed(lambda: _sweep_grid(scale, 1), repeats)
        finally:
            uvm_driver.UvmDriver.__init__ = orig
        return wall, cpu

    batched_wall, batched_cpu = with_flag(True)
    scalar_wall, scalar_cpu = with_flag(False)
    return {
        "scale": scale,
        "batched_wall_seconds": round(batched_wall, 4),
        "scalar_wall_seconds": round(scalar_wall, 4),
        "batched_cpu_seconds": round(batched_cpu, 4),
        "scalar_cpu_seconds": round(scalar_cpu, 4),
        "drain_speedup": round(scalar_cpu / batched_cpu, 3),
    }


#: The serve bench scenario: open-loop churn past 1.5x aggregate
#: oversubscription with a short queue, so throttle, queue and shed all
#: engage and ``shed_rate`` is a meaningful gated number.  Always tiny
#: scale: the serve path's cost is scheduling + driver interleave, not
#: footprint.
SERVE_SCENARIO = dict(tenants=10, seed=1, arrival_rate=2000.0,
                      queue_depth=2, throttle_watermark=1.0,
                      admit_watermark=1.8, shed_watermark=2.0)


def measure_serve(repeats: int, backend: str | None = None) -> dict:
    """Multi-tenant serve run: wall time plus the serving metrics.

    ``accesses_per_second``/``p99_wave_latency_us``/``shed_rate`` come
    from the (deterministic) :class:`~repro.serve.session.ServeResult`
    -- simulated-clock quantities, so the gate catches behavioral
    regressions; ``wall_seconds`` tracks the host cost of the serving
    loop itself.
    """
    from repro.config import ServeConfig
    from repro.serve import ServeSession

    cfg = ServeConfig(**SERVE_SCENARIO)
    sim = SimulationConfig(backend=backend) if backend else None
    wall, cpu, result = _timed(
        lambda: ServeSession(cfg, sim_config=sim).run(), repeats)
    return {
        "scenario": {k: v for k, v in SERVE_SCENARIO.items()},
        "arrivals": result.arrivals,
        "admitted": result.admitted,
        "shed": result.shed,
        "throttle_events": result.throttle_events,
        "peak_live_oversubscription": round(
            result.peak_live_oversubscription, 3),
        "simulated_accesses": result.total_accesses,
        "wall_seconds": round(wall, 4),
        "cpu_seconds": round(cpu, 4),
        "accesses_per_second": round(result.accesses_per_second, 1),
        "p99_wave_latency_us": round(result.p99_wave_latency_us or 0.0, 3),
        "shed_rate": round(result.shed_rate, 4),
    }


#: The fused-batching bench cell: 8 ra tenants against 64MB -- 2x
#: aggregate oversubscription over the 8x16MB tiny ra footprint -- under
#: the drr scheduler, so every scheduler round is one 8-tenant group
#: whose wave slots the session hands to the driver as fused batch
#: dispatches.  ra at tiny scale is the fusion-friendly regime the
#: tentpole targets: many small irregular waves whose per-wave Python
#: overhead dominates the sequential driver loop.
SERVE_FUSED_SCENARIO = dict(tenants=8, seed=1, arrival_rate=4000.0,
                            workload_mix=("ra",), scale="tiny",
                            capacity_mb=64, admit_watermark=2.0,
                            shed_watermark=2.5, throttle_watermark=2.0,
                            queue_depth=4, quantum=4, scheduler="drr")

#: Equation-1 migration penalty for the fused bench cell.  The high
#: penalty keeps the oversubscribed steady state in the remote-access
#: regime (few migrating waves), which is the state the zero-migration
#: prefix commit is built for -- migrating waves fall back to the
#: sequential pipeline on both sides and would only add shared cost.
SERVE_FUSED_PENALTY = 32


def measure_serve_fused(repeats: int, backend: str | None = None) -> dict:
    """Fused batch dispatch vs the sequential serve path, same plan.

    Runs the fused bench cell with ``batch_waves`` on and off --
    identical scheduler plan, identical simulated results (asserted) --
    and reports host-wall throughput for both.  Measurements
    interleave fused/sequential runs so both sides sample the same
    background-load window, and each side takes its best-of; the
    ``fused_speedup`` ratio is the tentpole's acceptance number.
    ``fused_accesses_per_second`` is gated ``higher``.
    """
    import dataclasses as _dc

    from repro.config import ServeConfig
    from repro.serve import ServeSession

    base = SimulationConfig(backend=backend) if backend else \
        SimulationConfig()
    sim = _dc.replace(base, policy=_dc.replace(
        base.policy, migration_penalty=SERVE_FUSED_PENALTY))

    def run_once(batch: bool):
        cfg = ServeConfig(batch_waves=batch, **SERVE_FUSED_SCENARIO)
        return ServeSession(cfg, sim_config=sim).run()

    run_once(True)
    run_once(False)  # warm-up both variants outside the timed region
    fused_wall = seq_wall = float("inf")
    fused_cpu = seq_cpu = float("inf")
    fused = seq = None
    for _ in range(repeats):
        w0, c0 = time.perf_counter(), time.process_time()
        fused = run_once(True)
        fused_wall = min(fused_wall, time.perf_counter() - w0)
        fused_cpu = min(fused_cpu, time.process_time() - c0)
        w0, c0 = time.perf_counter(), time.process_time()
        seq = run_once(False)
        seq_wall = min(seq_wall, time.perf_counter() - w0)
        seq_cpu = min(seq_cpu, time.process_time() - c0)
    if (fused.total_accesses != seq.total_accesses
            or fused.accesses_per_second != seq.accesses_per_second
            or fused.p99_wave_latency_us != seq.p99_wave_latency_us):
        raise RuntimeError("fused batching perturbed simulated results")
    return {
        "scenario": {k: list(v) if isinstance(v, tuple) else v
                     for k, v in SERVE_FUSED_SCENARIO.items()},
        "migration_penalty": SERVE_FUSED_PENALTY,
        "simulated_accesses": fused.total_accesses,
        "batches": fused.batches,
        "batch_occupancy": round(fused.batch_occupancy, 2),
        "fused_wall_seconds": round(fused_wall, 4),
        "sequential_wall_seconds": round(seq_wall, 4),
        "fused_cpu_seconds": round(fused_cpu, 4),
        "sequential_cpu_seconds": round(seq_cpu, 4),
        "fused_accesses_per_second": round(
            fused.total_accesses / fused_wall, 1),
        "sequential_accesses_per_second": round(
            seq.total_accesses / seq_wall, 1),
        "fused_speedup": round(seq_wall / fused_wall, 3),
    }


def measure_telemetry(repeats: int, backend: str | None = None) -> dict:
    """Host-side cost of live telemetry on the serve bench scenario.

    Times the serve scenario bare, then again with the full telemetry
    stack attached -- metrics registry, event bus with a sink, SLO
    engine, and the default alert rules.  Simulated quantities are
    identical by construction (the zero-overhead contract, asserted
    here), so ``overhead_pct`` isolates the *wall-clock* tax of
    observing the run.  Gated ``lower``: telemetry must stay cheap.
    """
    from repro.config import ServeConfig
    from repro.obs import Observability
    from repro.obs.live import SloConfig
    from repro.obs.sinks import NullSink
    from repro.serve import ServeSession

    cfg = ServeConfig(**SERVE_SCENARIO)
    sim = SimulationConfig(backend=backend) if backend else None
    slo = SloConfig(p99_latency_us=300.0, latency_attainment=0.95,
                    max_shed_rate=0.1)

    def bare():
        return ServeSession(cfg, sim_config=sim).run()

    def instrumented():
        obs = Observability.create(metrics=True)
        obs.bus.attach(NullSink())
        return ServeSession(cfg, sim_config=sim, obs=obs, slo=slo).run()

    bare()  # untimed warm-up: the first serve pays one-time numpy
    # and import costs that would otherwise bias whichever variant
    # runs first (overhead is a ratio of the two walls).
    bare_wall, bare_cpu, bare_result = _timed(bare, repeats)
    tel_wall, tel_cpu, tel_result = _timed(instrumented, repeats)
    if tel_result.accesses_per_second != bare_result.accesses_per_second:
        raise RuntimeError("telemetry perturbed the simulated schedule")
    return {
        "scenario": {k: v for k, v in SERVE_SCENARIO.items()},
        "bare_wall_seconds": round(bare_wall, 4),
        "telemetry_wall_seconds": round(tel_wall, 4),
        "bare_cpu_seconds": round(bare_cpu, 4),
        "telemetry_cpu_seconds": round(tel_cpu, 4),
        "slo_violations": tel_result.slo_violations,
        "alerts_fired": tel_result.alerts_fired,
        "overhead_pct": round((tel_wall - bare_wall) / bare_wall * 100, 2),
    }


def run(scale: str, repeats: int, jobs: int,
        backend: str | None = None) -> dict:
    # Resolve once up front: prints the one-line fallback warning when
    # numba was requested but is not importable, and gives the report
    # the *active* backend (the one the numbers were measured with).
    requested = backend if backend is not None else default_backend()
    active = resolve_backend(requested).name
    report = {
        "schema_version": 2,
        "generated": datetime.datetime.now(datetime.timezone.utc)
                     .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git": git_info(cwd=str(REPO_ROOT)),
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
        },
        # The backend field joins the regression-gate fingerprint:
        # compiled and pure-python numbers never baseline each other.
        "backend": {
            "requested": requested,
            "active": active,
            "numba": NUMBA_VERSION,
        },
        "throughput": measure_throughput(scale, repeats, backend=backend),
        "sweep_grid": measure_sweep(scale, repeats, jobs),
        "batched_vs_scalar": measure_batched_vs_scalar(scale, repeats),
        "fast_path": measure_fast_path(repeats, backend=backend),
        "serve": measure_serve(repeats, backend=backend),
        "serve_fused": measure_serve_fused(repeats, backend=backend),
        "telemetry": measure_telemetry(repeats, backend=backend),
    }
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="tiny scale, single repeat (CI smoke)")
    ap.add_argument("--scale", default=None,
                    help="workload scale (default: small, or tiny "
                         "with --quick)")
    ap.add_argument("--repeats", type=int, default=None,
                    help="timing repeats, best-of (default 5, 1 "
                         "with --quick)")
    ap.add_argument("--jobs", type=int, default=1,
                    help="worker processes for the parallel sweep "
                         "measurement (0 = one per CPU, 1 = skip)")
    ap.add_argument("--backend", default=None, choices=KNOWN_BACKENDS,
                    help="hot-loop kernel backend for the throughput and "
                         "fast-path sections (default: $REPRO_BACKEND or "
                         "python; 'numba' warns and falls back to python "
                         "when numba is not installed)")
    ap.add_argument("--out", default=str(DEFAULT_OUT),
                    help="output JSON path (default: BENCH_driver.json "
                         "at the repo root)")
    ap.add_argument("--history", default=str(DEFAULT_HISTORY),
                    help="append the report to this JSONL history "
                         "(default: BENCH_history.jsonl at the repo root)")
    ap.add_argument("--no-history", action="store_true",
                    help="do not append to the history file")
    args = ap.parse_args(argv)
    scale = args.scale or ("tiny" if args.quick else "small")
    repeats = args.repeats or (1 if args.quick else 5)

    report = run(scale, repeats, args.jobs, backend=args.backend)
    out = pathlib.Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    if not args.no_history:
        history = pathlib.Path(args.history)
        with history.open("a") as fh:
            fh.write(json.dumps(report, sort_keys=True) + "\n")

    be = report["backend"]
    numba_note = f", numba {be['numba']}" if be["numba"] else ""
    print(f"backend: {be['active']} (requested {be['requested']}"
          f"{numba_note})")
    tp = report["throughput"]
    sg = report["sweep_grid"]
    bs = report["batched_vs_scalar"]
    fp = report["fast_path"]
    print(f"throughput: {tp['accesses_per_second']:,.0f} simulated "
          f"accesses/s ({tp['simulated_accesses']:,} accesses in "
          f"{tp['wall_seconds']:.3f}s; trace replay "
          f"{tp['replay_speedup']:.2f}x over live at "
          f"{tp['live_accesses_per_second']:,.0f}/s)")
    line = (f"sweep grid: {sg['serial_wall_seconds']:.3f}s serial wall, "
            f"{sg['serial_cpu_seconds']:.3f}s cpu")
    if "parallel_speedup" in sg:
        line += (f"; {sg['parallel_wall_seconds']:.3f}s with "
                 f"{sg['jobs']} jobs ({sg['parallel_speedup']:.2f}x)")
    print(line)
    print(f"batched drain vs scalar reference: "
          f"{bs['drain_speedup']:.2f}x (cpu {bs['batched_cpu_seconds']:.3f}s"
          f" vs {bs['scalar_cpu_seconds']:.3f}s)")
    print(f"resident fast path: "
          f"{fp['steady_state_accesses_per_second']:,.0f} steady-state "
          f"accesses/s, hit rate {fp['hit_rate']:.2f}, "
          f"{fp['fast_path_speedup']:.2f}x vs fast path off")
    sv = report["serve"]
    print(f"serve: {sv['accesses_per_second']:,.0f} simulated accesses/s "
          f"across {sv['arrivals']} tenants "
          f"({sv['admitted']} admitted, {sv['shed']} shed, "
          f"shed rate {sv['shed_rate']:.2f}); "
          f"p99 wave latency {sv['p99_wave_latency_us']:.1f}us, "
          f"wall {sv['wall_seconds']:.3f}s")
    sf = report["serve_fused"]
    print(f"serve fused batching: {sf['fused_speedup']:.2f}x over the "
          f"sequential path ({sf['fused_wall_seconds']:.3f}s vs "
          f"{sf['sequential_wall_seconds']:.3f}s wall; "
          f"{sf['batches']} batches, "
          f"occupancy {sf['batch_occupancy']:.1f} waves/dispatch, "
          f"{sf['fused_accesses_per_second']:,.0f} accesses/s)")
    tl = report["telemetry"]
    print(f"telemetry: {tl['overhead_pct']:+.2f}% wall overhead with the "
          f"full live stack attached ({tl['telemetry_wall_seconds']:.3f}s "
          f"vs {tl['bare_wall_seconds']:.3f}s bare; "
          f"{tl['slo_violations']} violations, "
          f"{tl['alerts_fired']} alerts)")
    saved = f"[saved to {out}"
    if not args.no_history:
        saved += f"; appended to {args.history}"
    print(saved + "]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
