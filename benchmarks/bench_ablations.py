"""Ablations of the framework's design choices (DESIGN.md inventory).

The paper motivates four design decisions beyond Equation 1 itself:

1. **LFU replacement** sorted by access counters, instead of LRU
   (Section IV, "Access Counter Based Page Replacement");
2. **historic counters** that track local and remote accesses without
   resetting, instead of Volta's remote-only reset-on-migration
   counters (Section IV, "Access Counter Maintenance");
3. the **tree-based prefetcher** as the migration engine underneath
   (Section II-B credits it as key to UVM's performance);
4. **2MB eviction granularity** preserving prefetch-tree semantics
   (Section II-C; Table I also lists 64KB).

Each benchmark toggles exactly one of these and measures the adaptive
scheme (or, for the prefetcher, the baseline) on representative
workloads at 125% oversubscription.
"""

import dataclasses

from repro.config import (
    EvictionGranularity,
    MigrationPolicy,
    PrefetcherKind,
    ReplacementPolicy,
    SimulationConfig,
)
from repro.sim.simulator import Simulator
from repro.workloads import make_workload
from repro.analysis.tables import format_table

from conftest import run_once


def _run(workload, scale, policy=MigrationPolicy.ADAPTIVE, oversub=1.25,
         seed=0, **tweaks):
    cfg = SimulationConfig(seed=seed).with_policy(policy)
    if "replacement" in tweaks:
        cfg = dataclasses.replace(cfg, memory=dataclasses.replace(
            cfg.memory, replacement=tweaks["replacement"]))
    if "historic" in tweaks:
        cfg = dataclasses.replace(cfg, policy=dataclasses.replace(
            cfg.policy, historic_counters=tweaks["historic"]))
    if "prefetcher" in tweaks:
        cfg = cfg.with_prefetcher(tweaks["prefetcher"])
    if "granularity" in tweaks:
        cfg = cfg.with_eviction_granularity(tweaks["granularity"])
    return Simulator(cfg).run(make_workload(workload, scale),
                              oversubscription=oversub)


def test_ablation_replacement(benchmark, save_report, scale):
    """LFU vs LRU under the adaptive scheme (irregular suite)."""
    def run():
        rows = []
        for w in ("bfs", "nw", "ra", "sssp", "fdtd"):
            lfu = _run(w, scale, replacement=ReplacementPolicy.LFU)
            lru = _run(w, scale, replacement=ReplacementPolicy.LRU)
            rows.append([w, f"{lru.total_cycles / lfu.total_cycles:.3f}",
                         lfu.pages_thrashed, lru.pages_thrashed])
        return rows
    rows = run_once(benchmark, run)
    save_report("ablation_replacement", format_table(
        ["workload", "LRU/LFU runtime", "thrash LFU", "thrash LRU"], rows,
        title="Ablation: counter-sorted LFU vs plain LRU "
              "(Adaptive, 125% oversub)"))
    ratios = {r[0]: float(r[1]) for r in rows}
    # LFU never hurts materially, and the regular control stays flat.
    assert all(v > 0.8 for v in ratios.values()), ratios
    assert 0.8 < ratios["fdtd"] < 1.25


def test_ablation_counter_maintenance(benchmark, save_report, scale):
    """Historic counters vs Volta reset-on-migration counters."""
    def run():
        rows = []
        for w in ("ra", "sssp", "nw", "fdtd"):
            hist = _run(w, scale, historic=True)
            volta = _run(w, scale, historic=False)
            rows.append([w, f"{volta.total_cycles / hist.total_cycles:.3f}",
                         hist.pages_thrashed, volta.pages_thrashed])
        return rows
    rows = run_once(benchmark, run)
    save_report("ablation_counters", format_table(
        ["workload", "volta/historic runtime", "thrash historic",
         "thrash volta"], rows,
        title="Ablation: historic vs Volta counter maintenance "
              "(Adaptive, 125% oversub)"))
    # Without history, every round trip restarts counting from zero, so
    # hot/dense blocks must re-earn their migration through remote
    # detours after every eviction -- this is precisely why the paper
    # keeps historic counters: the regular control (fdtd) suffers under
    # Volta counters, while irregular workloads merely trade one pinning
    # mechanism for another.
    ratios = {r[0]: float(r[1]) for r in rows}
    assert ratios["fdtd"] > 1.02, "historic counters must protect dense apps"
    assert all(0.3 < v < 2.0 for v in ratios.values()), ratios


def test_ablation_prefetcher(benchmark, save_report, scale):
    """Tree vs none/sequential/random prefetchers (baseline policy)."""
    kinds = (PrefetcherKind.TREE, PrefetcherKind.NONE,
             PrefetcherKind.SEQUENTIAL, PrefetcherKind.RANDOM)

    def run():
        table = {}
        for w in ("fdtd", "ra"):
            base = None
            for kind in kinds:
                r = _run(w, scale, policy=MigrationPolicy.DISABLED,
                         oversub=0.8, prefetcher=kind)
                if base is None:
                    base = r.total_cycles
                table[(w, kind.value)] = (r.total_cycles / base,
                                          r.fault_count)
        return table
    table = run_once(benchmark, run)
    rows = [[w, k, f"{v[0]:.3f}", v[1]] for (w, k), v in table.items()]
    save_report("ablation_prefetcher", format_table(
        ["workload", "prefetcher", "runtime vs tree", "far-faults"], rows,
        title="Ablation: prefetcher strategy (baseline policy, fits in "
              "memory)"))

    # The tree prefetcher minimizes far-faults for the dense workload
    # (Section II-B: it is "key to the success of Unified Memory");
    # fdtd's *runtime* is compute-bound when memory fits, so the fault
    # count is the sensitive metric there.
    assert table[("fdtd", "none")][1] > 3 * table[("fdtd", "tree")][1]
    # Dropping prefetch costs real time on the fault-bound workload.
    assert table[("ra", "none")][0] > 1.05
    # Random prefetch wastes bandwidth; it is never better than the tree
    # by a meaningful margin.
    assert table[("ra", "random")][0] >= 0.9 * table[("ra", "tree")][0]


def test_ablation_eviction_granularity(benchmark, save_report, scale):
    """2MB chunk eviction vs 64KB block eviction (Table I options)."""
    def run():
        rows = []
        for w, pol in (("ra", MigrationPolicy.DISABLED),
                       ("ra", MigrationPolicy.ADAPTIVE),
                       ("fdtd", MigrationPolicy.DISABLED)):
            big = _run(w, scale, policy=pol,
                       granularity=EvictionGranularity.CHUNK_2MB)
            small = _run(w, scale, policy=pol,
                         granularity=EvictionGranularity.BLOCK_64KB)
            rows.append([w, pol.value,
                         f"{small.total_cycles / big.total_cycles:.3f}",
                         big.pages_thrashed, small.pages_thrashed])
        return rows
    rows = run_once(benchmark, run)
    save_report("ablation_eviction", format_table(
        ["workload", "policy", "64KB/2MB runtime", "thrash 2MB",
         "thrash 64KB"], rows,
        title="Ablation: eviction granularity (125% oversub)"))
    # Fine-grained eviction helps random access under the baseline
    # (evicting 2MB to admit 64KB is the thrash amplifier).
    ra_baseline = float(rows[0][2])
    assert ra_baseline < 1.05


def test_ablation_threshold_variant(benchmark, save_report, scale):
    """Equation 1's multiplicative backoff vs linear/exponential/occupancy.

    The paper's design point sits between a linear backoff (too gentle:
    thrashing persists) and an exponential one (pins hardest, with the
    same dense-data risk as the extreme penalty of Figure 8); dropping
    the round-trip term entirely (occupancy-only) cannot stop thrashing
    at all.
    """
    variants = ("multiplicative", "linear", "exponential", "occupancy-only")

    def run():
        table = {}
        for w in ("ra", "sssp", "srad"):
            base = _run(w, scale, policy=MigrationPolicy.DISABLED)
            for v in variants:
                r = _run_variant(w, scale, v)
                table[(w, v)] = (r.total_cycles / base.total_cycles,
                                 r.pages_thrashed)
        return table

    def _run_variant(w, scale_, variant):
        cfg = SimulationConfig(seed=0).with_policy(MigrationPolicy.ADAPTIVE)
        cfg = dataclasses.replace(cfg, policy=dataclasses.replace(
            cfg.policy, threshold_variant=variant))
        return Simulator(cfg).run(make_workload(w, scale_),
                                  oversubscription=1.25)

    table = run_once(benchmark, run)
    rows = [[w, v, f"{val[0]:.3f}", val[1]] for (w, v), val in table.items()]
    save_report("ablation_threshold_variant", format_table(
        ["workload", "variant", "runtime vs baseline", "thrash"], rows,
        title="Ablation: dynamic-threshold growth function "
              "(125% oversub)"))

    # Occupancy-only cannot stop thrashing on the pure-random workload.
    assert table[("ra", "occupancy-only")][1] > \
        5 * max(table[("ra", "multiplicative")][1], 1)
    # Linear backoff is gentler than the paper's multiplicative choice.
    assert table[("ra", "linear")][1] >= table[("ra", "multiplicative")][1]
    # Exponential pins at least as hard as multiplicative on ra.
    assert table[("ra", "exponential")][1] <= \
        table[("ra", "multiplicative")][1] + 1
