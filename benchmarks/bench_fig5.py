"""Figure 5: the case of no oversubscription.

Baseline vs Always vs Adaptive with working sets that fit in device
memory.  Expected shape: the Adaptive scheme produces results
equivalent to the baseline for every workload (it degenerates to
first-touch migration), while the static Always scheme introduces
unpredictability for irregular workloads.
"""

from repro.analysis import figure5

from conftest import run_once


def test_figure5(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: figure5(scale=scale, jobs=jobs))
    save_report("figure5", res.render())

    adaptive = res.measured["adaptive"]
    always = res.measured["always"]

    # The paper's headline for this figure: "the Adaptive scheme
    # produces results equivalent to the Baseline".
    for w, v in adaptive.items():
        assert 0.9 <= v <= 1.25, ("adaptive deviates at no oversub", w, v)

    # Regular apps are insensitive under Always too.
    for w in ("backprop", "fdtd", "hotspot", "srad"):
        assert abs(always[w] - 1.0) < 0.1, (w, always[w])

    # Always spreads wider than Adaptive on the irregular suite --
    # the "unpredictability" the paper attributes to a static threshold.
    irr = ("bfs", "nw", "ra", "sssp")
    spread_always = max(abs(always[w] - 1.0) for w in irr)
    spread_adaptive = max(abs(adaptive[w] - 1.0) for w in irr)
    assert spread_always >= spread_adaptive * 0.9
