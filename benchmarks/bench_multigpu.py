"""Multi-GPU collaborative execution (the paper's future work).

Section VIII proposes extending the dynamic-threshold heuristic to
multi-GPU clusters as a memory-throttling mechanism; Section VI quotes
NVIDIA's guidance to distribute working sets across GPUs beyond 125%
oversubscription.  Two experiments:

1. **Scaling**: a working set that oversubscribes one GPU by 125% is
   spread over 1/2/4 GPUs under the baseline policy -- two devices
   already absorb the oversubscription entirely.
2. **Throttling**: each device's usable memory is capped (e.g. another
   tenant owns the rest).  The baseline policy thrashes; the adaptive
   scheme absorbs the cap by host-pinning the coldest partition.
"""

from repro.config import MigrationPolicy, SimulationConfig
from repro.multigpu import MultiGpuSimulator
from repro.workloads import make_workload
from repro.analysis.tables import format_table

from conftest import run_once


def test_multigpu_scaling(benchmark, save_report, scale):
    def run():
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.DISABLED)
        out = {}
        for n in (1, 2, 4):
            sim = MultiGpuSimulator(cfg, num_gpus=n)
            out[n] = sim.run(make_workload("ra", scale),
                             oversubscription=1.25)
        return out
    results = run_once(benchmark, run)
    base = results[1]
    rows = [[n, f"{r.makespan_cycles:,.0f}",
             f"{base.makespan_cycles / r.makespan_cycles:.2f}x",
             r.total_thrash, f"{r.load_imbalance:.2f}"]
            for n, r in results.items()]
    save_report("multigpu_scaling", format_table(
        ["GPUs", "makespan (cycles)", "speedup", "thrash", "imbalance"],
        rows, title="Multi-GPU scaling: ra at 125% single-GPU "
                    "oversubscription (baseline policy)"))

    # Two devices fit the working set: superlinear speedup, no thrash.
    assert results[2].total_thrash < 0.05 * max(results[1].total_thrash, 1)
    assert base.makespan_cycles / results[2].makespan_cycles > 2.0
    assert results[4].makespan_cycles <= results[2].makespan_cycles * 1.05


def test_multigpu_throttling(benchmark, save_report, scale):
    def run():
        out = {}
        for pol in (MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE):
            cfg = SimulationConfig(seed=1).with_policy(pol)
            sim = MultiGpuSimulator(cfg, num_gpus=2, throttle=0.35)
            out[pol] = sim.run(make_workload("ra", scale),
                               oversubscription=1.0)
        return out
    results = run_once(benchmark, run)
    base = results[MigrationPolicy.DISABLED]
    adap = results[MigrationPolicy.ADAPTIVE]
    rows = [[pol.value, f"{r.makespan_cycles:,.0f}", r.total_thrash]
            for pol, r in results.items()]
    save_report("multigpu_throttling", format_table(
        ["policy", "makespan (cycles)", "thrash"],
        rows, title="Multi-GPU throttling: 2 GPUs at 35% usable memory "
                    "(ra, collaborative partition)"))

    # Under the throttle each partition oversubscribes its device; the
    # adaptive threshold absorbs it, the baseline thrashes.
    assert base.total_thrash > 0
    assert adap.total_thrash < 0.5 * base.total_thrash
    assert adap.makespan_cycles < base.makespan_cycles
