"""Figure 6: runtime at 125% oversubscription (the headline result).

All four schemes, ts = 8, p = 8, normalized to the Baseline
(first-touch) policy at the same oversubscription.

Expected shape (abstract / Section VI-C): the Adaptive scheme does not
impact regular applications and improves irregular applications by
roughly 22% to 78%, beating the static access-counter schemes.
"""

from repro.analysis import figure6_7, paper_data
from repro.workloads import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from conftest import run_once


def test_figure6(benchmark, save_report, scale, jobs):
    fig6, _ = run_once(benchmark, lambda: figure6_7(scale=scale, jobs=jobs))
    save_report("figure6", fig6.render())

    adaptive = fig6.measured["adaptive"]
    always = fig6.measured["always"]
    oversub = fig6.measured["oversub"]

    # Regular applications are not impacted by the framework (hotspot
    # can gain slightly: the LFU clean-victim preference evicts its
    # read-only power grid before the dirty temperature grids).
    for w in REGULAR_WORKLOADS:
        assert 0.8 <= adaptive[w] <= 1.1, (w, adaptive[w])

    # Irregular applications improve; the headline range is 22-78%.
    lo, hi = paper_data.HEADLINE_IMPROVEMENT_RANGE
    improvements = {w: 1.0 - adaptive[w] for w in IRREGULAR_WORKLOADS}
    assert all(v > 0.05 for v in improvements.values()), improvements
    assert max(improvements.values()) >= lo, improvements
    # At least one workload lands inside the paper's headline band.
    assert any(lo <= v <= hi + 0.15 for v in improvements.values()), \
        improvements

    # Adaptive beats or matches both static schemes on the irregular
    # suite as a whole (geometric-mean comparison).
    import math
    def gmean(series):
        return math.exp(sum(math.log(series[w])
                            for w in IRREGULAR_WORKLOADS)
                        / len(IRREGULAR_WORKLOADS))
    assert gmean(adaptive) <= gmean(always) * 1.02
    assert gmean(adaptive) <= gmean(oversub) * 1.02

    # Oversub barely helps ra: its footprint floods in before pressure.
    assert 0.85 <= oversub["ra"] <= 1.15, oversub["ra"]
