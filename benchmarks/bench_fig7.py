"""Figure 7: pages thrashed at 125% oversubscription.

Same runs as Figure 6; the metric is the number of thrash migrations
(re-migration of previously evicted 64KB blocks), normalized to the
Baseline policy.

Expected shape: the Adaptive scheme's runtime win is explained by
thrash reduction on the irregular suite; backprop never thrashes under
any scheme; regular applications thrash the same as the baseline.
"""

from repro.analysis import figure6_7
from repro.workloads import IRREGULAR_WORKLOADS

from conftest import run_once


def test_figure7(benchmark, save_report, scale, jobs):
    fig6, fig7 = run_once(benchmark, lambda: figure6_7(scale=scale, jobs=jobs))
    save_report("figure7", fig7.render())

    adaptive = fig7.measured["adaptive"]

    # backprop has no thrashing at all (pure streaming, zero reuse).
    for label in ("always", "oversub", "adaptive"):
        assert fig7.measured[label]["backprop"] == 0.0

    # Regular apps thrash about the same as the baseline.
    for w in ("fdtd", "srad"):
        assert 0.7 <= adaptive[w] <= 1.1, (w, adaptive[w])

    # Adaptive cuts thrashing on every irregular workload...
    for w in IRREGULAR_WORKLOADS:
        assert adaptive[w] < 0.95, (w, adaptive[w])
    # ...dramatically for the pure-random one.
    assert adaptive["ra"] < 0.3

    # Thrash reduction explains the runtime win: ordering by thrash
    # matches ordering by runtime for the adaptive scheme.
    runtime = fig6.measured["adaptive"]
    ranked_thrash = sorted(IRREGULAR_WORKLOADS, key=adaptive.get)
    assert ranked_thrash[0] == min(IRREGULAR_WORKLOADS, key=runtime.get)
