"""Programmer hints vs. the programmer-agnostic runtime (Section III-C).

The paper's motivation: zero-copy pinning and preferred-location advice
*can* match or beat first-touch migration for irregular workloads, but
only when the programmer already knows the access pattern -- and they
backfire on dense data.  This benchmark plays the knowledgeable
programmer (hard-pinning ra's update table to host memory, exactly what
Section VI-C says ra wants) and checks that the adaptive runtime gets
into the same league without any hints, while the same hint applied to
a dense workload is a disaster.
"""

import numpy as np

from repro.config import MigrationPolicy, SimulationConfig
from repro.memory.advice import Advice
from repro.sim.simulator import Simulator
from repro.workloads import make_workload
from repro.workloads.base import Category, KernelLaunch, Wave, Workload, chunked
from repro.workloads.ra import PRESETS as RA_PRESETS, RandomAccess
from repro.memory.layout import MB
from repro.analysis.tables import format_table
from repro.workloads.util import SECTORS_PER_PAGE

from conftest import run_once


class PinnedRandomAccess(RandomAccess):
    """ra with its table hard-pinned to host memory (zero-copy)."""

    name = "ra-pinned"

    def _allocate(self, vas, rng) -> None:
        p = self.params
        self.table = self._register(vas.malloc_managed(
            "ra.table", p.table_bytes, advice=Advice.PINNED_HOST))
        self._rng = np.random.default_rng(rng.integers(0, 2**63))


class PinnedStream(Workload):
    """A dense sweep hard-pinned to host memory -- the anti-pattern."""

    name = "stream-pinned"
    category = Category.REGULAR

    def __init__(self, size_mb: int = 24, iterations: int = 3,
                 pinned: bool = True) -> None:
        super().__init__()
        self.size_mb = size_mb
        self.iterations = iterations
        self.pinned = pinned

    def _allocate(self, vas, rng) -> None:
        advice = Advice.PINNED_HOST if self.pinned else Advice.NONE
        self.data = self._register(vas.malloc_managed(
            "stream.data", self.size_mb * MB, advice=advice))

    def _sweep(self):
        for chunk in chunked(self.data.page_range(), 512):
            yield Wave.writes(chunk, SECTORS_PER_PAGE)

    def kernels(self):
        for it in range(self.iterations):
            yield KernelLaunch("stream.sweep", it, self._sweep)


def test_hints_vs_adaptive(benchmark, save_report, scale):
    def run():
        params = RA_PRESETS[scale]
        cfg_base = SimulationConfig(seed=2).with_policy(
            MigrationPolicy.DISABLED)
        cfg_adap = SimulationConfig(seed=2).with_policy(
            MigrationPolicy.ADAPTIVE)
        baseline = Simulator(cfg_base).run(RandomAccess(params),
                                           oversubscription=1.25)
        hinted = Simulator(cfg_base).run(PinnedRandomAccess(params),
                                         oversubscription=1.25)
        adaptive = Simulator(cfg_adap).run(RandomAccess(params),
                                           oversubscription=1.25)
        return baseline, hinted, adaptive
    baseline, hinted, adaptive = run_once(benchmark, run)
    rows = [
        ["first-touch (no hints)", f"{baseline.total_cycles:,.0f}", "1.00",
         baseline.pages_thrashed],
        ["programmer zero-copy pin",
         f"{hinted.total_cycles:,.0f}",
         f"{hinted.total_cycles / baseline.total_cycles:.3f}",
         hinted.pages_thrashed],
        ["adaptive (no hints)", f"{adaptive.total_cycles:,.0f}",
         f"{adaptive.total_cycles / baseline.total_cycles:.3f}",
         adaptive.pages_thrashed],
    ]
    save_report("hints_vs_adaptive", format_table(
        ["configuration", "cycles", "vs baseline", "thrash"],
        rows, title="ra at 125% oversub: expert hints vs the "
                    "programmer-agnostic runtime"))

    # The expert hint eliminates thrashing entirely.
    assert hinted.pages_thrashed == 0
    assert hinted.total_cycles < 0.7 * baseline.total_cycles
    # The adaptive runtime reaches the same league without any hints:
    # within 2.5x of the hand-tuned pin, and far ahead of the baseline.
    assert adaptive.total_cycles < 0.5 * baseline.total_cycles
    assert adaptive.total_cycles < 2.5 * hinted.total_cycles


def test_hints_backfire_on_dense_data(benchmark, save_report, scale):
    def run():
        cfg = SimulationConfig(seed=2).with_policy(MigrationPolicy.DISABLED)
        pinned = Simulator(cfg).run(PinnedStream(pinned=True),
                                    oversubscription=0.8)
        managed = Simulator(cfg).run(PinnedStream(pinned=False),
                                     oversubscription=0.8)
        return pinned, managed
    pinned, managed = run_once(benchmark, run)
    save_report("hints_backfire", format_table(
        ["configuration", "cycles", "remote accesses"],
        [["zero-copy pinned sweep", f"{pinned.total_cycles:,.0f}",
          pinned.events.n_remote],
         ["managed (first touch)", f"{managed.total_cycles:,.0f}",
          managed.events.n_remote]],
        title="Dense sweep with plenty of device memory: pinning is "
              "the anti-pattern (Section III-C)"))
    # Zero-copy for dense sequential access forfeits local bandwidth.
    assert pinned.total_cycles > 2 * managed.total_cycles
    assert managed.events.n_remote == 0
