"""Figure 3: page access patterns over iterations.

The paper plots page-vs-time scatter for fdtd (iterations 2 and 4) and
sssp (rounds 3 and 5): fdtd repeats an identical linear sweep every
iteration; sssp's kernel1 touches sparse, drastically shifting page
sets while kernel2 re-sweeps the same dense range every round.
"""

import numpy as np

from repro.analysis import figure3, render_figure3

from conftest import run_once


def _pages_by(records, kernel, iteration):
    recs = [r for r in records
            if r.kernel == kernel and r.iteration == iteration]
    if not recs:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate([r.pages for r in recs]))


def test_figure3(benchmark, save_report, scale, jobs):
    data = run_once(benchmark, lambda: figure3(scale=scale, jobs=jobs))
    save_report("figure3", render_figure3(data))

    # fdtd: iterations 2 and 4 touch identical page sets (regular,
    # repetitive).  At small scale the run has 5 iterations.
    it_a = _pages_by(data["fdtd"], "fdtd.update_ey", 2)
    it_b = _pages_by(data["fdtd"], "fdtd.update_ey", 4)
    if it_b.size:  # scale presets with >= 5 iterations
        assert np.array_equal(it_a, it_b)
    assert it_a.size > 0

    # sssp kernel1: page sets shift drastically between rounds.
    k1_a = _pages_by(data["sssp"], "sssp.kernel1", 3)
    k1_b = _pages_by(data["sssp"], "sssp.kernel1", 5)
    if k1_a.size and k1_b.size:
        overlap = np.intersect1d(k1_a, k1_b).size
        jaccard = overlap / np.union1d(k1_a, k1_b).size
        assert jaccard < 0.9, "kernel1 page sets should shift across rounds"

    # sssp kernel2: dense repeated sweep over the same small range.
    k2_a = _pages_by(data["sssp"], "sssp.kernel2", 3)
    k2_b = _pages_by(data["sssp"], "sssp.kernel2", 5)
    if k2_a.size and k2_b.size:
        assert np.array_equal(k2_a, k2_b)
