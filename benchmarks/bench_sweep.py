"""Oversubscription sweep: where the adaptive advantage appears.

An extension beyond the paper's fixed 125% operating point: sweep the
memory budget from fits-with-headroom to 150% oversubscription and
locate the crossover at which the adaptive scheme's dynamic threshold
starts paying off.  Expected shape: below capacity both schemes match
(the no-harm property of Figure 5); past capacity the baseline degrades
monotonically while the adaptive curve stays flat-ish, so the relative
advantage widens with pressure.
"""

from repro.analysis import oversubscription_sweep
from repro.config import MigrationPolicy

from conftest import run_once

LEVELS = (0.8, 1.0, 1.25, 1.5)


def test_oversubscription_sweep_ra(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: oversubscription_sweep(
        "ra", levels=LEVELS, scale=scale, jobs=jobs,
        policies=(MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE)))
    save_report("sweep_ra", res.render())

    baseline = res.normalized("disabled")
    advantage = res.advantage()

    # Baseline degrades monotonically with pressure.
    assert all(b2 >= b1 * 0.95 for b1, b2 in zip(baseline, baseline[1:]))
    # No harm while the working set fits.
    assert 0.8 <= advantage[0] <= 1.2
    assert 0.8 <= advantage[1] <= 1.2
    # A clear win appears once oversubscribed, and widens.
    crossover = res.crossover(threshold=0.9)
    assert crossover is not None and crossover <= 1.25
    assert advantage[-1] <= advantage[2] * 1.1


def test_oversubscription_sweep_regular_control(benchmark, save_report,
                                                scale, jobs):
    res = run_once(benchmark, lambda: oversubscription_sweep(
        "fdtd", levels=LEVELS, scale=scale, jobs=jobs,
        policies=(MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE)))
    save_report("sweep_fdtd", res.render())
    # The regular control never deviates much from baseline at any level.
    for ratio in res.advantage():
        assert 0.8 <= ratio <= 1.15, res.advantage()
