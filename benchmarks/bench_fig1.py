"""Figure 1: sensitivity to the percentage of memory oversubscription.

Baseline (first-touch) policy at 125% and 150% oversubscription,
normalized to the no-oversubscription run of each workload.

Expected shape (paper, measured on a GTX 1080 Ti): regular applications
degrade mildly (long-latency write-backs); irregular applications
degrade by up to an order of magnitude (page thrashing).
"""

from repro.analysis import figure1
from repro.workloads import IRREGULAR_WORKLOADS, REGULAR_WORKLOADS

from conftest import run_once


def test_figure1(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: figure1(scale=scale, jobs=jobs))
    save_report("figure1", res.render())

    for label in ("125% oversub", "150% oversub"):
        series = res.measured[label]
        # Oversubscription never helps the baseline.
        for w, v in series.items():
            assert v >= 0.95, (label, w, v)
        # backprop is essentially immune (zero data reuse).
        assert series["backprop"] < 1.4
        # Regular apps degrade by small factors...
        for w in REGULAR_WORKLOADS:
            assert series[w] < 4.0, (label, w, series[w])
        # ...while the worst irregular app blows up by an order of
        # magnitude (ra in both the paper and this reproduction).
        assert max(series[w] for w in IRREGULAR_WORKLOADS) > 8.0

    # More oversubscription hurts at least as much.
    for w in REGULAR_WORKLOADS + IRREGULAR_WORKLOADS:
        assert res.measured["150% oversub"][w] >= \
            0.9 * res.measured["125% oversub"][w], w
