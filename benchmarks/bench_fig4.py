"""Figure 4: sensitivity to the static access counter threshold.

Always scheme at 125% oversubscription with ts in {8, 16, 32},
normalized to ts = 8.  Expected shape: regular applications are flat
(dense access always exceeds any reasonable threshold); irregular
applications move by modest percentages in input-dependent directions.
"""

from repro.analysis import figure4
from repro.workloads import REGULAR_WORKLOADS

from conftest import run_once


def test_figure4(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: figure4(scale=scale, jobs=jobs))
    save_report("figure4", res.render())

    for label in ("ts=16", "ts=32"):
        series = res.measured[label]
        # Regular applications show almost no sensitivity.
        for w in REGULAR_WORKLOADS:
            assert abs(series[w] - 1.0) < 0.12, (label, w, series[w])
        # Irregular applications ARE sensitive (the paper reports -8%
        # to +10%; this reproduction swings harder because its remote
        # accesses are costed pessimistically -- see EXPERIMENTS.md) but
        # never blow up.
        for w, v in series.items():
            assert 0.3 < v < 1.7, (label, w, v)
