"""Figure 8: sensitivity to the multiplicative migration penalty.

Adaptive scheme at 125% oversubscription with p in {2, 4, 8, 2^20},
normalized to Baseline.  Expected shape: regular applications are flat
for moderate p; irregular applications improve monotonically with
larger p; the extreme penalty (~zero-copy pinning) keeps helping the
most thrash-bound workloads but backfires on dense sequential access.
"""

from repro.analysis import figure8
from repro.workloads import REGULAR_WORKLOADS

from conftest import run_once

PENALTIES = (2, 4, 8, 1 << 20)


def test_figure8(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: figure8(scale=scale, jobs=jobs,
                                              penalties=PENALTIES))
    save_report("figure8", res.render())

    # Regular applications: no variation for moderate p (hotspot's
    # small LFU-driven gain is penalty-independent).
    for p in (2, 4, 8):
        for w in REGULAR_WORKLOADS:
            assert 0.8 <= res.measured[f"p={p}"][w] <= 1.1, (p, w)

    # Irregular applications improve (weakly) monotonically with p.
    for w in ("ra", "nw", "sssp", "bfs"):
        p2, p4, p8 = (res.measured[f"p={p}"][w] for p in (2, 4, 8))
        assert p8 <= p2 * 1.05, (w, p2, p8)
        assert min(p2, p4, p8) == min(p2, p4, p8)  # sanity
        assert p8 < 1.0, (w, p8)

    # The extreme penalty hard-pins everything it can: still a big win
    # for the pure-random workload...
    extreme = res.measured[f"p={1 << 20}"]
    assert extreme["ra"] < 0.3
    # ...but regular applications now suffer (dense data belongs local).
    assert max(extreme[w] for w in REGULAR_WORKLOADS) > 1.2
