"""Graceful degradation under injected transient migration faults.

An extension beyond the paper: the simulated UVM driver retries failed
block transfers with backoff and, past its retry budget, degrades the
access to the remote zero-copy path instead of crashing the run (see
``repro.uvm.faults``).  Expected shape: runtime grows smoothly -- not
cliff-like -- with the injected fault rate, the fault-free anchor is
bit-identical to a simulator without the fault model, and every run
completes with consistent fault counters.
"""

from repro.analysis import fault_rate_sweep
from repro.config import MigrationPolicy

from conftest import run_once

RATES = (0.0, 0.01, 0.05, 0.1, 0.2)


def test_fault_rate_degradation_ra(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: fault_rate_sweep(
        "ra", policy=MigrationPolicy.ADAPTIVE, rates=RATES, scale=scale,
        jobs=jobs))
    save_report("resilience_ra", res.render())

    slowdown = res.slowdown()
    # The fault-free anchor defines 1.0 and injects nothing.
    assert slowdown[0] == 1.0
    assert res.runs[0].events.retried_transfers == 0
    assert res.runs[0].events.degraded_accesses == 0
    # Faults actually fire once the rate is nonzero...
    assert all(r.events.retried_transfers > 0 for r in res.runs[1:])
    # ...and degradation is graceful: monotone-ish growth, no cliff.
    assert all(s2 >= s1 * 0.98 for s1, s2 in zip(slowdown, slowdown[1:]))
    assert slowdown[-1] < 2.0, "20% fault rate should not double runtime"


def test_fault_rate_baseline_policy(benchmark, save_report, scale, jobs):
    res = run_once(benchmark, lambda: fault_rate_sweep(
        "ra", policy=MigrationPolicy.DISABLED, rates=(0.0, 0.1),
        scale=scale, jobs=jobs))
    save_report("resilience_ra_disabled", res.render())
    # First-touch migration issues far more transfers than the adaptive
    # policy, so the same fault rate must inject proportionally there
    # too; the run still completes.
    assert res.runs[1].events.retried_transfers > 0
    assert res.slowdown()[1] >= 1.0
