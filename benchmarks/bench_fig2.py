"""Figure 2: page access distribution per managed allocation.

The paper visualizes per-page access counts for fdtd (flat: every page
of every allocation is accessed at the same rate) and sssp (bimodal:
hot read-write distance structures vs. cold read-only graph
structures).  This benchmark regenerates the underlying histograms and
asserts both shapes.
"""

import numpy as np

from repro.analysis import figure2, render_figure2
from repro.analysis.experiments import NO_OVERSUB, run_single
from repro.config import MigrationPolicy

from conftest import run_once


def test_figure2(benchmark, save_report, scale, jobs):
    data = run_once(benchmark, lambda: figure2(scale=scale, jobs=jobs))
    save_report("figure2", render_figure2(data))

    # fdtd: uniform density across its field arrays (Figure 2a).
    fdtd = {r["name"]: r for r in data["fdtd"]}
    fields = [fdtd[n] for n in ("fdtd.ex", "fdtd.ey", "fdtd.hz")]
    densities = [r["accesses_per_page"] for r in fields]
    assert max(densities) < 2.5 * min(densities)
    # every field array is both read and written
    assert all(not r["read_only"] for r in fields)

    # sssp: hot/cold split (Figure 2b) -- RW distance array much hotter
    # than the RO edge arrays.
    sssp = {r["name"]: r for r in data["sssp"]}
    assert sssp["sssp.edges"]["read_only"]
    assert sssp["sssp.weights"]["read_only"]
    assert not sssp["sssp.dist"]["read_only"]
    hot = sssp["sssp.dist"]["accesses_per_page"]
    cold = max(sssp["sssp.edges"]["accesses_per_page"],
               sssp["sssp.weights"]["accesses_per_page"])
    assert hot > 5 * cold


def test_figure2_page_level_uniformity(benchmark, save_report, scale):
    """Per-page histogram of one fdtd array is flat (not just on average)."""
    def run():
        return run_single("fdtd", MigrationPolicy.DISABLED, NO_OVERSUB,
                          scale, collect_histogram=True)
    r = run_once(benchmark, run)
    hist = r.stats.allocation_histogram("fdtd.ey")
    touched = hist["reads"] + hist["writes"]
    touched = touched[touched > 0]
    assert touched.size > 0
    assert np.std(touched) < 0.2 * np.mean(touched)
    save_report("figure2_uniformity",
                f"fdtd.ey pages touched: {touched.size}, "
                f"mean={touched.mean():.1f}, std={np.std(touched):.2f}")
