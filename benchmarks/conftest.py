"""Benchmark harness configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_*`` module regenerates one table or figure of the paper,
prints a paper-vs-measured comparison, saves it under
``benchmarks/results/``, and asserts the figure's qualitative *shape*
(who wins, roughly by how much) -- absolute cycle counts are
testbed-specific and not asserted.

Environment:

* ``REPRO_SCALE`` -- workload scale preset (default ``small``; use
  ``tiny`` for a fast smoke pass, ``medium`` for bigger runs).
* ``REPRO_JOBS`` -- worker processes for the experiment grids
  (default ``1`` = serial; ``0`` = one per CPU).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    """Workload scale for all figure benchmarks."""
    return os.environ.get("REPRO_SCALE", "small")


@pytest.fixture(scope="session")
def jobs() -> int:
    """Grid worker processes (0 = one per CPU); results are unaffected."""
    return int(os.environ.get("REPRO_JOBS", "1"))


@pytest.fixture
def save_report():
    """Persist a rendered figure report and echo it to stdout."""
    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
    return _save


def run_once(benchmark, fn):
    """Run a figure generator exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
