"""Table I: simulated system configuration.

Validates that the simulator's defaults reproduce the paper's Table I
and renders the table.
"""

from repro.analysis import table1
from repro.config import SimulationConfig

from conftest import run_once


def test_table1(benchmark, save_report):
    text = run_once(benchmark, table1)
    save_report("table1", text)

    cfg = SimulationConfig()
    assert cfg.gpu.num_sms == 28
    assert cfg.gpu.clock_mhz == 1481.0
    assert cfg.memory.page_size == 4096
    assert cfg.interconnect.fault_handling_us == 45.0
    assert cfg.interconnect.remote_access_latency_cycles == 200
    assert cfg.gpu.dram_latency_cycles == 100
    assert cfg.policy.static_threshold == 8
    for needle in ("Tree-based", "LRU", "PCIe 3.0 16x"):
        assert needle in text
