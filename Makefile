# Convenience targets for the reproduction workflow.

PYTHON ?= python

.PHONY: install test test-accel bench bench-smoke bench-perf \
	serve-smoke telemetry-smoke config-smoke check-configs \
	check-regression figures examples check-docs clean

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

# Same suite on the compiled hot-loop backend.  Without numba the
# backend falls back (with a warning) to bit-identical pure python;
# REPRO_ACCEL_INTERPRET=1 would force the loop kernels interpreted.
test-accel:
	REPRO_BACKEND=numba $(PYTHON) -m pytest tests/

test-logged:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-logged:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Fast smoke pass of every figure and ablation at tiny scale.
bench-smoke:
	REPRO_SCALE=tiny $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Measure the tracked perf trajectory (appends to BENCH_history.jsonl).
bench-perf:
	$(PYTHON) benchmarks/bench_perf.py

# Overloaded multi-tenant serving run: must degrade cleanly
# (throttle -> queue -> shed) under both schedulers, and fused batch
# dispatch must be byte-identical to the sequential path.
# (only the batch-* dispatch telemetry keys may differ)
SERVE_SMOKE = $(PYTHON) -m repro serve --tenants 6 \
	--arrival-rate 2000 --queue-depth 2 --shed-watermark 2.0
serve-smoke:
	$(SERVE_SMOKE) --json | grep -v '"batch' > .serve-rr.json
	$(SERVE_SMOKE) --batch-waves --json | \
		grep -v '"batch' > .serve-rr-batched.json
	diff .serve-rr.json .serve-rr-batched.json
	$(SERVE_SMOKE) --scheduler drr --weights 2,1 --json | \
		grep -v '"batch' > .serve-drr.json
	$(SERVE_SMOKE) --scheduler drr --weights 2,1 --batch-waves \
		--json | grep -v '"batch' > .serve-drr-batched.json
	diff .serve-drr.json .serve-drr-batched.json
	rm -f .serve-rr.json .serve-rr-batched.json \
		.serve-drr.json .serve-drr-batched.json

# SLO-tracked serve run with live admission: the alert transcript
# must be identical across two runs, and repro top must render it.
telemetry-smoke:
	for i in 1 2; do \
		$(PYTHON) -m repro serve --config configs/serve_slo.yaml \
			--live-admission --events .telemetry-$$i.jsonl \
			--flush-events 1 --json > .serve-$$i.json || exit 1; \
	done
	diff .serve-1.json .serve-2.json
	$(PYTHON) -m repro top .telemetry-1.jsonl
	rm -f .telemetry-1.jsonl .telemetry-2.jsonl .serve-1.json .serve-2.json

# Schema-validate and dry-compile the whole scenario library.
check-configs:
	$(PYTHON) -m repro config validate configs configs/smoke \
		configs/section8_throttle

# Run the tiny config-driven scenarios end to end (all three modes),
# archiving resolved configs under .smoke-runs.
config-smoke:
	$(PYTHON) -m repro sweep --config-dir configs/smoke \
		--archive --runs .smoke-runs

# Gate on the bench history: non-zero exit when perf regressed.
check-regression:
	$(PYTHON) tools/check_regression.py

# Print every paper figure to stdout (and benchmarks/results/).
figures:
	$(PYTHON) -m repro figure table1
	$(PYTHON) -m repro figure fig1
	$(PYTHON) -m repro figure fig2
	$(PYTHON) -m repro figure fig3
	$(PYTHON) -m repro figure fig4
	$(PYTHON) -m repro figure fig5
	$(PYTHON) -m repro figure fig6
	$(PYTHON) -m repro figure fig7
	$(PYTHON) -m repro figure fig8

examples:
	for ex in examples/*.py; do echo "== $$ex"; $(PYTHON) $$ex; done

# Documentation hygiene: links resolve, documented CLI commands parse.
check-docs:
	$(PYTHON) tools/check_docs.py

clean:
	rm -rf .pytest_cache benchmarks/results .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
