"""Algebraic properties of the live-telemetry window primitives.

The multi-window burn-rate machinery re-merges the same closed windows
at different horizons, so :meth:`WindowAggregate.merge` must be
associative and commutative with the empty aggregate as identity --
otherwise fast/slow evaluations of the same data could disagree.
Integer-valued floats keep the sum checks exact (float addition is not
associative in general; the telemetry plane only ever merges one fixed
left fold, which :meth:`merge_all` pins).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.live import Ewma, KeyedWindows, TumblingWindow, WindowAggregate

#: Integer-valued floats: exact under addition, so merge-order checks
#: compare equal rather than approximately.
values = st.lists(
    st.tuples(st.integers(0, 10_000).map(float), st.booleans()),
    max_size=30)


def build(obs) -> WindowAggregate:
    agg = WindowAggregate()
    for value, bad in obs:
        agg.observe(value, bad=bad)
    return agg


class TestMergeAlgebra:
    @given(a=values, b=values, c=values)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        x, y, z = build(a), build(b), build(c)
        assert x.merge(y).merge(z) == x.merge(y.merge(z))

    @given(a=values, b=values)
    @settings(max_examples=100, deadline=None)
    def test_merge_is_commutative(self, a, b):
        x, y = build(a), build(b)
        assert x.merge(y) == y.merge(x)

    @given(a=values)
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, a):
        x = build(a)
        empty = WindowAggregate()
        assert x.merge(empty) == x
        assert empty.merge(x) == x

    @given(a=values, b=values, c=values)
    @settings(max_examples=60, deadline=None)
    def test_merge_all_equals_pairwise(self, a, b, c):
        x, y, z = build(a), build(b), build(c)
        assert WindowAggregate.merge_all([x, y, z]) == x.merge(y).merge(z)

    @given(a=values)
    @settings(max_examples=60, deadline=None)
    def test_merge_leaves_inputs_untouched(self, a):
        x = build(a)
        before = x.as_dict()
        x.merge(build(a))
        assert x.as_dict() == before


class TestTumblingWindow:
    @given(seed_obs=st.lists(
        st.tuples(st.floats(0.0, 1e6, allow_nan=False),
                  st.integers(0, 1000).map(float)),
        min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_replay_is_bit_identical(self, seed_obs):
        """Same observation sequence -> same closed-window sequence."""
        seed_obs.sort(key=lambda o: o[0])  # monotonic simulated clock

        def run():
            win = TumblingWindow(100.0, keep=16)
            out = []
            for at, value in seed_obs:
                win.observe(at, value)
                out.extend(win.drain())
            win.roll(seed_obs[-1][0] + 200.0)
            out.extend(win.drain())
            return [(start, agg.as_dict()) for start, agg in out]

        assert run() == run()

    def test_observations_land_in_their_window(self):
        win = TumblingWindow(100.0)
        win.observe(50.0, 1.0)
        win.observe(99.9, 2.0)
        win.observe(100.0, 3.0)  # next window; closes [0, 100)
        (start, agg), = win.drain()
        assert start == 0.0 and agg.count == 2 and agg.total == 3.0
        assert win.open_start_us == 100.0

    def test_gaps_materialize_empty_windows(self):
        win = TumblingWindow(100.0, keep=8)
        win.observe(10.0, 1.0)
        win.roll(450.0)  # windows 0..3 close; 1..3 are empty
        drained = win.drain()
        assert [start for start, _ in drained] == [0.0, 100.0, 200.0, 300.0]
        assert [agg.count for _, agg in drained] == [1, 0, 0, 0]

    def test_huge_gap_is_capped_at_keep(self):
        win = TumblingWindow(100.0, keep=4)
        win.observe(10.0, 1.0)
        win.roll(1e9)  # ~1e7 windows elapsed; only keep materialize
        drained = win.drain()
        assert len(drained) == 4
        assert len(win.closed) == 4
        assert all(agg.count == 0 for _, agg in drained)

    def test_merged_horizon(self):
        win = TumblingWindow(10.0, keep=16)
        for i in range(5):
            win.observe(i * 10.0, float(i), bad=(i % 2 == 0))
        win.roll(50.0)
        fast = win.merged(2)
        assert fast.count == 2 and fast.total == 3.0 + 4.0
        slow = win.merged(5)
        assert slow.count == 5 and slow.bad == 3
        assert win.merged(0).count == 0

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError):
            TumblingWindow(0.0)


class TestEwma:
    @given(samples=st.lists(st.floats(-1e6, 1e6, allow_nan=False),
                            max_size=50),
           alpha=st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, samples, alpha):
        """Same sample stream and alpha -> bit-identical value."""
        def run():
            ewma = Ewma(alpha=alpha)
            for s in samples:
                ewma.update(s)
            return ewma.value

        assert run() == run()

    @given(samples=st.lists(st.floats(0.0, 1e6, allow_nan=False),
                            min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_stays_within_sample_hull(self, samples):
        # A one-ulp tolerance: alpha*x + (1-alpha)*x may round just
        # past x itself.
        ewma = Ewma(alpha=0.3)
        for s in samples:
            ewma.update(s)
        slack = 1e-9 * max(abs(min(samples)), abs(max(samples)), 1.0)
        assert min(samples) - slack <= ewma.value <= max(samples) + slack

    def test_none_until_first_update(self):
        ewma = Ewma()
        assert ewma.value is None
        assert ewma.get(default=7.0) == 7.0
        ewma.update(4.0)
        assert ewma.value == 4.0
        assert ewma.get() == 4.0

    def test_recurrence(self):
        ewma = Ewma(alpha=0.5)
        ewma.update(10.0)
        assert ewma.update(20.0) == 15.0
        assert ewma.update(15.0) == 15.0

    def test_rejects_bad_alpha(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                Ewma(alpha=alpha)


class TestKeyedWindows:
    def test_keys_in_insertion_order(self):
        fam = KeyedWindows(10.0)
        for key in (3, 1, 2):
            fam.observe(key, 5.0, 1.0)
        assert list(fam.keys()) == [3, 1, 2]
        assert len(fam) == 3 and 1 in fam and 9 not in fam

    def test_roll_touches_every_member(self):
        fam = KeyedWindows(10.0)
        fam.observe("a", 5.0, 1.0)
        fam.observe("b", 5.0, 2.0)
        fam.roll(30.0)
        for _, win in fam.items():
            assert len(win.drain()) == 3  # windows 0..2 closed
