"""Determinism properties of the serving layer.

The serving contract: a serve run is a *pure function* of
``(ServeConfig, SimulationConfig)``.  Repeats are bit-identical, the
kernel backend is undetectable in results, and admission decisions are
a pure function of ``(seed, arrival trace, capacity)``.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings, strategies as st

import repro.accel as accel
from repro.config import ServeConfig, SimulationConfig
from repro.serve import AdmissionController, ServeSession, generate_arrivals

#: Small but non-trivial: overlapping tenants, queueing, throttling.
BASE = dict(tenants=5, arrival_rate=1500.0, capacity_mb=24,
            queue_depth=2, throttle_watermark=1.1, admit_watermark=1.6,
            shed_watermark=2.0)


def run_dict(seed, backend="python"):
    cfg = ServeConfig(seed=seed, **BASE)
    sim = SimulationConfig(backend=backend)
    return ServeSession(cfg, sim_config=sim).run().as_dict()


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_repeats_are_bit_identical(self, seed):
        a, b = run_dict(seed), run_dict(seed)
        assert a == b
        # Strictly bit-identical through JSON too (float encoding).
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_seeds_differ(self):
        assert run_dict(0) != run_dict(3)

    def test_backend_invariant(self, monkeypatch):
        """python and numba backends produce identical serve results."""
        monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
        py = run_dict(1, backend="python")
        nb = run_dict(1, backend="numba")
        # The backend label itself necessarily differs.
        py.pop("backend"), nb.pop("backend")
        assert py == nb


class TestArrivalTraceProperties:
    @given(seed=st.integers(0, 2**16), tenants=st.integers(1, 24),
           process=st.sampled_from(["poisson", "bursty"]))
    @settings(max_examples=60, deadline=None)
    def test_trace_well_formed_and_deterministic(self, seed, tenants,
                                                 process):
        cfg = ServeConfig(seed=seed, tenants=tenants, process=process)
        trace = generate_arrivals(cfg)
        assert trace == generate_arrivals(cfg)
        assert len(trace) == tenants
        times = [a.at_us for a in trace]
        assert times == sorted(times) and times[0] >= 0.0
        assert all(a.workload in cfg.workload_mix for a in trace)

    @given(seed=st.integers(0, 2**16),
           horizon_ms=st.floats(0.5, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_duration_cut_is_a_prefix(self, seed, horizon_ms):
        full = generate_arrivals(ServeConfig(seed=seed, tenants=24))
        cut = generate_arrivals(ServeConfig(seed=seed, tenants=24,
                                            duration_ms=horizon_ms))
        assert list(cut) == [a for a in full
                             if a.at_us <= horizon_ms * 1e3][:len(cut)]
        assert all(a.at_us <= horizon_ms * 1e3 for a in cut)


class TestDecisionPurity:
    @given(seed=st.integers(0, 2**10),
           capacity=st.integers(100, 1000),
           footprints=st.lists(st.integers(10, 800), min_size=1,
                               max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_controller_is_a_pure_function(self, seed, capacity,
                                           footprints):
        """Replaying one offer sequence reproduces every verdict."""
        def replay():
            c = AdmissionController(capacity, 1.5, 2.5, queue_depth=3)
            for i, blocks in enumerate(footprints):
                c.offer(i, blocks, float(i))
                if i % 3 == 2 and c.live_blocks:
                    c.release(c.live_blocks)
                    while c.pop_admittable():
                        pass
            return [dataclasses.astuple(d) for d in c.decisions]

        assert replay() == replay()

    @pytest.mark.parametrize("seed", [0, 4])
    def test_session_decisions_reproduce(self, seed):
        """Full-session admission decisions are seed-deterministic."""
        cfg = ServeConfig(seed=seed, **BASE)
        a = ServeSession(cfg).run()
        b = ServeSession(cfg).run()
        assert a.decisions == b.decisions
        assert [t.as_dict() for t in a.tenants] == \
               [t.as_dict() for t in b.tenants]
