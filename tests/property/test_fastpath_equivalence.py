"""Fast-path and trace-replay equivalence: this tentpole's contracts.

The resident fast path (``UvmDriver.resident_fast_path``) and trace
replay (:class:`repro.trace.TraceWorkload`, the engine behind the grid
trace cache) are pure performance rewrites: the short circuit must be
undetectable in outcomes and driver state, and a replayed stream must
drive the simulator exactly like live generation.  These properties pin
both, mirroring ``test_batched_equivalence.py`` for the drain rewrite.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import GridCell, GridOptions, run_grid
from repro.analysis.checkpoint import encode_result
from repro.config import (
    MigrationPolicy,
    ReplacementPolicy,
    SimulationConfig,
)
from repro.memory.layout import MB
from repro.sim.simulator import Simulator
from repro.trace import TraceWorkload, record_trace
from repro.uvm.driver import UvmDriver
from repro.workloads import ALL_WORKLOADS, EXTENDED_WORKLOADS, make_workload

from tests.conftest import make_driver, make_vas

policies = st.sampled_from(list(MigrationPolicy))


@st.composite
def traffic(draw):
    seed = draw(st.integers(0, 2**16))
    n_waves = draw(st.integers(1, 10))
    wave_size = draw(st.integers(1, 250))
    # Generous capacity keeps waves all-resident after warm-up (the fast
    # path's home regime); tight capacity interleaves pressure waves.
    capacity_mb = draw(st.sampled_from([6, 64]))
    return seed, n_waves, wave_size, capacity_mb


def _assert_same_state(fast: UvmDriver, slow: UvmDriver) -> None:
    assert np.array_equal(fast.residency.resident, slow.residency.resident)
    assert np.array_equal(fast.residency.dirty, slow.residency.dirty)
    assert np.array_equal(fast.counters.counts, slow.counters.counts)
    assert np.array_equal(fast.counters.volta_counts,
                          slow.counters.volta_counts)
    assert np.array_equal(fast.counters.roundtrips,
                          slow.counters.roundtrips)
    assert np.array_equal(fast.directory.last_touch,
                          slow.directory.last_touch)
    fast.check_consistency()
    slow.check_consistency()


def _run_pair(fast: UvmDriver, slow: UvmDriver, seed: int, n_waves: int,
              wave_size: int) -> None:
    rng = np.random.default_rng(seed)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page)
        for a in fast.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=wave_size)
        writes = rng.random(wave_size) < 0.4
        counts = rng.integers(1, 50, size=wave_size)
        out_f = fast.process_wave(pages, writes, counts)
        out_s = slow.process_wave(pages.copy(), writes.copy(),
                                  counts.copy())
        assert dataclasses.asdict(out_f) == dataclasses.asdict(out_s)
    _assert_same_state(fast, slow)


@given(policies, traffic())
@settings(max_examples=50, deadline=None)
def test_fast_path_matches_full_pipeline(policy, t):
    seed, n_waves, wave_size, capacity_mb = t
    pair = []
    for fast in (True, False):
        drv = make_driver(make_vas(4, 8), policy, capacity_mb=capacity_mb)
        drv.resident_fast_path = fast
        pair.append(drv)
    _run_pair(*pair, seed, n_waves, wave_size)


@given(traffic(), st.floats(0.05, 0.5), st.floats(0.05, 0.5))
@settings(max_examples=25, deadline=None)
def test_fast_path_matches_under_fault_injection(t, transfer_rate,
                                                 migration_rate):
    """All-resident waves draw nothing from the injector RNG, so the
    short circuit cannot shift later fault outcomes."""
    seed, n_waves, wave_size, capacity_mb = t
    pair = []
    for fast in (True, False):
        cfg = (SimulationConfig()
               .with_policy(MigrationPolicy.ADAPTIVE)
               .with_device_capacity(capacity_mb * MB)
               .with_faults(transfer_fault_rate=transfer_rate,
                            migration_fault_rate=migration_rate))
        drv = UvmDriver(make_vas(4, 8), cfg)
        drv.resident_fast_path = fast
        pair.append(drv)
    _run_pair(*pair, seed, n_waves, wave_size)


@pytest.mark.parametrize("replacement", list(ReplacementPolicy))
def test_fast_path_matches_under_both_replacement_policies(replacement):
    pair = []
    for fast in (True, False):
        cfg = (SimulationConfig()
               .with_policy(MigrationPolicy.ADAPTIVE)
               .with_device_capacity(6 * MB))
        cfg = dataclasses.replace(
            cfg, memory=dataclasses.replace(cfg.memory,
                                            replacement=replacement))
        drv = UvmDriver(make_vas(4, 8), cfg)
        drv.resident_fast_path = fast
        pair.append(drv)
    _run_pair(*pair, seed=11, n_waves=12, wave_size=200)


def test_fast_path_fires_in_steady_state():
    """With capacity over footprint, repeat traffic is absorbed by the
    fast path, and the hit-rate rollup reflects it."""
    drv = make_driver(make_vas(4), MigrationPolicy.DISABLED, capacity_mb=16)
    pages = np.arange(drv.vas.allocations[0].first_page,
                      drv.vas.allocations[0].last_page)
    writes = np.zeros(pages.size, dtype=bool)
    drv.process_wave(pages, writes)  # warm: first touch migrates all
    assert drv.stats.fast_path_waves == 0 or drv.fast_path_hit_rate < 1.0
    for _ in range(4):
        out = drv.process_wave(pages, writes)
        assert out.n_local == out.n_accesses
    assert drv.stats.fast_path_waves == 4
    assert drv.fast_path_hit_rate == pytest.approx(4 / 5)
    drv.resident_fast_path = False
    drv.process_wave(pages, writes)
    assert drv.stats.fast_path_waves == 4  # off: full pipeline again


# ---------------------------------------------------------------------------
# trace replay (the grid trace cache's correctness contract)
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("name", ALL_WORKLOADS + EXTENDED_WORKLOADS)
def test_replay_bit_identical_every_registered_workload(name):
    cfg = SimulationConfig(seed=3).with_policy(MigrationPolicy.ADAPTIVE)
    live = Simulator(cfg).run(make_workload(name, "tiny"),
                              oversubscription=1.25)
    data = record_trace(make_workload(name, "tiny"), seed=3)
    replay = Simulator(cfg).run(TraceWorkload(data), oversubscription=1.25)
    assert encode_result(replay) == encode_result(live)


@pytest.mark.parametrize("replacement", list(ReplacementPolicy))
def test_replay_bit_identical_both_replacement_policies(replacement):
    cfg = SimulationConfig(seed=5).with_policy(MigrationPolicy.ADAPTIVE)
    cfg = dataclasses.replace(
        cfg, memory=dataclasses.replace(cfg.memory,
                                        replacement=replacement))
    live = Simulator(cfg).run(make_workload("ra", "tiny"),
                              oversubscription=1.5)
    data = record_trace(make_workload("ra", "tiny"), seed=5)
    replay = Simulator(cfg).run(TraceWorkload(data), oversubscription=1.5)
    assert encode_result(replay) == encode_result(live)


def test_replay_bit_identical_under_fault_injection():
    cfg = (SimulationConfig(seed=9)
           .with_policy(MigrationPolicy.ADAPTIVE)
           .with_faults(transfer_fault_rate=0.02,
                        migration_fault_rate=0.05))
    live = Simulator(cfg).run(make_workload("bfs", "tiny"),
                              oversubscription=1.25)
    data = record_trace(make_workload("bfs", "tiny"), seed=9)
    replay = Simulator(cfg).run(TraceWorkload(data), oversubscription=1.25)
    assert encode_result(replay) == encode_result(live)


def test_grid_with_trace_cache_bit_identical(tmp_path):
    """A sweep-shaped grid produces byte-identical results with the
    shared trace cache on (cold and warm) and off."""
    cells = [GridCell("ra", MigrationPolicy.ADAPTIVE, level, "tiny")
             for level in (0.8, 1.25)]
    cells.append(GridCell("sssp", MigrationPolicy.DISABLED, 1.25, "tiny"))
    cells.append(GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny",
                          transfer_fault_rate=0.05))
    base = run_grid(cells)
    opts = GridOptions(trace_cache=str(tmp_path / "cache"))
    cold = run_grid(cells, options=opts)
    warm = run_grid(cells, options=opts)
    for b, c, w in zip(base, cold, warm):
        assert encode_result(c) == encode_result(b)
        assert encode_result(w) == encode_result(b)
