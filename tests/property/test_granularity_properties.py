"""Property tests: invariants hold across eviction granularities,
prefetchers and advice combinations."""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import (
    EvictionGranularity,
    MigrationPolicy,
    PrefetcherKind,
    SimulationConfig,
)
from repro.memory.advice import Advice
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import MB
from repro.uvm.driver import UvmDriver

policies = st.sampled_from(list(MigrationPolicy))
granularities = st.sampled_from(list(EvictionGranularity))
prefetchers = st.sampled_from(list(PrefetcherKind))
advices = st.sampled_from(list(Advice))


def build_driver(policy, granularity, prefetcher, advice, seed):
    vas = VirtualAddressSpace()
    vas.malloc_managed("a", 4 * MB, advice=advice)
    vas.malloc_managed("b", 4 * MB)
    cfg = SimulationConfig(seed=seed).with_policy(policy)
    cfg = cfg.with_device_capacity(4 * MB)
    cfg = cfg.with_eviction_granularity(granularity)
    cfg = cfg.with_prefetcher(prefetcher)
    return UvmDriver(vas, cfg)


@given(policies, granularities, prefetchers, advices,
       st.integers(0, 1000), st.integers(1, 8))
@settings(max_examples=80, deadline=None)
def test_all_configurations_keep_invariants(policy, granularity, prefetcher,
                                            advice, seed, n_waves):
    rng = np.random.default_rng(seed)
    drv = build_driver(policy, granularity, prefetcher, advice, seed)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page) for a in drv.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=150)
        writes = rng.random(150) < 0.4
        counts = rng.integers(1, 40, size=150)
        out = drv.process_wave(pages, writes, counts)
        served = out.n_local + out.n_remote + out.fault_migrations
        assert served == out.n_accesses
    drv.check_consistency()
    assert drv.device.used_blocks <= drv.device.capacity_blocks
    # Hard-pinned blocks never end up device-resident.
    pinned = drv.block_pinned_host
    assert not np.any(drv.residency.resident & pinned)


@given(st.integers(0, 500), st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_block_granularity_never_over_evicts(seed, n_waves):
    """64KB eviction frees no more than a chunk eviction would."""
    rng = np.random.default_rng(seed)
    fine = build_driver(MigrationPolicy.DISABLED,
                        EvictionGranularity.BLOCK_64KB,
                        PrefetcherKind.TREE, Advice.NONE, seed)
    coarse = build_driver(MigrationPolicy.DISABLED,
                          EvictionGranularity.CHUNK_2MB,
                          PrefetcherKind.TREE, Advice.NONE, seed)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page) for a in fine.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=200)
        writes = rng.random(200) < 0.5
        fine.process_wave(pages.copy(), writes.copy())
        coarse.process_wave(pages.copy(), writes.copy())
    assert fine.stats.totals.evicted_blocks <= \
        coarse.stats.totals.evicted_blocks
    # Finer granularity keeps the device at least as full.
    assert fine.device.used_blocks >= coarse.device.used_blocks - 32
