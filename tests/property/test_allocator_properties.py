"""Property-based tests for the VA allocator and layout rules."""

from hypothesis import given, settings, strategies as st

from repro.memory import layout
from repro.memory.allocator import VirtualAddressSpace

sizes = st.integers(min_value=1, max_value=16 * layout.CHUNK_SIZE)


@given(st.lists(sizes, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_allocations_disjoint_and_aligned(sz_list):
    vas = VirtualAddressSpace()
    allocs = [vas.malloc_managed(f"a{i}", s) for i, s in enumerate(sz_list)]
    for a in allocs:
        assert a.first_page % layout.PAGES_PER_CHUNK == 0
        assert a.rounded_bytes >= a.requested_bytes
        assert a.rounded_bytes % layout.BASIC_BLOCK_SIZE == 0
    spans = sorted((a.first_page, a.last_page) for a in allocs)
    for (lo1, hi1), (lo2, _) in zip(spans, spans[1:]):
        assert hi1 <= lo2, "allocations overlap"


@given(sizes)
@settings(max_examples=200, deadline=None)
def test_chunks_tile_allocation_exactly(size):
    vas = VirtualAddressSpace()
    a = vas.malloc_managed("a", size)
    total = sum(c.size_bytes for c in a.chunks)
    assert total == a.rounded_bytes
    cursor = a.first_block
    for c in a.chunks:
        assert c.first_block == cursor
        nb = c.num_blocks
        assert nb & (nb - 1) == 0, "chunk block count must be a power of two"
        assert nb <= layout.BLOCKS_PER_CHUNK
        cursor += nb


@given(sizes)
@settings(max_examples=200, deadline=None)
def test_rounding_is_minimal(size):
    """Rounded size never exceeds requested by more than the rule allows."""
    vas = VirtualAddressSpace()
    a = vas.malloc_managed("a", size)
    full_chunks = size // layout.CHUNK_SIZE
    remainder = size - full_chunks * layout.CHUNK_SIZE
    if remainder == 0:
        assert a.rounded_bytes == size
    else:
        assert a.rounded_bytes < full_chunks * layout.CHUNK_SIZE + \
            2 * max(remainder, layout.BASIC_BLOCK_SIZE)


@given(st.lists(sizes, min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_block_ownership_maps_are_consistent(sz_list):
    vas = VirtualAddressSpace()
    for i, s in enumerate(sz_list):
        vas.malloc_managed(f"a{i}", s)
    alloc_ids = vas.block_alloc_ids()
    chunk_ids = vas.block_chunk_ids()
    assert alloc_ids.size == vas.total_blocks
    # A block belongs to an allocation iff it belongs to a chunk.
    assert ((alloc_ids >= 0) == (chunk_ids >= 0)).all()
    for a in vas.allocations:
        assert (alloc_ids[a.first_block:a.first_block + a.num_blocks]
                == a.alloc_id).all()
