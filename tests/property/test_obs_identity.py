"""Observability bit-identity: instrumentation must never change results.

The contract the whole ``repro.obs`` layer rests on: event emission and
metric rollup are read-only over simulator state and touch no RNG
stream, so a run with a full observability handle attached (null sink,
ring buffer, metrics, profiler) is **bit-identical** to a run with no
observability wired at all.  These properties pin that, end-to-end
through ``Simulator`` and at the driver level under randomized traffic.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.config import MigrationPolicy, SimulationConfig
from repro.obs import MetricsSink, NullSink, Observability, RingBufferSink
from repro.sim.simulator import Simulator
from repro.workloads import make_workload

from tests.conftest import make_driver, make_vas

policies = st.sampled_from(list(MigrationPolicy))


def _full_obs() -> Observability:
    """A handle exercising every facility at once."""
    obs = Observability.create(metrics=True, profile=True, ring_capacity=64)
    obs.bus.attach(NullSink())
    return obs


def _run(workload, policy, obs=None):
    cfg = SimulationConfig().with_policy(MigrationPolicy(policy))
    return Simulator(cfg).run(make_workload(workload, scale="tiny"),
                              oversubscription=1.5, obs=obs)


def _result_fields(result) -> dict:
    return {
        "total_cycles": result.total_cycles,
        "events": dataclasses.asdict(result.events),
        "timing": dataclasses.asdict(result.timing),
        "thrashed": result.unique_thrashed_blocks,
    }


@pytest.mark.parametrize("policy", [p.value for p in MigrationPolicy])
def test_simulator_identical_with_null_sink(policy):
    plain = _run("bfs", policy)
    instrumented = _run("bfs", policy, obs=_full_obs())
    assert _result_fields(plain) == _result_fields(instrumented)


def test_simulator_identical_with_jsonl_and_metrics(tmp_path):
    obs = Observability.create(events_path=tmp_path / "e.jsonl",
                               metrics=True, profile=True)
    plain = _run("sssp", "adaptive")
    instrumented = _run("sssp", "adaptive", obs=obs)
    obs.close()
    assert _result_fields(plain) == _result_fields(instrumented)
    assert (tmp_path / "e.jsonl").stat().st_size > 0


def test_simulator_identical_with_timeline(tmp_path):
    """The Chrome-trace recorder is read-only over simulation state."""
    from repro.obs import validate_trace

    obs = Observability.create(timeline=True, metrics=True)
    plain = _run("bfs", "adaptive")
    instrumented = _run("bfs", "adaptive", obs=obs)
    obs.close()
    assert _result_fields(plain) == _result_fields(instrumented)
    trace = obs.timeline.trace()
    assert validate_trace(trace) == []
    assert obs.timeline.waves > 0
    assert trace["otherData"]["workload"] == "bfs"


def test_simulator_identical_when_archived(tmp_path):
    """Streaming the event log into an archive slot changes nothing."""
    from repro.analysis.checkpoint import encode_config
    from repro.obs import JsonlSink
    from repro.obs.store import RunManifest, RunStore

    cfg = SimulationConfig().with_policy(MigrationPolicy.ADAPTIVE)
    store = RunStore(tmp_path)
    writer = store.open_run(RunManifest.create(
        kind="run", workload="sssp", policy="adaptive", scale="tiny",
        seed=cfg.seed, oversubscription=1.5, config=encode_config(cfg)))
    obs = Observability.create(metrics=True)
    obs.bus.attach(JsonlSink(writer.events_path))

    plain = _run("sssp", "adaptive")
    instrumented = _run("sssp", "adaptive", obs=obs)
    obs.close()
    run_id = writer.commit(instrumented, metrics=obs.metrics.as_dict())
    assert _result_fields(plain) == _result_fields(instrumented)
    # and the archived copy round-trips to the same result fields
    assert _result_fields(store.load(run_id).result) == \
        _result_fields(plain)


@st.composite
def traffic(draw):
    seed = draw(st.integers(0, 2**16))
    n_waves = draw(st.integers(1, 8))
    wave_size = draw(st.integers(1, 200))
    return seed, n_waves, wave_size


@given(policies, traffic())
@settings(max_examples=40, deadline=None)
def test_driver_identical_under_random_traffic(policy, t):
    """Driver-level identity, including eviction-heavy random traffic."""
    seed, n_waves, wave_size = t
    plain = make_driver(make_vas(4, 8), policy, capacity_mb=6)

    obs = _full_obs()
    instrumented = make_driver(make_vas(4, 8), policy, capacity_mb=6)
    # wire the handle exactly as Simulator does
    instrumented.obs = obs
    instrumented._bus = obs.bus
    instrumented._prof = obs.profiler
    instrumented.counters.bus = obs.bus

    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page)
        for a in plain.vas.allocations])
    for _ in range(n_waves):
        pages = rng_a.choice(alloc_pages, size=wave_size)
        writes = rng_a.random(wave_size) < 0.4
        counts = rng_a.integers(1, 50, size=wave_size)
        out_p = plain.process_wave(pages, writes, counts)
        pages_b = rng_b.choice(alloc_pages, size=wave_size)
        writes_b = rng_b.random(wave_size) < 0.4
        counts_b = rng_b.integers(1, 50, size=wave_size)
        out_i = instrumented.process_wave(pages_b, writes_b, counts_b)
        assert dataclasses.asdict(out_p) == dataclasses.asdict(out_i)
    plain.check_consistency()
    instrumented.check_consistency()


def test_event_stream_drain_equivalent():
    """Batched and scalar drains emit the same event stream."""
    streams = []
    for batched in (True, False):
        obs = Observability()
        ring = RingBufferSink(capacity=100_000)
        obs.bus.attach(ring)
        drv = make_driver(make_vas(4, 8), MigrationPolicy.ADAPTIVE,
                          capacity_mb=6)
        drv.batched_migrations = batched
        drv.obs = obs
        drv._bus = obs.bus
        drv.counters.bus = obs.bus
        rng = np.random.default_rng(7)
        alloc_pages = np.concatenate([
            np.arange(a.first_page, a.last_page)
            for a in drv.vas.allocations])
        for _ in range(6):
            pages = rng.choice(alloc_pages, size=150)
            writes = rng.random(150) < 0.4
            counts = rng.integers(1, 50, size=150)
            drv.process_wave(pages, writes, counts)
        streams.append(ring.events)
    batched_events, scalar_events = streams
    # Same multiset of events; ordering within a wave's drain may differ
    # between the chunk-grouped and per-block code paths.
    assert sorted(map(repr, batched_events)) == sorted(map(repr,
                                                           scalar_events))


def test_metrics_sink_matches_event_stream():
    """The metric rollup agrees with counting the raw event stream."""
    from repro.obs import MetricsRegistry, MigrationDecision

    obs = Observability()
    ring = RingBufferSink(capacity=100_000)
    reg = MetricsRegistry()
    obs.bus.attach(ring)
    obs.bus.attach(MetricsSink(reg))
    drv = make_driver(make_vas(4, 8), MigrationPolicy.ADAPTIVE,
                      capacity_mb=6)
    drv.obs = obs
    drv._bus = obs.bus
    drv.counters.bus = obs.bus
    rng = np.random.default_rng(11)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page)
        for a in drv.vas.allocations])
    for _ in range(5):
        pages = rng.choice(alloc_pages, size=120)
        writes = rng.random(120) < 0.4
        counts = rng.integers(1, 50, size=120)
        drv.process_wave(pages, writes, counts)
    decisions = [e for e in ring if type(e) is MigrationDecision]
    migrated = sum(1 for e in decisions if e.migrated)
    m = reg.as_dict()
    assert m["driver.decisions.migrate"]["value"] == migrated
    assert m["driver.decisions.remote"]["value"] == len(decisions) - migrated
    assert m["driver.threshold"]["count"] == len(decisions)
