"""Property-based tests: driver invariants under random access traffic."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import MigrationPolicy
from repro.memory.layout import MB

from tests.conftest import make_driver, make_vas

policies = st.sampled_from(list(MigrationPolicy))


@st.composite
def traffic(draw):
    seed = draw(st.integers(0, 2**16))
    n_waves = draw(st.integers(1, 12))
    wave_size = draw(st.integers(1, 300))
    return seed, n_waves, wave_size


@given(policies, traffic())
@settings(max_examples=60, deadline=None)
def test_structural_invariants_under_random_traffic(policy, t):
    seed, n_waves, wave_size = t
    rng = np.random.default_rng(seed)
    drv = make_driver(make_vas(4, 8), policy, capacity_mb=6)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page)
        for a in drv.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=wave_size)
        writes = rng.random(wave_size) < 0.4
        counts = rng.integers(1, 50, size=wave_size)
        out = drv.process_wave(pages, writes, counts)
        # Access conservation: every access is served exactly once.
        served = out.n_local + out.n_remote + out.fault_migrations
        assert served == out.n_accesses, (
            f"{out.n_accesses} accesses but {served} services")
    drv.check_consistency()
    assert drv.device.used_blocks <= drv.device.capacity_blocks


@given(policies, traffic())
@settings(max_examples=40, deadline=None)
def test_no_remote_service_for_resident_blocks(policy, t):
    """Remote accesses only ever target host-resident blocks."""
    seed, n_waves, wave_size = t
    rng = np.random.default_rng(seed)
    drv = make_driver(make_vas(8), policy, capacity_mb=4)
    a = drv.vas.allocations[0]
    for _ in range(n_waves):
        pages = rng.integers(a.first_page, a.last_page, size=wave_size)
        writes = rng.random(wave_size) < 0.4
        drv.process_wave(pages, writes)
        # remote-mapped implies host-valid, and never device-resident
        assert not np.any(drv.host.remote_mapped & drv.residency.resident)
        assert not np.any(drv.residency.resident & drv.host.valid)


@given(traffic())
@settings(max_examples=40, deadline=None)
def test_baseline_never_serves_remotely(t):
    seed, n_waves, wave_size = t
    rng = np.random.default_rng(seed)
    drv = make_driver(make_vas(8), MigrationPolicy.DISABLED, capacity_mb=4)
    a = drv.vas.allocations[0]
    for _ in range(n_waves):
        pages = rng.integers(a.first_page, a.last_page, size=wave_size)
        drv.process_wave(pages, np.zeros(wave_size, dtype=bool))
    assert drv.stats.totals.n_remote == 0
    assert drv.stats.totals.mapping_faults == 0


@given(traffic())
@settings(max_examples=30, deadline=None)
def test_thrash_requires_eviction(t):
    """With capacity >= footprint there are never thrash migrations."""
    seed, n_waves, wave_size = t
    rng = np.random.default_rng(seed)
    drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE, capacity_mb=16)
    a = drv.vas.allocations[0]
    for _ in range(n_waves):
        pages = rng.integers(a.first_page, a.last_page, size=wave_size)
        drv.process_wave(pages, np.ones(wave_size, dtype=bool))
    assert drv.stats.totals.evicted_blocks == 0
    assert drv.stats.totals.thrash_migrations == 0
    assert not drv.device.oversubscribed
