"""Timeline export properties: every recorder state yields a valid trace.

The Chrome Trace Event Format contract (:func:`validate_trace`) must
hold no matter how spans nest, how driver events interleave, or how the
host clock misbehaves -- a trace Perfetto refuses to load is worse than
no trace.  These properties drive the recorder through randomized
operation sequences with an injected (possibly non-monotonic) clock and
assert the exported trace always validates cleanly.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.obs.events import (
    CounterHalving,
    Eviction,
    FaultRetry,
    MigrationDecision,
    PrefetchExpand,
    RunMeta,
)
from repro.obs.timeline import (
    TimelineProfiler,
    TimelineRecorder,
    TimelineSink,
    validate_trace,
)

names = st.sampled_from(["wave", "migrate", "evict", "prefetch", "fault"])

#: One recorder operation: (op, name) pairs interpreted against a stack.
operations = st.lists(
    st.tuples(st.sampled_from(["begin", "end", "instant", "frame"]), names),
    max_size=60)

#: Clock increments, including negative hiccups the recorder must clamp.
deltas = st.lists(st.floats(-0.5, 0.5, allow_nan=False), max_size=80)


def _fake_clock(increments):
    """A perf_counter stand-in stepping through ``increments``."""
    state = {"t": 100.0, "i": 0}

    def clock():
        if state["i"] < len(increments):
            state["t"] += increments[state["i"]]
            state["i"] += 1
        return state["t"]

    return clock


@given(operations, deltas)
@settings(max_examples=100, deadline=None)
def test_arbitrary_operations_yield_valid_trace(ops, increments):
    rec = TimelineRecorder(time_fn=_fake_clock(increments))
    stack = []
    for op, name in ops:
        if op == "begin":
            rec.begin(name)
            stack.append(name)
        elif op == "end":
            if stack:  # the recorder API is balanced by construction
                rec.end(stack.pop())
        elif op == "instant":
            rec.instant(name, {"block": 1})
        else:
            rec.frame()
    while stack:
        rec.end(stack.pop())
    trace = rec.trace()
    assert validate_trace(trace) == []
    # the trace survives a JSON round trip unchanged
    assert validate_trace(json.loads(json.dumps(trace))) == []


@given(st.lists(st.integers(0, 4), max_size=30), deltas)
@settings(max_examples=60, deadline=None)
def test_profiler_spans_nest_cleanly(depths, increments):
    rec = TimelineRecorder(time_fn=_fake_clock(increments))
    prof = TimelineProfiler(rec)

    def nest(depth):
        if depth <= 0:
            return
        with prof.span(f"level{depth}"):
            nest(depth - 1)

    for depth in depths:
        with prof.span("wave"):
            nest(depth)
    assert validate_trace(rec.trace()) == []
    assert rec.waves == len(depths)  # every wave span marks a frame
    if depths:
        # the PhaseProfiler accounting still works alongside the trace
        assert sum(r["calls"] for r in prof.report()
                   if r["phase"] == "wave") == len(depths)


_events = st.one_of(
    st.builds(MigrationDecision, wave=st.integers(0, 9),
              block=st.integers(0, 99), threshold=st.integers(1, 64),
              counter=st.integers(0, 64), accesses=st.integers(0, 64),
              migrated=st.booleans()),
    st.builds(Eviction, wave=st.integers(0, 9), chunk=st.integers(0, 9),
              blocks=st.integers(1, 16), dirty_blocks=st.integers(0, 16),
              whole_chunk=st.booleans()),
    st.builds(FaultRetry, wave=st.integers(0, 9), block=st.integers(0, 99),
              failures=st.integers(1, 4), degraded=st.booleans()),
    st.builds(PrefetchExpand, wave=st.integers(0, 9),
              chunk=st.integers(0, 9), fault_block=st.integers(0, 99),
              blocks=st.integers(1, 16)),
    st.builds(CounterHalving, wave=st.integers(0, 9),
              field=st.sampled_from(["counter", "residency"]),
              halvings=st.integers(1, 4)),
    st.builds(RunMeta, workload=st.just("ra"), policy=st.just("adaptive"),
              seed=st.integers(0, 9), total_blocks=st.integers(1, 64),
              capacity_blocks=st.integers(1, 64),
              allocations=st.just((("ra.table", 0, 64),))),
)


@given(st.lists(_events, max_size=40), deltas)
@settings(max_examples=60, deadline=None)
def test_sink_maps_any_event_stream_to_a_valid_trace(events, increments):
    rec = TimelineRecorder(time_fn=_fake_clock(increments))
    sink = TimelineSink(rec)
    for event in events:
        sink.write(event)
    sink.close()
    trace = rec.trace()
    assert validate_trace(trace) == []
    if any(type(e) is RunMeta for e in events):
        assert trace["otherData"]["workload"] == "ra"


class TestValidator:
    """validate_trace must actually reject malformed traces."""

    def test_rejects_non_monotonic_track(self):
        trace = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 1, "name": "a", "ts": 10, "s": "t"},
            {"ph": "i", "pid": 1, "tid": 1, "name": "b", "ts": 5, "s": "t"},
        ]}
        assert any("decreases" in p for p in validate_trace(trace))

    def test_independent_tracks_do_not_interfere(self):
        trace = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 1, "name": "a", "ts": 10, "s": "t"},
            {"ph": "i", "pid": 1, "tid": 2, "name": "b", "ts": 5, "s": "t"},
        ]}
        assert validate_trace(trace) == []

    def test_rejects_unmatched_pairs(self):
        dangling_e = {"traceEvents": [
            {"ph": "E", "pid": 1, "tid": 1, "name": "a", "ts": 1}]}
        unclosed_b = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 1, "name": "a", "ts": 1}]}
        crossed = {"traceEvents": [
            {"ph": "B", "pid": 1, "tid": 1, "name": "a", "ts": 1},
            {"ph": "B", "pid": 1, "tid": 1, "name": "b", "ts": 2},
            {"ph": "E", "pid": 1, "tid": 1, "name": "a", "ts": 3},
        ]}
        assert any("without matching B" in p
                   for p in validate_trace(dangling_e))
        assert any("unclosed" in p for p in validate_trace(unclosed_b))
        assert any("closes B" in p for p in validate_trace(crossed))

    def test_rejects_bad_envelope_and_ts(self):
        assert validate_trace([]) != []
        assert validate_trace({"traceEvents": 3}) != []
        bad_ts = {"traceEvents": [
            {"ph": "i", "pid": 1, "tid": 1, "name": "a", "ts": -1}]}
        assert any("bad ts" in p for p in validate_trace(bad_ts))
