"""Property-based tests for counters and thresholds."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.uvm.counters import AccessCounterFile
from repro.uvm.thresholds import (
    dynamic_threshold_no_oversub,
    dynamic_thresholds_oversub,
)


@given(st.lists(st.tuples(st.integers(0, 15), st.integers(1, 10_000)),
                min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_counter_accumulation_matches_reference(ops):
    c = AccessCounterFile(16)
    reference = np.zeros(16, dtype=np.int64)
    for block, amount in ops:
        c.add_accesses(np.array([block]), np.array([amount]))
        reference[block] += amount
    assert np.array_equal(c.counts.astype(np.int64), reference)


@given(st.lists(st.integers(0, 7), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_roundtrip_counts_never_exceed_field(blocks):
    c = AccessCounterFile(8)
    for b in blocks:
        c.add_roundtrip(np.array([b]))
    assert int(c.roundtrips.max()) <= int(c.roundtrip_max)


@given(st.integers(1, 64), st.integers(0, 40))
@settings(max_examples=200, deadline=None)
def test_halving_preserves_relative_order(seed, extra):
    rng = np.random.default_rng(seed)
    c = AccessCounterFile(8)
    vals = rng.integers(1, 1000, size=8)
    c.add_accesses(np.arange(8), vals)
    order_before = np.argsort(c.counts, kind="stable")
    # Force a saturation-triggered halving.
    c.add_accesses(np.array([int(np.argmax(vals))]),
                   np.array([c.counter_max], dtype=np.uint64))
    assert c.count_halvings >= 1
    # Halving divides everything by the same power of two: weak order of
    # the untouched blocks is preserved.
    untouched = [i for i in range(8) if i != int(np.argmax(vals))]
    after = c.counts[untouched].astype(np.int64)
    before = vals[untouched]
    # Pairwise: strictly-greater before implies greater-or-equal after.
    for i in range(len(untouched)):
        for j in range(len(untouched)):
            if before[i] > before[j]:
                assert after[i] >= after[j]


@given(st.integers(1, 32), st.floats(0.0, 1.0))
@settings(max_examples=300, deadline=None)
def test_no_oversub_threshold_bounds(ts, occ):
    td = dynamic_threshold_no_oversub(ts, occ)
    assert 1 <= td <= ts + 1
    # First-touch below 1/ts occupancy.
    if occ * ts < 1.0:
        assert td == 1


@given(st.integers(1, 32), st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=200, deadline=None)
def test_no_oversub_threshold_monotone_in_occupancy(ts, a, b):
    lo, hi = min(a, b), max(a, b)
    assert dynamic_threshold_no_oversub(ts, lo) <= \
        dynamic_threshold_no_oversub(ts, hi)


@given(st.integers(1, 32), st.integers(1, 1 << 20),
       st.lists(st.integers(0, 31), min_size=1, max_size=20))
@settings(max_examples=200, deadline=None)
def test_oversub_threshold_formula(ts, p, rs):
    r = np.array(rs)
    td = dynamic_thresholds_oversub(ts, r, p)
    assert np.array_equal(td, ts * (r + 1) * p)
    assert np.all(td >= ts * p)


@given(st.integers(1, 16), st.integers(0, 31),
       st.integers(1, 512), st.integers(1, 512))
@settings(max_examples=200, deadline=None)
def test_oversub_threshold_monotone_in_penalty(ts, r, p1, p2):
    lo, hi = min(p1, p2), max(p1, p2)
    td_lo = dynamic_thresholds_oversub(ts, np.array([r]), lo)[0]
    td_hi = dynamic_thresholds_oversub(ts, np.array([r]), hi)[0]
    assert td_lo <= td_hi
