"""End-to-end determinism properties of the resilience layer.

Two contracts from the fault-model design notes are pinned here:

* **Zero-rate transparency** -- a config whose fault rates are all 0.0
  must be bit-identical to the pre-fault-model simulator, even when an
  injector object is forcibly attached (rate 0 consumes no randomness).
* **Resume transparency** -- a grid served partly from a checkpoint
  journal must be cell-for-cell identical to an uninterrupted serial
  run (floats round-trip JSON exactly).
"""

import dataclasses

import pytest

from repro.analysis.checkpoint import CheckpointJournal
from repro.analysis.parallel import GridCell, GridOptions, run_grid
from repro.config import FaultConfig, MigrationPolicy, SimulationConfig
from repro.sim.simulator import Simulator
from repro.uvm.faults import FaultInjector
from repro.workloads import make_workload


def _run(cfg, seed=0, oversub=1.25):
    wl = make_workload("ra", "tiny")
    return Simulator(cfg).run(wl, oversubscription=oversub)


def _identical(a, b):
    assert a.total_cycles == b.total_cycles
    assert a.timing == b.timing
    assert a.events == b.events


class TestZeroRateTransparency:
    def test_zero_rates_bit_identical_to_default(self):
        _identical(_run(SimulationConfig()),
                   _run(SimulationConfig().with_faults(
                       transfer_fault_rate=0.0, migration_fault_rate=0.0,
                       max_retries=7, retry_backoff_us=100.0)))

    def test_forced_injector_with_zero_rates_is_inert(self):
        """Even with an injector attached, rate 0 changes nothing."""
        from tests.conftest import make_vas
        from repro.uvm.driver import UvmDriver

        cfg = SimulationConfig()
        driver = UvmDriver(make_vas(8), cfg)
        assert driver.injector is None  # disabled config -> no injector
        forced = UvmDriver(make_vas(8), cfg)
        forced.injector = FaultInjector(FaultConfig(), seed=cfg.seed)
        # The injector's enabled gate short-circuits before any draw.
        assert not forced.injector.enabled

    def test_zero_rate_counters_stay_zero(self):
        r = _run(SimulationConfig())
        assert r.events.retried_transfers == 0
        assert r.events.degraded_accesses == 0
        assert r.events.retry_backoff_us == 0.0


class TestFaultDeterminism:
    CFG = dict(transfer_fault_rate=0.3, migration_fault_rate=0.1,
               max_retries=1)

    def test_same_seed_same_run(self):
        cfg = SimulationConfig(seed=5).with_faults(**self.CFG)
        _identical(_run(cfg, seed=5), _run(cfg, seed=5))

    def test_faults_actually_fire_and_slow_the_run(self):
        clean = _run(SimulationConfig(seed=0))
        faulty = _run(SimulationConfig(seed=0).with_faults(**self.CFG))
        assert faulty.events.retried_transfers > 0
        assert faulty.total_cycles > clean.total_cycles

    def test_different_seed_different_fault_pattern(self):
        a = _run(dataclasses.replace(
            SimulationConfig(seed=1).with_faults(**self.CFG)))
        b = _run(dataclasses.replace(
            SimulationConfig(seed=2).with_faults(**self.CFG)))
        # Same rates, different seeds: the injected pattern must differ.
        assert (a.events.retried_transfers, a.total_cycles) \
            != (b.events.retried_transfers, b.total_cycles)

    def test_exhausted_retries_degrade_not_crash(self):
        cfg = SimulationConfig(seed=0).with_faults(
            transfer_fault_rate=0.9, max_retries=0)
        r = _run(cfg)
        assert r.events.degraded_accesses > 0
        assert r.total_cycles > 0  # run completed despite the fault storm

    def test_debug_invariants_hold_under_faults(self):
        cfg = dataclasses.replace(
            SimulationConfig(seed=0).with_faults(**self.CFG),
            debug_invariants=True)
        _run(cfg)  # would raise AssertionError on an accounting leak


class TestResumeTransparency:
    CELLS = [
        GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny"),
        GridCell("ra", MigrationPolicy.DISABLED, 1.25, "tiny"),
        GridCell("ra", MigrationPolicy.ADAPTIVE, 1.0, "tiny"),
        GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny",
                 transfer_fault_rate=0.2),
    ]

    def test_resumed_grid_equals_uninterrupted_serial(self, tmp_path):
        baseline = run_grid(self.CELLS, max_workers=1)

        # First (interrupted) run journals only a prefix of the grid.
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            for cell, result in zip(self.CELLS[:2], baseline[:2]):
                journal.append(cell, result)

        resumed = run_grid(
            self.CELLS, max_workers=1,
            options=GridOptions(checkpoint=str(path), resume=True))
        for a, b in zip(baseline, resumed):
            _identical(a, b)
            assert a.config == b.config

    def test_resume_never_reruns_journaled_cells(self, tmp_path, monkeypatch):
        baseline = run_grid(self.CELLS, max_workers=1)
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            for cell, result in zip(self.CELLS, baseline):
                journal.append(cell, result)

        from repro.analysis import parallel

        def exploding(cell):
            raise AssertionError("journaled cell was re-simulated")

        monkeypatch.setattr(parallel, "run_cell", exploding)
        resumed = run_grid(
            self.CELLS, max_workers=1,
            options=GridOptions(checkpoint=str(path), resume=True))
        for a, b in zip(baseline, resumed):
            _identical(a, b)

    def test_collector_cells_always_resimulated(self, tmp_path):
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny",
                        collect_histogram=True)
        path = tmp_path / "journal.jsonl"
        first = run_grid([cell], max_workers=1,
                         options=GridOptions(checkpoint=str(path)))
        # The journal must not contain the collector cell at all.
        assert CheckpointJournal(path).load() == {}
        again = run_grid([cell], max_workers=1,
                         options=GridOptions(checkpoint=str(path),
                                             resume=True))
        _identical(first[0], again[0])
        assert again[0].stats is not None

    def test_parallel_equals_serial(self):
        serial = run_grid(self.CELLS, max_workers=1)
        fanned = run_grid(self.CELLS, max_workers=2)
        for a, b in zip(serial, fanned):
            _identical(a, b)
