"""Property tests: trace round trips and replay fidelity."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import MigrationPolicy, SimulationConfig
from repro.memory.layout import MB
from repro.sim.simulator import Simulator
from repro.trace import TraceWorkload, load_trace, record_trace, save_trace

from tests.conftest import RandomWorkload, StreamWorkload


@st.composite
def workloads(draw):
    kind = draw(st.sampled_from(["stream", "random"]))
    size = draw(st.integers(2, 10))
    if kind == "stream":
        iters = draw(st.integers(1, 3))
        return StreamWorkload(size_mb=size, iterations=iters)
    waves = draw(st.integers(1, 10))
    seed = draw(st.integers(0, 100))
    return RandomWorkload(size_mb=size, n_waves=waves, seed=seed)


@given(workloads(), st.integers(0, 1000))
@settings(max_examples=25, deadline=None)
def test_save_load_roundtrip_is_lossless(workload, seed):
    import tempfile, pathlib
    data = record_trace(workload, seed=seed)
    with tempfile.TemporaryDirectory() as d:
        path = save_trace(data, pathlib.Path(d) / "t.npz")
        loaded = load_trace(path)
    assert loaded.alloc_names == data.alloc_names
    assert np.array_equal(loaded.alloc_sizes, data.alloc_sizes)
    assert np.array_equal(loaded.pages, data.pages)
    assert np.array_equal(loaded.is_write, data.is_write)
    assert np.array_equal(loaded.counts, data.counts)
    assert np.array_equal(loaded.wave_offsets, data.wave_offsets)
    assert loaded.kernel_names == data.kernel_names


@given(workloads(), st.integers(0, 50),
       st.sampled_from(list(MigrationPolicy)))
@settings(max_examples=20, deadline=None)
def test_replay_is_bit_identical(workload, seed, policy):
    cfg = SimulationConfig(seed=seed).with_policy(policy)
    cfg = cfg.with_device_capacity(4 * MB)
    direct = Simulator(cfg).run(workload)
    data = record_trace(workload, seed=seed)
    replay = Simulator(cfg).run(TraceWorkload(data))
    assert replay.total_cycles == direct.total_cycles
    assert replay.events == direct.events
