"""Bit-identity guarantees of the streaming telemetry plane.

The live plane's contract extends the serving layer's purity contract:

* attaching telemetry (SLO engine, alert rules, windowed aggregators)
  must not perturb the simulation -- every simulated quantity in the
  result is bit-identical to an uninstrumented run;
* with ``live_admission`` off (the default) the degradation ladder
  never consults live signals, so the whole serve result matches the
  pre-telemetry behaviour on both kernel backends;
* with ``live_admission`` on, runs are still pure functions of the
  config: repeats and backends agree bit-for-bit, including the alert
  transcript.
"""

import json

import pytest

import repro.accel as accel
from repro.config import ServeConfig, SimulationConfig
from repro.obs import Observability, RingBufferSink
from repro.obs.live import AlertRule, SloConfig
from repro.serve import ServeSession

#: Hot enough that windows fill, tenants queue, and the SLO budget
#: burns -- telemetry with nothing to report would test nothing.
BASE = dict(tenants=8, arrival_rate=2000.0, capacity_mb=24,
            queue_depth=2, throttle_watermark=1.0, admit_watermark=1.6,
            shed_watermark=2.0)

SLO = SloConfig(p99_latency_us=300.0, latency_attainment=0.95,
                max_shed_rate=0.1, min_throughput=1e5)

#: Result keys produced by the telemetry plane itself; everything else
#: must be bit-identical with telemetry on or off.
TELEMETRY_KEYS = ("slo_violations", "alerts_fired")


def run_dict(seed, backend="python", live=False, slo=None, obs=None,
             threshold=0.05):
    cfg = ServeConfig(seed=seed, live_admission=live,
                      live_thrash_threshold=threshold, **BASE)
    sim = SimulationConfig(backend=backend)
    return ServeSession(cfg, sim_config=sim, obs=obs, slo=slo).run().as_dict()


def core(d):
    """The simulated portion of a result dict (telemetry rollups cut)."""
    return {k: v for k, v in d.items() if k not in TELEMETRY_KEYS}


class TestTelemetryOffIsInvisible:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_slo_engine_does_not_perturb_the_simulation(self, seed):
        bare = run_dict(seed)
        obs = Observability()
        obs.bus.attach(RingBufferSink(capacity=4096))
        with_slo = run_dict(seed, slo=SLO, obs=obs)
        assert core(bare) == core(with_slo)
        assert json.dumps(core(bare), sort_keys=True) == \
            json.dumps(core(with_slo), sort_keys=True)
        # ... and the telemetry plane did actually observe something.
        kinds = {type(ev).__name__ for ev in obs.bus.sinks[0].events}
        assert "TelemetryWindow" in kinds

    @pytest.mark.parametrize("backend", ["python", "numba"])
    def test_live_admission_off_is_bit_identical(self, backend,
                                                 monkeypatch):
        """The flag default (off) reproduces the pre-telemetry path."""
        monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
        baseline = run_dict(3, backend=backend)
        off = run_dict(3, backend=backend, live=False, slo=SLO)
        assert core(baseline) == core(off)

    def test_alert_rules_alone_do_not_perturb(self):
        rules = (AlertRule("oversub", "serve.live_oversubscription",
                           ">=", 1.0),)
        cfg = ServeConfig(seed=2, **BASE)
        bare = ServeSession(cfg).run().as_dict()
        wired = ServeSession(cfg, alert_rules=rules).run().as_dict()
        assert core(bare) == core(wired)


class TestLiveAdmissionDeterminism:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_live_repeats_are_bit_identical(self, seed):
        a = run_dict(seed, live=True, slo=SLO)
        b = run_dict(seed, live=True, slo=SLO)
        assert a == b
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_live_backend_invariant(self, monkeypatch):
        """Live admission decisions agree across kernel backends."""
        monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
        py = run_dict(1, backend="python", live=True, slo=SLO)
        nb = run_dict(1, backend="numba", live=True, slo=SLO)
        py.pop("backend"), nb.pop("backend")
        assert py == nb

    def test_transcripts_are_backend_invariant(self, monkeypatch):
        """The ordered alert/SLO event stream matches across backends."""
        monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)

        def transcript(backend):
            obs = Observability()
            ring = RingBufferSink(capacity=8192)
            obs.bus.attach(ring)
            run_dict(1, backend=backend, live=True, slo=SLO, obs=obs)
            return [ev.as_dict() for ev in ring.events
                    if ev.kind in ("alert_fired", "slo_violation",
                                   "slo_attainment", "telemetry_window")]

        py, nb = transcript("python"), transcript("numba")
        assert py == nb
        assert any(ev["event"] == "slo_violation" for ev in py)

    def test_live_admission_can_change_the_schedule(self):
        """Sanity: the flag is actually consulted (not dead code)."""
        off = run_dict(1, live=False, slo=SLO)
        on = run_dict(1, live=True, slo=SLO, threshold=0.01)
        assert off != on
