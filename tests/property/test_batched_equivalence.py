"""Batched-vs-scalar equivalence: the tentpole's correctness contract.

The driver's batched migration drain and the tree's bulk
``install_leaves`` are pure performance rewrites of the seed's scalar
paths, which are kept in-tree as references
(``UvmDriver.batched_migrations`` and ``PrefetchTree.mark_resident``).
These properties pin the contract: identical :class:`WaveOutcome`
totals, identical driver state, and clean ``check_consistency()`` under
randomized traffic, for every policy.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.config import MigrationPolicy
from repro.uvm.tree import PrefetchTree

from tests.conftest import make_driver, make_vas

policies = st.sampled_from(list(MigrationPolicy))


@st.composite
def traffic(draw):
    seed = draw(st.integers(0, 2**16))
    n_waves = draw(st.integers(1, 10))
    wave_size = draw(st.integers(1, 250))
    return seed, n_waves, wave_size


def _drivers(policy):
    """One batched and one scalar-reference driver, same configuration."""
    pair = []
    for batched in (True, False):
        drv = make_driver(make_vas(4, 8), policy, capacity_mb=6)
        drv.batched_migrations = batched
        pair.append(drv)
    return pair


@given(policies, traffic())
@settings(max_examples=50, deadline=None)
def test_batched_drain_matches_scalar_reference(policy, t):
    seed, n_waves, wave_size = t
    rng = np.random.default_rng(seed)
    batched, scalar = _drivers(policy)
    alloc_pages = np.concatenate([
        np.arange(a.first_page, a.last_page)
        for a in batched.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=wave_size)
        writes = rng.random(wave_size) < 0.4
        counts = rng.integers(1, 50, size=wave_size)
        out_b = batched.process_wave(pages, writes, counts)
        out_s = scalar.process_wave(pages.copy(), writes.copy(),
                                    counts.copy())
        assert dataclasses.asdict(out_b) == dataclasses.asdict(out_s)
    # Beyond per-wave totals, the full driver state must agree: any
    # divergence here would split future waves apart.
    assert np.array_equal(batched.residency.resident,
                          scalar.residency.resident)
    assert np.array_equal(batched.residency.dirty, scalar.residency.dirty)
    assert np.array_equal(batched.counters.counts, scalar.counters.counts)
    assert np.array_equal(batched.counters.roundtrips,
                          scalar.counters.roundtrips)
    assert np.array_equal(batched.directory.last_touch,
                          scalar.directory.last_touch)
    batched.check_consistency()
    scalar.check_consistency()


leaf_counts = st.sampled_from([1, 2, 4, 8, 16, 32])


@st.composite
def leaf_batches(draw):
    n = draw(leaf_counts)
    pre = draw(st.sets(st.integers(0, n - 1)))
    batch = draw(st.sets(st.integers(0, n - 1)))
    return n, sorted(pre), sorted(batch - set(pre))


@given(leaf_batches())
@settings(max_examples=200, deadline=None)
def test_install_leaves_matches_scalar_marks(case):
    n, pre, batch = case
    bulk, ref = PrefetchTree(n), PrefetchTree(n)
    for leaf in pre:
        bulk.mark_resident(leaf)
        ref.mark_resident(leaf)
    bulk.install_leaves(np.array(batch, dtype=np.int64))
    for leaf in batch:
        ref.mark_resident(leaf)
    assert bulk.occupancy == ref.occupancy
    assert np.array_equal(bulk.resident_leaves(), ref.resident_leaves())
    bulk.check_invariants()
    ref.check_invariants()
    # And bulk removal is the inverse, matching scalar remove().
    if batch:
        bulk.remove_leaves(np.array(batch, dtype=np.int64))
        for leaf in batch:
            ref.remove(leaf)
        assert np.array_equal(bulk.resident_leaves(), ref.resident_leaves())
        bulk.check_invariants()
        ref.check_invariants()
