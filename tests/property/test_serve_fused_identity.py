"""Fused wave batching + fair scheduling: this tentpole's contracts.

Three guarantees pin the serve-path rework:

* **Batching is a pure perf hint.**  ``serve.batch_waves`` fuses each
  multi-tenant scheduler slot into one
  :meth:`~repro.uvm.driver.UvmDriver.process_wave_batch` dispatch, and
  the result -- per-wave outcomes, final driver state, emitted events,
  every simulated quantity -- is bit-identical to sequential execution,
  across schedulers, policies, fault injection, and both kernel
  backends (the numba backend runs through its interpreted fallback, so
  the loop kernels are exercised without numba installed).
* **The legacy path is untouched.**  ``scheduler=round_robin`` without
  batching replays the pre-scheduler serving layer byte-for-byte; the
  golden fixtures under ``tests/data/serve_golden/`` were generated
  from the pre-rework code and every shared key must still match.
* **DRR is deficit-bounded.**  The deficit round-robin scheduler never
  banks a carried deficit outside ``[0, 1)`` and never starves a
  runnable tenant, for any weight vector and throttle pattern.
"""

import dataclasses
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.accel as accel
from repro.config import MB, MigrationPolicy, ServeConfig, SimulationConfig
from repro.obs import Observability, RingBufferSink
from repro.serve import ServeSession
from repro.serve.scheduler import DeficitRoundRobinScheduler
from repro.uvm.driver import UvmDriver

from tests.conftest import make_vas

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "data" / "serve_golden"

#: Small but non-trivial: overlapping tenants, queueing, throttling.
BASE = dict(tenants=5, arrival_rate=1500.0, capacity_mb=24,
            queue_depth=2, throttle_watermark=1.1, admit_watermark=1.6,
            shed_watermark=2.0)

#: Result keys the batch path legitimately changes: the dispatch
#: counters themselves, and the config echo (it carries the flag).
BATCH_KEYS = ("batches", "batch_occupancy", "config")


def serve_dict(seed, backend="python", sim=None, obs=None, **kw):
    cfg = ServeConfig(seed=seed, **BASE, **kw)
    if sim is None:
        sim = SimulationConfig(backend=backend)
    return ServeSession(cfg, sim_config=sim, obs=obs).run().as_dict()


def core(d):
    """The simulated portion of a result dict: batch bookkeeping cut
    (per-tenant ``batched_waves`` included -- it counts dispatch shape,
    not simulation outcome)."""
    out = {k: v for k, v in d.items() if k not in BATCH_KEYS}
    out["tenants"] = [{k: v for k, v in t.items() if k != "batched_waves"}
                      for t in d["tenants"]]
    return out


def golden_configs():
    for path in sorted(GOLDEN_DIR.glob("*.json")):
        yield pytest.param(path, id=path.stem)


# ---------------------------------------------------------------------------
# round_robin == pre-rework golden output, byte for byte
# ---------------------------------------------------------------------------

class TestGoldenRoundRobin:
    @pytest.mark.parametrize("path", golden_configs())
    def test_matches_pre_rework_output(self, path):
        """Every key the pre-rework serving layer produced still holds
        the exact same value (new keys are additive)."""
        golden = json.loads(path.read_text())
        kwargs = dict(golden["config"])
        for key in ("workload_mix", "weights"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        got = ServeSession(ServeConfig(**kwargs)).run().as_dict()
        for key, value in golden.items():
            if key == "tenants":
                assert len(value) == len(got["tenants"])
                for want, have in zip(value, got["tenants"]):
                    for tk, tv in want.items():
                        assert have[tk] == tv, (path.stem, want["tenant"], tk)
            elif key == "config":
                for ck, cv in value.items():
                    assert got["config"][ck] == cv, (path.stem, ck)
            else:
                assert got[key] == value, (path.stem, key)

    def test_goldens_cover_distinct_regimes(self):
        fixtures = list(GOLDEN_DIR.glob("*.json"))
        assert len(fixtures) >= 5


# ---------------------------------------------------------------------------
# fused batching == sequential execution (session level)
# ---------------------------------------------------------------------------

class TestFusedSessionIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 3])
    @pytest.mark.parametrize("scheduler", ["round_robin", "drr"])
    def test_batched_equals_sequential(self, seed, scheduler):
        seq = core(serve_dict(seed, scheduler=scheduler, batch_waves=False))
        fused = core(serve_dict(seed, scheduler=scheduler, batch_waves=True))
        assert seq == fused
        assert json.dumps(seq, sort_keys=True) == \
            json.dumps(fused, sort_keys=True)

    def test_batched_equals_sequential_with_weights(self):
        kw = dict(scheduler="drr", weights=(3.0, 1.0, 2.0),
                  throttle_decay=0.5)
        assert core(serve_dict(2, batch_waves=False, **kw)) == \
            core(serve_dict(2, batch_waves=True, **kw))

    def test_batched_equals_sequential_under_faults(self):
        """Injected migration/transfer faults draw RNG only for
        migration candidates, so the fused prefix commit must not
        perturb the fault stream."""
        sim = SimulationConfig().with_faults(transfer_fault_rate=0.2,
                                             migration_fault_rate=0.2)
        seq = core(serve_dict(1, sim=sim, scheduler="drr",
                              batch_waves=False))
        fused = core(serve_dict(1, sim=sim, scheduler="drr",
                                batch_waves=True))
        assert seq == fused

    def test_batched_equals_sequential_across_backends(self, monkeypatch):
        monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
        seq = core(serve_dict(1, backend="python", scheduler="drr",
                              batch_waves=False))
        fused = core(serve_dict(1, backend="numba", scheduler="drr",
                                batch_waves=True))
        seq.pop("backend"), fused.pop("backend")
        assert seq == fused

    def test_event_streams_match(self):
        """Driver + tenant event streams are identical fused vs
        sequential (TenantSched's batched_waves field aside -- it
        reports the dispatch shape by design)."""
        def events(batch):
            obs = Observability()
            ring = RingBufferSink(capacity=65536)
            obs.bus.attach(ring)
            serve_dict(0, scheduler="drr", batch_waves=batch, obs=obs)
            rows = []
            for ev in ring.events:
                row = ev.as_dict()
                if row["event"] == "tenant_sched":
                    row.pop("batched_waves")
                rows.append(row)
            return rows

        assert events(False) == events(True)

    def test_batching_actually_fuses(self):
        """Guards against the identity tests passing vacuously."""
        result = ServeSession(ServeConfig(
            seed=0, scheduler="drr", batch_waves=True, **BASE)).run()
        assert result.batches > 0
        assert result.batch_occupancy > 1.0
        assert any(t.batched_waves > 0 for t in result.tenants)

    def test_rr_batched_still_matches_golden(self):
        """round_robin plans singleton groups, so even with batching on
        the output must equal the pre-rework golden fixture."""
        golden = json.loads((GOLDEN_DIR / "base_seed0.json").read_text())
        kwargs = dict(golden["config"])
        kwargs["workload_mix"] = tuple(kwargs["workload_mix"])
        kwargs["weights"] = tuple(kwargs.get("weights", ()))
        kwargs["batch_waves"] = True
        got = ServeSession(ServeConfig(**kwargs)).run().as_dict()
        assert got["batches"] == 0  # nothing multi-tenant to fuse
        for key in ("duration_us", "total_waves", "total_accesses",
                    "completed", "decisions"):
            assert got[key] == golden[key]


# ---------------------------------------------------------------------------
# fused batching == sequential execution (driver level)
# ---------------------------------------------------------------------------

def _tenant_driver(policy=MigrationPolicy.ADAPTIVE, capacity_mb=4,
                   fault_rates=None):
    cfg = (SimulationConfig()
           .with_policy(policy, static_threshold=8, migration_penalty=8)
           .with_device_capacity(int(capacity_mb * MB)))
    if fault_rates is not None:
        cfg = cfg.with_faults(transfer_fault_rate=fault_rates[0],
                              migration_fault_rate=fault_rates[1])
    # Three disjoint allocations stand in for three tenant namespaces.
    return UvmDriver(make_vas(2, 2, 2), cfg)


def _tenant_waves(driver, rng, wave_size):
    """One wave per pseudo-tenant, each inside its own allocation."""
    waves = []
    for alloc in driver.vas.allocations:
        pages = np.sort(rng.integers(alloc.first_page, alloc.last_page,
                                     size=wave_size))
        writes = rng.random(wave_size) < 0.4
        counts = rng.integers(1, 50, size=wave_size)
        waves.append((pages, writes, counts))
    return waves


def _assert_same_state(a: UvmDriver, b: UvmDriver) -> None:
    assert np.array_equal(a.residency.resident, b.residency.resident)
    assert np.array_equal(a.residency.dirty, b.residency.dirty)
    assert np.array_equal(a.counters.counts, b.counters.counts)
    assert np.array_equal(a.counters.volta_counts, b.counters.volta_counts)
    assert np.array_equal(a.counters.roundtrips, b.counters.roundtrips)
    assert np.array_equal(a.directory.last_touch, b.directory.last_touch)
    assert dataclasses.asdict(a.stats.totals) == \
        dataclasses.asdict(b.stats.totals)
    a.check_consistency()
    b.check_consistency()


class TestDriverBatchIdentity:
    @given(seed=st.integers(0, 2**16), rounds=st.integers(1, 6),
           wave_size=st.integers(1, 120),
           capacity_mb=st.sampled_from([2, 8]))
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_sequential_loop(self, seed, rounds, wave_size,
                                          capacity_mb):
        seq = _tenant_driver(capacity_mb=capacity_mb)
        bat = _tenant_driver(capacity_mb=capacity_mb)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        for _ in range(rounds):
            waves_a = _tenant_waves(seq, rng_a, wave_size)
            waves_b = _tenant_waves(bat, rng_b, wave_size)
            outs_a = [seq.process_wave(*w) for w in waves_a]
            outs_b = bat.process_wave_batch(waves_b)
            assert [dataclasses.asdict(o) for o in outs_a] == \
                [dataclasses.asdict(o) for o in outs_b]
        _assert_same_state(seq, bat)

    @given(seed=st.integers(0, 2**12),
           transfer=st.floats(0.05, 0.5), migration=st.floats(0.05, 0.5))
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_sequential_under_faults(self, seed, transfer,
                                                  migration):
        rates = (transfer, migration)
        seq = _tenant_driver(fault_rates=rates, capacity_mb=2)
        bat = _tenant_driver(fault_rates=rates, capacity_mb=2)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        for _ in range(4):
            waves_a = _tenant_waves(seq, rng_a, 80)
            waves_b = _tenant_waves(bat, rng_b, 80)
            outs_a = [seq.process_wave(*w) for w in waves_a]
            outs_b = bat.process_wave_batch(waves_b)
            assert [dataclasses.asdict(o) for o in outs_a] == \
                [dataclasses.asdict(o) for o in outs_b]
        _assert_same_state(seq, bat)

    @pytest.mark.parametrize("policy", list(MigrationPolicy))
    def test_batch_equals_sequential_every_policy(self, policy):
        seq = _tenant_driver(policy=policy)
        bat = _tenant_driver(policy=policy)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        for _ in range(6):
            waves_a = _tenant_waves(seq, rng_a, 100)
            waves_b = _tenant_waves(bat, rng_b, 100)
            outs_a = [seq.process_wave(*w) for w in waves_a]
            outs_b = bat.process_wave_batch(waves_b)
            assert [dataclasses.asdict(o) for o in outs_a] == \
                [dataclasses.asdict(o) for o in outs_b]
        _assert_same_state(seq, bat)

    def test_empty_and_overlapping_segments_fall_back(self):
        """Empty waves and non-disjoint waves break fused runs but must
        still resolve identically through the sequential fallback."""
        seq = _tenant_driver()
        bat = _tenant_driver()
        rng = np.random.default_rng(3)
        a0, a1, _ = seq.vas.allocations
        empty = np.empty(0, dtype=np.int64)
        overlap = np.sort(rng.integers(a0.first_page, a1.last_page, 40))
        waves = [
            (np.sort(rng.integers(a0.first_page, a0.last_page, 40)),
             np.zeros(40, dtype=bool), np.ones(40, dtype=np.int64)),
            (empty, np.empty(0, dtype=bool), empty.copy()),
            (overlap, np.ones(40, dtype=bool),
             rng.integers(1, 9, size=40)),
            (np.sort(rng.integers(a1.first_page, a1.last_page, 40)),
             np.zeros(40, dtype=bool), np.ones(40, dtype=np.int64)),
        ]
        outs_a = [seq.process_wave(p.copy(), w.copy(), c.copy())
                  for p, w, c in waves]
        outs_b = bat.process_wave_batch(waves)
        assert [dataclasses.asdict(o) for o in outs_a] == \
            [dataclasses.asdict(o) for o in outs_b]
        _assert_same_state(seq, bat)


# ---------------------------------------------------------------------------
# DRR fairness invariants
# ---------------------------------------------------------------------------

class _StubTenant:
    def __init__(self, tid, throttle_left=0):
        self.id = tid
        self.throttle_left = throttle_left
        self.complete_us = None


class TestDeficitInvariants:
    @given(seed=st.integers(0, 2**16),
           n_tenants=st.integers(1, 12),
           quantum=st.integers(1, 8),
           weights=st.lists(st.floats(0.1, 8.0), max_size=5),
           decay=st.floats(0.05, 1.0),
           rounds=st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_deficit_always_in_unit_interval(self, seed, n_tenants,
                                             quantum, weights, decay,
                                             rounds):
        cfg = ServeConfig(scheduler="drr", weights=tuple(weights),
                          throttle_decay=decay, quantum=quantum)
        sched = DeficitRoundRobinScheduler(cfg)
        rng = np.random.default_rng(seed)
        tenants = [_StubTenant(i) for i in range(n_tenants)]
        planned = {t.id: 0 for t in tenants}
        for _ in range(rounds):
            for t in tenants:  # random throttle pattern
                t.throttle_left = int(rng.integers(0, 3))
            for group in sched.plan_round(tenants):
                for tenant, n in group:
                    assert n >= 1
                    planned[tenant.id] += n
            for t in tenants:
                assert 0.0 <= sched.deficit_of(t.id) < 1.0
        # Progress: accrual is strictly positive, so over enough rounds
        # every tenant gets planned at least floor(accrued) waves.
        for t in tenants:
            accrued = sum(
                sched.weight_of(t.id) * quantum for _ in range(rounds))
            assert planned[t.id] >= int(accrued * (decay if decay < 1
                                                   else 1.0)) - rounds

    def test_weighted_share_converges(self):
        """Over many rounds, planned waves split ~ weight share."""
        cfg = ServeConfig(scheduler="drr", weights=(3.0, 1.0), quantum=1)
        sched = DeficitRoundRobinScheduler(cfg)
        tenants = [_StubTenant(0), _StubTenant(1)]
        planned = {0: 0, 1: 0}
        for _ in range(200):
            for group in sched.plan_round(tenants):
                for tenant, n in group:
                    planned[tenant.id] += n
        assert planned[0] == pytest.approx(3 * planned[1], abs=2)

    def test_throttle_decays_instead_of_suspending(self):
        cfg = ServeConfig(scheduler="drr", throttle_decay=0.5, quantum=2)
        sched = DeficitRoundRobinScheduler(cfg)
        throttled = _StubTenant(0, throttle_left=1)
        free = _StubTenant(1)
        planned = {0: 0, 1: 0}
        for _ in range(50):
            for group in sched.plan_round([throttled, free]):
                for tenant, n in group:
                    planned[tenant.id] += n
        assert 0 < planned[0] < planned[1]
        assert planned[0] == pytest.approx(planned[1] / 2, abs=2)
