"""Bit-identity of config-driven experiments vs. flag-driven ones.

The scenario compiler's contract: a YAML scenario that sets a knob
builds *the same* :class:`GridCell` (same dataclass value, same
``cell_key``) as the hand-built cell, and a scenario that omits a knob
leaves the cell at its default.  Because ``run_cell`` is a pure
function of the cell, equality of cells gives bit-identical results --
including through checkpoint journals, which key on ``cell_key``.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.checkpoint import cell_key, encode_result
from repro.analysis.parallel import GridCell, GridOptions, run_cell, run_grid
from repro.analysis.sweeps import oversubscription_sweep
from repro.config import MigrationPolicy
from repro.scenario import build_cell, expand, load_directory

yaml = pytest.importorskip("yaml")

POLICIES = ["disabled", "always", "oversub", "adaptive"]


@st.composite
def scenario_and_cell(draw):
    """A scenario dict and the GridCell its knobs describe, built by hand.

    Each knob is included with 50% probability, so the omitted-key
    default path is exercised as heavily as the explicit one.
    """
    data = {"name": "s", "workload": draw(st.sampled_from(["ra", "bfs"]))}
    kwargs = {"workload": data["workload"],
              "policy": MigrationPolicy.ADAPTIVE,
              "oversubscription": 1.25}

    def maybe(section, key, cell_field, value):
        if draw(st.booleans()):
            if section:
                data.setdefault(section, {})[key] = value
            else:
                data[key] = value
            kwargs[cell_field] = value

    maybe(None, "scale", "scale", draw(st.sampled_from(["tiny", "small"])))
    maybe(None, "oversubscription", "oversubscription",
          draw(st.sampled_from([0.8, 1.1, 1.25, 1.5])))
    maybe(None, "seed", "seed", draw(st.integers(0, 3)))
    policy = draw(st.sampled_from(POLICIES))
    if draw(st.booleans()):
        data.setdefault("policy", {})["variant"] = policy
        kwargs["policy"] = MigrationPolicy(policy)
    maybe("policy", "static_threshold", "ts",
          draw(st.sampled_from([8, 16, 32])))
    maybe("policy", "migration_penalty", "p",
          draw(st.sampled_from([2, 4, 8])))
    maybe("policy", "threshold_variant", "threshold_variant",
          draw(st.sampled_from(["multiplicative", "linear"])))
    maybe("policy", "historic_counters", "historic_counters",
          draw(st.booleans()))
    maybe("memory", "eviction", "evict", draw(st.sampled_from(["2mb",
                                                               "64kb"])))
    maybe("memory", "prefetcher", "prefetcher",
          draw(st.sampled_from(["tree", "none", "sequential"])))
    maybe("memory", "prefetch_degree", "prefetch_degree",
          draw(st.sampled_from([2, 4])))
    maybe("faults", "transfer_rate", "transfer_fault_rate",
          draw(st.sampled_from([0.0, 0.01, 0.05])))
    maybe("faults", "max_retries", "fault_retries",
          draw(st.integers(1, 4)))
    maybe("faults", "burst_on", "fault_burst_on",
          draw(st.sampled_from([0.0, 0.05])))
    expected = GridCell(**kwargs)
    return data, expected


class TestCellEquivalence:
    @given(scenario_and_cell())
    @settings(max_examples=200, deadline=None)
    def test_config_cell_equals_hand_built(self, pair):
        data, expected = pair
        cell = build_cell(data)
        assert cell == expected
        assert cell_key(cell) == cell_key(expected)

    @given(scenario_and_cell())
    @settings(max_examples=50, deadline=None)
    def test_yaml_round_trip_preserves_the_cell(self, pair):
        data, expected = pair
        round_tripped = yaml.safe_load(yaml.safe_dump(data))
        assert build_cell(round_tripped) == expected


class TestSweepEquivalence:
    """A config sweep enumerates the oversubscription_sweep cell order."""

    LEVELS = (1.1, 1.25)
    POLS = (MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE)

    def config_cells(self):
        scenario = {
            "name": "curve", "mode": "sweep", "workload": "ra",
            "scale": "tiny",
            "sweep": {
                "policy.variant": [p.value for p in self.POLS],
                "oversubscription": list(self.LEVELS),
            },
        }
        return [build_cell(v.data) for v in expand(scenario)]

    def hand_cells(self):
        return [GridCell("ra", pol, level, "tiny")
                for pol in self.POLS for level in self.LEVELS]

    def test_cells_identical_in_value_and_order(self):
        assert self.config_cells() == self.hand_cells()

    def test_results_bit_identical_to_sweep_helper(self):
        sweep = oversubscription_sweep("ra", policies=self.POLS,
                                       levels=self.LEVELS, scale="tiny")
        flag_results = [r for pol in self.POLS
                        for r in sweep.runs[pol.value]]
        config_results = run_grid(self.config_cells())
        assert ([encode_result(r) for r in config_results]
                == [encode_result(r) for r in flag_results])

    def test_checkpoint_resume_across_routes(self, tmp_path):
        """A journal written by the flag route resumes the config route."""
        journal = tmp_path / "grid.jsonl"
        first = run_grid(self.hand_cells(),
                         options=GridOptions(checkpoint=str(journal)))
        resumed = run_grid(self.config_cells(),
                           options=GridOptions(checkpoint=str(journal),
                                               resume=True))
        assert ([encode_result(r) for r in resumed]
                == [encode_result(r) for r in first])
        # Nothing was re-simulated: the journal did not grow.
        lines = journal.read_text().strip().splitlines()
        assert len(lines) == len(self.hand_cells())


class TestDirectoryEquivalence:
    """config-dir execution ≡ hand-built cells through run_grid."""

    def test_directory_grid_matches_hand_built(self, tmp_path):
        (tmp_path / "_base.yaml").write_text(
            "scale: tiny\nworkload: ra\n")
        (tmp_path / "curve.yaml").write_text(
            "inherits: _base\nmode: sweep\n"
            "sweep:\n  oversubscription: [1.1, 1.25]\n")
        (scenario,) = load_directory(tmp_path)
        cells = [build_cell(v.data) for v in expand(scenario)]
        expected = [GridCell("ra", MigrationPolicy.ADAPTIVE, level, "tiny")
                    for level in (1.1, 1.25)]
        assert cells == expected
        assert ([encode_result(run_cell(c)) for c in cells]
                == [encode_result(run_cell(c)) for c in expected])
