"""Property-based tests for the tree prefetcher."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.uvm.tree import PrefetchTree

leaf_counts = st.sampled_from([1, 2, 4, 8, 16, 32])


@st.composite
def tree_and_faults(draw):
    n = draw(leaf_counts)
    order = draw(st.permutations(range(n)))
    prefix = draw(st.integers(min_value=1, max_value=n))
    return n, list(order)[:prefix]


@given(tree_and_faults())
@settings(max_examples=200, deadline=None)
def test_occupancy_invariant_holds_under_any_fault_order(case):
    n, faults = case
    tree = PrefetchTree(n)
    for leaf in faults:
        if not tree.is_resident(leaf):
            tree.on_fault(leaf)
        tree.check_invariants()


@given(tree_and_faults())
@settings(max_examples=200, deadline=None)
def test_prefetch_never_exceeds_chunk_and_never_duplicates(case):
    n, faults = case
    tree = PrefetchTree(n)
    installed = set()
    for leaf in faults:
        if leaf in installed:
            continue
        pf = tree.on_fault(leaf)
        assert leaf not in pf
        for p in pf:
            assert 0 <= p < n
            assert p not in installed, "prefetched an already-resident leaf"
            installed.add(int(p))
        installed.add(leaf)
    assert set(tree.resident_leaves().tolist()) == installed
    assert tree.occupancy == len(installed)


@given(tree_and_faults())
@settings(max_examples=100, deadline=None)
def test_all_leaves_resident_after_touching_all(case):
    n, _ = case
    tree = PrefetchTree(n)
    for leaf in range(n):
        if not tree.is_resident(leaf):
            tree.on_fault(leaf)
    assert tree.occupancy == n


@given(tree_and_faults())
@settings(max_examples=100, deadline=None)
def test_clear_is_total(case):
    n, faults = case
    tree = PrefetchTree(n)
    for leaf in faults:
        if not tree.is_resident(leaf):
            tree.on_fault(leaf)
    tree.clear()
    assert tree.occupancy == 0
    assert not any(tree.is_resident(l) for l in range(n))


@given(st.integers(min_value=1, max_value=5))
@settings(max_examples=20, deadline=None)
def test_balancing_rule_never_leaves_node_above_half_unbalanced(levels):
    """After any fault, every strict-majority node is fully populated."""
    n = 1 << levels
    tree = PrefetchTree(n)
    rng = np.random.default_rng(levels)
    for leaf in rng.permutation(n):
        if tree.is_resident(int(leaf)):
            continue
        tree.on_fault(int(leaf))
        # Brute-force every aligned power-of-two leaf window (= every
        # tree node): occupancy strictly above 50% implies the
        # prefetcher balanced the node to full.
        res = np.array([tree.is_resident(i) for i in range(n)])
        span = 2
        while span <= n:
            for start in range(0, n, span):
                window = res[start:start + span]
                occ = window.sum()
                if 2 * occ > span:
                    assert occ == span, (
                        f"node [{start},{start+span}) at {occ}/{span} "
                        "should have been balanced full")
            span *= 2
