"""Backend and sharding equivalence: this tentpole's contracts.

The compiled backend (``SimulationConfig.backend``) and decision-phase
sharding (``SimulationConfig.shards``) are pure performance rewrites:
swapping kernel namespaces or shard counts must be undetectable in
per-wave outcomes and final driver state.  These properties pin both,
mirroring ``test_fastpath_equivalence.py`` for the fast-path rewrite.

The ``numba`` backend is exercised through its interpreted fallback
(:data:`repro.accel.FORCE_INTERPRETED`), so the loop kernels run -- and
must match the numpy reference bit-for-bit -- even on machines without
numba installed.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.accel as accel
from repro.analysis.checkpoint import encode_result
from repro.config import (
    MigrationPolicy,
    ReplacementPolicy,
    SimulationConfig,
)
from repro.memory.layout import MB
from repro.sim.simulator import Simulator
from repro.uvm.driver import UvmDriver
from repro.workloads import ALL_WORKLOADS, EXTENDED_WORKLOADS, make_workload

from tests.conftest import make_vas

policies = st.sampled_from(list(MigrationPolicy))


@pytest.fixture(autouse=True)
def interpreted_numba(monkeypatch):
    """Resolve the numba backend to interpreted loop kernels."""
    monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)


@st.composite
def traffic(draw):
    seed = draw(st.integers(0, 2**16))
    n_waves = draw(st.integers(1, 8))
    wave_size = draw(st.integers(1, 200))
    # Generous capacity keeps waves all-resident after warm-up; tight
    # capacity interleaves eviction-pressure waves.
    capacity_mb = draw(st.sampled_from([6, 64]))
    return seed, n_waves, wave_size, capacity_mb


def _make_driver(backend: str, policy: MigrationPolicy,
                 capacity_mb: float, *, shards: int = 1,
                 replacement: ReplacementPolicy | None = None,
                 fault_rates: tuple[float, float] | None = None,
                 fast_path: bool = True) -> UvmDriver:
    cfg = (SimulationConfig(backend=backend, shards=shards)
           .with_policy(policy, static_threshold=8, migration_penalty=8)
           .with_device_capacity(int(capacity_mb * MB)))
    if replacement is not None:
        cfg = dataclasses.replace(
            cfg, memory=dataclasses.replace(cfg.memory,
                                            replacement=replacement))
    if fault_rates is not None:
        cfg = cfg.with_faults(transfer_fault_rate=fault_rates[0],
                              migration_fault_rate=fault_rates[1])
    drv = UvmDriver(make_vas(4, 8), cfg)
    drv.resident_fast_path = fast_path
    return drv


def _assert_same_state(a: UvmDriver, b: UvmDriver) -> None:
    assert np.array_equal(a.residency.resident, b.residency.resident)
    assert np.array_equal(a.residency.dirty, b.residency.dirty)
    assert np.array_equal(a.counters.counts, b.counters.counts)
    assert np.array_equal(a.counters.volta_counts, b.counters.volta_counts)
    assert np.array_equal(a.counters.roundtrips, b.counters.roundtrips)
    assert np.array_equal(a.directory.last_touch, b.directory.last_touch)
    a.check_consistency()
    b.check_consistency()


def _run_pair(a: UvmDriver, b: UvmDriver, seed: int, n_waves: int,
              wave_size: int) -> None:
    """Drive both with identical traffic; outcomes must match per wave."""
    rng = np.random.default_rng(seed)
    alloc_pages = np.concatenate([
        np.arange(al.first_page, al.last_page)
        for al in a.vas.allocations])
    for _ in range(n_waves):
        pages = rng.choice(alloc_pages, size=wave_size)
        writes = rng.random(wave_size) < 0.4
        counts = rng.integers(1, 50, size=wave_size)
        out_a = a.process_wave(pages, writes, counts)
        out_b = b.process_wave(pages.copy(), writes.copy(), counts.copy())
        assert dataclasses.asdict(out_a) == dataclasses.asdict(out_b)
    _assert_same_state(a, b)


def _normalized(result) -> dict:
    """Run result minus config (backend/shards are perf hints, and the
    configs of a compared pair intentionally differ in them)."""
    enc = encode_result(result)
    enc.pop("config")
    return enc


# ---------------------------------------------------------------------------
# backend equivalence (python vs numba loop kernels)
# ---------------------------------------------------------------------------

@given(policies, traffic())
@settings(max_examples=25, deadline=None)
def test_backends_match_across_policies(policy, t):
    seed, n_waves, wave_size, capacity_mb = t
    _run_pair(_make_driver("python", policy, capacity_mb),
              _make_driver("numba", policy, capacity_mb),
              seed, n_waves, wave_size)


@given(traffic(), st.floats(0.05, 0.5), st.floats(0.05, 0.5))
@settings(max_examples=15, deadline=None)
def test_backends_match_under_fault_injection(t, transfer_rate,
                                              migration_rate):
    seed, n_waves, wave_size, capacity_mb = t
    rates = (transfer_rate, migration_rate)
    _run_pair(
        _make_driver("python", MigrationPolicy.ADAPTIVE, capacity_mb,
                     fault_rates=rates),
        _make_driver("numba", MigrationPolicy.ADAPTIVE, capacity_mb,
                     fault_rates=rates),
        seed, n_waves, wave_size)


@pytest.mark.parametrize("replacement", list(ReplacementPolicy))
def test_backends_match_both_replacement_policies(replacement):
    _run_pair(
        _make_driver("python", MigrationPolicy.ADAPTIVE, 6,
                     replacement=replacement),
        _make_driver("numba", MigrationPolicy.ADAPTIVE, 6,
                     replacement=replacement),
        seed=11, n_waves=12, wave_size=200)


@pytest.mark.parametrize("fast_path", [True, False])
def test_backends_match_fast_path_on_and_off(fast_path):
    _run_pair(
        _make_driver("python", MigrationPolicy.ADAPTIVE, 64,
                     fast_path=fast_path),
        _make_driver("numba", MigrationPolicy.ADAPTIVE, 64,
                     fast_path=fast_path),
        seed=23, n_waves=10, wave_size=150)


@pytest.mark.parametrize("name", ALL_WORKLOADS + EXTENDED_WORKLOADS)
def test_backends_match_every_registered_workload(name):
    results = {}
    for backend in ("python", "numba"):
        cfg = SimulationConfig(seed=3, backend=backend).with_policy(
            MigrationPolicy.ADAPTIVE)
        results[backend] = Simulator(cfg).run(
            make_workload(name, "tiny"), oversubscription=1.25)
    assert _normalized(results["numba"]) == _normalized(results["python"])


def test_numba_backend_reports_active_name():
    drv = _make_driver("numba", MigrationPolicy.ADAPTIVE, 64)
    assert drv.accel.requested == "numba"
    assert drv.backend_name == "numba"  # FORCE_INTERPRETED resolves it


# ---------------------------------------------------------------------------
# shard-count invariance (--shards 1 ≡ --shards N)
# ---------------------------------------------------------------------------

@given(policies, traffic(), st.sampled_from([2, 4, 7]))
@settings(max_examples=25, deadline=None)
def test_shard_count_invariant_driver_level(policy, t, n_shards):
    seed, n_waves, wave_size, capacity_mb = t
    _run_pair(_make_driver("python", policy, capacity_mb, shards=1),
              _make_driver("python", policy, capacity_mb, shards=n_shards),
              seed, n_waves, wave_size)


@pytest.mark.parametrize("name", ALL_WORKLOADS)
def test_shard_count_invariant_every_workload(name):
    results = {}
    for shards in (1, 4):
        cfg = SimulationConfig(seed=5, shards=shards).with_policy(
            MigrationPolicy.ADAPTIVE)
        results[shards] = Simulator(cfg).run(
            make_workload(name, "tiny"), oversubscription=1.25)
    assert _normalized(results[4]) == _normalized(results[1])


def test_sharding_composes_with_numba_backend():
    _run_pair(
        _make_driver("python", MigrationPolicy.ADAPTIVE, 6, shards=1),
        _make_driver("numba", MigrationPolicy.ADAPTIVE, 6, shards=4),
        seed=29, n_waves=12, wave_size=200)
